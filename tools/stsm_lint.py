#!/usr/bin/env python3
"""Project-specific invariant linter for the stsm tree.

Checks rules that generic static analysis (clang-tidy, -Wthread-safety)
cannot know because they encode *this* codebase's contracts:

  serve-nograd       src/serve/ must never build autograd state: no call to
                     Backward()/EnsureGrad()/GradView()/set_requires_grad(),
                     and any serve translation unit that runs a model
                     Forward() must take autograd::NoGradGuard somewhere in
                     the file (served forwards build zero graph — PR 4's
                     NodesCreated()/GradAllocations() counters assert it at
                     runtime; this catches it at review time).

  ops-strided-pair   every kernel in src/tensor/ops.cc that branches on
                     is_contiguous() for a fast path must also contain a
                     generic strided path (index tables / Contiguous()
                     compaction / explicit strides) in the same function.
                     A contiguous-only kernel silently computes garbage on
                     the zero-copy views introduced in PR 5.

  pool-include       "tensor/pool.h" is an implementation detail of the
                     tensor substrate. Outside src/tensor/ only the pool's
                     own tests may include it; everything else goes through
                     the public surface (storage.h's RecordPoolProfCounters,
                     prof counters, STSM_POOL env knobs).

  prof-scope-unique  every STSM_PROF_SCOPE string literal is globally
                     unique. Two scopes sharing a name merge into one timer
                     and make per-op attribution (bench_table5_runtime's
                     matmul/transpose breakdown) silently wrong. Scopes
                     named by a variable (ops.cc's per-node fwd/bwd names)
                     are out of scope for this textual check.

  mutex-guarded      every Mutex data member (trailing-underscore member
                     naming) must have at least one STSM_GUARDED_BY /
                     STSM_PT_GUARDED_BY annotation naming it in the same
                     file. A mutex that guards nothing the analysis can see
                     is a mutex -Werror=thread-safety silently ignores —
                     exactly how an unprotected-member race slips in.
                     Function-local mutexes (no trailing underscore) are out
                     of scope.

  sparse-kernel-oracle  every `*Kernel` function at namespace level in
                     src/tensor/sparse.cc has a `*Oracle` twin in the same
                     file. The oracle is the dense-reference implementation
                     with the identical skip-zero ascending accumulation
                     order; the sparse differential tests require bitwise
                     equality against it, so a kernel without its oracle is
                     a kernel the tests cannot pin down.

  bf16-serve-only    the kBf16 dtype may appear in src/ only inside the
                     layers that implement or configure the reduced-
                     precision serving path (src/tensor/, nn/precision.*,
                     nn/serialize.cc, src/serve/, core/config.h). Anywhere
                     else — training, masking, graph construction — a
                     bf16 tensor means rounded gradients or corrupted
                     paper metrics; the runtime autograd checks catch it
                     late, this catches it at review time.

Usage: stsm_lint.py [repo_root]

Exit status 0 when clean, 1 with one line per finding otherwise. Stdlib
only; wired into CI next to check_pool_stats.py.
"""

import pathlib
import re
import sys

# ---- shared helpers ---------------------------------------------------------


def strip_comments(text):
    """Removes // and /* */ comments (string literals are not parsed; the
    patterns this linter greps for do not occur inside project strings)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def read(path):
    return path.read_text(encoding="utf-8")


# ---- serve-nograd -----------------------------------------------------------

FORBIDDEN_IN_SERVE = [
    (r"\bBackward\s*\(", "calls Backward()"),
    (r"\bEnsureGrad\s*\(", "allocates gradient storage"),
    (r"\bGradView\s*\(", "wraps a gradient buffer"),
    (r"\bset_requires_grad\s*\(", "marks a tensor as requiring grad"),
    (r"\bZeroGrad\s*\(", "touches gradient state"),
]


def check_serve_nograd(root, findings):
    # rglob: the rule covers nested serve layers (serve/net/, ...) too.
    for path in sorted((root / "src" / "serve").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        text = strip_comments(read(path))
        rel = path.relative_to(root)
        for pattern, why in FORBIDDEN_IN_SERVE:
            for match in re.finditer(pattern, text):
                line = text[: match.start()].count("\n") + 1
                findings.append(
                    f"{rel}:{line}: [serve-nograd] {why} — serve code paths "
                    "must not construct autograd state")
        # A serve TU that runs the model must pin NoGradGuard.
        if re.search(r"(->|\.)Forward\s*\(", text) and \
                "NoGradGuard" not in text:
            findings.append(
                f"{rel}: [serve-nograd] calls Forward() but never takes "
                "autograd::NoGradGuard — served forwards must build no "
                "graph")


# ---- ops-strided-pair -------------------------------------------------------

# Evidence of a generic (non-contiguous) path inside the same function.
STRIDED_MARKERS = (
    "BuildPhysTable", "PhysAt", "BuildIndexTable", "BinaryLayout",
    "Contiguous(", "PhysicalIndex", "strides", "table",
)


NAMESPACE_OPEN = re.compile(r"^\s*(inline\s+)?namespace\b[^{]*\{\s*$")
NAMESPACE_CLOSE = re.compile(r"^\}\s*$|^\}\s*//\s*namespace")


def toplevel_functions(text):
    """Yields (name_line, body) for each namespace-level brace-balanced
    block (function, class, or struct definition).

    AST-lite: relies on the tree's clang-format layout (opening brace on the
    signature line, closing brace back at the margin, namespace braces on
    their own `namespace x {` / `}  // namespace x` lines, which are treated
    as transparent). Good enough to attribute an is_contiguous() branch to
    its kernel.
    """
    lines = text.split("\n")
    depth = 0
    start = None
    for i, line in enumerate(lines):
        if start is None and (NAMESPACE_OPEN.match(line) or
                              NAMESPACE_CLOSE.match(line)):
            continue  # Namespace braces do not open a block.
        opens = line.count("{")
        closes = line.count("}")
        if depth == 0 and opens > closes:
            start = i
        depth += opens - closes
        if depth == 0 and start is not None:
            yield start + 1, "\n".join(lines[start:i + 1])
            start = None


def check_ops_strided_pairing(root, findings):
    path = root / "src" / "tensor" / "ops.cc"
    text = strip_comments(read(path))
    rel = path.relative_to(root)
    for line, body in toplevel_functions(text):
        if "is_contiguous()" not in body:
            continue
        if not any(marker in body for marker in STRIDED_MARKERS):
            findings.append(
                f"{rel}:{line}: [ops-strided-pair] kernel branches on "
                "is_contiguous() but has no strided fallback (expected one "
                f"of: {', '.join(STRIDED_MARKERS)})")


# ---- pool-include -----------------------------------------------------------

POOL_INCLUDE = re.compile(r"#include\s+\"tensor/pool\.h\"")
# The pool's own tests assert free-list/recycling internals.
POOL_TEST_ALLOWLIST = {
    "tests/tensor/storage_pool_test.cc",
    "tests/tensor/strided_view_test.cc",
    # Asserts CSR buffers (values/indices) return to the pool on destruction.
    "tests/tensor/sparse_test.cc",
}


def check_pool_include(root, findings):
    for sub in ("src", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            rel = path.relative_to(root).as_posix()
            if rel.startswith("src/tensor/") or rel in POOL_TEST_ALLOWLIST:
                continue
            text = strip_comments(read(path))
            match = POOL_INCLUDE.search(text)
            if match:
                line = text[: match.start()].count("\n") + 1
                findings.append(
                    f"{rel}:{line}: [pool-include] tensor/pool.h is "
                    "internal to src/tensor/ — use RecordPoolProfCounters() "
                    "(tensor/storage.h) or the pool.* prof counters instead")


# ---- prof-scope-unique ------------------------------------------------------

PROF_SCOPE = re.compile(r"STSM_PROF_SCOPE\s*\(\s*\"([^\"]+)\"\s*\)")


def check_prof_scope_unique(root, findings):
    seen = {}
    for sub in ("src", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            text = strip_comments(read(path))
            rel = path.relative_to(root).as_posix()
            for match in PROF_SCOPE.finditer(text):
                name = match.group(1)
                line = text[: match.start()].count("\n") + 1
                where = f"{rel}:{line}"
                if name in seen:
                    findings.append(
                        f"{where}: [prof-scope-unique] STSM_PROF_SCOPE "
                        f"name \"{name}\" already used at {seen[name]} — "
                        "shared names merge into one timer and corrupt "
                        "per-op attribution")
                else:
                    seen[name] = where


# ---- mutex-guarded ----------------------------------------------------------

MUTEX_MEMBER = re.compile(r"\b(?:mutable\s+)?Mutex\s+(\w*_)\s*;")


def check_mutex_guarded(root, findings):
    for sub in ("src", "bench"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            if path.name == "thread_annotations.h":
                continue  # Defines the annotation macros themselves.
            text = strip_comments(read(path))
            rel = path.relative_to(root).as_posix()
            for match in MUTEX_MEMBER.finditer(text):
                name = match.group(1)
                if (f"STSM_GUARDED_BY({name})" in text or
                        f"STSM_PT_GUARDED_BY({name})" in text):
                    continue
                line = text[: match.start()].count("\n") + 1
                findings.append(
                    f"{rel}:{line}: [mutex-guarded] Mutex member {name} has "
                    f"no STSM_GUARDED_BY({name}) data member in this file — "
                    "annotate what it protects so -Werror=thread-safety can "
                    "check the locking")


# ---- sparse-kernel-oracle ---------------------------------------------------


def check_sparse_kernel_oracle(root, findings):
    path = root / "src" / "tensor" / "sparse.cc"
    if not path.is_file():
        return
    text = strip_comments(read(path))
    rel = path.relative_to(root)
    # Collect namespace-level `<prefix>Kernel(` / `<prefix>Oracle(`
    # definitions by signature line (the brace-balanced block's first line).
    names = {"Kernel": {}, "Oracle": {}}
    for line, body in toplevel_functions(text):
        signature = body.split("{", 1)[0]
        match = re.search(r"\b(\w+?)(Kernel|Oracle)\s*\(", signature)
        if match:
            names[match.group(2)].setdefault(match.group(1), line)
    for prefix, line in sorted(names["Kernel"].items()):
        if prefix not in names["Oracle"]:
            findings.append(
                f"{rel}:{line}: [sparse-kernel-oracle] {prefix}Kernel has "
                f"no {prefix}Oracle dense-reference twin — the sparse "
                "differential tests require a bitwise-identical oracle for "
                "every SpMM kernel")


# ---- bf16-serve-only --------------------------------------------------------

BF16_TOKEN = re.compile(r"\bDType\s*::\s*kBf16\b")
# Layers that legitimately implement or configure reduced-precision serving.
BF16_ALLOW_PREFIXES = ("src/tensor/", "src/serve/", "src/nn/precision.")
BF16_ALLOW_FILES = {"src/nn/serialize.cc", "src/core/config.h"}


def check_bf16_serve_only(root, findings):
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith(BF16_ALLOW_PREFIXES) or rel in BF16_ALLOW_FILES:
            continue
        text = strip_comments(read(path))
        for match in BF16_TOKEN.finditer(text):
            line = text[: match.start()].count("\n") + 1
            findings.append(
                f"{rel}:{line}: [bf16-serve-only] DType::kBf16 outside the "
                "serving/no-grad layers — bf16 construction is confined to "
                "src/tensor/, src/serve/, nn/precision.*, nn/serialize.cc "
                "and core/config.h; training stays fp32 bit-for-bit")


# ---- driver -----------------------------------------------------------------


def main(argv):
    root = pathlib.Path(argv[1]) if len(argv) > 1 else \
        pathlib.Path(__file__).resolve().parent.parent
    findings = []
    check_serve_nograd(root, findings)
    check_ops_strided_pairing(root, findings)
    check_pool_include(root, findings)
    check_prof_scope_unique(root, findings)
    check_mutex_guarded(root, findings)
    check_sparse_kernel_oracle(root, findings)
    check_bf16_serve_only(root, findings)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"stsm_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("stsm_lint: OK (serve-nograd, ops-strided-pair, pool-include, "
          "prof-scope-unique, mutex-guarded, sparse-kernel-oracle, "
          "bf16-serve-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
