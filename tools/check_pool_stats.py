#!/usr/bin/env python3
"""Validates BufferPool counters in a profile JSON emitted by the bench harness.

Usage: check_pool_stats.py [--smoke-baseline] [--baselines FILE]
                           <profile.json> [serve_load.json]
       check_pool_stats.py --micro [--baselines FILE] <benchmark.json>
       check_pool_stats.py --serve-bf16 [--baselines FILE]
                           <profile.json> <serve_load.json>

With --smoke-baseline, additionally asserts that pool.acquire stays below
the checked-in smoke-bench ceiling (zero-copy views must allocate strictly
less than the copying tensor core did). The ceiling lives in
bench/baselines.json — next to the benches that produce the numbers, not
hardcoded here — and failures report the observed-vs-expected delta.

With --micro, the argument is instead a google-benchmark JSON report from
bench_micro_substrate (--benchmark_format=json). Each entry in the
baselines "micro" section names a fast/slow benchmark pair and a speedup
floor: real_time(slow) / real_time(fast) must be >= min_speedup. Pairs
marked simd_only are skipped when the report's custom context says the
scalar kernel table ran (stsm_simd != "on") — e.g. an STSM_SIMD=off lane
or a non-AVX2 host — since pinning scalar dispatch on both sides makes the
SIMD-vs-scalar ratio meaningless there.

Asserts that the pool counters are present (the tensor core actually routed
its allocations through the BufferPool) and that no buffer leaked: every
buffer that entered circulation (acquired from the pool or adopted via
Tensor::FromVector) was released back by the time the profile was written.
When the profile carries the sparse substrate's counters, additionally
asserts sparse.csr_create == sparse.csr_destroy — no CSR matrix may outlive
the run.

When a serve_load.json (emitted by bench_serve_load) is given as the second
argument, additionally asserts the serving layer behaved: a nonzero forecast
cache hit rate, at least one degraded response from the injected deadline
misses, and positive throughput. The sharded front-end is held to its own
bars: the profile must carry per-shard serve.cache.shard<k>.* counters with
hits on at least two shards (so the replay phase provably exercised both
shard caches), and the open_loop section must show Poisson phases with
monotonic tail percentiles, zero transport/server errors, zero malformed
frames, at least one mid-load checkpoint hot-swap, zero requests failed by
the swaps, and (at smoke scale) a p99 under the serve.open_loop.p99_ms
ceiling in bench/baselines.json. Every serve check also asserts the
measured bf16 weight-compression ratio (weights.bf16_weight_ratio in
serve_load.json) stays at or above the serve.bf16.weight_ratio floor in
bench/baselines.json.

With --serve-bf16, the run under check is a reduced-precision serving run
(bench_serve_load --smoke --open-loop with STSM_SERVE_DTYPE=bf16): the
report must say serve_dtype "bf16", must contain zero degraded and zero
errored requests end to end, and is held to the same open-loop and
weight-ratio bars.

Exit status 0 on success; 1 with a diagnostic on failure. Stdlib only.
"""

import json
import pathlib
import sys

REQUIRED = ["pool.acquire", "pool.hit", "pool.miss", "pool.adopt",
            "pool.release", "pool.bytes_requested", "pool.bytes_reused"]

DEFAULT_BASELINES = (pathlib.Path(__file__).resolve().parent.parent /
                     "bench" / "baselines.json")


def load_baseline(path, scale, counter):
    """Returns the ceiling for `counter` at `scale`, or exits loudly — a
    missing baseline file or key means the check silently stops checking,
    which is exactly the failure mode this file exists to prevent."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load baselines from {path}: {error}",
              file=sys.stderr)
        sys.exit(1)
    try:
        return int(baselines[scale][counter]["max"])
    except (KeyError, TypeError, ValueError):
        print(f"FAIL: {path} has no usable entry for "
              f"[{scale!r}][{counter!r}]['max']", file=sys.stderr)
        sys.exit(1)


def load_floor(path, section, key):
    """Returns the floor (a 'min' entry) for [section][key], or exits loudly
    — same rationale as load_baseline."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load baselines from {path}: {error}",
              file=sys.stderr)
        sys.exit(1)
    try:
        return float(baselines[section][key]["min"])
    except (KeyError, TypeError, ValueError):
        print(f"FAIL: {path} has no usable entry for "
              f"[{section!r}][{key!r}]['min']", file=sys.stderr)
        sys.exit(1)


def load_micro_baselines(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            baselines = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load baselines from {path}: {error}",
              file=sys.stderr)
        sys.exit(1)
    micro = baselines.get("micro")
    if not isinstance(micro, dict) or not micro:
        print(f"FAIL: {path} has no usable 'micro' section", file=sys.stderr)
        sys.exit(1)
    return micro


def check_micro(path, micro):
    """Asserts every fast/slow speedup pair in the baselines 'micro' section
    against a google-benchmark JSON report."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)

    simd_on = report.get("context", {}).get("stsm_simd") == "on"
    times = {b["name"]: float(b["real_time"])
             for b in report.get("benchmarks", [])
             if b.get("run_type", "iteration") == "iteration"}

    status = 0
    checked = skipped = 0
    for name, spec in sorted(micro.items()):
        if spec.get("simd_only", False) and not simd_on:
            print(f"SKIP: {name}: scalar kernel table was active "
                  "(stsm_simd != 'on'), SIMD-vs-scalar pair not meaningful")
            skipped += 1
            continue
        fast, slow = spec["fast"], spec["slow"]
        missing = [b for b in (fast, slow) if b not in times]
        if missing:
            print(f"FAIL: {name}: benchmark(s) {', '.join(missing)} absent "
                  f"from {path} — was bench_micro_substrate run with a "
                  "filter that excluded them?", file=sys.stderr)
            status = 1
            continue
        floor = float(spec["min_speedup"])
        speedup = times[slow] / times[fast]
        checked += 1
        if speedup < floor:
            print(f"FAIL: {name}: {slow} / {fast} = {speedup:.2f}x, below "
                  f"the checked-in floor {floor:.2f}x — the vectorized path "
                  "regressed or silently fell back", file=sys.stderr)
            status = 1
        else:
            print(f"OK: {name}: {slow} / {fast} = {speedup:.2f}x "
                  f"(floor {floor:.2f}x)")
    if status == 0:
        print(f"OK: {path}: {checked} speedup pair(s) checked, "
              f"{skipped} skipped")
    return status


def check_pool(path, baseline=None):
    with open(path, "r", encoding="utf-8") as f:
        profile = json.load(f)

    # Counter entries reuse the timer record shape: `total_ns` carries the
    # accumulated counter value, `count` the number of increment calls.
    counters = {c["name"]: c["total_ns"] for c in profile.get("counters", [])}

    missing = [name for name in REQUIRED if name not in counters]
    if missing:
        print(f"FAIL: {path} is missing pool counters: {', '.join(missing)}",
              file=sys.stderr)
        print(f"counters present: {sorted(counters)}", file=sys.stderr)
        return 1

    acquires = counters["pool.acquire"]
    adopts = counters["pool.adopt"]
    releases = counters["pool.release"]
    hits = counters["pool.hit"]
    misses = counters["pool.miss"]

    if acquires <= 0:
        print("FAIL: pool.acquire is 0 — tensor allocations are not going "
              "through the BufferPool", file=sys.stderr)
        return 1
    if hits + misses != acquires:
        print(f"FAIL: pool.hit ({hits}) + pool.miss ({misses}) != "
              f"pool.acquire ({acquires})", file=sys.stderr)
        return 1

    leaked = acquires + adopts - releases
    if leaked != 0:
        print(f"FAIL: {leaked} net leaked buffer(s): pool.acquire "
              f"({acquires}) + pool.adopt ({adopts}) != pool.release "
              f"({releases})", file=sys.stderr)
        return 1

    # When the run built CSR sparse matrices, every one of them must have
    # been torn down (all three pooled arrays released) by snapshot time —
    # a dangling SparseCsr handle is the sparse substrate's leak shape.
    created = counters.get("sparse.csr_create", 0)
    destroyed = counters.get("sparse.csr_destroy", 0)
    if created != destroyed:
        print(f"FAIL: sparse.csr_create ({created}) != sparse.csr_destroy "
              f"({destroyed}) — {created - destroyed} CSR matrix(es) still "
              "alive when the profile was written", file=sys.stderr)
        return 1

    if baseline is not None and acquires >= baseline:
        print(f"FAIL: pool.acquire ({acquires}) did not stay below the "
              f"checked-in ceiling ({baseline}): observed - expected = "
              f"+{acquires - baseline} acquires "
              f"({(acquires - baseline) / baseline:+.2%}) — zero-copy "
              "Transpose/Slice views should keep materializing copies out "
              "of this workload", file=sys.stderr)
        return 1

    reuse = hits / acquires
    against = (f", {baseline - acquires} below baseline {baseline}"
               if baseline is not None else "")
    print(f"OK: {path}: {acquires} acquires ({hits} hits, {reuse:.1%} reuse), "
          f"{adopts} adopts, {releases} releases, 0 leaked{against}")
    return 0


def check_serve_shards(path, report, profile_path):
    """Per-shard cache counters: present for every shard the report claims,
    and with hits on at least two of them — the replay phase alternates model
    kinds precisely so both shard caches serve."""
    num_shards = int(report.get("num_shards", 0))
    if num_shards < 2:
        print(f"FAIL: {path}: num_shards is {num_shards} — the load bench "
              "must drive a sharded front-end (>= 2 shards)", file=sys.stderr)
        return 1
    with open(profile_path, "r", encoding="utf-8") as f:
        profile = json.load(f)
    counters = {c["name"]: c["total_ns"] for c in profile.get("counters", [])}
    shards_with_hits = 0
    for shard in range(num_shards):
        prefix = f"serve.cache.shard{shard}"
        missing = [f"{prefix}{suffix}" for suffix in (".hit", ".miss")
                   if f"{prefix}{suffix}" not in counters]
        if missing:
            print(f"FAIL: {profile_path} is missing per-shard cache "
                  f"counters: {', '.join(missing)} — shard {shard}'s "
                  "ForecastCache is not wired to its interned prof names",
                  file=sys.stderr)
            return 1
        if counters[f"{prefix}.hit"] > 0:
            shards_with_hits += 1
    if shards_with_hits < 2:
        print(f"FAIL: {profile_path}: only {shards_with_hits} shard(s) "
              "recorded cache hits — the replay phase must alternate model "
              "kinds so every shard's cache serves", file=sys.stderr)
        return 1
    return 0


def check_serve_open_loop(path, report, baselines_path):
    """The open-loop network section: rates present with sane tails, zero
    errors, zero malformed frames, and hot-swaps that failed nothing."""
    open_loop = report.get("open_loop")
    if not isinstance(open_loop, dict) or not open_loop.get("rates"):
        print(f"FAIL: {path}: no open_loop.rates — bench_serve_load must "
              "drive the real socket path with Poisson arrivals",
              file=sys.stderr)
        return 1
    worst_p99 = 0.0
    for rate in open_loop["rates"]:
        label = f"open_loop rate {rate.get('target_rps', '?')}rps"
        if rate.get("errors", -1) != 0:
            print(f"FAIL: {path}: {label} saw {rate.get('errors')} kError "
                  "response(s) — the serving path must never error under "
                  "well-formed load", file=sys.stderr)
            return 1
        if rate.get("completed") != rate.get("sent"):
            print(f"FAIL: {path}: {label} completed "
                  f"{rate.get('completed')} of {rate.get('sent')} sent — "
                  "responses went missing over the wire", file=sys.stderr)
            return 1
        tails = [rate.get(key, 0.0)
                 for key in ("p50_ms", "p95_ms", "p99_ms", "p999_ms")]
        if any(hi < lo for lo, hi in zip(tails, tails[1:])):
            print(f"FAIL: {path}: {label} percentiles are not monotonic: "
                  f"{tails}", file=sys.stderr)
            return 1
        worst_p99 = max(worst_p99, float(rate.get("p99_ms", 0.0)))
    if int(open_loop.get("hot_swaps", 0)) < 1:
        print(f"FAIL: {path}: open_loop.hot_swaps is 0 — the bench must "
              "hot-swap a checkpoint while the socket load runs",
              file=sys.stderr)
        return 1
    if open_loop.get("swap_failed_requests", -1) != 0:
        print(f"FAIL: {path}: {open_loop.get('swap_failed_requests')} "
              "request(s) failed during checkpoint hot-swaps — a swap is a "
              "pointer flip and must strand nothing", file=sys.stderr)
        return 1
    if open_loop.get("listener", {}).get("malformed", -1) != 0:
        print(f"FAIL: {path}: the listener counted malformed frames from "
              "the bench's own well-formed clients", file=sys.stderr)
        return 1
    if report.get("scale") == "smoke":
        ceiling = load_baseline(baselines_path, "smoke",
                                "serve.open_loop.p99_ms")
        if worst_p99 >= ceiling:
            print(f"FAIL: {path}: open-loop p99 {worst_p99:.1f} ms did not "
                  f"stay below the checked-in ceiling ({ceiling} ms) — the "
                  "ingress or serving path regressed under load",
                  file=sys.stderr)
            return 1
    return 0


def check_weight_ratio(path, report, baselines_path):
    """The measured bf16 weight-compression ratio must hold the checked-in
    floor: bench_serve_load loads every checkpoint at both dtypes and
    reports min-over-models f32_bytes / bf16_bytes."""
    floor = load_floor(baselines_path, "serve", "serve.bf16.weight_ratio")
    weights = report.get("weights")
    if not isinstance(weights, dict) or "bf16_weight_ratio" not in weights:
        print(f"FAIL: {path}: no weights.bf16_weight_ratio — "
              "bench_serve_load must measure resident weight bytes at both "
              "serving dtypes", file=sys.stderr)
        return 1
    ratio = float(weights["bf16_weight_ratio"])
    if ratio < floor:
        for row in weights.get("models", []):
            print(f"  {row.get('model')}: f32 {row.get('f32_bytes')} B, "
                  f"bf16 {row.get('bf16_bytes')} B "
                  f"(ratio {row.get('ratio')})", file=sys.stderr)
        print(f"FAIL: {path}: bf16 weight ratio {ratio:.3f} is below the "
              f"checked-in floor {floor:.2f} — some parameters are not "
              "converting to the serving dtype", file=sys.stderr)
        return 1
    print(f"OK: {path}: bf16 weight ratio {ratio:.3f} (floor {floor:.2f})")
    return 0


def check_serve_bf16(path, profile_path, baselines_path):
    """A reduced-precision serving run: same open-loop bars as the fp32 run
    plus serve_dtype provenance and a zero-degraded / zero-error bar — bf16
    rounding must not push one request off the healthy path."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("serve_dtype") != "bf16":
        print(f"FAIL: {path}: serve_dtype is "
              f"{report.get('serve_dtype')!r}, expected 'bf16' — was "
              "bench_serve_load run with STSM_SERVE_DTYPE=bf16?",
              file=sys.stderr)
        return 1
    if report.get("degraded", -1) != 0:
        print(f"FAIL: {path}: {report.get('degraded')} degraded "
              "response(s) in the bf16 serving run — reduced precision "
              "must not degrade a single request", file=sys.stderr)
        return 1
    if report.get("errors", -1) != 0:
        print(f"FAIL: {path}: {report.get('errors')} errored response(s) "
              "in the bf16 serving run", file=sys.stderr)
        return 1
    status = check_serve_open_loop(path, report, baselines_path)
    if status == 0:
        status = check_weight_ratio(path, report, baselines_path)
    if status != 0:
        return status
    print(f"OK: {path}: bf16 serving run — 0 degraded, 0 errors, cache "
          f"payload {report.get('cache_payload_bytes', 0)} B")
    return 0


def check_serve(path, profile_path, baselines_path):
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)

    hit_rate = report.get("cache_hit_rate", 0.0)
    if hit_rate <= 0.0:
        print(f"FAIL: {path}: cache_hit_rate is {hit_rate} — the forecast "
              "cache never hit (replayed queries must be served from cache)",
              file=sys.stderr)
        return 1
    degraded = report.get("degraded", 0)
    if degraded < 1:
        print(f"FAIL: {path}: no degraded responses — injected deadline "
              "misses must trigger the historical-average fallback",
              file=sys.stderr)
        return 1
    qps = report.get("qps", 0.0)
    if qps <= 0.0:
        print(f"FAIL: {path}: qps is {qps}", file=sys.stderr)
        return 1

    status = check_serve_shards(path, report, profile_path)
    if status == 0:
        status = check_serve_open_loop(path, report, baselines_path)
    if status == 0:
        status = check_weight_ratio(path, report, baselines_path)
    if status != 0:
        return status

    open_loop = report["open_loop"]
    top = open_loop["rates"][-1]
    print(f"OK: {path}: {qps:.1f} QPS, cache hit rate {hit_rate:.1%}, "
          f"{degraded} degraded, p99 {report.get('latency_p99_ns', 0) / 1e6:.2f} ms, "
          f"no-grad speedup {report.get('nograd_speedup', 0):.2f}x; "
          f"open loop @{top.get('target_rps', 0):.0f}rps p99 "
          f"{top.get('p99_ms', 0):.1f} ms, {open_loop.get('hot_swaps')} "
          "hot swap(s), 0 swap failures")
    return 0


def main(argv):
    args = list(argv[1:])
    baselines_path = DEFAULT_BASELINES
    if "--baselines" in args:
        at = args.index("--baselines")
        args.pop(at)
        baselines_path = pathlib.Path(args.pop(at))
    if "--micro" in args:
        args.remove("--micro")
        if len(args) != 1:
            print(f"usage: {argv[0]} --micro [--baselines FILE] "
                  "<benchmark.json>", file=sys.stderr)
            return 1
        return check_micro(args[0], load_micro_baselines(baselines_path))
    if "--serve-bf16" in args:
        args.remove("--serve-bf16")
        if len(args) != 2:
            print(f"usage: {argv[0]} --serve-bf16 [--baselines FILE] "
                  "<profile.json> <serve_load.json>", file=sys.stderr)
            return 1
        status = check_pool(args[0])
        if status == 0:
            status = check_serve_bf16(args[1], profile_path=args[0],
                                      baselines_path=baselines_path)
        return status
    baseline = None
    if "--smoke-baseline" in args:
        args.remove("--smoke-baseline")
        baseline = load_baseline(baselines_path, "smoke", "pool.acquire")
    if len(args) not in (1, 2):
        print(f"usage: {argv[0]} [--smoke-baseline] [--baselines FILE] "
              "<profile.json> [serve_load.json]", file=sys.stderr)
        return 1
    status = check_pool(args[0], baseline=baseline)
    if status == 0 and len(args) == 2:
        status = check_serve(args[1], profile_path=args[0],
                             baselines_path=baselines_path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
