#!/usr/bin/env python3
"""clang-tidy driver for the stsm tree.

Runs clang-tidy (configuration from the repo's .clang-tidy) over every
first-party translation unit in compile_commands.json, in parallel, and
fails on any finding — WarningsAsErrors is '*', so CI treats tidy findings
exactly like compiler errors.

Usage:
  run_clang_tidy.py [--build-dir BUILD] [--jobs N] [--filter REGEX] [--fix]

The build directory must have been configured by CMake (the root
CMakeLists.txt always exports compile_commands.json). Scope is src/ — tests
and benches follow looser rules (gtest macros trip several bugprone checks).

Exit status: 0 clean, 1 findings, 2 environment problems (no clang-tidy
binary, no compile database). Stdlib only.
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

# Newest first; plain "clang-tidy" wins when present.
TIDY_CANDIDATES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in
                                    range(21, 13, -1)]


def find_clang_tidy():
    for name in TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"error: {db_path} not found — configure with cmake first "
              "(compile_commands.json export is always on)", file=sys.stderr)
        return None
    with open(db_path, "r", encoding="utf-8") as f:
        return json.load(f)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1),
                        help="parallel clang-tidy processes")
    parser.add_argument("--filter", default=r"/src/.*\.cc$",
                        help="regex selecting TUs from the compile database")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggested fixes (serialised: --jobs 1)")
    args = parser.parse_args(argv[1:])

    root = pathlib.Path(__file__).resolve().parent.parent
    build_dir = (root / args.build_dir).resolve() \
        if not os.path.isabs(args.build_dir) \
        else pathlib.Path(args.build_dir)

    tidy = find_clang_tidy()
    if tidy is None:
        print("error: no clang-tidy binary on PATH (tried: "
              f"{', '.join(TIDY_CANDIDATES)})", file=sys.stderr)
        return 2

    db = load_compile_db(build_dir)
    if db is None:
        return 2

    selector = re.compile(args.filter)
    files = sorted({entry["file"] for entry in db
                    if selector.search(entry["file"])})
    if not files:
        print(f"error: no TUs match --filter {args.filter!r}",
              file=sys.stderr)
        return 2

    base_cmd = [tidy, "-p", str(build_dir), "--quiet"]
    if args.fix:
        base_cmd.append("--fix")
        args.jobs = 1  # Concurrent fixers race on shared headers.

    def run_one(path):
        proc = subprocess.run(base_cmd + [path], capture_output=True,
                              text=True)
        # clang-tidy prints per-TU noise ("N warnings generated") on stderr;
        # findings land on stdout.
        return path, proc.returncode, proc.stdout.strip()

    failures = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if code != 0 or output:
                failures.append((rel, output))
                print(f"FAIL {rel}", file=sys.stderr)
                if output:
                    print(output, file=sys.stderr)
            else:
                print(f"  ok {rel}")

    if failures:
        print(f"clang-tidy: {len(failures)} file(s) with findings "
              f"(of {len(files)} checked)", file=sys.stderr)
        return 1
    print(f"clang-tidy: OK — {len(files)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
