// NoGradGuard observability: under the guard, ops build no autograd nodes
// and backward-free code allocates no gradient buffers; with grad mode on,
// the same ops record nodes and Backward() allocates grads.

#include "tensor/autograd.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

TEST(NoGradTest, GuardBuildsNoGraphAndAllocatesNoGrads) {
  Rng rng(11);
  const Tensor a =
      Tensor::Normal(Shape({8, 8}), 0.0f, 1.0f, &rng, /*requires_grad=*/true);
  const Tensor b =
      Tensor::Normal(Shape({8, 8}), 0.0f, 1.0f, &rng, /*requires_grad=*/true);
  const uint64_t nodes = autograd::NodesCreated();
  const uint64_t grads = Storage::GradAllocations();
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
    const Tensor loss = Sum(Relu(Add(MatMul(a, b), b)));
    EXPECT_FALSE(loss.requires_grad());
  }
  EXPECT_TRUE(GradModeEnabled());
  EXPECT_EQ(autograd::NodesCreated(), nodes);
  EXPECT_EQ(Storage::GradAllocations(), grads);
}

TEST(NoGradTest, GradModeRecordsNodesAndBackwardAllocatesGrads) {
  Rng rng(12);
  const Tensor a =
      Tensor::Normal(Shape({4, 4}), 0.0f, 1.0f, &rng, /*requires_grad=*/true);
  const Tensor b =
      Tensor::Normal(Shape({4, 4}), 0.0f, 1.0f, &rng, /*requires_grad=*/true);
  const uint64_t nodes = autograd::NodesCreated();
  const uint64_t grads = Storage::GradAllocations();
  Tensor loss = Sum(Mul(a, b));
  EXPECT_TRUE(loss.requires_grad());
  EXPECT_GT(autograd::NodesCreated(), nodes);
  loss.Backward();
  EXPECT_GT(Storage::GradAllocations(), grads);
}

TEST(NoGradTest, GuardNestsAndRestores) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

}  // namespace
}  // namespace stsm
