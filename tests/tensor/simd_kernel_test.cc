// Differential tests for the SIMD kernel table (tensor/simd.h): every
// vectorized kernel runs against its scalar reference across edge sizes,
// remainder tiles, and special values. Bitwise equality is asserted wherever
// the dispatch contract promises it (elementwise, max/min, in-place); sum,
// softmax, and GEMM — which change the flop order — get tight ULP / scaled
// tolerances. On machines without AVX2 the differential cases skip and the
// dispatch-state tests still run.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

// Restores the env+CPUID dispatch decision when a test body returns.
struct DispatchGuard {
  ~DispatchGuard() { simd::ResetDispatch(); }
};

uint32_t Bits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

// ULP distance between two floats of the same sign regime; NaNs compare
// equal only to bitwise-identical NaNs.
int64_t UlpDiff(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return Bits(a) == Bits(b) ? 0 : std::numeric_limits<int64_t>::max();
  }
  auto ordered = [](float v) {
    const auto u = static_cast<int64_t>(Bits(v));
    return (u & 0x80000000) ? (0x80000000 - u) : u;
  };
  const int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

std::vector<float> RandomVec(int64_t n, std::mt19937* rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = dist(*rng);
  return v;
}

void ExpectBitwiseVec(const std::vector<float>& a, const std::vector<float>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i]))
        << what << " diverges at [" << i << "]: " << a[i] << " vs " << b[i];
  }
}

// Special-value soup covering the classic masked-lane bugs: NaN, ±Inf, ±0.0,
// denormals, and values on both sides of zero, long enough to hit the vector
// body AND the scalar tail.
std::vector<float> SpecialValues() {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float den = std::numeric_limits<float>::denorm_min();
  const float sub = 1e-41f;  // subnormal
  return {0.0f, -0.0f, 1.0f,  -1.0f, nan,   inf,  -inf,  den,
          -den, sub,   -sub,  0.5f,  -0.5f, 2.0f, -2.0f, 100.0f,
          nan,  -inf,  -0.0f, den,   3.5f};
}

// ---- Dispatch state ---------------------------------------------------------

TEST(SimdDispatch, SupportedHasGeometryAndIsa) {
  const simd::KernelTable* t = simd::Supported();
  if (t == nullptr) GTEST_SKIP() << "no SIMD kernels on this machine";
  EXPECT_STREQ(t->isa, "avx2+fma");
  EXPECT_GE(t->gemm_mr, 1);
  EXPECT_GE(t->gemm_nr, 8);
  EXPECT_LE(t->gemm_mr, kGemmMaxMr);
  EXPECT_LE(t->gemm_nr, kGemmMaxNr);
}

TEST(SimdDispatch, SetForTestingTogglesActive) {
  DispatchGuard guard;
  simd::SetDispatchForTesting(false);
  EXPECT_EQ(simd::Active(), nullptr);
  simd::SetDispatchForTesting(true);
  EXPECT_EQ(simd::Active(), simd::Supported());
  simd::ResetDispatch();
  // Default honors the env; tests run without STSM_SIMD=off in this binary's
  // matrix lane, but either value must be one of the two legal states.
  const simd::KernelTable* active = simd::Active();
  EXPECT_TRUE(active == nullptr || active == simd::Supported());
}

// ---- Elementwise kernels: bitwise across sizes ------------------------------

class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = simd::Supported();
    if (table_ == nullptr) GTEST_SKIP() << "no SIMD kernels on this machine";
  }
  void TearDown() override { simd::ResetDispatch(); }

  const simd::KernelTable* table_ = nullptr;
  std::mt19937 rng_{20240807};
};

TEST_F(SimdKernelTest, BinaryKernelsBitwiseAtEverySize) {
  struct Case {
    const char* name;
    simd::BinaryKernel kernel;
    float (*ref)(float, float);
  };
  const Case cases[] = {
      {"add", table_->add, [](float x, float y) { return x + y; }},
      {"sub", table_->sub, [](float x, float y) { return x - y; }},
      {"mul", table_->mul, [](float x, float y) { return x * y; }},
      {"div", table_->div, [](float x, float y) { return x / y; }},
      {"maximum", table_->maximum,
       [](float x, float y) { return x >= y ? x : y; }},
      {"minimum", table_->minimum,
       [](float x, float y) { return x <= y ? x : y; }},
  };
  // 0..17 covers empty, pure-tail, one vector, vector+tail; 64 the body.
  for (const Case& c : cases) {
    for (int64_t n = 0; n <= 17; ++n) {
      const auto a = RandomVec(n, &rng_);
      const auto b = RandomVec(n, &rng_, 0.5f, 2.0f);
      std::vector<float> got(static_cast<size_t>(n), -7.0f);
      std::vector<float> want(static_cast<size_t>(n), -7.0f);
      c.kernel(a.data(), b.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) want[i] = c.ref(a[i], b[i]);
      ExpectBitwiseVec(got, want, c.name);
    }
  }
}

TEST_F(SimdKernelTest, UnaryKernelsBitwiseAtEverySize) {
  struct Case {
    const char* name;
    simd::UnaryKernel kernel;
    float p;
    float (*ref)(float, float);
  };
  const Case cases[] = {
      {"neg", table_->neg, 0.0f, [](float v, float) { return -v; }},
      {"relu", table_->relu, 0.0f,
       [](float v, float) { return v > 0.0f ? v : 0.0f; }},
      {"leaky_relu", table_->leaky_relu, 0.01f,
       [](float v, float p) { return v > 0.0f ? v : p * v; }},
      {"square", table_->square, 0.0f, [](float v, float) { return v * v; }},
      {"abs", table_->abs, 0.0f, [](float v, float) { return std::fabs(v); }},
      {"add_scalar", table_->add_scalar, 0.37f,
       [](float v, float p) { return v + p; }},
      {"sub_scalar", table_->sub_scalar, 0.37f,
       [](float v, float p) { return v - p; }},
      {"mul_scalar", table_->mul_scalar, 1.7f,
       [](float v, float p) { return v * p; }},
      {"div_scalar", table_->div_scalar, 1.7f,
       [](float v, float p) { return v / p; }},
  };
  for (const Case& c : cases) {
    for (int64_t n = 0; n <= 17; ++n) {
      const auto x = RandomVec(n, &rng_);
      std::vector<float> got(static_cast<size_t>(n), -7.0f);
      std::vector<float> want(static_cast<size_t>(n), -7.0f);
      c.kernel(x.data(), got.data(), n, c.p);
      for (int64_t i = 0; i < n; ++i) want[i] = c.ref(x[i], c.p);
      ExpectBitwiseVec(got, want, c.name);
    }
  }
}

TEST_F(SimdKernelTest, SqrtBitwiseIncludingNegatives) {
  // sqrt of a negative is NaN in both paths; vsqrtps and std::sqrt are both
  // IEEE correctly-rounded so even the NaN-free lanes must match exactly.
  std::vector<float> x = RandomVec(19, &rng_, -1.0f, 4.0f);
  std::vector<float> got(x.size()), want(x.size());
  table_->sqrt(x.data(), got.data(), static_cast<int64_t>(x.size()), 0.0f);
  for (size_t i = 0; i < x.size(); ++i) want[i] = std::sqrt(x[i]);
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "sqrt(" << x[i] << ")";
    } else {
      EXPECT_EQ(Bits(got[i]), Bits(want[i])) << "sqrt(" << x[i] << ")";
    }
  }
}

TEST_F(SimdKernelTest, InPlaceKernelsBitwise) {
  for (int64_t n : {0, 1, 7, 8, 9, 16, 23}) {
    const auto x0 = RandomVec(n, &rng_);
    const auto y = RandomVec(n, &rng_);
    std::vector<float> got = x0, want = x0;
    table_->axpy(got.data(), y.data(), 0.9f, n);
    for (int64_t i = 0; i < n; ++i) want[i] += 0.9f * y[i];
    ExpectBitwiseVec(got, want, "axpy");

    got = x0;
    want = x0;
    table_->scal(got.data(), -1.3f, n);
    for (int64_t i = 0; i < n; ++i) want[i] *= -1.3f;
    ExpectBitwiseVec(got, want, "scal");

    got = x0;
    want = x0;
    table_->relu_inplace(got.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] = want[i] > 0.0f ? want[i] : 0.0f;
    ExpectBitwiseVec(got, want, "relu_inplace");
  }
}

// ---- Special values through the exact kernels -------------------------------

TEST_F(SimdKernelTest, ElementwiseSpecialValuesBitwise) {
  const std::vector<float> sv = SpecialValues();
  const int64_t n = static_cast<int64_t>(sv.size());
  // Pair every special value against a rotation of the same soup so each
  // lane sees NaN-vs-number, Inf-vs-Inf, -0-vs-+0, denormal-vs-denormal...
  std::vector<float> b(sv.size());
  for (size_t i = 0; i < sv.size(); ++i) b[i] = sv[(i + 7) % sv.size()];

  struct Case {
    const char* name;
    simd::BinaryKernel kernel;
    float (*ref)(float, float);
  };
  const Case cases[] = {
      {"maximum", table_->maximum,
       [](float x, float y) { return x >= y ? x : y; }},
      {"minimum", table_->minimum,
       [](float x, float y) { return x <= y ? x : y; }},
      {"add", table_->add, [](float x, float y) { return x + y; }},
      {"mul", table_->mul, [](float x, float y) { return x * y; }},
      {"div", table_->div, [](float x, float y) { return x / y; }},
  };
  for (const Case& c : cases) {
    std::vector<float> got(sv.size()), want(sv.size());
    c.kernel(sv.data(), b.data(), got.data(), n);
    for (int64_t i = 0; i < n; ++i) want[i] = c.ref(sv[i], b[i]);
    for (int64_t i = 0; i < n; ++i) {
      if (std::isnan(want[i])) {
        // NaN payload may legally differ between scalar FP ops and vector
        // arithmetic for COMPUTED NaNs (x+y etc.); for select-style kernels
        // (max/min) the operand is propagated verbatim, which bitwise match
        // below still covers because the ref picks the same operand.
        EXPECT_TRUE(std::isnan(got[i])) << c.name << " at " << i;
      } else {
        EXPECT_EQ(Bits(got[i]), Bits(want[i]))
            << c.name << " at " << i << ": " << sv[i] << " vs " << b[i];
      }
    }
  }
}

TEST_F(SimdKernelTest, ReluMapsNanAndNegativeZeroToPositiveZero) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> x = {nan,   -0.0f, 0.0f, -nan, 1.0f,
                                -1.0f, nan,   -0.0f, 2.0f};
  std::vector<float> got(x.size());
  table_->relu(x.data(), got.data(), static_cast<int64_t>(x.size()), 0.0f);
  for (size_t i = 0; i < x.size(); ++i) {
    const float want = x[i] > 0.0f ? x[i] : 0.0f;
    EXPECT_EQ(Bits(got[i]), Bits(want)) << "relu lane " << i;
  }
}

// ---- Row reductions ---------------------------------------------------------

TEST_F(SimdKernelTest, MaxMinRowBitwiseWithFirstIndexTies) {
  for (int64_t n : {8, 9, 15, 16, 17, 64, 100}) {
    // Quantized values force plenty of exact ties across lanes.
    std::vector<float> x(static_cast<size_t>(n));
    std::uniform_int_distribution<int> dist(-3, 3);
    for (float& v : x) v = static_cast<float>(dist(rng_)) * 0.5f;

    for (bool is_max : {true, false}) {
      float best_want = x[0];
      int64_t arg_want = 0;
      for (int64_t i = 1; i < n; ++i) {
        if (is_max ? (x[i] > best_want) : (x[i] < best_want)) {
          best_want = x[i];
          arg_want = i;
        }
      }
      float best_got = 0.0f;
      int64_t arg_got = -1;
      const bool ok = is_max ? table_->max_row(x.data(), n, &best_got, &arg_got)
                             : table_->min_row(x.data(), n, &best_got, &arg_got);
      ASSERT_TRUE(ok) << "finite row must not be declined, n=" << n;
      EXPECT_EQ(Bits(best_got), Bits(best_want)) << "n=" << n;
      EXPECT_EQ(arg_got, arg_want) << "n=" << n << " is_max=" << is_max;
    }
  }
}

TEST_F(SimdKernelTest, MaxMinRowHandlesSignedZeroAndDenormals) {
  std::vector<float> x = {-0.0f, 0.0f, -0.0f, 0.0f,
                          std::numeric_limits<float>::denorm_min(),
                          -std::numeric_limits<float>::denorm_min(),
                          -0.0f, 0.0f, 1e-41f, -1e-41f};
  const int64_t n = static_cast<int64_t>(x.size());
  for (bool is_max : {true, false}) {
    float best_want = x[0];
    int64_t arg_want = 0;
    for (int64_t i = 1; i < n; ++i) {
      if (is_max ? (x[i] > best_want) : (x[i] < best_want)) {
        best_want = x[i];
        arg_want = i;
      }
    }
    float best_got = 0.0f;
    int64_t arg_got = -1;
    const bool ok = is_max ? table_->max_row(x.data(), n, &best_got, &arg_got)
                           : table_->min_row(x.data(), n, &best_got, &arg_got);
    ASSERT_TRUE(ok);
    EXPECT_EQ(Bits(best_got), Bits(best_want)) << "is_max=" << is_max;
    EXPECT_EQ(arg_got, arg_want) << "is_max=" << is_max;
  }
}

TEST_F(SimdKernelTest, MaxMinRowDeclinesNanAndShortRows) {
  float best = 0.0f;
  int64_t arg = 0;
  std::vector<float> shorty = {1.0f, 2.0f, 3.0f};
  EXPECT_FALSE(table_->max_row(shorty.data(), 3, &best, &arg));

  std::vector<float> x = RandomVec(20, &rng_);
  x[13] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(table_->max_row(x.data(), 20, &best, &arg));
  EXPECT_FALSE(table_->min_row(x.data(), 20, &best, &arg));
  // NaN in the (scalar) tail is NOT declined: the ordered compare drops it,
  // exactly like the scalar scan when NaN is not at position 0.
  std::vector<float> y = RandomVec(19, &rng_);
  y[17] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(table_->max_row(y.data(), 19, &best, &arg));
  EXPECT_FALSE(std::isnan(best));
}

TEST_F(SimdKernelTest, SumWithinOneUlpOfOrderedReference) {
  for (int64_t n : {0, 1, 7, 8, 9, 33, 100, 1000}) {
    const auto x = RandomVec(n, &rng_, -10.0f, 10.0f);
    double want = 0.0;
    for (int64_t i = 0; i < n; ++i) want += static_cast<double>(x[i]);
    const double got = table_->sum(x.data(), n);
    // Both accumulate in double; only the association differs, so the final
    // float results agree to <= 1 ULP in practice for realistic rows.
    EXPECT_LE(UlpDiff(static_cast<float>(got), static_cast<float>(want)), 1)
        << "n=" << n << " got=" << got << " want=" << want;
  }
}

// ---- Softmax ----------------------------------------------------------------

TEST_F(SimdKernelTest, SoftmaxRowCloseToScalarAndSumsToOne) {
  for (int64_t n : {8, 9, 16, 31, 100}) {
    const auto x = RandomVec(n, &rng_, -8.0f, 8.0f);
    std::vector<float> got(static_cast<size_t>(n));
    ASSERT_TRUE(table_->softmax_row(x.data(), got.data(), n)) << "n=" << n;

    // Scalar reference (same algorithm ops.cc uses).
    float m = -std::numeric_limits<float>::infinity();
    for (int64_t i = 0; i < n; ++i) m = std::max(m, x[i]);
    std::vector<float> want(static_cast<size_t>(n));
    double denom = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      want[i] = std::exp(x[i] - m);
      denom += want[i];
    }
    const float inv = static_cast<float>(1.0 / denom);
    double got_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      want[i] *= inv;
      got_sum += got[i];
      // Polynomial exp + lane-split denominator: tight ULP bound, with an
      // absolute floor for the tiny tail probabilities.
      EXPECT_TRUE(UlpDiff(got[i], want[i]) <= 64 ||
                  std::fabs(got[i] - want[i]) <= 1e-10f)
          << "n=" << n << " i=" << i << " got=" << got[i]
          << " want=" << want[i];
      EXPECT_GE(got[i], 0.0f);
    }
    EXPECT_NEAR(got_sum, 1.0, 1e-5) << "n=" << n;
  }
}

TEST_F(SimdKernelTest, SoftmaxRowDeclinesNonFiniteAndShortRows) {
  std::vector<float> y(32);
  std::vector<float> shorty = {1.0f, 2.0f};
  EXPECT_FALSE(table_->softmax_row(shorty.data(), y.data(), 2));

  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    for (size_t pos : {0u, 7u, 13u, 31u}) {  // vector body AND tail lanes
      auto x = RandomVec(32, &rng_);
      x[pos] = bad;
      EXPECT_FALSE(table_->softmax_row(x.data(), y.data(), 32))
          << "bad=" << bad << " at " << pos;
    }
  }
}

TEST_F(SimdKernelTest, SoftmaxRowHandlesExtremeSpreadAndDenormals) {
  // A spread wider than exp's flush threshold: the losing entries underflow
  // to 0 (scalar produces a denormal ~e^-100; both normalize to ~0) and the
  // winner takes everything. Also covers denormal INPUTS (fine for exp).
  std::vector<float> x = {-100.0f, 0.0f, -100.0f, -50.0f,
                          1e-41f,  -100.0f, -100.0f, -100.0f, -100.0f};
  const int64_t n = static_cast<int64_t>(x.size());
  std::vector<float> got(x.size());
  ASSERT_TRUE(table_->softmax_row(x.data(), got.data(), n));
  double sum = 0.0;
  for (float v : got) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // The denormal input is ~0, tying with the max entry: the two split the
  // mass evenly and everything at -100 underflows to ~0.
  EXPECT_NEAR(got[1], 0.5f, 1e-5f);
  EXPECT_NEAR(got[4], 0.5f, 1e-5f);
  EXPECT_NEAR(got[0], 0.0f, 1e-20f);
}

// ---- GEMM remainder tiles ---------------------------------------------------

// Every m % MR and n % NR residue (for BOTH tile geometries: 6x16 vector,
// 4x8 scalar), crossed with k below / at / above KC, all checked against the
// naive triple loop. FMA + wider tiles change the flop order, so the oracle
// comparison is tolerance-based, scaled to k.
TEST_F(SimdKernelTest, PackedGemmRemainderTilesMatchNaive) {
  DispatchGuard guard;
  simd::SetDispatchForTesting(true);
  const int64_t mr = table_->gemm_mr;
  const int64_t nr = table_->gemm_nr;
  std::mt19937 rng(7);
  for (int64_t m_res = 0; m_res < mr; ++m_res) {
    for (int64_t n_res = 0; n_res < nr; ++n_res) {
      for (int64_t k : {1, 3, int(kGemmKc), int(kGemmKc) + 5}) {
        const int64_t m = mr + m_res;        // one full tile + residue
        const int64_t n = nr + n_res;
        const auto a = RandomVec(m * k, &rng);
        const auto b = RandomVec(k * n, &rng);
        std::vector<float> got(static_cast<size_t>(m * n), 0.0f);
        std::vector<float> want(static_cast<size_t>(m * n), 0.0f);
        PackedGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, got.data(), n, 1,
                   /*accumulate=*/false);
        NaiveGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, want.data(), n, 1,
                  /*accumulate=*/false);
        const float tol = 1e-5f * static_cast<float>(k);
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_NEAR(got[i], want[i], tol)
              << "m=" << m << " n=" << n << " k=" << k << " at " << i;
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, PackedGemmDegenerateShapes) {
  DispatchGuard guard;
  for (bool vec : {true, false}) {
    simd::SetDispatchForTesting(vec);
    // k == 0 must zero (overwrite) or preserve (accumulate) C.
    std::vector<float> c = {5.0f, 6.0f};
    float a_dummy = 0.0f, b_dummy = 0.0f;
    PackedGemm(1, 2, 0, &a_dummy, 1, 1, &b_dummy, 2, 1, c.data(), 2, 1,
               /*accumulate=*/false);
    EXPECT_EQ(c[0], 0.0f);
    EXPECT_EQ(c[1], 0.0f);
    c = {5.0f, 6.0f};
    PackedGemm(1, 2, 0, &a_dummy, 1, 1, &b_dummy, 2, 1, c.data(), 2, 1,
               /*accumulate=*/true);
    EXPECT_EQ(c[0], 5.0f);
    EXPECT_EQ(c[1], 6.0f);

    // m == 0 / n == 0: no output, must not touch memory (or crash).
    PackedGemm(0, 2, 3, &a_dummy, 1, 1, &b_dummy, 2, 1, c.data(), 2, 1, false);
    PackedGemm(1, 0, 3, &a_dummy, 1, 1, &b_dummy, 2, 1, c.data(), 2, 1, false);
    EXPECT_EQ(c[0], 5.0f);

    // 1x1x1: the smallest real product.
    float a1 = 3.0f, b1 = -2.0f, c1 = 0.0f;
    PackedGemm(1, 1, 1, &a1, 1, 1, &b1, 1, 1, &c1, 1, 1, false);
    EXPECT_EQ(c1, -6.0f);
  }
}

TEST_F(SimdKernelTest, PackedGemmZeroColumnSkipExactOnSparseOperand) {
  DispatchGuard guard;
  simd::SetDispatchForTesting(true);
  // Adjacency-like A: mostly zero columns. The skip must not change results
  // for finite B (0 * finite == 0 in every grouping).
  std::mt19937 rng(11);
  const int64_t m = 13, n = 21, k = 40;
  auto a = RandomVec(m * k, &rng);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      if (kk % 5 != 0) a[i * k + kk] = 0.0f;
    }
  }
  const auto b = RandomVec(k * n, &rng);
  std::vector<float> got(static_cast<size_t>(m * n));
  std::vector<float> want(static_cast<size_t>(m * n));
  PackedGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, got.data(), n, 1, false);
  NaiveGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, want.data(), n, 1, false);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "at " << i;
  }
}

// ---- Dispatch-path equivalence at the tensor level --------------------------

TEST_F(SimdKernelTest, TensorOpsBitwiseAcrossDispatch) {
  DispatchGuard guard;
  std::mt19937 rng(99);
  const Shape shape({3, 7, 5});  // 105 elements: vector body + tail
  const auto av = RandomVec(shape.numel(), &rng);
  const auto bv = RandomVec(shape.numel(), &rng, 0.5f, 2.0f);
  const Tensor a = Tensor::FromVector(shape, std::vector<float>(av));
  const Tensor b = Tensor::FromVector(shape, std::vector<float>(bv));

  auto run_all = [&](bool vec) {
    simd::SetDispatchForTesting(vec);
    std::vector<Tensor> outs;
    outs.push_back(Add(a, b));
    outs.push_back(Sub(a, b));
    outs.push_back(Mul(a, b));
    outs.push_back(Div(a, b));
    outs.push_back(Maximum(a, b));
    outs.push_back(Minimum(a, b));
    outs.push_back(Relu(a));
    outs.push_back(LeakyRelu(a, 0.1f));
    outs.push_back(Neg(a));
    outs.push_back(Square(a));
    outs.push_back(Abs(a));
    outs.push_back(Sqrt(Abs(a)));
    outs.push_back(Add(a, 0.25f));
    outs.push_back(Sub(a, 0.25f));
    outs.push_back(Mul(a, 1.75f));
    outs.push_back(Div(a, 1.75f));
    outs.push_back(Max(a, 1, false));
    outs.push_back(Min(a, 2, false));
    return outs;
  };
  const auto scalar_out = run_all(false);
  const auto vector_out = run_all(true);
  ASSERT_EQ(scalar_out.size(), vector_out.size());
  for (size_t t = 0; t < scalar_out.size(); ++t) {
    const int64_t n = scalar_out[t].numel();
    ASSERT_EQ(n, vector_out[t].numel()) << "op " << t;
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(Bits(scalar_out[t].data()[i]), Bits(vector_out[t].data()[i]))
          << "op " << t << " element " << i;
    }
  }
}

}  // namespace
}  // namespace stsm
