// Tests for the stride-aware tensor core: zero-copy Transpose / Slice /
// Narrow / Select views, gradient flow through strided leaves, bitwise
// equivalence of the contiguous fast paths and the generic strided paths,
// the packed GEMM microkernel, and the graph-free in-place ops.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/gemm.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

using OpFn = std::function<Tensor(const std::vector<Tensor>&)>;

Tensor RandomInput(const Shape& shape, uint64_t seed, float lo = -1.0f,
                   float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::Uniform(shape, lo, hi, &rng, /*requires_grad=*/true);
}

void ExpectGradOk(const OpFn& fn, std::vector<Tensor> inputs,
                  double tolerance = 2e-2) {
  const GradCheckResult result =
      CheckGradients(fn, std::move(inputs), 1e-2, tolerance);
  EXPECT_TRUE(result.ok) << "max_abs_error=" << result.max_abs_error
                         << " max_rel_error=" << result.max_rel_error
                         << " worst_input=" << result.worst_input
                         << " worst_element=" << result.worst_element;
}

// Bit pattern of a float, for exact-equality assertions that also treat
// identical NaNs as equal.
uint32_t Bits(float v) {
  uint32_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(a.impl()->data()[a.impl()->PhysicalIndex(i)]),
              Bits(b.impl()->data()[b.impl()->PhysicalIndex(i)]))
        << "element " << i;
  }
}

// ---- Zero-copy structure ----------------------------------------------------

TEST(StridedViewTest, TransposeIsZeroCopy) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const BufferPoolStats before = BufferPool::Instance().Stats();
  Tensor t = Transpose(x, 0, 1);
  const BufferPoolStats after = BufferPool::Instance().Stats();
  EXPECT_EQ(after.acquires, before.acquires);  // No buffer allocated.
  EXPECT_EQ(t.data(), x.data());
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FALSE(t.is_contiguous());
  EXPECT_EQ(t.at({2, 1}), 6.0f);
  EXPECT_EQ(t.at({1, 0}), 2.0f);
}

TEST(StridedViewTest, InnerSliceNarrowSelectAreZeroCopy) {
  Tensor x = Tensor::FromVector(Shape({2, 4}), {1, 2, 3, 4, 5, 6, 7, 8});
  const BufferPoolStats before = BufferPool::Instance().Stats();
  Tensor s = Slice(x, /*dim=*/1, 1, 3);
  Tensor n = Narrow(x, /*dim=*/1, 1, 2);
  Tensor c = Select(x, /*dim=*/1, 2);
  const BufferPoolStats after = BufferPool::Instance().Stats();
  EXPECT_EQ(after.acquires, before.acquires);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_EQ(s.at({1, 1}), 7.0f);
  // Narrow(x, d, s, l) == Slice(x, d, s, s + l), element for element.
  ExpectBitwiseEqual(s, n);
  EXPECT_EQ(c.shape(), Shape({2}));
  EXPECT_EQ(c.at({0}), 3.0f);
  EXPECT_EQ(c.at({1}), 7.0f);
}

TEST(StridedViewTest, ViewWritesAliasTheBase) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(x, 0, 1);
  t.set({2, 0}, 42.0f);  // t[2, 0] is x[0, 2].
  EXPECT_EQ(x.at({0, 2}), 42.0f);
  Tensor row = Select(x, 0, 1);
  row.set({1}, -7.0f);  // row[1] is x[1, 1].
  EXPECT_EQ(x.at({1, 1}), -7.0f);
}

TEST(StridedViewTest, ContiguousIsNoOpOnContiguousTensor) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor same = Contiguous(x);
  EXPECT_EQ(same.impl(), x.impl());  // Same handle, not just same storage.
}

TEST(StridedViewTest, ContiguousCompactsAView) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor t = Contiguous(Transpose(x, 0, 1));
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_NE(t.data(), x.data());
  const float expected[] = {1, 4, 2, 5, 3, 6};
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], expected[i]);
}

TEST(StridedViewTest, CloneOfViewCompacts) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(x, 0, 1).Clone();
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_NE(t.data(), x.data());
  const float expected[] = {1, 4, 2, 5, 3, 6};
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], expected[i]);
  // The clone is detached storage: writes do not leak back.
  t.set({0, 0}, 99.0f);
  EXPECT_EQ(x.at({0, 0}), 1.0f);
}

TEST(StridedViewTest, DetachOfViewPreservesLogicalContents) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6},
                                /*requires_grad=*/true);
  Tensor view = Slice(x, /*dim=*/1, 1, 3);  // [[2, 3], [5, 6]].
  Tensor detached = view.Detach();
  EXPECT_FALSE(detached.requires_grad());
  ASSERT_EQ(detached.shape(), Shape({2, 2}));
  EXPECT_EQ(detached.at({0, 0}), 2.0f);
  EXPECT_EQ(detached.at({0, 1}), 3.0f);
  EXPECT_EQ(detached.at({1, 0}), 5.0f);
  EXPECT_EQ(detached.at({1, 1}), 6.0f);
}

TEST(StridedViewTest, ReshapeOfNonContiguousCompactsFirst) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(Transpose(x, 0, 1), Shape({6}));
  EXPECT_TRUE(r.is_contiguous());
  const float expected[] = {1, 4, 2, 5, 3, 6};
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(r.data()[i], expected[i]);
}

// ---- Strided forward == contiguous forward (bitwise) ------------------------

// Applies `op` to a strided (transposed) operand and to its compacted copy
// and checks the results agree bit for bit: the generic strided path must
// reproduce the contiguous fast path exactly.
template <typename Op>
void ExpectStridedMatchesContiguous(const Op& op, const Shape& shape,
                                    uint64_t seed) {
  Rng rng(seed);
  Tensor base = Tensor::Uniform(shape, -2.0f, 2.0f, &rng);
  Tensor strided = Transpose(base, 0, base.shape().ndim() - 1);
  Tensor compact = strided.Clone();
  ASSERT_FALSE(strided.is_contiguous());
  ASSERT_TRUE(compact.is_contiguous());
  ExpectBitwiseEqual(op(strided), op(compact));
}

TEST(StridedForwardTest, UnaryOpsBitwiseMatch) {
  const Shape shape({3, 5});
  ExpectStridedMatchesContiguous([](const Tensor& t) { return Relu(t); },
                                 shape, 11);
  ExpectStridedMatchesContiguous([](const Tensor& t) { return Sigmoid(t); },
                                 shape, 12);
  ExpectStridedMatchesContiguous([](const Tensor& t) { return Exp(t); },
                                 shape, 13);
  ExpectStridedMatchesContiguous([](const Tensor& t) { return Sqrt(Abs(t)); },
                                 shape, 14);
}

TEST(StridedForwardTest, BinaryOpsBitwiseMatch) {
  Rng rng(21);
  Tensor other = Tensor::Uniform(Shape({5, 3}), 0.5f, 2.0f, &rng);
  ExpectStridedMatchesContiguous(
      [&](const Tensor& t) { return Add(t, other); }, Shape({3, 5}), 22);
  ExpectStridedMatchesContiguous(
      [&](const Tensor& t) { return Mul(t, other); }, Shape({3, 5}), 23);
  ExpectStridedMatchesContiguous(
      [&](const Tensor& t) { return Div(t, other); }, Shape({3, 5}), 24);
  // Broadcast against a row vector.
  Tensor row = Tensor::Uniform(Shape({3}), -1.0f, 1.0f, &rng);
  ExpectStridedMatchesContiguous(
      [&](const Tensor& t) { return Add(t, row); }, Shape({3, 5}), 25);
}

TEST(StridedForwardTest, ReductionsBitwiseMatch) {
  const Shape shape({4, 3, 2});
  ExpectStridedMatchesContiguous([](const Tensor& t) { return Sum(t); },
                                 shape, 31);
  ExpectStridedMatchesContiguous(
      [](const Tensor& t) { return Sum(t, /*dim=*/1); }, shape, 32);
  ExpectStridedMatchesContiguous(
      [](const Tensor& t) { return Max(t, /*dim=*/0); }, shape, 33);
  ExpectStridedMatchesContiguous(
      [](const Tensor& t) { return Min(t, /*dim=*/2); }, shape, 34);
  ExpectStridedMatchesContiguous(
      [](const Tensor& t) { return Softmax(t, /*dim=*/1); }, shape, 35);
}

TEST(StridedForwardTest, MatMulOfTransposedViewMatchesCompacted) {
  Rng rng(41);
  Tensor a = Tensor::Uniform(Shape({7, 5}), -1.0f, 1.0f, &rng);
  Tensor b = Tensor::Uniform(Shape({7, 6}), -1.0f, 1.0f, &rng);
  // (A^T @ B): the packed GEMM absorbs A's swapped strides while packing.
  Tensor via_view = MatMul(Transpose(a, 0, 1), b);
  Tensor via_copy = MatMul(Transpose(a, 0, 1).Clone(), b);
  ExpectBitwiseEqual(via_view, via_copy);
  // Transposed right-hand side too.
  Tensor c = Tensor::Uniform(Shape({6, 5}), -1.0f, 1.0f, &rng);
  ExpectBitwiseEqual(MatMul(a, Transpose(c, 0, 1)),
                     MatMul(a, Transpose(c, 0, 1).Clone()));
}

// ---- Gradients through strided views ----------------------------------------

TEST(StridedGradTest, ThroughTranspose) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(MatMul(Transpose(in[0], 0, 1), in[1])));
      },
      {RandomInput({4, 3}, 51), RandomInput({4, 2}, 52)});
}

TEST(StridedGradTest, ThroughInnerSlice) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Slice(in[0], /*dim=*/1, 1, 3)));
      },
      {RandomInput({3, 4}, 53)});
}

TEST(StridedGradTest, ThroughNarrowAndSelect) {
  ExpectGradOk(
      [](const auto& in) {
        Tensor mid = Narrow(in[0], /*dim=*/1, 1, 2);  // [2, 2, 3].
        Tensor sel = Select(in[0], /*dim=*/2, 0);     // [2, 4].
        return Add(Sum(Square(mid)), Sum(Mul(sel, sel)));
      },
      {RandomInput({2, 4, 3}, 54)});
}

TEST(StridedGradTest, ElementwiseOnTransposedView) {
  ExpectGradOk(
      [](const auto& in) {
        Tensor t = Transpose(in[0], 0, 1);
        return Sum(Mul(Sigmoid(t), in[1]));
      },
      {RandomInput({3, 5}, 55), RandomInput({5, 3}, 56)});
}

TEST(StridedGradTest, SoftmaxOnTransposedView) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Softmax(Transpose(in[0], 0, 1), /*dim=*/1)));
      },
      {RandomInput({3, 4}, 57)});
}

TEST(StridedGradTest, ReductionOnSlicedView) {
  ExpectGradOk(
      [](const auto& in) {
        Tensor window = Slice(in[0], /*dim=*/2, 1, 3);
        return Sum(Square(Sum(window, /*dim=*/1)));
      },
      {RandomInput({2, 3, 4}, 58)});
}

TEST(StridedGradTest, StridedLeafInput) {
  // The leaf itself is a non-contiguous view: grad-check perturbs physical
  // locations, and the analytic gradient must land at the same offsets.
  Tensor base = RandomInput({4, 3}, 59);
  Tensor leaf = Transpose(base, 0, 1);  // [3, 4] view, non-contiguous.
  ExpectGradOk([](const auto& in) { return Sum(Square(in[0])); }, {leaf});
}

TEST(StridedGradTest, DisjointSlicesAccumulateIntoSharedBase) {
  Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4},
                                /*requires_grad=*/true);
  // Two overlapping windows: d/dx sum(a) + 2*sum(b) with a = x[0:3],
  // b = x[1:4] gives grads {1, 3, 3, 2}.
  Tensor a = Slice(x, 0, 0, 3);
  Tensor b = Slice(x, 0, 1, 4);
  Tensor loss = Add(Sum(a), Mul(Sum(b), Tensor::Scalar(2.0f)));
  loss.Backward();
  const float* g = x.grad_data();
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[1], 3.0f);
  EXPECT_FLOAT_EQ(g[2], 3.0f);
  EXPECT_FLOAT_EQ(g[3], 2.0f);
}

// ---- Packed GEMM microkernel ------------------------------------------------

void ExpectGemmMatchesNaive(int64_t m, int64_t n, int64_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  std::vector<float> c_packed(static_cast<size_t>(m * n), 0.5f);
  std::vector<float> c_naive(static_cast<size_t>(m * n), 0.5f);
  for (const bool accumulate : {false, true}) {
    PackedGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, c_packed.data(), n, 1,
               accumulate);
    NaiveGemm(m, n, k, a.data(), k, 1, b.data(), n, 1, c_naive.data(), n, 1,
              accumulate);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(c_packed[i], c_naive[i], 1e-4f)
          << "m=" << m << " n=" << n << " k=" << k
          << " accumulate=" << accumulate << " element=" << i;
    }
  }
}

TEST(PackedGemmTest, MatchesNaiveAcrossEdgeShapes) {
  // Exercise m % MR, n % NR, tiny sizes, and k spanning multiple KC blocks.
  ExpectGemmMatchesNaive(1, 1, 1, 61);
  ExpectGemmMatchesNaive(kGemmMr, kGemmNr, 3, 62);
  ExpectGemmMatchesNaive(kGemmMr + 1, kGemmNr + 3, 17, 63);
  ExpectGemmMatchesNaive(13, 7, kGemmKc + 5, 64);
  ExpectGemmMatchesNaive(3, 2, 1, 65);
}

TEST(PackedGemmTest, TransposedOperandsViaStrides) {
  const int64_t m = 6, n = 5, k = 7;
  Rng rng(66);
  // A stored k-major (i.e. A^T row-major), B stored n-major transposed.
  std::vector<float> a_t(static_cast<size_t>(k * m));
  std::vector<float> b_t(static_cast<size_t>(n * k));
  for (auto& v : a_t) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : b_t) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  std::vector<float> c_packed(static_cast<size_t>(m * n), 0.0f);
  std::vector<float> c_naive(static_cast<size_t>(m * n), 0.0f);
  // A[i, k] = a_t[k * m + i] -> rs_a = 1, cs_a = m; likewise for B.
  PackedGemm(m, n, k, a_t.data(), 1, m, b_t.data(), 1, k, c_packed.data(), n,
             1, false);
  NaiveGemm(m, n, k, a_t.data(), 1, m, b_t.data(), 1, k, c_naive.data(), n, 1,
            false);
  for (int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_packed[i], c_naive[i], 1e-4f) << "element " << i;
  }
}

TEST(PackedGemmTest, ZeroKZeroesOrKeepsC) {
  std::vector<float> c = {1, 2, 3, 4};
  PackedGemm(2, 2, 0, nullptr, 0, 0, nullptr, 0, 0, c.data(), 2, 1,
             /*accumulate=*/true);
  EXPECT_EQ(c[0], 1.0f);  // Accumulating nothing leaves C alone.
  PackedGemm(2, 2, 0, nullptr, 0, 0, nullptr, 0, 0, c.data(), 2, 1,
             /*accumulate=*/false);
  for (float v : c) EXPECT_EQ(v, 0.0f);  // Overwriting with nothing zeroes.
}

// ---- In-place ops -----------------------------------------------------------

TEST(InPlaceOpsTest, AddAndScaleContiguous) {
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor y = Tensor::FromVector(Shape({3}), {10, 20, 30});
  AddInPlace(x, y);
  EXPECT_FLOAT_EQ(x.at({0}), 11.0f);
  AddScaledInPlace(x, y, -1.0f);
  EXPECT_FLOAT_EQ(x.at({1}), 2.0f);
  MulScalarInPlace(x, 2.0f);
  EXPECT_FLOAT_EQ(x.at({2}), 6.0f);
}

TEST(InPlaceOpsTest, ReluInPlaceClampsNegatives) {
  Tensor x = Tensor::FromVector(Shape({4}), {-1, 2, -3, 4});
  ReluInPlace(x);
  EXPECT_FLOAT_EQ(x.at({0}), 0.0f);
  EXPECT_FLOAT_EQ(x.at({1}), 2.0f);
  EXPECT_FLOAT_EQ(x.at({2}), 0.0f);
  EXPECT_FLOAT_EQ(x.at({3}), 4.0f);
}

TEST(InPlaceOpsTest, StridedTargetsWriteThroughToBase) {
  Tensor x = Tensor::FromVector(Shape({2, 2}), {1, -2, 3, -4});
  Tensor col = Slice(x, /*dim=*/1, 1, 2);  // Column {-2, -4}, strided.
  ReluInPlace(col);
  EXPECT_FLOAT_EQ(x.at({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(x.at({1, 1}), 0.0f);
  EXPECT_FLOAT_EQ(x.at({0, 0}), 1.0f);  // Untouched outside the view.
  Tensor row = Select(x, /*dim=*/0, 0);
  AddScaledInPlace(row, Tensor::FromVector(Shape({2}), {1, 1}), 5.0f);
  EXPECT_FLOAT_EQ(x.at({0, 0}), 6.0f);
  EXPECT_FLOAT_EQ(x.at({0, 1}), 5.0f);
}

TEST(InPlaceOpsTest, GradViewTargetsMutateTheGradBuffer) {
  Tensor x = Tensor::FromVector(Shape({2}), {3, 4}, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(x, x));
  loss.Backward();  // grad = {6, 8}.
  MulScalarInPlace(x.GradView(), 0.5f);
  EXPECT_FLOAT_EQ(x.grad_data()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad_data()[1], 4.0f);
}

}  // namespace
}  // namespace stsm
