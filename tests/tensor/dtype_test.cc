// Tests for the bf16 dtype axis (tensor/dtype.h, To()/WidenToF32, the
// autograd fp32-only boundary, and the widen-in-the-pack mixed GEMM).
//
// The conversion contract: fp32 -> bf16 is round-to-nearest-even on the
// upper 16 bits with NaN quieting; bf16 -> fp32 is exact. Mixed-dtype
// GEMM must be bitwise identical to pre-widening the narrow operand and
// running the fp32 GEMM — widening happens in the pack, never in the
// accumulator.

#include "tensor/dtype.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

uint32_t BitsOf(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float FromBits(uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// ---- scalar conversion properties ----

TEST(Bf16Test, ExactValuesPassThrough) {
  // Values whose mantissa fits in 7 bits convert without rounding.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 256.0f, 0.15625f}) {
    EXPECT_EQ(F32FromBf16(Bf16FromF32(v)), v) << v;
  }
}

TEST(Bf16Test, RoundToNearestEvenOnTies) {
  // 0x3f808000 sits exactly between 0x3f80 and 0x3f81: ties to even 0x3f80.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f808000u)), 0x3f80u);
  // 0x3f818000 sits exactly between 0x3f81 and 0x3f82: ties to even 0x3f82.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f818000u)), 0x3f82u);
  // Just above the tie rounds up regardless of parity.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f808001u)), 0x3f81u);
  // Just below the tie rounds down.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f807fffu)), 0x3f80u);
}

TEST(Bf16Test, SpecialValues) {
  EXPECT_EQ(Bf16FromF32(INFINITY), 0x7f80u);
  EXPECT_EQ(Bf16FromF32(-INFINITY), 0xff80u);
  EXPECT_EQ(F32FromBf16(0x7f80u), INFINITY);
  EXPECT_EQ(F32FromBf16(0xff80u), -INFINITY);
  // Signed zero survives (the sign bit is in the kept half).
  EXPECT_EQ(Bf16FromF32(-0.0f), 0x8000u);
  EXPECT_EQ(BitsOf(F32FromBf16(0x8000u)), 0x80000000u);
  // NaN stays NaN — including signalling NaNs whose payload lives entirely
  // in the discarded low bits; without quieting they would collapse to Inf.
  const uint16_t quiet = Bf16FromF32(FromBits(0x7f800001u));
  EXPECT_GT(quiet & 0x7fffu, 0x7f80u) << "sNaN narrowed to a non-NaN";
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(NAN))));
  // Rounding must not overflow the largest finite bf16 into Inf ... unless
  // the value genuinely rounds past the bf16 range, which 0x7f7fffff does.
  EXPECT_EQ(Bf16FromF32(FromBits(0x7f7f0000u)), 0x7f7fu);
  EXPECT_EQ(Bf16FromF32(FromBits(0x7f7fffffu)), 0x7f80u);
  // Denormal fp32 inputs round to (signed) zero at bf16 granularity.
  EXPECT_EQ(Bf16FromF32(FromBits(0x00000001u)), 0x0000u);
  EXPECT_EQ(Bf16FromF32(FromBits(0x80000001u)), 0x8000u);
}

TEST(Bf16Test, WidenThenNarrowIsIdentityForAllPatterns) {
  // Every one of the 65536 bf16 bit patterns must survive widen -> narrow
  // unchanged (NaNs keep being NaN; the quiet bit is already set after one
  // round trip for patterns that carry it).
  for (uint32_t b = 0; b <= 0xffffu; ++b) {
    const uint16_t pattern = static_cast<uint16_t>(b);
    const float widened = F32FromBf16(pattern);
    if (std::isnan(widened)) {
      EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(widened)))) << b;
      continue;
    }
    EXPECT_EQ(Bf16FromF32(widened), pattern) << "pattern " << b;
  }
}

TEST(Bf16Test, NarrowingIsIdempotent) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = (rng.Uniform() - 0.5f) *
                    std::pow(10.0f, static_cast<float>(i % 60) - 30.0f);
    const uint16_t once = Bf16FromF32(v);
    EXPECT_EQ(Bf16FromF32(F32FromBf16(once)), once) << v;
  }
}

// ---- To() tensor kernels ----

TEST(DtypeToTest, RoundTripMatchesScalarConversion) {
  Rng rng(13);
  const Tensor x = Tensor::Uniform(Shape({5, 7}), -100.0f, 100.0f, &rng);
  const Tensor narrow = To(x, DType::kBf16);
  ASSERT_EQ(narrow.dtype(), DType::kBf16);
  const Tensor widened = To(narrow, DType::kF32);
  ASSERT_EQ(widened.dtype(), DType::kF32);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(widened.data()[i], F32FromBf16(Bf16FromF32(x.data()[i]))) << i;
  }
}

TEST(DtypeToTest, SameDtypeReturnsSameHandle) {
  Rng rng(17);
  const Tensor x = Tensor::Uniform(Shape({3, 3}), -1.0f, 1.0f, &rng);
  EXPECT_EQ(To(x, DType::kF32).impl(), x.impl());
  EXPECT_EQ(WidenToF32(x).impl(), x.impl());
}

TEST(DtypeToTest, StridedViewConvertsThroughItsStrides) {
  Rng rng(19);
  const Tensor x = Tensor::Uniform(Shape({4, 6}), -10.0f, 10.0f, &rng);
  const Tensor xt = Transpose(x, 0, 1);  // Zero-copy strided view.
  ASSERT_FALSE(xt.is_contiguous());
  const Tensor narrow = To(xt.Detach(), DType::kBf16);
  // The conversion output is compact in the view's logical order.
  for (int64_t j = 0; j < 6; ++j) {
    for (int64_t i = 0; i < 4; ++i) {
      const float expected =
          F32FromBf16(Bf16FromF32(x.data()[i * 6 + j]));
      EXPECT_EQ(F32FromBf16(narrow.impl()->bf16_data()[j * 4 + i]), expected);
    }
  }
}

TEST(DtypeToTest, CloneAndToStringHandleBf16) {
  Rng rng(23);
  const Tensor x = Tensor::Uniform(Shape({2, 3}), -4.0f, 4.0f, &rng);
  const Tensor narrow = To(x, DType::kBf16);
  const Tensor cloned = narrow.Clone();
  ASSERT_EQ(cloned.dtype(), DType::kBf16);
  EXPECT_EQ(std::memcmp(cloned.impl()->bf16_data(),
                        narrow.impl()->bf16_data(),
                        sizeof(uint16_t) * narrow.numel()),
            0);
  EXPECT_NE(narrow.ToString().find("bf16"), std::string::npos);
}

// ---- the fp32-only autograd boundary ----

using Bf16DeathTest = ::testing::Test;

TEST(Bf16DeathTest, RequiresGradOnBf16Aborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(29);
  Tensor narrow = To(Tensor::Uniform(Shape({2, 2}), -1, 1, &rng),
                     DType::kBf16);
  EXPECT_DEATH(narrow.set_requires_grad(true), "fp32-only");
}

TEST(Bf16DeathTest, RecordedOpOnBf16OperandAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(31);
  const Tensor narrow = To(Tensor::Uniform(Shape({2, 2}), -1, 1, &rng),
                           DType::kBf16);
  Tensor grad_leaf = Tensor::Uniform(Shape({2, 2}), -1, 1, &rng);
  grad_leaf.set_requires_grad(true);
  EXPECT_DEATH(MatMul(grad_leaf, narrow), "autograd node creation");
}

TEST(Bf16DeathTest, ToRefusesRecordedTensors) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(37);
  Tensor x = Tensor::Uniform(Shape({2, 2}), -1, 1, &rng);
  x.set_requires_grad(true);
  EXPECT_DEATH(To(x, DType::kBf16), "not differentiable");
}

TEST(Bf16DeathTest, F32AccessorOnBf16StorageAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(41);
  const Tensor narrow = To(Tensor::Uniform(Shape({2, 2}), -1, 1, &rng),
                           DType::kBf16);
  EXPECT_DEATH(narrow.data(), "bf16");
}

// ---- mixed-dtype GEMM ----

// Bitwise differential: MatMul with a bf16 operand must equal MatMul with
// that operand pre-widened to fp32. Any drift means the microkernel
// accumulated in reduced precision.
void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), sizeof(float) * a.numel()), 0);
}

TEST(MixedGemmTest, Bf16OperandsMatchPreWidenedBitwise) {
  NoGradGuard no_grad;
  Rng rng(43);
  // Odd sizes exercise the microkernel's edge tiles.
  const Tensor a = Tensor::Uniform(Shape({13, 37}), -2.0f, 2.0f, &rng);
  const Tensor b = Tensor::Uniform(Shape({37, 19}), -2.0f, 2.0f, &rng);
  const Tensor a16 = To(a, DType::kBf16);
  const Tensor b16 = To(b, DType::kBf16);
  const Tensor aw = To(a16, DType::kF32);
  const Tensor bw = To(b16, DType::kF32);

  ExpectBitwiseEqual(MatMul(a16, b), MatMul(aw, b));
  ExpectBitwiseEqual(MatMul(a, b16), MatMul(a, bw));
  ExpectBitwiseEqual(MatMul(a16, b16), MatMul(aw, bw));
}

TEST(MixedGemmTest, BatchedBf16MatMul) {
  NoGradGuard no_grad;
  Rng rng(47);
  const Tensor a = Tensor::Uniform(Shape({3, 8, 12}), -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::Uniform(Shape({3, 12, 10}), -1.0f, 1.0f, &rng);
  const Tensor b16 = To(b, DType::kBf16);
  ExpectBitwiseEqual(MatMul(a, b16), MatMul(a, To(b16, DType::kF32)));
}

// ---- sparse bf16 values ----

TEST(SparseBf16Test, SpmmOverBf16ValuesMatchesWidenedDense) {
  NoGradGuard no_grad;
  Rng rng(53);
  // A small thresholded matrix with an empty row and column.
  std::vector<float> dense_values(6 * 6, 0.0f);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if ((i + j) % 3 == 0 && i != 2 && j != 4) {
        dense_values[i * 6 + j] = rng.Uniform() + 0.1f;
      }
    }
  }
  const Tensor dense = Tensor::FromVector(Shape({6, 6}), dense_values);
  const SparseCsr sparse = SparseCsr::FromDense(dense);
  const SparseCsr narrow = sparse.CastValues(DType::kBf16);
  ASSERT_EQ(narrow.values_dtype(), DType::kBf16);
  EXPECT_EQ(narrow.nnz(), sparse.nnz());

  const Tensor x = Tensor::Uniform(Shape({6, 4}), -1.0f, 1.0f, &rng);
  const Tensor got = Spmm(narrow, x);
  // Reference: widen the stored values back and run the fp32 kernel.
  const SparseCsr widened = narrow.CastValues(DType::kF32);
  ExpectBitwiseEqual(got, Spmm(widened, x));
}

}  // namespace
}  // namespace stsm
