// Tests for the tensor-core storage layer: zero-copy views over shared
// Storage, gradient routing through views, the BufferPool recycler, and the
// eager-release semantics of Backward().

#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

BufferPool& Pool() { return BufferPool::Instance(); }

// ---- BufferPool -------------------------------------------------------------

TEST(BufferPoolTest, AcquireReleaseRoundTrip) {
  BufferPoolStats before = Pool().Stats();
  {
    std::vector<float> buf = Pool().Acquire(100, /*zero=*/true);
    ASSERT_EQ(buf.size(), 100u);
    for (float v : buf) EXPECT_EQ(v, 0.0f);
    BufferPoolStats mid = Pool().Stats();
    EXPECT_EQ(mid.acquires, before.acquires + 1);
    EXPECT_EQ(mid.live_buffers, before.live_buffers + 1);
    Pool().Release(std::move(buf));
  }
  BufferPoolStats after = Pool().Stats();
  EXPECT_EQ(after.releases, before.releases + 1);
  EXPECT_EQ(after.live_buffers, before.live_buffers);
}

TEST(BufferPoolTest, ZeroSizedAcquireSkipsPool) {
  BufferPoolStats before = Pool().Stats();
  std::vector<float> buf = Pool().Acquire(0, /*zero=*/true);
  EXPECT_TRUE(buf.empty());
  BufferPoolStats after = Pool().Stats();
  EXPECT_EQ(after.acquires, before.acquires);
  EXPECT_EQ(after.live_buffers, before.live_buffers);
}

TEST(BufferPoolTest, RecycledBufferIsAHit) {
  if (!Pool().recycling_enabled()) {
    GTEST_SKIP() << "recycling disabled (sanitizer build or STSM_POOL=0)";
  }
  Pool().Clear();  // Start from empty free lists.
  BufferPoolStats before = Pool().Stats();

  std::vector<float> buf = Pool().Acquire(100, /*zero=*/false);
  Pool().Release(std::move(buf));
  // 90 rounds up to the same power-of-two class as 100 (both need 2^7), so
  // the freed buffer must be reused — and handed back zeroed on request.
  std::vector<float> again = Pool().Acquire(90, /*zero=*/true);
  ASSERT_EQ(again.size(), 90u);
  for (float v : again) EXPECT_EQ(v, 0.0f);

  BufferPoolStats after = Pool().Stats();
  EXPECT_EQ(after.acquires, before.acquires + 2);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_GT(after.bytes_reused, before.bytes_reused);
  Pool().Release(std::move(again));
}

TEST(BufferPoolTest, SmallerClassDoesNotServeLargerRequest) {
  if (!Pool().recycling_enabled()) {
    GTEST_SKIP() << "recycling disabled (sanitizer build or STSM_POOL=0)";
  }
  Pool().Clear();
  BufferPoolStats before = Pool().Stats();

  std::vector<float> small = Pool().Acquire(8, /*zero=*/false);
  Pool().Release(std::move(small));
  // A capacity-8 buffer can never serve a 1000-element request.
  std::vector<float> large = Pool().Acquire(1000, /*zero=*/false);
  ASSERT_EQ(large.size(), 1000u);

  BufferPoolStats after = Pool().Stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses + 2);
  Pool().Release(std::move(large));
}

TEST(BufferPoolTest, TensorLifecycleBalancesLiveGauge) {
  const uint64_t live_before = Pool().Stats().live_buffers;
  {
    // Exercises both entry paths: pool-backed (Zeros) and adopted
    // (FromVector), plus a grad buffer.
    Tensor a = Tensor::Zeros(Shape({16, 16}), /*requires_grad=*/true);
    Tensor b = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
    Tensor loss = Sum(Mul(a, a));
    loss.Backward();
    EXPECT_GT(Pool().Stats().live_buffers, live_before);
  }
  EXPECT_EQ(Pool().Stats().live_buffers, live_before);
}

// ---- Zero-copy views --------------------------------------------------------

TEST(ViewTest, ShapeOpsAliasTheSameStorage) {
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Reshape(x, Shape({6})).data(), x.data());
  EXPECT_EQ(Reshape(x, Shape({3, 2})).data(), x.data());
  EXPECT_EQ(Unsqueeze(x, 0).data(), x.data());
  EXPECT_EQ(Squeeze(Unsqueeze(x, 0), 0).data(), x.data());
  EXPECT_EQ(x.Detach().data(), x.data());
  // Slicing the leading dimension aliases at an element offset.
  Tensor row1 = Slice(x, /*dim=*/0, 1, 2);
  EXPECT_EQ(row1.data(), x.data() + 3);
  EXPECT_EQ(row1.at({0, 0}), 4.0f);
  EXPECT_TRUE(row1.is_view());
  EXPECT_FALSE(x.is_view());
}

TEST(ViewTest, ShapeOpsDoNotTouchThePool) {
  Tensor x = Tensor::Zeros(Shape({4, 3}), /*requires_grad=*/true);
  const uint64_t acquires_before = Pool().Stats().acquires;
  Tensor a = Reshape(x, Shape({12}));
  Tensor b = Unsqueeze(x, 1);
  Tensor c = Squeeze(b, 1);
  Tensor d = x.Detach();
  Tensor e = Slice(x, /*dim=*/0, 1, 3);
  EXPECT_EQ(Pool().Stats().acquires, acquires_before);
}

TEST(ViewTest, WritesThroughViewVisibleInBase) {
  Tensor x = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  Tensor flat = Reshape(x, Shape({4}));
  flat.data()[3] = 9.0f;
  EXPECT_EQ(x.at({1, 1}), 9.0f);
}

TEST(ViewTest, SliceInnerDimIsZeroCopyView) {
  // Slicing a non-leading dimension yields a strided view: no copy, data
  // pointer aliases the base, logical contents read through the strides.
  Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor col = Slice(x, /*dim=*/1, 0, 2);
  EXPECT_EQ(col.data(), x.data());
  EXPECT_TRUE(col.is_view());
  EXPECT_FALSE(col.is_contiguous());
  EXPECT_EQ(col.at({1, 1}), 5.0f);
}

TEST(ViewTest, ViewGradientsAccumulateIntoBase) {
  Tensor x = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4},
                                /*requires_grad=*/true);
  // Diamond: both the base and a view of it feed the loss. d/dx of
  // (sum(x*x) + sum(reshape(x)*3)) = 2x + 3.
  Tensor flat = Reshape(x, Shape({4}));
  Tensor loss = Add(Sum(Mul(x, x)), Sum(Mul(flat, Tensor::Scalar(3.0f))));
  loss.Backward();
  const float* g = x.grad_data();
  const float expected[] = {2 * 1 + 3, 2 * 2 + 3, 2 * 3 + 3, 2 * 4 + 3};
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], expected[i]);
}

TEST(ViewTest, SliceViewGradientLandsAtOffset) {
  Tensor x = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6},
                                /*requires_grad=*/true);
  // Loss only sees rows 1..2; row 0 must get zero gradient.
  Tensor window = Slice(x, /*dim=*/0, 1, 3);
  Sum(Mul(window, window)).Backward();
  const float* g = x.grad_data();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);
  for (int i = 2; i < 6; ++i) EXPECT_FLOAT_EQ(g[i], 2.0f * (i + 1));
}

TEST(ViewTest, ZeroGradOnViewKeepsSiblingGradients) {
  // Regression: zeroing one view's gradient window must not clobber the
  // gradients other views have accumulated in the same shared buffer.
  Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4},
                                /*requires_grad=*/true);
  Sum(Mul(x, x)).Backward();  // grad = {2, 4, 6, 8}
  Tensor head = Slice(x, /*dim=*/0, 0, 2);
  head.ZeroGrad();
  const float* g = x.grad_data();
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 6.0f);
  EXPECT_FLOAT_EQ(g[3], 8.0f);
}

// ---- Detach / Clone semantics ----------------------------------------------

TEST(DetachCloneTest, DetachAliasesCloneCopies) {
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3}, /*requires_grad=*/true);
  Tensor detached = x.Detach();
  Tensor cloned = x.Clone();
  EXPECT_FALSE(detached.requires_grad());
  EXPECT_FALSE(cloned.requires_grad());

  x.data()[0] = 42.0f;
  EXPECT_EQ(detached.data()[0], 42.0f);  // Alias sees the write...
  EXPECT_EQ(cloned.data()[0], 1.0f);     // ...the deep copy does not.

  cloned.data()[1] = -5.0f;
  EXPECT_EQ(x.data()[1], 2.0f);
}

TEST(DetachCloneTest, DetachCutsTheGraph) {
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2}, /*requires_grad=*/true);
  Tensor y = Mul(x, x);
  Tensor cut = y.Detach();
  // The detached branch contributes no gradient to x.
  Sum(Mul(cut, Tensor::Scalar(10.0f))).Backward();
  EXPECT_FALSE(x.has_grad());
}

// ---- Const-correctness of gradient access ----------------------------------

TEST(GradAccessTest, ConstGradDataDoesNotAllocate) {
  const Tensor x = Tensor::Zeros(Shape({3}), /*requires_grad=*/true);
  EXPECT_FALSE(x.has_grad());
  EXPECT_EQ(x.grad_data(), nullptr);  // Const read: no allocation.
  EXPECT_FALSE(x.has_grad());
  // GradTensor on a gradient-less tensor yields zeros, still no allocation.
  Tensor g = x.GradTensor();
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(g.data()[i], 0.0f);
  EXPECT_FALSE(x.has_grad());
}

TEST(GradAccessTest, MutableGradDataAllocates) {
  Tensor x = Tensor::Zeros(Shape({3}), /*requires_grad=*/true);
  float* g = x.grad_data();
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(x.has_grad());
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(g[i], 0.0f);
}

// ---- Eager release / graph lifetime -----------------------------------------

TEST(GraphReleaseTest, SecondIterationHitsThePool) {
  if (!Pool().recycling_enabled()) {
    GTEST_SKIP() << "recycling disabled (sanitizer build or STSM_POOL=0)";
  }
  Pool().Clear();  // Deterministic free lists regardless of prior tests.
  Tensor w = Tensor::FromVector(Shape({8, 8}),
                                std::vector<float>(64, 0.1f),
                                /*requires_grad=*/true);
  Tensor x = Tensor::Ones(Shape({4, 8}));

  auto step = [&] {
    Tensor h = Tanh(MatMul(x, w));
    Tensor loss = Mean(Square(h));
    loss.Backward();
    w.ZeroGrad();
  };

  step();  // Populates the pool when the graph is released.
  const BufferPoolStats before = Pool().Stats();
  step();
  const BufferPoolStats after = Pool().Stats();
  EXPECT_GT(after.acquires, before.acquires);
  // Every intermediate of the second step reuses a buffer freed by the
  // first: same sizes, released by the eager backward walk.
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(GraphReleaseTest, BackwardReleasesIntermediateBuffers) {
  const uint64_t live_before = Pool().Stats().live_buffers;
  Tensor w = Tensor::Zeros(Shape({8, 8}), /*requires_grad=*/true);
  {
    Tensor x = Tensor::Ones(Shape({4, 8}));
    Tensor loss = Mean(Square(Tanh(MatMul(x, w))));
    loss.Backward();
    // Intermediates were dropped by the walk; only x, loss, w (+ grads,
    // which live inside their storages) remain.
  }
  // w and its grad buffer are the only survivors.
  EXPECT_EQ(Pool().Stats().live_buffers, live_before + 2);
}

using GraphReleaseDeathTest = ::testing::Test;

TEST(GraphReleaseDeathTest, SecondBackwardThroughSameGraphDies) {
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2}, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(x, x));
  loss.Backward();
  EXPECT_DEATH(loss.Backward(), "already");
}

TEST(GraphReleaseDeathTest, BackwardThroughConsumedSubgraphDies) {
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2}, /*requires_grad=*/true);
  Tensor y = Mul(x, x);      // Shared subgraph.
  Tensor loss1 = Sum(y);
  Tensor loss2 = Sum(Mul(y, Tensor::Scalar(2.0f)));
  loss1.Backward();          // Releases y's node.
  EXPECT_DEATH(loss2.Backward(), "already");
}

TEST(GraphReleaseTest, SeparateGraphsFromSameLeafBothBackward) {
  // Two graphs that share only the leaf are independent: gradients
  // accumulate across both Backward() calls.
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2}, /*requires_grad=*/true);
  Sum(Mul(x, x)).Backward();
  Sum(Mul(x, x)).Backward();
  const float* g = x.grad_data();
  EXPECT_FLOAT_EQ(g[0], 4.0f);
  EXPECT_FLOAT_EQ(g[1], 8.0f);
}

}  // namespace
}  // namespace stsm
