#include "tensor/shape.h"

#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(ShapeTest, BasicProperties) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
}

TEST(ShapeTest, NegativeIndexing) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s[-1], 4);
  EXPECT_EQ(s[-2], 3);
  EXPECT_EQ(s[-3], 2);
}

TEST(ShapeTest, ScalarShape) {
  const Shape s({});
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, ZeroDimension) {
  const Shape s({3, 0, 2});
  EXPECT_EQ(s.numel(), 0);
}

TEST(ShapeTest, RowMajorStrides) {
  const Shape s({2, 3, 4});
  const auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ(Shape({}).ToString(), "[]");
}

TEST(ShapeTest, BroadcastSameShape) {
  EXPECT_EQ(Shape::Broadcast(Shape({2, 3}), Shape({2, 3})), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastScalar) {
  EXPECT_EQ(Shape::Broadcast(Shape({2, 3}), Shape({})), Shape({2, 3}));
  EXPECT_EQ(Shape::Broadcast(Shape({}), Shape({2, 3})), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastTrailingOnes) {
  EXPECT_EQ(Shape::Broadcast(Shape({4, 1, 3}), Shape({1, 5, 3})),
            Shape({4, 5, 3}));
  EXPECT_EQ(Shape::Broadcast(Shape({3}), Shape({2, 3})), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastsToPredicate) {
  EXPECT_TRUE(Shape::BroadcastsTo(Shape({1, 3}), Shape({2, 3})));
  EXPECT_TRUE(Shape::BroadcastsTo(Shape({3}), Shape({2, 3})));
  EXPECT_TRUE(Shape::BroadcastsTo(Shape({}), Shape({2, 3})));
  EXPECT_FALSE(Shape::BroadcastsTo(Shape({2, 3}), Shape({3})));
  EXPECT_FALSE(Shape::BroadcastsTo(Shape({4, 3}), Shape({2, 3})));
}

}  // namespace
}  // namespace stsm
