// Forward-value tests for tensor operations. Gradient correctness is covered
// separately in grad_test.cc via finite differences.

#include "tensor/ops.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace stsm {
namespace {

Tensor T2x3() {
  return Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
}

TEST(OpsTest, AddSameShape) {
  const Tensor c = Add(T2x3(), T2x3());
  EXPECT_FLOAT_EQ(c.at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(c.at({1, 2}), 12.0f);
}

TEST(OpsTest, AddBroadcastRow) {
  const Tensor row = Tensor::FromVector(Shape({3}), {10, 20, 30});
  const Tensor c = Add(T2x3(), row);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_FLOAT_EQ(c.at({1, 2}), 36.0f);
}

TEST(OpsTest, AddBroadcastColumn) {
  const Tensor col = Tensor::FromVector(Shape({2, 1}), {100, 200});
  const Tensor c = Add(T2x3(), col);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 102.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 205.0f);
}

TEST(OpsTest, ScalarArithmetic) {
  const Tensor x = T2x3();
  EXPECT_FLOAT_EQ(Add(x, 1.0f).at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(Sub(x, 1.0f).at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(Sub(10.0f, x).at({0, 0}), 9.0f);
  EXPECT_FLOAT_EQ(Mul(x, 2.0f).at({1, 2}), 12.0f);
  EXPECT_FLOAT_EQ(Div(x, 2.0f).at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(Div(6.0f, x).at({1, 2}), 1.0f);
}

TEST(OpsTest, MulDivElementwise) {
  const Tensor c = Mul(T2x3(), T2x3());
  EXPECT_FLOAT_EQ(c.at({1, 0}), 16.0f);
  const Tensor d = Div(T2x3(), T2x3());
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(d.at({i, j}), 1.0f);
  }
}

TEST(OpsTest, MaximumMinimum) {
  const Tensor a = Tensor::FromVector(Shape({3}), {1, 5, 3});
  const Tensor b = Tensor::FromVector(Shape({3}), {4, 2, 3});
  const Tensor mx = Maximum(a, b);
  const Tensor mn = Minimum(a, b);
  EXPECT_FLOAT_EQ(mx.at({0}), 4.0f);
  EXPECT_FLOAT_EQ(mx.at({1}), 5.0f);
  EXPECT_FLOAT_EQ(mx.at({2}), 3.0f);
  EXPECT_FLOAT_EQ(mn.at({0}), 1.0f);
  EXPECT_FLOAT_EQ(mn.at({1}), 2.0f);
}

TEST(OpsTest, UnaryFunctions) {
  const Tensor x = Tensor::FromVector(Shape({4}), {-2, -0.5, 0.5, 2});
  const Tensor relu = Relu(x);
  EXPECT_FLOAT_EQ(relu.at({0}), 0.0f);
  EXPECT_FLOAT_EQ(relu.at({3}), 2.0f);
  const Tensor leaky = LeakyRelu(x, 0.1f);
  EXPECT_FLOAT_EQ(leaky.at({0}), -0.2f);
  EXPECT_FLOAT_EQ(leaky.at({3}), 2.0f);
  const Tensor sig = Sigmoid(x);
  EXPECT_NEAR(sig.at({3}), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
  const Tensor th = Tanh(x);
  EXPECT_NEAR(th.at({0}), std::tanh(-2.0f), 1e-6);
  EXPECT_NEAR(Exp(x).at({3}), std::exp(2.0f), 1e-4);
  EXPECT_NEAR(Abs(x).at({0}), 2.0f, 1e-6);
  EXPECT_NEAR(Square(x).at({1}), 0.25f, 1e-6);
}

TEST(OpsTest, SigmoidExtremesStable) {
  const Tensor x = Tensor::FromVector(Shape({2}), {-100.0f, 100.0f});
  const Tensor y = Sigmoid(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-6);
  EXPECT_NEAR(y.at({1}), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(y.at({0})));
}

TEST(OpsTest, LogSqrtPow) {
  const Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 4.0f});
  EXPECT_NEAR(Log(x).at({1}), std::log(4.0f), 1e-6);
  EXPECT_NEAR(Sqrt(x).at({1}), 2.0f, 1e-6);
  EXPECT_NEAR(Pow(x, 3.0f).at({1}), 64.0f, 1e-4);
}

TEST(OpsTest, LogClampsToEpsilon) {
  const Tensor x = Tensor::FromVector(Shape({1}), {0.0f});
  EXPECT_FALSE(std::isinf(Log(x).item()));
}

TEST(OpsTest, Reshape) {
  const Tensor r = Reshape(T2x3(), Shape({3, 2}));
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(r.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(r.at({2, 1}), 6.0f);
}

TEST(OpsTest, Transpose2D) {
  const Tensor t = Transpose(T2x3(), 0, 1);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0f);
}

TEST(OpsTest, Transpose3DMiddle) {
  std::vector<float> vals(2 * 3 * 4);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
  const Tensor x = Tensor::FromVector(Shape({2, 3, 4}), vals);
  const Tensor t = Transpose(x, 1, 2);
  EXPECT_EQ(t.shape(), Shape({2, 4, 3}));
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t i = 0; i < 3; ++i) {
      for (int64_t j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(t.at({b, j, i}), x.at({b, i, j}));
      }
    }
  }
}

TEST(OpsTest, TransposeNegativeDims) {
  const Tensor t = Transpose(T2x3(), -2, -1);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
}

TEST(OpsTest, SliceMiddle) {
  const Tensor s = Slice(T2x3(), 1, 1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(s.at({1, 1}), 6.0f);
}

TEST(OpsTest, SliceFirstDim) {
  const Tensor s = Slice(T2x3(), 0, 1, 2);
  EXPECT_EQ(s.shape(), Shape({1, 3}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 4.0f);
}

TEST(OpsTest, ConcatDim0) {
  const Tensor c = Concat({T2x3(), T2x3()}, 0);
  EXPECT_EQ(c.shape(), Shape({4, 3}));
  EXPECT_FLOAT_EQ(c.at({3, 2}), 6.0f);
}

TEST(OpsTest, ConcatDim1) {
  const Tensor a = Tensor::FromVector(Shape({2, 1}), {1, 2});
  const Tensor b = Tensor::FromVector(Shape({2, 2}), {3, 4, 5, 6});
  const Tensor c = Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 3.0f);
  EXPECT_FLOAT_EQ(c.at({1, 2}), 6.0f);
}

TEST(OpsTest, IndexSelectRows) {
  const Tensor s = IndexSelect(T2x3(), 0, {1, 0, 1});
  EXPECT_EQ(s.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(s.at({1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(s.at({2, 2}), 6.0f);
}

TEST(OpsTest, IndexSelectColumns) {
  const Tensor s = IndexSelect(T2x3(), 1, {2, 0});
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(s.at({1, 1}), 4.0f);
}

TEST(OpsTest, UnsqueezeSqueeze) {
  const Tensor u = Unsqueeze(T2x3(), 1);
  EXPECT_EQ(u.shape(), Shape({2, 1, 3}));
  const Tensor s = Squeeze(u, 1);
  EXPECT_EQ(s.shape(), Shape({2, 3}));
}

TEST(OpsTest, BroadcastToMaterialises) {
  const Tensor row = Tensor::FromVector(Shape({1, 3}), {1, 2, 3});
  const Tensor b = BroadcastTo(row, Shape({2, 3}));
  EXPECT_EQ(b.shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ(b.at({1, 2}), 3.0f);
}

TEST(OpsTest, SumAll) { EXPECT_FLOAT_EQ(Sum(T2x3()).item(), 21.0f); }

TEST(OpsTest, SumAlongDims) {
  const Tensor s0 = Sum(T2x3(), 0);
  EXPECT_EQ(s0.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(s0.at({0}), 5.0f);
  const Tensor s1 = Sum(T2x3(), 1);
  EXPECT_EQ(s1.shape(), Shape({2}));
  EXPECT_FLOAT_EQ(s1.at({1}), 15.0f);
  const Tensor keep = Sum(T2x3(), 1, /*keepdim=*/true);
  EXPECT_EQ(keep.shape(), Shape({2, 1}));
}

TEST(OpsTest, MeanValues) {
  EXPECT_FLOAT_EQ(Mean(T2x3()).item(), 3.5f);
  const Tensor m = Mean(T2x3(), 0);
  EXPECT_FLOAT_EQ(m.at({0}), 2.5f);
}

TEST(OpsTest, MaxMinAlongDim) {
  const Tensor mx = Max(T2x3(), 1);
  EXPECT_FLOAT_EQ(mx.at({0}), 3.0f);
  EXPECT_FLOAT_EQ(mx.at({1}), 6.0f);
  const Tensor mn = Min(T2x3(), 0);
  EXPECT_FLOAT_EQ(mn.at({2}), 3.0f);
}

TEST(OpsTest, MatMul2D) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::FromVector(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  const Tensor x = T2x3();
  const Tensor c = MatMul(Tensor::Eye(2), x);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(c.at({i, j}), x.at({i, j}));
  }
}

TEST(OpsTest, MatMulBatchedRhs) {
  // [2,2] @ [3,2,1]: lhs broadcast across batch of 3.
  const Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 0, 0, 2});
  const Tensor b =
      Tensor::FromVector(Shape({3, 2, 1}), {1, 2, 3, 4, 5, 6});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({3, 2, 1}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1, 0}), 4.0f);
  EXPECT_FLOAT_EQ(c.at({2, 1, 0}), 12.0f);
}

TEST(OpsTest, MatMulBatchedBoth) {
  const Tensor a = Tensor::FromVector(Shape({2, 1, 2}), {1, 2, 3, 4});
  const Tensor b = Tensor::FromVector(Shape({2, 2, 1}), {1, 1, 2, 2});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0, 0}), 14.0f);
}

TEST(OpsTest, MatMul4DBatch) {
  // A [N,N] mixing nodes of X [B,T,N,C] — the GCN pattern.
  const Tensor adj = Tensor::FromVector(Shape({2, 2}), {0, 1, 1, 0});
  std::vector<float> vals(2 * 3 * 2 * 1);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
  const Tensor x = Tensor::FromVector(Shape({2, 3, 2, 1}), vals);
  const Tensor y = MatMul(adj, x);
  EXPECT_EQ(y.shape(), Shape({2, 3, 2, 1}));
  // Swap of the two node rows within each [N=2, C=1] block.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t t = 0; t < 3; ++t) {
      EXPECT_FLOAT_EQ(y.at({b, t, 0, 0}), x.at({b, t, 1, 0}));
      EXPECT_FLOAT_EQ(y.at({b, t, 1, 0}), x.at({b, t, 0, 0}));
    }
  }
}

TEST(OpsTest, SoftmaxRows) {
  const Tensor x = Tensor::FromVector(Shape({2, 2}), {0, 0, 1, 3});
  const Tensor y = Softmax(x, 1);
  EXPECT_NEAR(y.at({0, 0}), 0.5f, 1e-6);
  EXPECT_NEAR(y.at({0, 1}), 0.5f, 1e-6);
  const float e2 = std::exp(2.0f);
  EXPECT_NEAR(y.at({1, 1}), e2 / (1.0f + e2), 1e-5);
  // Rows sum to one.
  const Tensor row_sum = Sum(y, 1);
  EXPECT_NEAR(row_sum.at({0}), 1.0f, 1e-6);
  EXPECT_NEAR(row_sum.at({1}), 1.0f, 1e-6);
}

TEST(OpsTest, SoftmaxLargeValuesStable) {
  const Tensor x = Tensor::FromVector(Shape({1, 2}), {1000.0f, 1001.0f});
  const Tensor y = Softmax(x, 1);
  EXPECT_FALSE(std::isnan(y.at({0, 0})));
  EXPECT_NEAR(y.at({0, 0}) + y.at({0, 1}), 1.0f, 1e-6);
}

TEST(OpsTest, Conv1dTimeIdentityKernel) {
  // K=1 kernel with weight 1 acts as identity.
  std::vector<float> vals(1 * 4 * 2 * 1);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i + 1);
  const Tensor x = Tensor::FromVector(Shape({1, 4, 2, 1}), vals);
  const Tensor w = Tensor::FromVector(Shape({1, 1, 1}), {1.0f});
  const Tensor y = Conv1dTime(x, w, Tensor(), /*dilation=*/1);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(OpsTest, Conv1dTimeCausalSum) {
  // K=2 kernel of ones computes x[t] + x[t-1] with zero at t<0.
  const Tensor x =
      Tensor::FromVector(Shape({1, 4, 1, 1}), {1, 2, 3, 4});
  const Tensor w = Tensor::FromVector(Shape({1, 1, 2}), {1.0f, 1.0f});
  const Tensor y = Conv1dTime(x, w, Tensor(), 1);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.0f);  // 0 + 1.
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 0}), 3.0f);  // 1 + 2.
  EXPECT_FLOAT_EQ(y.at({0, 2, 0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(y.at({0, 3, 0, 0}), 7.0f);
}

TEST(OpsTest, Conv1dTimeDilation) {
  // K=2, dilation=2: y[t] = x[t] + x[t-2].
  const Tensor x =
      Tensor::FromVector(Shape({1, 5, 1, 1}), {1, 2, 3, 4, 5});
  const Tensor w = Tensor::FromVector(Shape({1, 1, 2}), {1.0f, 1.0f});
  const Tensor y = Conv1dTime(x, w, Tensor(), 2);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 0}), 2.0f);
  EXPECT_FLOAT_EQ(y.at({0, 2, 0, 0}), 4.0f);  // 1 + 3.
  EXPECT_FLOAT_EQ(y.at({0, 4, 0, 0}), 8.0f);  // 3 + 5.
}

TEST(OpsTest, Conv1dTimeBias) {
  const Tensor x = Tensor::FromVector(Shape({1, 2, 1, 1}), {0, 0});
  const Tensor w = Tensor::FromVector(Shape({2, 1, 1}), {1.0f, 1.0f});
  const Tensor b = Tensor::FromVector(Shape({2}), {5.0f, -3.0f});
  const Tensor y = Conv1dTime(x, w, b, 1);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(y.at({0, 0, 0, 1}), -3.0f);
}

TEST(OpsTest, Conv1dTimeMultiChannel) {
  // C_in=2, C_out=1, K=1: y = 2*x0 + 3*x1.
  const Tensor x = Tensor::FromVector(Shape({1, 1, 1, 2}), {1.0f, 10.0f});
  const Tensor w = Tensor::FromVector(Shape({1, 2, 1}), {2.0f, 3.0f});
  const Tensor y = Conv1dTime(x, w, Tensor(), 1);
  EXPECT_FLOAT_EQ(y.item(), 32.0f);
}

TEST(OpsTest, DropoutZeroPIsIdentity) {
  Rng rng(3);
  const Tensor x = T2x3();
  const Tensor y = Dropout(x, 0.0f, &rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(OpsTest, DropoutScalesSurvivors) {
  Rng rng(3);
  const Tensor x = Tensor::Ones(Shape({1000}));
  const Tensor y = Dropout(x, 0.5f, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    if (v == 0.0f) ++zeros;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.08);
}

TEST(OpsTest, NegOperator) {
  const Tensor y = -T2x3();
  EXPECT_FLOAT_EQ(y.at({0, 0}), -1.0f);
}

}  // namespace
}  // namespace stsm
