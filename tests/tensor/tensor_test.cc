#include "tensor/tensor.h"

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

TEST(TensorTest, ZerosOnesFull) {
  const Tensor z = Tensor::Zeros(Shape({2, 2}));
  const Tensor o = Tensor::Ones(Shape({2, 2}));
  const Tensor f = Tensor::Full(Shape({2, 2}), 3.5f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
    EXPECT_EQ(o.data()[i], 1.0f);
    EXPECT_EQ(f.data()[i], 3.5f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  const Tensor t = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorTest, SetElement) {
  Tensor t = Tensor::Zeros(Shape({2, 2}));
  t.set({1, 1}, 7.0f);
  EXPECT_EQ(t.at({1, 1}), 7.0f);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, Eye) {
  const Tensor eye = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(eye.at({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, UniformWithinBounds) {
  Rng rng(5);
  const Tensor t = Tensor::Uniform(Shape({100}), -2.0f, 2.0f, &rng);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(t.data()[i], -2.0f);
    EXPECT_LT(t.data()[i], 2.0f);
  }
}

TEST(TensorTest, DefaultUndefined) {
  const Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, BackwardThroughSimpleGraph) {
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3}, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(x, x));  // sum(x^2), d/dx = 2x.
  loss.Backward();
  EXPECT_FLOAT_EQ(loss.item(), 14.0f);
  EXPECT_FLOAT_EQ(x.grad_data()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad_data()[1], 4.0f);
  EXPECT_FLOAT_EQ(x.grad_data()[2], 6.0f);
}

TEST(TensorTest, GradientsAccumulateAcrossBackwards) {
  Tensor x = Tensor::FromVector(Shape({1}), {2.0f}, /*requires_grad=*/true);
  Sum(Mul(x, x)).Backward();
  Sum(Mul(x, x)).Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 8.0f);  // 4 + 4.
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 0.0f);
}

TEST(TensorTest, SharedSubexpressionGradient) {
  // y = x * x reused twice: loss = y + y => d/dx = 4x.
  Tensor x = Tensor::FromVector(Shape({1}), {3.0f}, /*requires_grad=*/true);
  Tensor y = Mul(x, x);
  Tensor loss = Sum(Add(y, y));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 12.0f);
}

TEST(TensorTest, NoGradGuardStopsRecording) {
  Tensor x = Tensor::FromVector(Shape({1}), {2.0f}, /*requires_grad=*/true);
  Tensor y;
  {
    NoGradGuard guard;
    y = Mul(x, x);
  }
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, NoGradGuardRestoresMode) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard nested;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TensorTest, DetachBreaksGraph) {
  Tensor x = Tensor::FromVector(Shape({1}), {2.0f}, /*requires_grad=*/true);
  Tensor y = Mul(x, x).Detach();
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.item(), 4.0f);
  Tensor loss = Sum(Mul(y, x));
  loss.Backward();
  // Only the direct x path contributes: d/dx (4 * x) = 4.
  EXPECT_FLOAT_EQ(x.grad_data()[0], 4.0f);
}

TEST(TensorTest, CloneIsDeepCopy) {
  Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 2.0f});
  Tensor y = x.Clone();
  y.data()[0] = 100.0f;
  EXPECT_FLOAT_EQ(x.data()[0], 1.0f);
}

TEST(TensorTest, GradTensorZeroWhenNoBackward) {
  Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 2.0f},
                                /*requires_grad=*/true);
  const Tensor g = x.GradTensor();
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_FLOAT_EQ(g.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(g.data()[1], 0.0f);
}

TEST(TensorTest, NoGradThroughNonRequiringInputs) {
  Tensor x = Tensor::FromVector(Shape({1}), {2.0f});  // No grad.
  Tensor y = Mul(x, x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, DiamondGraphGradient) {
  // loss = (x*2) + (x*3); d/dx = 5.
  Tensor x = Tensor::FromVector(Shape({1}), {1.0f}, /*requires_grad=*/true);
  Tensor a = Mul(x, 2.0f);
  Tensor b = Mul(x, 3.0f);
  Sum(Add(a, b)).Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 5.0f);
}

TEST(TensorTest, DeepChainGradient) {
  // loss = 2^10 * x through 10 doublings.
  Tensor x = Tensor::FromVector(Shape({1}), {1.0f}, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 10; ++i) y = Add(y, y);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 1024.0f);
}

TEST(TensorTest, ToStringContainsShape) {
  const Tensor t = Tensor::Zeros(Shape({2, 2}));
  EXPECT_NE(t.ToString().find("[2, 2]"), std::string::npos);
}

}  // namespace
}  // namespace stsm
