// Edge-case tests for tensor operations: degenerate shapes, repeated use,
// and interaction patterns the model code relies on.

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

TEST(OpsEdgeTest, ScalarTensorArithmetic) {
  const Tensor a = Tensor::Scalar(3.0f);
  const Tensor b = Tensor::Scalar(4.0f);
  EXPECT_FLOAT_EQ(Add(a, b).item(), 7.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).item(), 12.0f);
  EXPECT_FLOAT_EQ(Sum(a).item(), 3.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 3.0f);
}

TEST(OpsEdgeTest, SingleElementDims) {
  const Tensor x = Tensor::FromVector(Shape({1, 1, 1}), {5.0f});
  EXPECT_FLOAT_EQ(Sum(x, 1).item(), 5.0f);
  EXPECT_FLOAT_EQ(Max(x, 0).item(), 5.0f);
  EXPECT_EQ(Transpose(x, 0, 2).shape(), Shape({1, 1, 1}));
}

TEST(OpsEdgeTest, SliceFullRangeIsView) {
  const Tensor x = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor s = Slice(x, 0, 0, 2);
  EXPECT_EQ(s.shape(), x.shape());
  EXPECT_EQ(s.data(), x.data());  // Zero-copy: aliases the base storage.
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(s.data()[i], x.data()[i]);
}

TEST(OpsEdgeTest, SliceSingleRow) {
  const Tensor x = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  const Tensor s = Slice(x, 0, 1, 2);
  EXPECT_EQ(s.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 3.0f);
}

TEST(OpsEdgeTest, ConcatThreeTensors) {
  const Tensor a = Tensor::Full(Shape({1, 2}), 1.0f);
  const Tensor b = Tensor::Full(Shape({2, 2}), 2.0f);
  const Tensor c = Tensor::Full(Shape({3, 2}), 3.0f);
  const Tensor out = Concat({a, b, c}, 0);
  EXPECT_EQ(out.shape(), Shape({6, 2}));
  EXPECT_FLOAT_EQ(out.at({0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(out.at({2, 0}), 2.0f);
  EXPECT_FLOAT_EQ(out.at({5, 1}), 3.0f);
}

TEST(OpsEdgeTest, ConcatSingleTensorIsIdentityCopy) {
  const Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  const Tensor out = Concat({a}, 1);
  EXPECT_EQ(out.shape(), a.shape());
  EXPECT_FLOAT_EQ(out.at({1, 1}), 4.0f);
}

TEST(OpsEdgeTest, IndexSelectAllRowsIdentity) {
  const Tensor x = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  const Tensor out = IndexSelect(x, 0, {0, 1, 2});
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], x.data()[i]);
  }
}

TEST(OpsEdgeTest, IndexSelectSingleIndexManyTimes) {
  const Tensor x = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  const Tensor out = IndexSelect(x, 0, {1, 1, 1, 1});
  EXPECT_EQ(out.shape(), Shape({4, 2}));
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(out.at({r, 0}), 3.0f);
    EXPECT_FLOAT_EQ(out.at({r, 1}), 4.0f);
  }
}

TEST(OpsEdgeTest, MatMulDegenerate1xN) {
  const Tensor row = Tensor::FromVector(Shape({1, 3}), {1, 2, 3});
  const Tensor col = Tensor::FromVector(Shape({3, 1}), {4, 5, 6});
  EXPECT_FLOAT_EQ(MatMul(row, col).item(), 32.0f);
  const Tensor outer = MatMul(col, row);
  EXPECT_EQ(outer.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(outer.at({2, 2}), 18.0f);
}

TEST(OpsEdgeTest, SoftmaxSingleEntryDimIsOne) {
  const Tensor x = Tensor::FromVector(Shape({3, 1}), {-5, 0, 5});
  const Tensor y = Softmax(x, 1);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y.data()[i], 1.0f);
}

TEST(OpsEdgeTest, ReluOfReluIdempotent) {
  Rng rng(1);
  const Tensor x = Tensor::Uniform(Shape({20}), -1, 1, &rng);
  const Tensor once = Relu(x);
  const Tensor twice = Relu(once);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(once.data()[i], twice.data()[i]);
  }
}

TEST(OpsEdgeTest, ChainedBackwardReusedLeaf) {
  // One leaf used in two separate graphs, backward called on both.
  Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 2.0f}, true);
  Tensor l1 = Sum(Mul(x, 3.0f));
  Tensor l2 = Sum(Square(x));
  l1.Backward();
  l2.Backward();
  // dl1/dx = 3, dl2/dx = 2x; accumulated.
  EXPECT_FLOAT_EQ(x.grad_data()[0], 3.0f + 2.0f);
  EXPECT_FLOAT_EQ(x.grad_data()[1], 3.0f + 4.0f);
}

TEST(OpsEdgeTest, LongGraphChainNoStackOverflow) {
  // The backward topological sort is iterative; 20k-node chains must work.
  Tensor x = Tensor::Scalar(1.0f, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = Add(y, 0.0001f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 1.0f);
}

TEST(OpsEdgeTest, MeanOfDimKeepdimBroadcastsBack) {
  // Pattern used by LayerNorm: x - mean(x, -1, keepdim).
  const Tensor x =
      Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 10, 20, 30});
  const Tensor centered = Sub(x, Mean(x, -1, /*keepdim=*/true));
  EXPECT_NEAR(centered.at({0, 0}), -1.0f, 1e-6);
  EXPECT_NEAR(centered.at({1, 2}), 10.0f, 1e-6);
  // Row means of the centered matrix are zero.
  const Tensor check = Mean(centered, -1);
  EXPECT_NEAR(check.at({0}), 0.0f, 1e-6);
  EXPECT_NEAR(check.at({1}), 0.0f, 1e-5);
}

TEST(OpsEdgeTest, MaximumFoldAssociative) {
  // Eq. 9/11 folds Maximum over a list; order must not matter.
  Rng rng(2);
  const Tensor a = Tensor::Uniform(Shape({10}), -1, 1, &rng);
  const Tensor b = Tensor::Uniform(Shape({10}), -1, 1, &rng);
  const Tensor c = Tensor::Uniform(Shape({10}), -1, 1, &rng);
  const Tensor left = Maximum(Maximum(a, b), c);
  const Tensor right = Maximum(a, Maximum(b, c));
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(left.data()[i], right.data()[i]);
  }
}

TEST(OpsEdgeTest, DetachInsideGraphStopsGradient) {
  Tensor x = Tensor::FromVector(Shape({1}), {2.0f}, true);
  Tensor y = Mul(x, x);             // dy/dx = 2x = 4.
  Tensor z = Mul(y.Detach(), x);    // z = 4 * x; dz/dx = 4.
  Sum(z).Backward();
  EXPECT_FLOAT_EQ(x.grad_data()[0], 4.0f);
}

}  // namespace
}  // namespace stsm
