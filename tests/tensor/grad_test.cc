// Finite-difference gradient checks for every differentiable operation.
// These are the property tests guaranteeing the autograd tape is correct —
// everything else in the library (models, training) rests on them.

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

using OpFn = std::function<Tensor(const std::vector<Tensor>&)>;

Tensor RandomInput(const Shape& shape, uint64_t seed, float lo = -1.0f,
                   float hi = 1.0f) {
  Rng rng(seed);
  return Tensor::Uniform(shape, lo, hi, &rng, /*requires_grad=*/true);
}

void ExpectGradOk(const OpFn& fn, std::vector<Tensor> inputs,
                  double tolerance = 2e-2) {
  const GradCheckResult result =
      CheckGradients(fn, std::move(inputs), 1e-2, tolerance);
  EXPECT_TRUE(result.ok) << "max_abs_error=" << result.max_abs_error
                         << " max_rel_error=" << result.max_rel_error
                         << " worst_input=" << result.worst_input
                         << " worst_element=" << result.worst_element;
}

TEST(GradTest, Add) {
  ExpectGradOk([](const auto& in) { return Sum(Add(in[0], in[1])); },
               {RandomInput({2, 3}, 1), RandomInput({2, 3}, 2)});
}

TEST(GradTest, AddBroadcast) {
  ExpectGradOk([](const auto& in) { return Sum(Square(Add(in[0], in[1]))); },
               {RandomInput({2, 3}, 1), RandomInput({3}, 2)});
}

TEST(GradTest, SubBroadcastColumn) {
  ExpectGradOk([](const auto& in) { return Sum(Square(Sub(in[0], in[1]))); },
               {RandomInput({2, 3}, 3), RandomInput({2, 1}, 4)});
}

TEST(GradTest, Mul) {
  ExpectGradOk([](const auto& in) { return Sum(Mul(in[0], in[1])); },
               {RandomInput({4}, 5), RandomInput({4}, 6)});
}

TEST(GradTest, MulBroadcastScalar) {
  ExpectGradOk([](const auto& in) { return Sum(Mul(in[0], in[1])); },
               {RandomInput({3, 2}, 7), RandomInput({}, 8)});
}

TEST(GradTest, Div) {
  ExpectGradOk([](const auto& in) { return Sum(Div(in[0], in[1])); },
               {RandomInput({4}, 9), RandomInput({4}, 10, 1.0f, 2.0f)});
}

TEST(GradTest, Maximum) {
  ExpectGradOk([](const auto& in) { return Sum(Maximum(in[0], in[1])); },
               {RandomInput({6}, 11), RandomInput({6}, 12)});
}

TEST(GradTest, Minimum) {
  ExpectGradOk([](const auto& in) { return Sum(Minimum(in[0], in[1])); },
               {RandomInput({6}, 13), RandomInput({6}, 14)});
}

TEST(GradTest, Relu) {
  // Keep inputs away from the kink at 0.
  ExpectGradOk([](const auto& in) { return Sum(Relu(in[0])); },
               {RandomInput({8}, 15, 0.2f, 1.0f)});
  ExpectGradOk([](const auto& in) { return Sum(Relu(in[0])); },
               {RandomInput({8}, 16, -1.0f, -0.2f)});
}

TEST(GradTest, LeakyRelu) {
  ExpectGradOk([](const auto& in) { return Sum(LeakyRelu(in[0], 0.2f)); },
               {RandomInput({8}, 17, 0.2f, 1.0f)});
}

TEST(GradTest, Sigmoid) {
  ExpectGradOk([](const auto& in) { return Sum(Sigmoid(in[0])); },
               {RandomInput({6}, 18, -2.0f, 2.0f)});
}

TEST(GradTest, Tanh) {
  ExpectGradOk([](const auto& in) { return Sum(Tanh(in[0])); },
               {RandomInput({6}, 19, -2.0f, 2.0f)});
}

TEST(GradTest, Exp) {
  ExpectGradOk([](const auto& in) { return Sum(Exp(in[0])); },
               {RandomInput({6}, 20)});
}

TEST(GradTest, Log) {
  ExpectGradOk([](const auto& in) { return Sum(Log(in[0])); },
               {RandomInput({6}, 21, 0.5f, 2.0f)});
}

TEST(GradTest, Sqrt) {
  ExpectGradOk([](const auto& in) { return Sum(Sqrt(in[0])); },
               {RandomInput({6}, 22, 0.5f, 2.0f)});
}

TEST(GradTest, Square) {
  ExpectGradOk([](const auto& in) { return Sum(Square(in[0])); },
               {RandomInput({6}, 23)});
}

TEST(GradTest, Abs) {
  ExpectGradOk([](const auto& in) { return Sum(Abs(in[0])); },
               {RandomInput({6}, 24, 0.3f, 1.0f)});
}

TEST(GradTest, Pow) {
  ExpectGradOk([](const auto& in) { return Sum(Pow(in[0], 3.0f)); },
               {RandomInput({6}, 25, 0.5f, 1.5f)});
}

TEST(GradTest, Reshape) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Reshape(in[0], Shape({6}))));
      },
      {RandomInput({2, 3}, 26)});
}

TEST(GradTest, Transpose) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Transpose(in[0], 0, 1)));
      },
      {RandomInput({2, 3}, 27)});
}

TEST(GradTest, Transpose3D) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Transpose(in[0], 1, 2)));
      },
      {RandomInput({2, 3, 4}, 28)});
}

TEST(GradTest, Slice) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Slice(in[0], 1, 1, 3))); },
      {RandomInput({2, 4}, 29)});
}

TEST(GradTest, Concat) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Concat({in[0], in[1]}, 1)));
      },
      {RandomInput({2, 2}, 30), RandomInput({2, 3}, 31)});
}

TEST(GradTest, IndexSelect) {
  ExpectGradOk(
      [](const auto& in) {
        // Index 0 repeats, exercising scatter-add accumulation.
        return Sum(Square(IndexSelect(in[0], 0, {0, 2, 0})));
      },
      {RandomInput({3, 2}, 32)});
}

TEST(GradTest, MiddleDimensionBroadcast) {
  // [2,1,3] against [2,4,3] exercises the odometer index-table path (the
  // broadcast dim is neither leading-only nor a suffix).
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Mul(in[0], in[1]))); },
      {RandomInput({2, 1, 3}, 60), RandomInput({2, 4, 3}, 61)});
}

TEST(GradTest, SuffixBroadcastBiasPattern) {
  // [C] against [B,T,C]: the modulo fast path used by every bias add.
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Add(in[0], in[1]))); },
      {RandomInput({2, 3, 4}, 62), RandomInput({4}, 63)});
}

TEST(GradTest, BothSidesBroadcast) {
  // [2,1] x [1,3] -> [2,3]: both inputs take the odometer path.
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Mul(in[0], in[1]))); },
      {RandomInput({2, 1}, 64), RandomInput({1, 3}, 65)});
}

TEST(GradTest, BroadcastTo) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(BroadcastTo(in[0], Shape({3, 4}))));
      },
      {RandomInput({1, 4}, 33)});
}

TEST(GradTest, SumAlongDim) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Sum(in[0], 1))); },
      {RandomInput({3, 4}, 34)});
}

TEST(GradTest, MeanAlongDim) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Mean(in[0], 0))); },
      {RandomInput({3, 4}, 35)});
}

TEST(GradTest, MaxAlongDim) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Max(in[0], 1))); },
      {RandomInput({3, 4}, 36)});
}

TEST(GradTest, MinAlongDim) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(Min(in[0], 0))); },
      {RandomInput({3, 4}, 37)});
}

TEST(GradTest, MatMul2D) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(MatMul(in[0], in[1]))); },
      {RandomInput({3, 4}, 38), RandomInput({4, 2}, 39)});
}

TEST(GradTest, MatMulBatchedRhs) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(MatMul(in[0], in[1]))); },
      {RandomInput({3, 3}, 40), RandomInput({2, 3, 2}, 41)});
}

TEST(GradTest, MatMulBatchedLhs) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(MatMul(in[0], in[1]))); },
      {RandomInput({2, 2, 3}, 42), RandomInput({3, 2}, 43)});
}

TEST(GradTest, MatMul4DGcnPattern) {
  ExpectGradOk(
      [](const auto& in) { return Sum(Square(MatMul(in[0], in[1]))); },
      {RandomInput({3, 3}, 44), RandomInput({2, 2, 3, 2}, 45)});
}

TEST(GradTest, Softmax) {
  ExpectGradOk(
      [](const auto& in) {
        // Weighted sum makes the gradient non-trivial per element.
        const Tensor weights = Tensor::FromVector(
            Shape({2, 3}), {1.0f, -2.0f, 0.5f, 3.0f, 0.1f, -1.0f});
        return Sum(Mul(Softmax(in[0], 1), weights));
      },
      {RandomInput({2, 3}, 46)});
}

TEST(GradTest, LogSoftmax) {
  ExpectGradOk(
      [](const auto& in) {
        const Tensor weights = Tensor::FromVector(
            Shape({2, 3}), {1.0f, -2.0f, 0.5f, 3.0f, 0.1f, -1.0f});
        return Sum(Mul(LogSoftmax(in[0], 1), weights));
      },
      {RandomInput({2, 3}, 47)});
}

TEST(GradTest, Conv1dTime) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Conv1dTime(in[0], in[1], in[2], /*dilation=*/1)));
      },
      {RandomInput({2, 5, 2, 3}, 48), RandomInput({4, 3, 2}, 49),
       RandomInput({4}, 50)});
}

TEST(GradTest, Conv1dTimeDilated) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Conv1dTime(in[0], in[1], Tensor(), /*dilation=*/2)));
      },
      {RandomInput({1, 6, 2, 2}, 51), RandomInput({3, 2, 2}, 52)});
}

TEST(GradTest, ComposedExpression) {
  // A miniature model: y = relu(x @ w + b), loss = mean(y^2).
  ExpectGradOk(
      [](const auto& in) {
        const Tensor y = Relu(Add(MatMul(in[0], in[1]), in[2]));
        return Mean(Square(y));
      },
      {RandomInput({4, 3}, 53, 0.1f, 1.0f), RandomInput({3, 2}, 54),
       RandomInput({2}, 55)});
}

TEST(GradTest, GluGatePattern) {
  // GCNL-style gating (Eq. 7): GCN(A,Z) * sigmoid(GCN(A,Z)).
  ExpectGradOk(
      [](const auto& in) {
        const Tensor h = MatMul(in[0], in[1]);
        return Sum(Mul(h, Sigmoid(h)));
      },
      {RandomInput({3, 3}, 56), RandomInput({3, 2}, 57)});
}

// ---- Zero-copy view chains ---------------------------------------------------
// The shape ops below return aliases of their input's storage; the checks
// confirm gradient routing through shared grad buffers matches finite
// differences exactly like a copying implementation would.

TEST(GradTest, ReshapeChainView) {
  ExpectGradOk(
      [](const auto& in) {
        const Tensor flat = Reshape(in[0], Shape({6}));
        return Sum(Square(Reshape(flat, Shape({3, 2}))));
      },
      {RandomInput({2, 3}, 58)});
}

TEST(GradTest, UnsqueezeSqueezeView) {
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Mul(Squeeze(Unsqueeze(in[0], 0), 0), in[1]));
      },
      {RandomInput({2, 3}, 59), RandomInput({2, 3}, 60)});
}

TEST(GradTest, ContiguousSliceView) {
  // Slice along dim 0 is the zero-copy path; the unused rows must end up
  // with exactly zero gradient.
  ExpectGradOk(
      [](const auto& in) {
        return Sum(Square(Slice(in[0], /*dim=*/0, 1, 3)));
      },
      {RandomInput({4, 2}, 61)});
}

TEST(GradTest, BaseAndViewDiamond) {
  // Both the base tensor and a view of it feed the loss: contributions must
  // accumulate in the shared grad buffer without double counting.
  ExpectGradOk(
      [](const auto& in) {
        const Tensor flat = Reshape(in[0], Shape({6}));
        return Add(Sum(Square(in[0])), Sum(Mul(flat, flat)));
      },
      {RandomInput({2, 3}, 62)});
}

TEST(GradTest, ViewIntoMatMul) {
  // View feeding a compute op (the common pattern in the ST models:
  // reshape activations, then matmul).
  ExpectGradOk(
      [](const auto& in) {
        const Tensor flat = Reshape(in[0], Shape({2, 6}));
        return Sum(Tanh(MatMul(flat, in[1])));
      },
      {RandomInput({2, 3, 2}, 63), RandomInput({6, 2}, 64)});
}

}  // namespace
}  // namespace stsm
