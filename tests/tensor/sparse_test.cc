// Tests for the sparse substrate: CSR round-trips, SpMM forward/backward
// against the dense-reference oracle (bitwise — the kernels share one
// accumulation order) and against MatMul (tolerance — different flop
// order), gradients through the Adjacency variant, the empty-row /
// isolated-node / identity edge cases, and pool accounting of the CSR
// buffers.

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

uint32_t Bits(float v) {
  uint32_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(a.impl()->data()[a.impl()->PhysicalIndex(i)]),
              Bits(b.impl()->data()[b.impl()->PhysicalIndex(i)]))
        << "element " << i;
  }
}

// A reproducible sparse-ish matrix: Uniform values with everything below
// the cutoff zeroed, leaving roughly `keep` of the entries non-zero.
Tensor RandomSparseDense(int64_t rows, int64_t cols, uint64_t seed,
                         float keep = 0.3f) {
  Rng rng(seed);
  Tensor dense = Tensor::Uniform(Shape({rows, cols}), 0.0f, 1.0f, &rng);
  float* d = dense.data();
  for (int64_t i = 0; i < dense.numel(); ++i) {
    d[i] = d[i] < 1.0f - keep ? 0.0f : d[i];
  }
  return dense;
}

// ---- Construction and round-trips -------------------------------------------

TEST(SparseCsrTest, FromPartsAccessors) {
  // [[0, 2, 0], [0, 0, 0], [1, 0, 3]]
  const SparseCsr a = SparseCsr::FromParts(3, 3, {0, 1, 1, 3}, {1, 0, 2},
                                           {2.0f, 1.0f, 3.0f});
  ASSERT_TRUE(a.defined());
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.row_ptr()[0], 0);
  EXPECT_EQ(a.row_ptr()[1], 1);
  EXPECT_EQ(a.row_ptr()[2], 1);
  EXPECT_EQ(a.row_ptr()[3], 3);
  EXPECT_EQ(a.col_idx()[0], 1);
  EXPECT_EQ(a.col_idx()[2], 2);
  EXPECT_EQ(a.values()[0], 2.0f);

  const Tensor dense = a.ToDense();
  EXPECT_EQ(dense.at({0, 1}), 2.0f);
  EXPECT_EQ(dense.at({1, 1}), 0.0f);
  EXPECT_EQ(dense.at({2, 0}), 1.0f);
  EXPECT_EQ(dense.at({2, 2}), 3.0f);
}

TEST(SparseCsrTest, DenseRoundTripBitwise) {
  const Tensor dense = RandomSparseDense(17, 13, /*seed=*/1);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  EXPECT_GT(csr.nnz(), 0);
  EXPECT_LT(csr.nnz(), dense.numel());
  ExpectBitwiseEqual(csr.ToDense(), dense);
}

TEST(SparseCsrTest, FromDenseStridedView) {
  // A transposed (non-contiguous) view compresses to the same matrix as its
  // contiguous clone.
  const Tensor base = RandomSparseDense(9, 6, /*seed=*/2);
  const Tensor view = Transpose(base, 0, 1);
  const SparseCsr from_view = SparseCsr::FromDense(view);
  const SparseCsr from_copy = SparseCsr::FromDense(view.Clone());
  EXPECT_EQ(from_view.nnz(), from_copy.nnz());
  ExpectBitwiseEqual(from_view.ToDense(), from_copy.ToDense());
}

TEST(SparseCsrTest, AllZeroMatrix) {
  const Tensor zeros = Tensor::Zeros(Shape({5, 4}));
  const SparseCsr csr = SparseCsr::FromDense(zeros);
  EXPECT_EQ(csr.nnz(), 0);
  ExpectBitwiseEqual(csr.ToDense(), zeros);

  Rng rng(3);
  const Tensor x = Tensor::Uniform(Shape({4, 3}), -1, 1, &rng);
  ExpectBitwiseEqual(Spmm(csr, x), Tensor::Zeros(Shape({5, 3})));
}

// ---- SpMM forward -----------------------------------------------------------

TEST(SpmmTest, MatchesOracleBitwise2d) {
  const Tensor dense = RandomSparseDense(12, 9, /*seed=*/4);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(5);
  const Tensor x = Tensor::Uniform(Shape({9, 7}), -1, 1, &rng);
  ExpectBitwiseEqual(Spmm(csr, x), SpmmOracle(dense, x));
}

TEST(SpmmTest, MatchesOracleBitwiseBatched) {
  const Tensor dense = RandomSparseDense(8, 10, /*seed=*/6);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({3, 2, 10, 5}), -1, 1, &rng);
  ExpectBitwiseEqual(Spmm(csr, x), SpmmOracle(dense, x));
}

TEST(SpmmTest, MatchesOracleBitwiseStridedInput) {
  // Spmm runs Contiguous() internally; the result must not depend on the
  // input's memory layout.
  const Tensor dense = RandomSparseDense(6, 6, /*seed=*/8);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(9);
  const Tensor base = Tensor::Uniform(Shape({4, 6}), -1, 1, &rng);
  const Tensor view = Transpose(base, 0, 1);  // [6, 4], non-contiguous.
  ExpectBitwiseEqual(Spmm(csr, view), Spmm(csr, view.Clone()));
  ExpectBitwiseEqual(Spmm(csr, view), SpmmOracle(dense, view.Clone()));
}

TEST(SpmmTest, MatchesMatMulWithinTolerance) {
  // MatMul uses the packed GEMM microkernel with a different accumulation
  // order, so parity here is tolerance-bounded, not bitwise.
  const Tensor dense = RandomSparseDense(20, 16, /*seed=*/10);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(11);
  const Tensor x = Tensor::Uniform(Shape({2, 16, 6}), -1, 1, &rng);
  const Tensor sparse_y = Spmm(csr, x);
  const Tensor dense_y = MatMul(dense, x);
  ASSERT_EQ(sparse_y.shape(), dense_y.shape());
  for (int64_t i = 0; i < sparse_y.numel(); ++i) {
    const float s = sparse_y.data()[i];
    const float d = dense_y.data()[i];
    EXPECT_NEAR(s, d, 1e-5f * std::max(1.0f, std::fabs(d)))
        << "element " << i;
  }
}

TEST(SpmmTest, EmptyRowsYieldZeroOutputRows) {
  // Rows 0 and 2 have no entries; their output rows must be exactly zero
  // even though x is arbitrary.
  const SparseCsr a =
      SparseCsr::FromParts(4, 3, {0, 0, 2, 2, 3}, {0, 2, 1},
                           {1.5f, -2.0f, 0.5f});
  Rng rng(12);
  const Tensor x = Tensor::Uniform(Shape({3, 4}), -1, 1, &rng);
  const Tensor y = Spmm(a, x);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(Bits(y.at({0, c})), Bits(0.0f));
    EXPECT_EQ(Bits(y.at({2, c})), Bits(0.0f));
  }
  ExpectBitwiseEqual(y, SpmmOracle(a.ToDense(), x));
}

TEST(SpmmTest, IdentityReproducesInput) {
  const int64_t n = 7;
  std::vector<int32_t> row_ptr(n + 1), col_idx(n);
  std::vector<float> values(n, 1.0f);
  for (int64_t i = 0; i <= n; ++i) row_ptr[i] = static_cast<int32_t>(i);
  for (int64_t i = 0; i < n; ++i) col_idx[i] = static_cast<int32_t>(i);
  const SparseCsr eye = SparseCsr::FromParts(n, n, row_ptr, col_idx, values);
  Rng rng(13);
  const Tensor x = Tensor::Uniform(Shape({2, n, 3}), -1, 1, &rng);
  ExpectBitwiseEqual(Spmm(eye, x), Contiguous(x));
}

// ---- SpMM backward ----------------------------------------------------------

TEST(SpmmTest, BackwardMatchesOracleBitwise) {
  const Tensor dense = RandomSparseDense(10, 8, /*seed=*/14);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(15);
  const Tensor x_data = Tensor::Uniform(Shape({2, 8, 5}), -1, 1, &rng);
  // Non-uniform weights so the upstream gradient is not all-ones.
  const Tensor w = Tensor::Uniform(Shape({2, 10, 5}), -1, 1, &rng);

  Tensor x_sparse = x_data.Clone().set_requires_grad(true);
  Sum(Mul(Spmm(csr, x_sparse), w)).Backward();

  Tensor x_oracle = x_data.Clone().set_requires_grad(true);
  Sum(Mul(SpmmOracle(dense, x_oracle), w)).Backward();

  ExpectBitwiseEqual(x_sparse.GradTensor(), x_oracle.GradTensor());
}

TEST(SpmmTest, GradCheckAgainstFiniteDifferences) {
  const Tensor dense = RandomSparseDense(5, 6, /*seed=*/16, /*keep=*/0.5f);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(17);
  Tensor x = Tensor::Uniform(Shape({6, 4}), -1, 1, &rng,
                             /*requires_grad=*/true);
  const GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Square(Spmm(csr, in[0])));
      },
      {x}, 1e-2, 2e-2);
  EXPECT_TRUE(result.ok) << "max_abs=" << result.max_abs_error
                         << " max_rel=" << result.max_rel_error;
}

TEST(SpmmTest, EmptyColumnLeavesZeroGradient) {
  // Column 1 of A is all-zero (an isolated source node): no output depends
  // on x row 1, so its gradient must be exactly zero.
  const SparseCsr a =
      SparseCsr::FromParts(3, 3, {0, 1, 2, 3}, {0, 2, 0},
                           {1.0f, 2.0f, 3.0f});
  Rng rng(18);
  Tensor x = Tensor::Uniform(Shape({3, 2}), -1, 1, &rng,
                             /*requires_grad=*/true);
  Sum(Spmm(a, x)).Backward();
  const Tensor grad = x.GradTensor();
  EXPECT_EQ(Bits(grad.at({1, 0})), Bits(0.0f));
  EXPECT_EQ(Bits(grad.at({1, 1})), Bits(0.0f));
  EXPECT_NE(grad.at({0, 0}), 0.0f);
}

// ---- Adjacency variant ------------------------------------------------------

TEST(AdjacencyTest, DenseRouteIsMatMulBitwise) {
  Rng rng(19);
  const Tensor dense = Tensor::Uniform(Shape({6, 6}), 0, 1, &rng);
  const Tensor x = Tensor::Uniform(Shape({2, 6, 3}), -1, 1, &rng);
  const Adjacency adj(dense);
  ASSERT_TRUE(adj.defined());
  EXPECT_FALSE(adj.is_sparse());
  EXPECT_EQ(adj.rows(), 6);
  ExpectBitwiseEqual(adj.Apply(x), MatMul(dense, x));
  ExpectBitwiseEqual(adj.ToDenseTensor(), dense);
}

TEST(AdjacencyTest, SparseRouteIsSpmm) {
  const Tensor dense = RandomSparseDense(6, 6, /*seed=*/20);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  Rng rng(21);
  const Tensor x = Tensor::Uniform(Shape({6, 3}), -1, 1, &rng);
  const Adjacency adj(csr);
  EXPECT_TRUE(adj.is_sparse());
  ExpectBitwiseEqual(adj.Apply(x), Spmm(csr, x));
  ExpectBitwiseEqual(adj.ToDenseTensor(), dense);
}

// ---- Pool accounting --------------------------------------------------------

TEST(SparseCsrTest, BuffersReturnToPool) {
  const BufferPoolStats before = BufferPool::Instance().Stats();
  {
    const Tensor dense = RandomSparseDense(16, 16, /*seed=*/22);
    const SparseCsr csr = SparseCsr::FromDense(dense);
    Rng rng(23);
    const Tensor x = Tensor::Uniform(Shape({16, 4}), -1, 1, &rng);
    const Tensor y = Spmm(csr, x);
    EXPECT_GT(BufferPool::Instance().Stats().live_buffers,
              before.live_buffers);
  }
  // Every CSR array, input and output released — no net leak.
  EXPECT_EQ(BufferPool::Instance().Stats().live_buffers, before.live_buffers);
}

}  // namespace
}  // namespace stsm
