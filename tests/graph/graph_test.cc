#include <cmath>
#include <cstring>
#include <limits>

#include "graph/adjacency.h"
#include "graph/geo.h"
#include "graph/road.h"
#include "gtest/gtest.h"
#include "tensor/sparse.h"

namespace stsm {
namespace {

uint32_t FloatBits(float v) {
  uint32_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

void ExpectDenseBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(FloatBits(a.data()[i]), FloatBits(b.data()[i]))
        << "element " << i;
  }
}

std::vector<GeoPoint> RandomCity(int n, uint64_t seed, double extent = 10.0) {
  Rng rng(seed);
  std::vector<GeoPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return pts;
}

TEST(GeoTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(GeoTest, PairwiseDistancesSymmetric) {
  const std::vector<GeoPoint> pts = {{0, 0}, {1, 0}, {0, 2}};
  const auto d = PairwiseDistances(pts);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 1.0);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 1.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 2.0);
  EXPECT_DOUBLE_EQ(d[2 * 3 + 1], std::sqrt(5.0));
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(d[i * 3 + i], 0.0);
}

TEST(GeoTest, Centroid) {
  const std::vector<GeoPoint> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const GeoPoint c = Centroid(pts);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
  const GeoPoint c2 = Centroid(pts, {0, 1});
  EXPECT_DOUBLE_EQ(c2.x, 1.0);
  EXPECT_DOUBLE_EQ(c2.y, 0.0);
}

TEST(AdjacencyTest, Eq2ThresholdBehaviour) {
  // Three collinear points: 0-1 close, 2 far away.
  const std::vector<GeoPoint> pts = {{0, 0}, {1, 0}, {10, 0}};
  const auto d = PairwiseDistances(pts);
  const Tensor adj = GaussianThresholdAdjacency(d, 3, /*epsilon=*/0.5);
  // Diagonal is always 1 (exp(0) = 1 >= eps).
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(adj.at({i, i}), 1.0f);
  // Close pair connected with the kernel weight, far pair not.
  EXPECT_GT(adj.at({0, 1}), 0.5f);
  EXPECT_LT(adj.at({0, 1}), 1.0f);
  EXPECT_FLOAT_EQ(adj.at({1, 0}), adj.at({0, 1}));
  EXPECT_EQ(adj.at({0, 2}), 0.0f);
  EXPECT_EQ(adj.at({2, 0}), 0.0f);
}

TEST(AdjacencyTest, BinaryModeGivesUnitWeights) {
  const std::vector<GeoPoint> pts = {{0, 0}, {1, 0}, {10, 0}};
  const auto d = PairwiseDistances(pts);
  const Tensor adj = GaussianThresholdAdjacency(d, 3, 0.5, 0.0, true);
  EXPECT_EQ(adj.at({0, 1}), 1.0f);
  EXPECT_EQ(adj.at({0, 2}), 0.0f);
}

TEST(AdjacencyTest, LargerEpsilonGivesSparserGraph) {
  std::vector<GeoPoint> pts;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto d = PairwiseDistances(pts);
  const int64_t edges_loose = CountEdges(GaussianThresholdAdjacency(d, 30, 0.3));
  const int64_t edges_tight = CountEdges(GaussianThresholdAdjacency(d, 30, 0.8));
  EXPECT_GT(edges_loose, edges_tight);
  EXPECT_GE(edges_tight, 30);  // At least the diagonal.
}

TEST(AdjacencyTest, SymmetricNormalizationRowSums) {
  // A path graph 0-1-2.
  Tensor adj = Tensor::Zeros(Shape({3, 3}));
  adj.set({0, 1}, 1.0f);
  adj.set({1, 0}, 1.0f);
  adj.set({1, 2}, 1.0f);
  adj.set({2, 1}, 1.0f);
  const Tensor norm = NormalizeSymmetric(adj, /*add_self_loops=*/true);
  // Known GCN normalisation: entry (0,0) = 1/deg0 with deg0 = 2.
  EXPECT_NEAR(norm.at({0, 0}), 0.5f, 1e-5);
  EXPECT_NEAR(norm.at({1, 1}), 1.0f / 3.0f, 1e-5);
  // Symmetric.
  EXPECT_NEAR(norm.at({0, 1}), norm.at({1, 0}), 1e-6);
  // (0,1) = 1/sqrt(2*3).
  EXPECT_NEAR(norm.at({0, 1}), 1.0f / std::sqrt(6.0f), 1e-5);
}

TEST(AdjacencyTest, RowNormalizationSumsToOne) {
  Tensor adj = Tensor::Zeros(Shape({3, 3}));
  adj.set({0, 1}, 1.0f);
  adj.set({0, 2}, 1.0f);
  const Tensor norm = NormalizeRow(adj, /*add_self_loops=*/true);
  for (int64_t i = 0; i < 3; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) row_sum += norm.at({i, j});
    EXPECT_NEAR(row_sum, 1.0f, 1e-5);
  }
  // Row 0 spreads over self + 2 neighbours.
  EXPECT_NEAR(norm.at({0, 0}), 1.0f / 3.0f, 1e-5);
}

TEST(AdjacencyTest, IsolatedNodeStaysZero) {
  Tensor adj = Tensor::Zeros(Shape({2, 2}));
  const Tensor norm = NormalizeSymmetric(adj, /*add_self_loops=*/false);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(norm.data()[i], 0.0f);
}

TEST(AdjacencyTest, NeighborListsExcludeSelf) {
  Tensor adj = Tensor::Ones(Shape({3, 3}));
  const auto neighbors = NeighborLists(adj);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(neighbors[1], (std::vector<int>{0, 2}));
}

// ---- CSR builders and sparse normalisation ---------------------------------

TEST(SparseAdjacencyTest, CsrBuilderMatchesDenseBitwise) {
  const auto pts = RandomCity(40, /*seed=*/11);
  const auto d = PairwiseDistances(pts);
  for (const bool binary : {false, true}) {
    const Tensor dense =
        GaussianThresholdAdjacency(d, 40, 0.3, /*sigma_override=*/0.0, binary);
    const SparseCsr csr = GaussianThresholdAdjacencyCsr(
        d, 40, 0.3, /*sigma_override=*/0.0, binary);
    EXPECT_EQ(csr.nnz(), CountEdges(dense));
    ExpectDenseBitwiseEqual(csr.ToDense(), dense);
  }
}

TEST(SparseAdjacencyTest, FromCoordsMatchesDistanceMatrixBuilder) {
  // With an explicit sigma the grid-binned construction must reproduce the
  // distance-matrix builder exactly: same entries, same weights.
  const auto pts = RandomCity(60, /*seed=*/12);
  const auto d = PairwiseDistances(pts);
  const double sigma = 3.0;
  const SparseCsr from_matrix =
      GaussianThresholdAdjacencyCsr(d, 60, 0.4, /*sigma_override=*/sigma);
  const SparseCsr from_coords = GaussianAdjacencyFromCoords(pts, 0.4, sigma);
  EXPECT_EQ(from_coords.nnz(), from_matrix.nnz());
  ExpectDenseBitwiseEqual(from_coords.ToDense(), from_matrix.ToDense());
}

TEST(SparseAdjacencyTest, NormalizeSymmetricMatchesDenseBitwise) {
  const auto pts = RandomCity(30, /*seed=*/13);
  const auto d = PairwiseDistances(pts);
  const Tensor dense = GaussianThresholdAdjacency(d, 30, 0.3);
  const SparseCsr csr = GaussianThresholdAdjacencyCsr(d, 30, 0.3);
  for (const bool self_loops : {false, true}) {
    ExpectDenseBitwiseEqual(NormalizeSymmetric(csr, self_loops).ToDense(),
                            NormalizeSymmetric(dense, self_loops));
  }
}

TEST(SparseAdjacencyTest, NormalizeRowMatchesDenseBitwise) {
  // A directed matrix with empty rows, like the DTW similarity block.
  Tensor dense = Tensor::Zeros(Shape({4, 4}));
  dense.set({0, 1}, 0.5f);
  dense.set({0, 3}, 1.5f);
  dense.set({2, 0}, 2.0f);
  const SparseCsr csr = SparseCsr::FromDense(dense);
  for (const bool self_loops : {false, true}) {
    ExpectDenseBitwiseEqual(NormalizeRow(csr, self_loops).ToDense(),
                            NormalizeRow(dense, self_loops));
  }
}

TEST(SparseAdjacencyTest, NormalizeIsolatedNodeStaysZero) {
  const SparseCsr empty = SparseCsr::FromDense(Tensor::Zeros(Shape({3, 3})));
  const SparseCsr norm = NormalizeSymmetric(empty, /*add_self_loops=*/false);
  EXPECT_EQ(norm.nnz(), 0);
  ExpectDenseBitwiseEqual(norm.ToDense(), Tensor::Zeros(Shape({3, 3})));
}

TEST(SparseAdjacencyTest, SubAdjacencyMatchesDenseSubmatrix) {
  const auto pts = RandomCity(25, /*seed=*/14);
  const auto d = PairwiseDistances(pts);
  const Tensor dense = GaussianThresholdAdjacency(d, 25, 0.3);
  const SparseCsr csr = GaussianThresholdAdjacencyCsr(d, 25, 0.3);
  const std::vector<int> indices = {20, 3, 7, 0, 24, 11};
  const int64_t k = static_cast<int64_t>(indices.size());
  Tensor expected = Tensor::Zeros(Shape({k, k}));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      expected.set({i, j}, dense.at({indices[i], indices[j]}));
    }
  }
  ExpectDenseBitwiseEqual(SubAdjacency(csr, indices).ToDense(), expected);
}

TEST(SparseAdjacencyTest, NeighborListsAndCountEdgesAgree) {
  const auto pts = RandomCity(20, /*seed=*/15);
  const auto d = PairwiseDistances(pts);
  const Tensor dense =
      GaussianThresholdAdjacency(d, 20, 0.4, 0.0, /*binary=*/true);
  const SparseCsr csr =
      GaussianThresholdAdjacencyCsr(d, 20, 0.4, 0.0, /*binary=*/true);
  EXPECT_EQ(CountEdges(csr), CountEdges(dense));
  EXPECT_EQ(NeighborLists(csr), NeighborLists(dense));
}

TEST(RoadTest, GraphIsConnected) {
  Rng rng(7);
  std::vector<GeoPoint> pts;
  // Two clusters far apart: kNN alone would leave them disconnected.
  for (int i = 0; i < 10; ++i) pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  for (int i = 0; i < 10; ++i)
    pts.push_back({rng.Uniform(50, 51), rng.Uniform(50, 51)});
  const auto distances = RoadNetworkDistances(pts, 3, 1.3, 0.1, &rng);
  for (double d : distances) {
    EXPECT_TRUE(std::isfinite(d)) << "road graph must be connected";
  }
}

TEST(RoadTest, RoadDistanceAtLeastDetouredEuclidean) {
  Rng rng(8);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const double detour = 1.25;
  const auto road = RoadNetworkDistances(pts, 4, detour, 0.0, &rng);
  const auto euclid = PairwiseDistances(pts);
  for (size_t i = 0; i < road.size(); ++i) {
    EXPECT_GE(road[i] + 1e-9, euclid[i] * detour)
        << "roads cannot be shorter than the detoured straight line";
  }
}

TEST(RoadTest, DistancesSymmetricWithZeroDiagonal) {
  Rng rng(9);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 15; ++i) {
    pts.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
  }
  const int n = 15;
  const auto d = RoadNetworkDistances(pts, 3, 1.2, 0.05, &rng);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(d[i * n + i], 0.0);
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(d[i * n + j], d[j * n + i], 1e-9);
    }
  }
}

TEST(RoadTest, TriangleInequalityHolds) {
  Rng rng(10);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
  }
  const int n = 12;
  const auto d = RoadNetworkDistances(pts, 3, 1.2, 0.1, &rng);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) {
        EXPECT_LE(d[i * n + j], d[i * n + k] + d[k * n + j] + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace stsm
