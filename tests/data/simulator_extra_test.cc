// Additional behavioural tests of the data simulators and the Table 6/7
// dataset factories.

#include <cmath>

#include "data/registry.h"
#include "data/simulator.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(SimulatorExtraTest, WeekendTrafficLighterThanWeekday) {
  SimulatorConfig config;
  config.kind = RegionKind::kHighway;
  config.num_sensors = 30;
  config.num_days = 14;  // Two full weeks.
  config.steps_per_day = 24;
  config.area_km = 30.0;
  config.seed = 5;
  const auto dataset = SimulateDataset(config);

  // Mean rush-hour (8am/5pm) speed, weekdays vs weekends.
  double weekday = 0, weekend = 0;
  int weekday_count = 0, weekend_count = 0;
  for (int day = 0; day < 14; ++day) {
    const bool is_weekend = (day % 7) >= 5;
    for (const int hour : {8, 17}) {
      for (int n = 0; n < dataset.num_nodes(); ++n) {
        const float v = dataset.series.at(day * 24 + hour, n);
        if (is_weekend) {
          weekend += v;
          ++weekend_count;
        } else {
          weekday += v;
          ++weekday_count;
        }
      }
    }
  }
  EXPECT_GT(weekend / weekend_count, weekday / weekday_count + 2.0)
      << "weekend rush hours must be materially lighter";
}

TEST(SimulatorExtraTest, UrbanSlowerThanHighway) {
  SimulatorConfig highway;
  highway.kind = RegionKind::kHighway;
  highway.num_sensors = 30;
  highway.num_days = 3;
  highway.steps_per_day = 24;
  highway.seed = 6;
  SimulatorConfig urban = highway;
  urban.kind = RegionKind::kUrban;
  urban.area_km = 5.0;

  auto mean_of = [](const SpatioTemporalDataset& d) {
    double sum = 0;
    for (float v : d.series.values) sum += v;
    return sum / d.series.values.size();
  };
  EXPECT_GT(mean_of(SimulateDataset(highway)),
            mean_of(SimulateDataset(urban)) + 20.0);
}

TEST(SimulatorExtraTest, AirQualitySitingEffectsPersistent) {
  // Station-level biases must be stable over time: the ratio of two
  // stations' long-run means should differ materially across stations.
  SimulatorConfig config;
  config.kind = RegionKind::kAirQuality;
  config.num_sensors = 30;
  config.num_days = 30;
  config.steps_per_day = 24;
  config.area_km = 120.0;
  config.events_per_day = 0.3;
  config.seed = 7;
  const auto dataset = SimulateDataset(config);

  std::vector<double> means(dataset.num_nodes(), 0.0);
  for (int t = 0; t < dataset.num_steps(); ++t) {
    for (int n = 0; n < dataset.num_nodes(); ++n) {
      means[n] += dataset.series.at(t, n);
    }
  }
  for (auto& m : means) m /= dataset.num_steps();
  const auto [min_it, max_it] = std::minmax_element(means.begin(), means.end());
  EXPECT_GT(*max_it / *min_it, 1.3)
      << "station siting effects must spread long-run station levels";
}

TEST(RegistryExtraTest, MergedRegionIsLargerThanParts) {
  const auto merged = MakeMergedFreewayRegion(80, 5);
  EXPECT_EQ(merged.num_nodes(), 80);
  double min_x = 1e18, max_x = -1e18;
  for (const auto& p : merged.coords) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  EXPECT_GT(max_x - min_x, 50.0) << "merged region spans both districts";
}

TEST(RegistryExtraTest, DensityVariantsShareArea) {
  const auto sparse = MakePems08WithDensity(40);
  const auto dense = MakePems08WithDensity(120);
  EXPECT_EQ(sparse.num_nodes(), 40);
  EXPECT_EQ(dense.num_nodes(), 120);
  // Same fixed area: the bounding boxes should be comparable.
  auto span = [](const SpatioTemporalDataset& d) {
    double min_x = 1e18, max_x = -1e18;
    for (const auto& p : d.coords) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
    }
    return max_x - min_x;
  };
  EXPECT_NEAR(span(sparse), span(dense), 12.0);
}

TEST(RegistryExtraTest, DensitySeedsReproducible) {
  const auto a = MakePems08WithDensity(40, 9);
  const auto b = MakePems08WithDensity(40, 9);
  EXPECT_EQ(a.series.values, b.series.values);
}

}  // namespace
}  // namespace stsm
