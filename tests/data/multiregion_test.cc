// Tests for the multiple-unobserved-regions extension (paper Section 6
// future work).

#include <cmath>
#include <set>

#include "core/stsm.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"
#include "masking/masking.h"

namespace stsm {
namespace {

std::vector<GeoPoint> LineCoords(int n) {
  std::vector<GeoPoint> coords;
  for (int i = 0; i < n; ++i) {
    coords.push_back({static_cast<double>(i), 0.0});
  }
  return coords;
}

TEST(MultiRegionSplitTest, RegionsAreDisjointAndCoverTest) {
  const auto coords = LineCoords(60);
  const SpaceSplit split =
      SplitSpaceMultiRegion(coords, SplitAxis::kVertical, 3, 0.5);
  ASSERT_EQ(split.test_regions.size(), 3u);
  std::set<int> union_of_regions;
  size_t total = 0;
  for (const auto& region : split.test_regions) {
    EXPECT_FALSE(region.empty());
    union_of_regions.insert(region.begin(), region.end());
    total += region.size();
  }
  EXPECT_EQ(total, union_of_regions.size()) << "regions must be disjoint";
  EXPECT_EQ(union_of_regions, std::set<int>(split.test.begin(),
                                            split.test.end()));
}

TEST(MultiRegionSplitTest, RatioApproximatelyRespected) {
  const auto coords = LineCoords(100);
  for (int regions : {1, 2, 4}) {
    const SpaceSplit split =
        SplitSpaceMultiRegion(coords, SplitAxis::kVertical, regions, 0.5);
    EXPECT_NEAR(static_cast<double>(split.test.size()) / 100.0, 0.5, 0.06)
        << regions << " regions";
  }
}

TEST(MultiRegionSplitTest, BandsAlternateAlongAxis) {
  const auto coords = LineCoords(40);
  const SpaceSplit split =
      SplitSpaceMultiRegion(coords, SplitAxis::kVertical, 2, 0.5);
  // With points on a line at x = i, region r's members must all lie right
  // of region r-1's members.
  ASSERT_EQ(split.test_regions.size(), 2u);
  EXPECT_LT(split.test_regions[0].back(), split.test_regions[1].front());
  // First observed band lies left of the first unobserved band.
  EXPECT_LT(split.train.front(), split.test_regions[0].front());
}

TEST(MultiRegionSplitTest, SingleRegionMatchesTestRegionsAccessor) {
  const auto coords = LineCoords(40);
  const SpaceSplit plain = SplitSpace(coords, SplitAxis::kVertical);
  ASSERT_TRUE(plain.test_regions.empty());
  const auto regions = plain.TestRegions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], plain.test);
}

TEST(MultiRegionMaskingTest, NearestRegionScoring) {
  // Two unobserved regions at the two ends of a line; observed nodes near
  // EITHER end should get high proximity (union-centroid scoring would
  // favour the middle instead).
  const auto coords = LineCoords(30);
  std::vector<NodeMetadata> metadata(30);
  std::vector<int> observed, left_region, right_region;
  for (int i = 8; i < 22; ++i) observed.push_back(i);
  for (int i = 0; i < 8; ++i) left_region.push_back(i);
  for (int i = 22; i < 30; ++i) right_region.push_back(i);

  const auto distances = PairwiseDistances(coords);
  const Tensor a_sg =
      GaussianThresholdAdjacency(distances, 30, 0.9, 0.0, true);
  MaskingConfig config;
  config.top_k = 30;
  const MaskingContext context = BuildMaskingContext(
      a_sg, coords, metadata, observed, {left_region, right_region}, config);

  // Observed endpoints (nodes 8 and 21) should out-score the middle
  // (node 15) on proximity.
  const auto index_of = [&](int node) {
    for (size_t i = 0; i < context.observed.size(); ++i) {
      if (context.observed[i] == node) return i;
    }
    return size_t{0};
  };
  EXPECT_GT(context.proximity[index_of(8)], context.proximity[index_of(15)]);
  EXPECT_GT(context.proximity[index_of(21)], context.proximity[index_of(15)]);
}

TEST(MultiRegionIntegrationTest, StsmTrainsOnTwoRegions) {
  SimulatorConfig sim;
  sim.kind = RegionKind::kHighway;
  sim.num_sensors = 48;
  sim.num_days = 4;
  sim.steps_per_day = 48;
  sim.area_km = 25.0;
  sim.seed = 31;
  const auto dataset = SimulateDataset(sim);
  const SpaceSplit split =
      SplitSpaceMultiRegion(dataset.coords, SplitAxis::kVertical, 2, 0.5);

  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.top_k = 16;
  config.dtw_band = 6;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
  EXPECT_GT(result.metrics.count, 0);
  EXPECT_LT(result.metrics.rmse, 60.0);
}

}  // namespace
}  // namespace stsm
