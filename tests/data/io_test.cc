// Tests for CSV dataset I/O and SVG map rendering.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/csv_io.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "data/svg_map.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

SpatioTemporalDataset TinyDataset() {
  SimulatorConfig config;
  config.name = "csv-io-test";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 12;
  config.num_days = 2;
  config.steps_per_day = 12;
  config.area_km = 10.0;
  config.seed = 77;
  return SimulateDataset(config);
}

class CsvIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    directory_ = "/tmp/stsm_csv_io_test";
    std::filesystem::create_directories(directory_);
  }
  void TearDown() override { std::filesystem::remove_all(directory_); }
  std::string directory_;
};

TEST_F(CsvIoTest, RoundTripPreservesEverything) {
  const SpatioTemporalDataset original = TinyDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, directory_));
  const auto loaded = LoadDatasetCsv(directory_);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->steps_per_day, original.steps_per_day);
  ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded->num_steps(), original.num_steps());
  for (int i = 0; i < original.num_nodes(); ++i) {
    EXPECT_NEAR(loaded->coords[i].x, original.coords[i].x, 1e-4);
    EXPECT_NEAR(loaded->coords[i].y, original.coords[i].y, 1e-4);
    EXPECT_NEAR(loaded->metadata[i].scale, original.metadata[i].scale, 1e-3);
    EXPECT_FLOAT_EQ(loaded->metadata[i].lanes, original.metadata[i].lanes);
    for (int c = 0; c < kNumPoiCategories; ++c) {
      EXPECT_FLOAT_EQ(loaded->metadata[i].poi_counts[c],
                      original.metadata[i].poi_counts[c]);
    }
  }
  for (int t = 0; t < original.num_steps(); ++t) {
    for (int n = 0; n < original.num_nodes(); ++n) {
      EXPECT_NEAR(loaded->series.at(t, n), original.series.at(t, n), 1e-3);
    }
  }
}

TEST_F(CsvIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDatasetCsv("/tmp/stsm_no_such_dir_xyz").has_value());
}

TEST_F(CsvIoTest, DimensionMismatchRejected) {
  ASSERT_TRUE(SaveDatasetCsv(TinyDataset(), directory_));
  // Append a malformed short row to series.csv.
  std::ofstream series(directory_ + "/series.csv", std::ios::app);
  series << "1.0,2.0\n";
  series.close();
  EXPECT_FALSE(LoadDatasetCsv(directory_).has_value());
}

TEST_F(CsvIoTest, GarbageValuesRejected) {
  ASSERT_TRUE(SaveDatasetCsv(TinyDataset(), directory_));
  std::ofstream series(directory_ + "/series.csv", std::ios::trunc);
  series << "sensor_0\n";
  for (int t = 0; t < 5; ++t) series << "not_a_number\n";
  series.close();
  EXPECT_FALSE(LoadDatasetCsv(directory_).has_value());
}

TEST(SvgMapTest, SensorMapContainsAllDots) {
  const auto dataset = TinyDataset();
  const std::string svg = RenderSensorMapSvg(dataset.coords);
  size_t circles = 0;
  for (size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, static_cast<size_t>(dataset.num_nodes()));
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgMapTest, SplitMapUsesPaperColours) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const std::string svg = RenderSplitMapSvg(dataset.coords, split);
  EXPECT_NE(svg.find("#cc2222"), std::string::npos);  // Train red.
  EXPECT_NE(svg.find("#ee88aa"), std::string::npos);  // Validation pink.
  EXPECT_NE(svg.find("#2255cc"), std::string::npos);  // Test blue.
  EXPECT_NE(svg.find("unobserved"), std::string::npos);  // Legend labels.
}

TEST(SvgMapTest, TitleRendered) {
  const auto dataset = TinyDataset();
  SvgMapOptions options;
  options.title = "hello map";
  const std::string svg = RenderSensorMapSvg(dataset.coords, options);
  EXPECT_NE(svg.find("hello map"), std::string::npos);
}

TEST(SvgMapTest, WriteSvgCreatesFile) {
  const auto dataset = TinyDataset();
  const std::string path = "/tmp/stsm_svg_test.svg";
  ASSERT_TRUE(WriteSvg(RenderSensorMapSvg(dataset.coords), path));
  std::ifstream file(path);
  EXPECT_TRUE(file.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stsm
