#include <algorithm>
#include <cmath>
#include <set>

#include "data/metadata.h"
#include "data/metrics.h"
#include "data/normalizer.h"
#include "data/registry.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "data/windows.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

SimulatorConfig SmallHighway() {
  SimulatorConfig config;
  config.name = "test-highway";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 40;
  config.num_days = 3;
  config.steps_per_day = 48;  // Half-hourly to keep the test fast.
  config.area_km = 30.0;
  config.seed = 7;
  return config;
}

TEST(SimulatorTest, ShapesAndRanges) {
  const auto dataset = SimulateDataset(SmallHighway());
  EXPECT_EQ(dataset.num_nodes(), 40);
  EXPECT_EQ(dataset.num_steps(), 3 * 48);
  EXPECT_EQ(dataset.metadata.size(), 40u);
  for (float v : dataset.series.values) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 130.0f);  // Speeds bounded by free flow.
  }
}

TEST(SimulatorTest, DeterministicForSeed) {
  const auto a = SimulateDataset(SmallHighway());
  const auto b = SimulateDataset(SmallHighway());
  EXPECT_EQ(a.series.values, b.series.values);
  EXPECT_EQ(a.coords.size(), b.coords.size());
  for (size_t i = 0; i < a.coords.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coords[i].x, b.coords[i].x);
  }
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  auto config = SmallHighway();
  const auto a = SimulateDataset(config);
  config.seed = 8;
  const auto b = SimulateDataset(config);
  EXPECT_NE(a.series.values, b.series.values);
}

TEST(SimulatorTest, RushHourSlowdownPresent) {
  // Weekday 8am speeds should be lower on average than 3am speeds.
  auto config = SmallHighway();
  config.steps_per_day = 24;  // Hourly for easy slot picking.
  config.num_days = 5;        // All weekdays.
  const auto dataset = SimulateDataset(config);
  double rush = 0.0, night = 0.0;
  int count = 0;
  for (int day = 0; day < 5; ++day) {
    for (int n = 0; n < dataset.num_nodes(); ++n) {
      rush += dataset.series.at(day * 24 + 8, n);
      night += dataset.series.at(day * 24 + 3, n);
      ++count;
    }
  }
  EXPECT_LT(rush / count, night / count - 3.0)
      << "morning rush must slow traffic measurably";
}

TEST(SimulatorTest, SpatialCorrelationDecaysWithDistance) {
  // Correlation of detrended series between near pairs should exceed the
  // correlation between far pairs.
  auto config = SmallHighway();
  config.num_sensors = 50;
  config.num_days = 4;
  const auto dataset = SimulateDataset(config);
  const int steps = dataset.num_steps();
  const int n = dataset.num_nodes();

  // Detrend by removing each node's mean.
  std::vector<double> means(n, 0.0);
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) means[i] += dataset.series.at(t, i);
  }
  for (auto& m : means) m /= steps;
  auto corr = [&](int i, int j) {
    double cij = 0, cii = 0, cjj = 0;
    for (int t = 0; t < steps; ++t) {
      const double a = dataset.series.at(t, i) - means[i];
      const double b = dataset.series.at(t, j) - means[j];
      cij += a * b;
      cii += a * a;
      cjj += b * b;
    }
    return cij / std::sqrt(cii * cjj + 1e-9);
  };

  double near_corr = 0, far_corr = 0;
  int near_count = 0, far_count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = Distance(dataset.coords[i], dataset.coords[j]);
      if (d < 3.0) {
        near_corr += corr(i, j);
        ++near_count;
      } else if (d > 20.0) {
        far_corr += corr(i, j);
        ++far_count;
      }
    }
  }
  ASSERT_GT(near_count, 0);
  ASSERT_GT(far_count, 0);
  EXPECT_GT(near_corr / near_count, far_corr / far_count + 0.03);
}

TEST(SimulatorTest, AirQualityProducesLargeValues) {
  SimulatorConfig config;
  config.kind = RegionKind::kAirQuality;
  config.num_sensors = 30;
  config.num_days = 10;
  config.steps_per_day = 24;
  config.area_km = 140.0;
  config.events_per_day = 0.4;
  const auto dataset = SimulateDataset(config);
  double mean = 0.0;
  for (float v : dataset.series.values) {
    EXPECT_GE(v, 2.0f);
    mean += v;
  }
  mean /= dataset.series.values.size();
  EXPECT_GT(mean, 30.0);  // PM2.5-like magnitudes.
  EXPECT_LT(mean, 400.0);
}

TEST(SimulatorTest, MetadataSimilarityCorrelatesWithProximity) {
  // Nearby nodes share activity centres, so their metadata embeddings
  // should be more similar than far-apart nodes' embeddings on average.
  auto config = SmallHighway();
  config.num_sensors = 60;
  const auto dataset = SimulateDataset(config);
  double near_sim = 0, far_sim = 0;
  int near_count = 0, far_count = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      const double d = Distance(dataset.coords[i], dataset.coords[j]);
      const double s = CosineSimilarity(dataset.metadata[i].Embedding(),
                                        dataset.metadata[j].Embedding());
      if (d < 3.0) {
        near_sim += s;
        ++near_count;
      } else if (d > 20.0) {
        far_sim += s;
        ++far_count;
      }
    }
  }
  ASSERT_GT(near_count, 0);
  ASSERT_GT(far_count, 0);
  EXPECT_GT(near_sim / near_count, far_sim / far_count);
}

TEST(MetadataTest, EmbeddingLayout) {
  NodeMetadata meta;
  meta.poi_counts[0] = 3.0f;
  meta.scale = 7.0f;
  meta.highway_level = 4.0f;
  meta.maxspeed = 100.0f;
  meta.is_oneway = 1.0f;
  meta.lanes = 3.0f;
  const auto e = meta.Embedding();
  ASSERT_EQ(static_cast<int>(e.size()), kMetadataEmbeddingDim);
  EXPECT_FLOAT_EQ(e[0], 3.0f);
  EXPECT_FLOAT_EQ(e[kNumPoiCategories], 7.0f);
  EXPECT_FLOAT_EQ(e[kNumPoiCategories + 1], 4.0f);
  EXPECT_FLOAT_EQ(e.back(), 3.0f);
}

TEST(MetadataTest, CosineSimilarityProperties) {
  const std::vector<float> a = {1, 0, 0};
  const std::vector<float> b = {0, 1, 0};
  const std::vector<float> c = {2, 0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-9);
}

TEST(SplitsTest, FractionsRespected) {
  Rng rng(15);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 100; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit split = SplitSpace(coords, SplitAxis::kVertical);
  EXPECT_EQ(split.train.size(), 40u);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 50u);
}

TEST(SplitsTest, PartitionIsDisjointAndComplete) {
  Rng rng(16);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 57; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit split = SplitSpace(coords, SplitAxis::kHorizontal);
  std::set<int> all;
  all.insert(split.train.begin(), split.train.end());
  all.insert(split.validation.begin(), split.validation.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 57u);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(),
            57u);
}

TEST(SplitsTest, VerticalSplitIsSpatiallyContiguous) {
  Rng rng(17);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 80; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit split = SplitSpace(coords, SplitAxis::kVertical);
  double max_train_x = -1e9, min_test_x = 1e9;
  for (int i : split.train) max_train_x = std::max(max_train_x, coords[i].x);
  for (int i : split.test) min_test_x = std::min(min_test_x, coords[i].x);
  EXPECT_LE(max_train_x, min_test_x)
      << "train band must lie entirely left of the test band";
}

TEST(SplitsTest, ReverseFlipsSides) {
  Rng rng(18);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 60; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit normal = SplitSpace(coords, SplitAxis::kVertical);
  const SpaceSplit reversed = SplitSpace(coords, SplitAxis::kVertical, 0.4,
                                         0.1, /*reverse=*/true);
  // The reversed test set should overlap the normal train side.
  std::set<int> normal_train(normal.train.begin(), normal.train.end());
  int overlap = 0;
  for (int i : reversed.test) overlap += normal_train.count(i);
  EXPECT_GT(overlap, static_cast<int>(normal.train.size()) / 2);
}

TEST(SplitsTest, RingSplitCenterIsTrain) {
  std::vector<GeoPoint> coords;
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit split = SplitSpaceRing(coords);
  const GeoPoint center = Centroid(coords);
  double max_train_r = 0, min_test_r = 1e9;
  for (int i : split.train) {
    max_train_r = std::max(max_train_r, Distance(coords[i], center));
  }
  for (int i : split.test) {
    min_test_r = std::min(min_test_r, Distance(coords[i], center));
  }
  EXPECT_LE(max_train_r, min_test_r);
}

TEST(SplitsTest, RatioSplitMatchesRequestedUnobservedShare) {
  std::vector<GeoPoint> coords;
  Rng rng(20);
  for (int i = 0; i < 100; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  for (double ratio : {0.2, 0.3, 0.4, 0.5}) {
    const SpaceSplit split =
        SplitSpaceWithRatio(coords, SplitAxis::kHorizontal, ratio);
    EXPECT_NEAR(static_cast<double>(split.test.size()) / 100.0, ratio, 0.02);
  }
}

TEST(SplitsTest, FourSplitsAreDistinct) {
  std::vector<GeoPoint> coords;
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto splits = FourSplits(coords);
  ASSERT_EQ(splits.size(), 4u);
  std::set<std::vector<int>> test_sets;
  for (const auto& s : splits) test_sets.insert(s.test);
  EXPECT_EQ(test_sets.size(), 4u);
}

TEST(SplitsTest, TimeSplit) {
  const TimeSplit split = SplitTime(1000, 0.7);
  EXPECT_EQ(split.train_steps, 700);
  EXPECT_EQ(split.total_steps, 1000);
}

TEST(MetricsTest, PerfectPrediction) {
  const std::vector<float> y = {10, 20, 30};
  const Metrics m = ComputeMetrics(y, y);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.mape, 0.0);
  EXPECT_DOUBLE_EQ(m.r2, 1.0);
}

TEST(MetricsTest, KnownValues) {
  const std::vector<float> pred = {1, 2, 3};
  const std::vector<float> target = {2, 2, 5};
  const Metrics m = ComputeMetrics(pred, target);
  EXPECT_NEAR(m.mae, (1 + 0 + 2) / 3.0, 1e-9);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 0.0 + 4.0) / 3.0), 1e-9);
  EXPECT_NEAR(m.mape, (0.5 + 0.0 + 0.4) / 3.0, 1e-6);
}

TEST(MetricsTest, MeanPredictorHasZeroR2) {
  const std::vector<float> target = {1, 2, 3, 4};
  const std::vector<float> mean_pred(4, 2.5f);
  EXPECT_NEAR(ComputeMetrics(mean_pred, target).r2, 0.0, 1e-9);
}

TEST(MetricsTest, WorseThanMeanGivesNegativeR2) {
  const std::vector<float> target = {1, 2, 3, 4};
  const std::vector<float> bad = {4, 3, 2, 1};
  EXPECT_LT(ComputeMetrics(bad, target).r2, 0.0);
}

TEST(MetricsTest, MapeSkipsTinyTargets) {
  const std::vector<float> pred = {1.0f, 5.0f};
  const std::vector<float> target = {0.0f, 10.0f};  // First is skipped.
  const Metrics m = ComputeMetrics(pred, target, /*mape_threshold=*/1.0);
  EXPECT_NEAR(m.mape, 0.5, 1e-9);
}

TEST(MetricsTest, AccumulatorMatchesBatch) {
  const std::vector<float> pred = {1, 2, 3, 4};
  const std::vector<float> target = {2, 2, 2, 2};
  MetricsAccumulator acc;
  acc.AddAll({1, 2}, {2, 2});
  acc.Add(3, 2);
  acc.Add(4, 2);
  const Metrics a = acc.Compute();
  const Metrics b = ComputeMetrics(pred, target);
  EXPECT_DOUBLE_EQ(a.rmse, b.rmse);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
  EXPECT_DOUBLE_EQ(a.r2, b.r2);
}

TEST(NormalizerTest, RoundTrip) {
  SeriesMatrix series(10, 2);
  Rng rng(22);
  for (auto& v : series.values) v = static_cast<float>(rng.Uniform(50, 70));
  Normalizer norm;
  norm.Fit(series, {0, 1}, 10);
  const float original = series.at(3, 1);
  const float transformed = norm.Transform(original);
  EXPECT_NEAR(norm.Inverse(transformed), original, 1e-4);
}

TEST(NormalizerTest, TransformedStatsStandard) {
  SeriesMatrix series(200, 3);
  Rng rng(23);
  for (auto& v : series.values) v = static_cast<float>(rng.Normal(60, 12));
  Normalizer norm;
  norm.Fit(series, {0, 1, 2}, 200);
  norm.TransformInPlace(&series);
  double mean = 0;
  for (float v : series.values) mean += v;
  mean /= series.values.size();
  double var = 0;
  for (float v : series.values) var += (v - mean) * (v - mean);
  var /= series.values.size();
  EXPECT_NEAR(mean, 0.0, 1e-3);
  EXPECT_NEAR(var, 1.0, 1e-2);
}

TEST(NormalizerTest, ConstantSeriesSafe) {
  SeriesMatrix series(5, 1);
  for (auto& v : series.values) v = 42.0f;
  Normalizer norm;
  norm.Fit(series, {0}, 5);
  EXPECT_FLOAT_EQ(norm.Transform(42.0f), 0.0f);
}

TEST(WindowsTest, ValidStartsRespectRange) {
  WindowSpec spec{4, 2};
  const auto starts = ValidWindowStarts(10, 20, spec);
  EXPECT_EQ(starts.front(), 10);
  EXPECT_EQ(starts.back(), 14);  // 14 + 4 + 2 = 20.
}

TEST(WindowsTest, StrideSubsamples) {
  WindowSpec spec{2, 1};
  const auto starts = ValidWindowStarts(0, 20, spec, /*stride=*/5);
  EXPECT_EQ(starts, (std::vector<int>{0, 5, 10, 15}));
}

TEST(WindowsTest, BatchContents) {
  SeriesMatrix series(10, 2);
  for (int t = 0; t < 10; ++t) {
    series.set(t, 0, static_cast<float>(t));
    series.set(t, 1, static_cast<float>(10 * t));
  }
  WindowSpec spec{3, 2};
  const WindowBatch batch = MakeWindowBatch(series, {1, 4}, spec, 10);
  EXPECT_EQ(batch.inputs.shape(), Shape({2, 3, 2, 1}));
  EXPECT_EQ(batch.targets.shape(), Shape({2, 2, 2, 1}));
  EXPECT_EQ(batch.input_time.shape(), Shape({2, 3, 3}));
  // First window: input steps 1..3, targets 4..5.
  EXPECT_FLOAT_EQ(batch.inputs.at({0, 0, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(batch.inputs.at({0, 2, 1, 0}), 30.0f);
  EXPECT_FLOAT_EQ(batch.targets.at({0, 0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(batch.targets.at({0, 1, 1, 0}), 50.0f);
  // Second window: input steps 4..6.
  EXPECT_FLOAT_EQ(batch.inputs.at({1, 0, 0, 0}), 4.0f);
}

TEST(WindowsTest, SampledStartsAreValid) {
  Rng rng(24);
  WindowSpec spec{4, 4};
  const auto starts = SampleWindowStarts(0, 100, spec, 10, &rng);
  EXPECT_EQ(starts.size(), 10u);
  for (int s : starts) {
    EXPECT_GE(s, 0);
    EXPECT_LE(s + 8, 100);
  }
}

TEST(RegistryTest, AllDatasetsConstructible) {
  for (const auto& name : RegisteredDatasets()) {
    const SimulatorConfig config = DatasetConfig(name, DataScale::kFast);
    EXPECT_EQ(config.name, name);
    EXPECT_GE(config.num_sensors, 40);
  }
  EXPECT_TRUE(IsRegisteredDataset("bay-sim"));
  EXPECT_FALSE(IsRegisteredDataset("nope"));
}

TEST(RegistryTest, AirqMatchesPaperSensorCount) {
  const SimulatorConfig config = DatasetConfig("airq-sim", DataScale::kFull);
  EXPECT_EQ(config.num_sensors, 63);
  EXPECT_EQ(config.steps_per_day, 24);
}

TEST(RegistryTest, FullScaleMatchesPaperCounts) {
  EXPECT_EQ(DatasetConfig("bay-sim", DataScale::kFull).num_sensors, 325);
  EXPECT_EQ(DatasetConfig("pems07-sim", DataScale::kFull).num_sensors, 400);
  EXPECT_EQ(DatasetConfig("melbourne-sim", DataScale::kFull).num_sensors, 182);
}

TEST(RegistryTest, SelectSensorsKeepsAlignment) {
  SimulatorConfig config = SmallHighway();
  const auto dataset = SimulateDataset(config);
  const auto subset = SelectSensors(dataset, {5, 10, 20});
  EXPECT_EQ(subset.num_nodes(), 3);
  EXPECT_EQ(subset.num_steps(), dataset.num_steps());
  EXPECT_DOUBLE_EQ(subset.coords[1].x, dataset.coords[10].x);
  EXPECT_FLOAT_EQ(subset.series.at(7, 2), dataset.series.at(7, 20));
  EXPECT_FLOAT_EQ(subset.metadata[0].scale, dataset.metadata[5].scale);
}

}  // namespace
}  // namespace stsm
