#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/precision.h"
#include "tensor/dtype.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "/tmp/stsm_serialize_test.bin";
};

TEST_F(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  const std::vector<Tensor> tensors = {
      Tensor::Uniform(Shape({3, 4}), -1, 1, &rng),
      Tensor::Scalar(42.0f),
      Tensor::Uniform(Shape({2, 2, 2}), -5, 5, &rng),
  };
  ASSERT_TRUE(SaveTensors(tensors, path_));
  const std::vector<Tensor> loaded = LoadTensors(path_);
  ASSERT_EQ(loaded.size(), tensors.size());
  for (size_t t = 0; t < tensors.size(); ++t) {
    ASSERT_EQ(loaded[t].shape(), tensors[t].shape());
    for (int64_t i = 0; i < tensors[t].numel(); ++i) {
      EXPECT_FLOAT_EQ(loaded[t].data()[i], tensors[t].data()[i]);
    }
  }
}

TEST_F(SerializeTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(LoadTensors("/tmp/stsm_no_such_file.bin").empty());
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTVALIDDATA";
  out.close();
  EXPECT_TRUE(LoadTensors(path_).empty());
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  Rng rng(2);
  ASSERT_TRUE(SaveTensors({Tensor::Uniform(Shape({10, 10}), -1, 1, &rng)},
                          path_));
  // Truncate to half the size.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<char> half(static_cast<size_t>(size) / 2);
  in.read(half.data(), half.size());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(half.data(), half.size());
  out.close();
  EXPECT_TRUE(LoadTensors(path_).empty());
}

TEST_F(SerializeTest, TrailingBytesRejected) {
  // Regression: a checkpoint with extra bytes after the declared tensor
  // payload (concatenated files, partial overwrite) must not load silently.
  Rng rng(4);
  ASSERT_TRUE(
      SaveTensors({Tensor::Uniform(Shape({3, 3}), -1, 1, &rng)}, path_));
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_TRUE(LoadTensors(path_).empty());

  Linear module(3, 3, &rng);
  ASSERT_TRUE(SaveModule(module, path_));
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const char zero = '\0';  // Even a single trailing byte is rejected.
    out.write(&zero, 1);
  }
  const float before = module.Parameters()[0].data()[0];
  EXPECT_FALSE(LoadModule(&module, path_));
  EXPECT_FLOAT_EQ(module.Parameters()[0].data()[0], before);
}

TEST_F(SerializeTest, Bf16TensorRoundTripIsBitExact) {
  Rng rng(10);
  const Tensor f32 = Tensor::Uniform(Shape({4, 5}), -2, 2, &rng);
  const Tensor bf16 = To(f32, DType::kBf16);
  ASSERT_TRUE(SaveTensors({bf16}, path_));
  const std::vector<Tensor> loaded = LoadTensors(path_);
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].dtype(), DType::kBf16);
  ASSERT_EQ(loaded[0].shape(), bf16.shape());
  for (int64_t i = 0; i < bf16.numel(); ++i) {
    EXPECT_EQ(loaded[0].impl()->storage->bf16_data()[i],
              bf16.impl()->storage->bf16_data()[i]);
  }
}

TEST_F(SerializeTest, LegacyV1CheckpointLoadsAsF32) {
  // Hand-written v1 file: no dtype tag between dims and payload. Old
  // checkpoints in the wild must keep loading, as fp32 by definition.
  const float values[3] = {1.5f, -2.25f, 0.125f};
  {
    std::ofstream out(path_, std::ios::binary);
    out.write("STSMTNSR", 8);
    const uint32_t version = 1, count = 1, ndim = 1;
    const int64_t dim = 3;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(values), sizeof(values));
  }
  const std::vector<Tensor> loaded = LoadTensors(path_);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].dtype(), DType::kF32);
  ASSERT_EQ(loaded[0].shape(), Shape({3}));
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(loaded[0].data()[i], values[i]);
  }
}

TEST_F(SerializeTest, UnknownDtypeTagRejectedLoudly) {
  // A tag this reader does not know must be a hard failure with a
  // diagnostic — never a silent fp32 reinterpretation of the payload.
  {
    std::ofstream out(path_, std::ios::binary);
    out.write("STSMTNSR", 8);
    const uint32_t version = 2, count = 1, ndim = 1, tag = 7;
    const int64_t dim = 2;
    const float payload[2] = {1.0f, 2.0f};
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    out.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
    out.write(reinterpret_cast<const char*>(payload), sizeof(payload));
  }
  testing::internal::CaptureStderr();
  const std::vector<Tensor> loaded = LoadTensors(path_);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(loaded.empty());
  EXPECT_NE(err.find("unknown dtype tag 7"), std::string::npos) << err;
}

TEST_F(SerializeTest, TrailingBytesRejectedForBf16) {
  // The whole-file accounting must hold for 2-byte elements too: a bf16
  // tensor followed by stray bytes (or a bf16 tag over an fp32-sized
  // payload) cannot load.
  Rng rng(11);
  const Tensor bf16 =
      To(Tensor::Uniform(Shape({3, 3}), -1, 1, &rng), DType::kBf16);
  ASSERT_TRUE(SaveTensors({bf16}, path_));
  ASSERT_EQ(LoadTensors(path_).size(), 1u);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const char zero = '\0';
    out.write(&zero, 1);
  }
  EXPECT_TRUE(LoadTensors(path_).empty());
}

TEST_F(SerializeTest, Bf16CheckpointLoadsIntoF32ModuleWidened) {
  // Serving writes bf16 checkpoints; loading one back into an fp32 module
  // must widen exactly (bf16 -> fp32 is lossless).
  Rng rng(12);
  Linear served(4, 3, &rng);
  CastModuleForServing(&served, DType::kBf16);
  ASSERT_TRUE(SaveModule(served, path_));

  Rng rng_b(13);
  Linear restored(4, 3, &rng_b);
  ASSERT_TRUE(LoadModule(&restored, path_));
  const auto served_params = served.Parameters();
  const auto restored_params = restored.Parameters();
  ASSERT_EQ(served_params.size(), restored_params.size());
  for (size_t p = 0; p < served_params.size(); ++p) {
    ASSERT_EQ(restored_params[p].dtype(), DType::kF32);
    for (int64_t i = 0; i < served_params[p].numel(); ++i) {
      EXPECT_EQ(restored_params[p].data()[i],
                F32FromBf16(served_params[p].impl()->storage->bf16_data()[i]));
    }
  }
}

TEST_F(SerializeTest, ModuleRoundTripRestoresBehaviour) {
  Rng rng_a(3);
  Linear original(4, 3, &rng_a);
  ASSERT_TRUE(SaveModule(original, path_));

  Rng rng_b(99);  // Different init.
  Linear restored(4, 3, &rng_b);
  ASSERT_TRUE(LoadModule(&restored, path_));

  Rng data_rng(5);
  const Tensor x = Tensor::Uniform(Shape({2, 4}), -1, 1, &data_rng);
  const Tensor y_original = original.Forward(x);
  const Tensor y_restored = restored.Forward(x);
  for (int64_t i = 0; i < y_original.numel(); ++i) {
    EXPECT_FLOAT_EQ(y_original.data()[i], y_restored.data()[i]);
  }
}

TEST_F(SerializeTest, ShapeMismatchLeavesModuleUntouched) {
  Rng rng(6);
  Linear small(2, 2, &rng);
  ASSERT_TRUE(SaveModule(small, path_));
  Linear big(4, 4, &rng);
  const float before = big.Parameters()[0].data()[0];
  EXPECT_FALSE(LoadModule(&big, path_));
  EXPECT_FLOAT_EQ(big.Parameters()[0].data()[0], before);
}

TEST_F(SerializeTest, GruRoundTrip) {
  Rng rng_a(7);
  Gru original(3, 5, &rng_a);
  ASSERT_TRUE(SaveModule(original, path_));
  Rng rng_b(8);
  Gru restored(3, 5, &rng_b);
  ASSERT_TRUE(LoadModule(&restored, path_));
  Rng data_rng(9);
  const Tensor seq = Tensor::Uniform(Shape({2, 6, 3}), -1, 1, &data_rng);
  const Tensor a = original.ForwardFinal(seq);
  const Tensor b = restored.ForwardFinal(seq);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace stsm
