#include "nn/serialize.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "/tmp/stsm_serialize_test.bin";
};

TEST_F(SerializeTest, TensorRoundTrip) {
  Rng rng(1);
  const std::vector<Tensor> tensors = {
      Tensor::Uniform(Shape({3, 4}), -1, 1, &rng),
      Tensor::Scalar(42.0f),
      Tensor::Uniform(Shape({2, 2, 2}), -5, 5, &rng),
  };
  ASSERT_TRUE(SaveTensors(tensors, path_));
  const std::vector<Tensor> loaded = LoadTensors(path_);
  ASSERT_EQ(loaded.size(), tensors.size());
  for (size_t t = 0; t < tensors.size(); ++t) {
    ASSERT_EQ(loaded[t].shape(), tensors[t].shape());
    for (int64_t i = 0; i < tensors[t].numel(); ++i) {
      EXPECT_FLOAT_EQ(loaded[t].data()[i], tensors[t].data()[i]);
    }
  }
}

TEST_F(SerializeTest, MissingFileReturnsEmpty) {
  EXPECT_TRUE(LoadTensors("/tmp/stsm_no_such_file.bin").empty());
}

TEST_F(SerializeTest, CorruptMagicRejected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTVALIDDATA";
  out.close();
  EXPECT_TRUE(LoadTensors(path_).empty());
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  Rng rng(2);
  ASSERT_TRUE(SaveTensors({Tensor::Uniform(Shape({10, 10}), -1, 1, &rng)},
                          path_));
  // Truncate to half the size.
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<char> half(static_cast<size_t>(size) / 2);
  in.read(half.data(), half.size());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(half.data(), half.size());
  out.close();
  EXPECT_TRUE(LoadTensors(path_).empty());
}

TEST_F(SerializeTest, TrailingBytesRejected) {
  // Regression: a checkpoint with extra bytes after the declared tensor
  // payload (concatenated files, partial overwrite) must not load silently.
  Rng rng(4);
  ASSERT_TRUE(
      SaveTensors({Tensor::Uniform(Shape({3, 3}), -1, 1, &rng)}, path_));
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_TRUE(LoadTensors(path_).empty());

  Linear module(3, 3, &rng);
  ASSERT_TRUE(SaveModule(module, path_));
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const char zero = '\0';  // Even a single trailing byte is rejected.
    out.write(&zero, 1);
  }
  const float before = module.Parameters()[0].data()[0];
  EXPECT_FALSE(LoadModule(&module, path_));
  EXPECT_FLOAT_EQ(module.Parameters()[0].data()[0], before);
}

TEST_F(SerializeTest, ModuleRoundTripRestoresBehaviour) {
  Rng rng_a(3);
  Linear original(4, 3, &rng_a);
  ASSERT_TRUE(SaveModule(original, path_));

  Rng rng_b(99);  // Different init.
  Linear restored(4, 3, &rng_b);
  ASSERT_TRUE(LoadModule(&restored, path_));

  Rng data_rng(5);
  const Tensor x = Tensor::Uniform(Shape({2, 4}), -1, 1, &data_rng);
  const Tensor y_original = original.Forward(x);
  const Tensor y_restored = restored.Forward(x);
  for (int64_t i = 0; i < y_original.numel(); ++i) {
    EXPECT_FLOAT_EQ(y_original.data()[i], y_restored.data()[i]);
  }
}

TEST_F(SerializeTest, ShapeMismatchLeavesModuleUntouched) {
  Rng rng(6);
  Linear small(2, 2, &rng);
  ASSERT_TRUE(SaveModule(small, path_));
  Linear big(4, 4, &rng);
  const float before = big.Parameters()[0].data()[0];
  EXPECT_FALSE(LoadModule(&big, path_));
  EXPECT_FLOAT_EQ(big.Parameters()[0].data()[0], before);
}

TEST_F(SerializeTest, GruRoundTrip) {
  Rng rng_a(7);
  Gru original(3, 5, &rng_a);
  ASSERT_TRUE(SaveModule(original, path_));
  Rng rng_b(8);
  Gru restored(3, 5, &rng_b);
  ASSERT_TRUE(LoadModule(&restored, path_));
  Rng data_rng(9);
  const Tensor seq = Tensor::Uniform(Shape({2, 6, 3}), -1, 1, &data_rng);
  const Tensor a = original.ForwardFinal(seq);
  const Tensor b = restored.ForwardFinal(seq);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace stsm
