// Module::SetTraining plumbing: the dropout layer is stochastic in training
// mode, the identity in eval mode, and SetTraining recurses through nested
// modules (StModel -> blocks -> transformer).

#include "nn/dropout.h"

#include "core/st_model.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "timeseries/time_features.h"

namespace stsm {
namespace {

TEST(DropoutLayerTest, TrainingModeDropsAndRescales) {
  DropoutLayer dropout(0.5f, /*seed=*/7);
  EXPECT_TRUE(dropout.is_training());
  const Tensor x = Tensor::Ones(Shape({4, 64}));
  const Tensor y = dropout.Forward(x);
  int zeros = 0, scaled = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.data()[i], 2.0f);  // Inverted dropout: 1 / (1 - p).
      ++scaled;
    }
  }
  EXPECT_GT(zeros, 0);
  EXPECT_GT(scaled, 0);
}

TEST(DropoutLayerTest, EvalModeIsIdentity) {
  DropoutLayer dropout(0.9f, /*seed=*/7);
  dropout.SetTraining(false);
  EXPECT_FALSE(dropout.is_training());
  Rng rng(3);
  const Tensor x = Tensor::Uniform(Shape({3, 5}), -2, 2, &rng);
  const Tensor y = dropout.Forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(DropoutLayerTest, ZeroProbabilityIsIdentityEvenInTraining) {
  DropoutLayer dropout(0.0f, /*seed=*/7);
  const Tensor x = Tensor::Ones(Shape({2, 8}));
  const Tensor y = dropout.Forward(x);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], 1.0f);
  }
}

class StModelTrainingModeTest : public ::testing::Test {
 protected:
  static StsmConfig Config(float dropout) {
    StsmConfig config;
    config.input_length = 6;
    config.horizon = 3;
    config.hidden_dim = 8;
    config.num_blocks = 1;
    config.seed = 17;
    config.dropout = dropout;
    // Transformer path so the nested TransformerEncoderBlock dropout is
    // exercised through the Children() recursion as well.
    config.temporal_module = TemporalModule::kTransformer;
    return config;
  }

  static StModel::Output Forward(const StModel& model,
                                 const StsmConfig& config) {
    constexpr int kNodes = 5;
    Rng rng(9);
    const Tensor x = Tensor::Normal(
        Shape({2, config.input_length, kNodes, 1}), 0.0f, 1.0f, &rng);
    const Tensor time = Unsqueeze(
        TimeOfDayFeatures(TimeOfDayIds(0, config.input_length, 48), 48), 0);
    // Broadcast-free: repeat the time features for both batch entries.
    const Tensor time_batch = Concat({time, time}, 0);
    const Tensor adjacency = Tensor::Eye(kNodes);
    return model.Forward(x, time_batch, adjacency, adjacency);
  }
};

TEST_F(StModelTrainingModeTest, SetTrainingRecursesAndDisablesDropout) {
  const StsmConfig with_dropout = Config(0.5f);
  const StsmConfig no_dropout = Config(0.0f);

  // Dropout modules use fixed seeds (not the shared init rng), so both
  // configs yield identical weights from the same seed.
  Rng rng_a(1);
  StModel model_dropout(with_dropout, &rng_a);
  Rng rng_b(1);
  StModel model_plain(no_dropout, &rng_b);

  model_dropout.SetTraining(false);
  EXPECT_FALSE(model_dropout.is_training());
  const StModel::Output eval_out = Forward(model_dropout, with_dropout);
  const StModel::Output plain_out = Forward(model_plain, no_dropout);
  ASSERT_EQ(eval_out.predictions.shape(), plain_out.predictions.shape());
  for (int64_t i = 0; i < eval_out.predictions.numel(); ++i) {
    ASSERT_EQ(eval_out.predictions.data()[i], plain_out.predictions.data()[i])
        << "eval-mode dropout must be a bitwise no-op";
  }

  // Back in training mode the stochastic masks change the output.
  model_dropout.SetTraining(true);
  EXPECT_TRUE(model_dropout.is_training());
  const StModel::Output train_out = Forward(model_dropout, with_dropout);
  bool any_different = false;
  for (int64_t i = 0; i < train_out.predictions.numel(); ++i) {
    if (train_out.predictions.data()[i] != eval_out.predictions.data()[i]) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different)
      << "training-mode dropout should perturb the forward";
}

}  // namespace
}  // namespace stsm
