#include <cmath>

#include "gtest/gtest.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

TEST(LossTest, MseZeroForIdenticalInputs) {
  const Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(MseLoss(x, x).item(), 0.0f);
}

TEST(LossTest, MseKnownValue) {
  const Tensor a = Tensor::FromVector(Shape({2}), {0.0f, 0.0f});
  const Tensor b = Tensor::FromVector(Shape({2}), {2.0f, 4.0f});
  EXPECT_FLOAT_EQ(MseLoss(a, b).item(), 10.0f);  // (4 + 16) / 2.
}

TEST(LossTest, MaeKnownValue) {
  const Tensor a = Tensor::FromVector(Shape({2}), {0.0f, 0.0f});
  const Tensor b = Tensor::FromVector(Shape({2}), {2.0f, -4.0f});
  EXPECT_FLOAT_EQ(MaeLoss(a, b).item(), 3.0f);
}

TEST(LossTest, BinaryCrossEntropyPerfectPrediction) {
  const Tensor p = Tensor::FromVector(Shape({2}), {0.999999f, 0.000001f});
  const Tensor t = Tensor::FromVector(Shape({2}), {1.0f, 0.0f});
  EXPECT_NEAR(BinaryCrossEntropy(p, t).item(), 0.0f, 1e-4);
}

TEST(LossTest, BinaryCrossEntropyUninformative) {
  const Tensor p = Tensor::Full(Shape({4}), 0.5f);
  const Tensor t = Tensor::FromVector(Shape({4}), {1, 0, 1, 0});
  EXPECT_NEAR(BinaryCrossEntropy(p, t).item(), std::log(2.0f), 1e-5);
}

TEST(LossTest, L2NormalizeRowsUnitNorm) {
  const Tensor x = Tensor::FromVector(Shape({2, 2}), {3, 4, 5, 12});
  const Tensor y = L2NormalizeRows(x);
  EXPECT_NEAR(y.at({0, 0}), 0.6f, 1e-5);
  EXPECT_NEAR(y.at({0, 1}), 0.8f, 1e-5);
  EXPECT_NEAR(y.at({1, 0}), 5.0f / 13.0f, 1e-5);
}

TEST(LossTest, InfoNcePrefersAlignedPairs) {
  // Anchors aligned with their positives and orthogonal to the other pair
  // should yield a lower loss than the mismatched assignment.
  const Tensor anchors =
      Tensor::FromVector(Shape({2, 2}), {1, 0, 0, 1});
  const Tensor matched = Tensor::FromVector(Shape({2, 2}), {1, 0, 0, 1});
  const Tensor mismatched = Tensor::FromVector(Shape({2, 2}), {0, 1, 1, 0});
  const float loss_matched = InfoNceLoss(anchors, matched, 0.5f).item();
  const float loss_mismatched = InfoNceLoss(anchors, mismatched, 0.5f).item();
  EXPECT_LT(loss_matched, loss_mismatched);
}

TEST(LossTest, InfoNceGradientPullsViewsTogether) {
  Rng rng(20);
  Tensor z1 = Tensor::Uniform(Shape({4, 3}), -1, 1, &rng, true);
  Tensor z2 = Tensor::Uniform(Shape({4, 3}), -1, 1, &rng, true);
  const float before = InfoNceLoss(z1, z2, 0.5f).item();
  // A few SGD steps on the contrastive loss should reduce it.
  for (int step = 0; step < 50; ++step) {
    z1.ZeroGrad();
    z2.ZeroGrad();
    Tensor loss = InfoNceLoss(z1, z2, 0.5f);
    loss.Backward();
    for (Tensor* z : {&z1, &z2}) {
      float* d = z->data();
      const float* g = z->grad_data();
      for (int64_t i = 0; i < z->numel(); ++i) d[i] -= 0.1f * g[i];
    }
  }
  const float after = InfoNceLoss(z1, z2, 0.5f).item();
  EXPECT_LT(after, before);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector(Shape({1}), {5.0f}, /*requires_grad=*/true);
  Sgd sgd({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    Sum(Square(x)).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-4);
}

TEST(SgdTest, MomentumAccelerates) {
  Tensor a = Tensor::FromVector(Shape({1}), {5.0f}, true);
  Tensor b = Tensor::FromVector(Shape({1}), {5.0f}, true);
  Sgd plain({a}, 0.01f, 0.0f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    Sum(Square(a)).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Sum(Square(b)).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.item()), std::fabs(a.item()));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::FromVector(Shape({2}), {5.0f, -3.0f}, true);
  Adam adam({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Sum(Square(x)).Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2);
  EXPECT_NEAR(x.data()[1], 0.0f, 1e-2);
}

TEST(AdamTest, FitsLinearRegression) {
  // y = 2x + 1 with a Linear layer; Adam should recover the weights.
  Rng rng(21);
  const Linear layer(1, 1, &rng);
  Adam adam(layer.Parameters(), 0.05f);
  Rng data_rng(22);
  for (int step = 0; step < 500; ++step) {
    const Tensor x = Tensor::Uniform(Shape({8, 1}), -1, 1, &data_rng);
    const Tensor target = Add(Mul(x, 2.0f), 1.0f);
    adam.ZeroGrad();
    MseLoss(layer.Forward(x), target).Backward();
    adam.Step();
  }
  const Tensor w = layer.Parameters()[0];
  const Tensor b = layer.Parameters()[1];
  EXPECT_NEAR(w.item(), 2.0f, 0.05f);
  EXPECT_NEAR(b.item(), 1.0f, 0.05f);
}

TEST(ClipGradNormTest, NoOpBelowThreshold) {
  Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 1.0f}, true);
  x.grad_data()[0] = 0.3f;
  x.grad_data()[1] = 0.4f;
  std::vector<Tensor> params = {x};
  const float norm = ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(norm, 0.5f, 1e-6);
  EXPECT_FLOAT_EQ(x.grad_data()[0], 0.3f);
}

TEST(ClipGradNormTest, ScalesAboveThreshold) {
  Tensor x = Tensor::FromVector(Shape({2}), {1.0f, 1.0f}, true);
  x.grad_data()[0] = 3.0f;
  x.grad_data()[1] = 4.0f;
  std::vector<Tensor> params = {x};
  const float norm = ClipGradNorm(params, 1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5);
  const float clipped = std::sqrt(x.grad_data()[0] * x.grad_data()[0] +
                                  x.grad_data()[1] * x.grad_data()[1]);
  EXPECT_NEAR(clipped, 1.0f, 1e-5);
}

TEST(OptimizerTest, NumParametersCountsAll) {
  Rng rng(23);
  const Linear layer(3, 2, &rng);
  Adam adam(layer.Parameters(), 0.01f);
  EXPECT_EQ(adam.num_parameters(), 3 * 2 + 2);
}

TEST(OptimizerTest, StepWithGradlessParameterDoesNotAllocateGrad) {
  // A parameter outside the current loss's graph has no gradient buffer;
  // Step / ClipGradNorm must treat it as zero-grad without allocating one.
  Tensor used = Tensor::FromVector(Shape({2}), {1, 2}, /*requires_grad=*/true);
  Tensor unused = Tensor::FromVector(Shape({2}), {3, 4},
                                     /*requires_grad=*/true);
  std::vector<Tensor> params = {used, unused};
  Adam adam(params, 0.1f);
  Sum(Mul(used, used)).Backward();
  ClipGradNorm(params, 100.0f);
  adam.Step();
  EXPECT_FALSE(unused.has_grad());
  // Zero gradient, zero moments: the unused parameter must not move.
  EXPECT_FLOAT_EQ(unused.data()[0], 3.0f);
  EXPECT_FLOAT_EQ(unused.data()[1], 4.0f);
  // The used one does move.
  EXPECT_NE(used.data()[0], 1.0f);
}

}  // namespace
}  // namespace stsm
