#include <cmath>

#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/gcn.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  const Linear layer(4, 3, &rng);
  const Tensor x = Tensor::Ones(Shape({5, 4}));
  const Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), Shape({5, 3}));
}

TEST(LinearTest, HigherRankInput) {
  Rng rng(1);
  const Linear layer(4, 3, &rng);
  const Tensor x = Tensor::Ones(Shape({2, 5, 6, 4}));
  const Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 5, 6, 3}));
}

TEST(LinearTest, ParameterCount) {
  Rng rng(1);
  const Linear with_bias(4, 3, &rng);
  EXPECT_EQ(with_bias.NumParameters(), 4 * 3 + 3);
  const Linear no_bias(4, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(no_bias.NumParameters(), 4 * 3);
}

TEST(LinearTest, ZeroInputGivesBias) {
  Rng rng(1);
  const Linear layer(4, 3, &rng);
  const Tensor y = layer.Forward(Tensor::Zeros(Shape({1, 4})));
  // Bias is zero-initialised.
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(1);
  const Linear layer(2, 2, &rng);
  const Tensor x = Tensor::Ones(Shape({3, 2}));
  Mean(Square(layer.Forward(x))).Backward();
  for (const Tensor& p : layer.Parameters()) {
    double grad_norm = 0;
    for (int64_t i = 0; i < p.numel(); ++i) {
      grad_norm += std::fabs(p.grad_data()[i]);
    }
    // Weight gradients must be non-zero for non-degenerate inputs.
    if (p.numel() == 4) {
      EXPECT_GT(grad_norm, 0.0);
    }
  }
}

TEST(TemporalConvTest, PreservesTimeLength) {
  Rng rng(2);
  const TemporalConv conv(3, 5, /*kernel_size=*/2, /*dilation=*/2, &rng);
  const Tensor x = Tensor::Ones(Shape({2, 7, 4, 3}));
  const Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 7, 4, 5}));
}

TEST(TemporalConvTest, CausalityRespected) {
  Rng rng(2);
  const TemporalConv conv(1, 1, /*kernel_size=*/3, /*dilation=*/1, &rng);
  // Impulse at final step must not affect earlier outputs.
  Tensor x = Tensor::Zeros(Shape({1, 6, 1, 1}));
  const Tensor y0 = conv.Forward(x);
  x.set({0, 5, 0, 0}, 10.0f);
  const Tensor y1 = conv.Forward(x);
  for (int64_t t = 0; t < 5; ++t) {
    EXPECT_FLOAT_EQ(y0.at({0, t, 0, 0}), y1.at({0, t, 0, 0}))
        << "future leaked to t=" << t;
  }
}

TEST(GcnLayerTest, IdentityAdjacencyActsPerNode) {
  Rng rng(3);
  const GcnLayer layer(2, 2, &rng);
  const Tensor adj = Tensor::Eye(3);
  const Tensor x = Tensor::Ones(Shape({1, 4, 3, 2}));
  const Tensor y = layer.Forward(adj, x);
  EXPECT_EQ(y.shape(), Shape({1, 4, 3, 2}));
  // With identity adjacency and identical node features, outputs match
  // across nodes.
  for (int64_t n = 1; n < 3; ++n) {
    EXPECT_FLOAT_EQ(y.at({0, 0, n, 0}), y.at({0, 0, 0, 0}));
  }
}

TEST(GcnLayerTest, AdjacencyMixesNodes) {
  Rng rng(3);
  const GcnLayer layer(1, 1, &rng);
  // Node 0 receives only node 1's features.
  const Tensor adj = Tensor::FromVector(Shape({2, 2}), {0, 1, 0, 0});
  const Tensor x =
      Tensor::FromVector(Shape({1, 1, 2, 1}), {100.0f, 1.0f});
  const Tensor y = layer.Forward(adj, x);
  // Output for node 1 comes from the zero row -> bias only (zero-init).
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 0}), 0.0f);
  // Node 0 output reflects node 1's input through the weight.
  const float w = layer.Parameters()[0].item();
  EXPECT_NEAR(y.at({0, 0, 0, 0}), w * 1.0f, 1e-5);
}

TEST(GcnlLayerTest, GatingBoundsOutput) {
  Rng rng(4);
  const GcnlLayer layer(2, 3, &rng);
  const Tensor adj = Tensor::Eye(4);
  const Tensor x = Tensor::Ones(Shape({2, 3, 4, 2}));
  const Tensor y = layer.Forward(adj, x);
  EXPECT_EQ(y.shape(), Shape({2, 3, 4, 3}));
  // GLU output magnitude is bounded by the value branch magnitude
  // (|v * sigmoid(g)| <= |v|); just check finite and shaped here.
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(GruCellTest, StateShapeAndBounds) {
  Rng rng(5);
  const GruCell cell(3, 4, &rng);
  const Tensor x = Tensor::Ones(Shape({2, 3}));
  Tensor h = cell.InitialState(2);
  h = cell.Forward(x, h);
  EXPECT_EQ(h.shape(), Shape({2, 4}));
  // GRU state is a convex combination of tanh outputs: bounded by 1.
  for (int64_t i = 0; i < h.numel(); ++i) {
    EXPECT_LE(std::fabs(h.data()[i]), 1.0f);
  }
}

TEST(GruTest, FinalVsSequenceConsistency) {
  Rng rng(6);
  const Gru gru(2, 3, &rng);
  Rng data_rng(7);
  const Tensor seq = Tensor::Uniform(Shape({2, 5, 2}), -1, 1, &data_rng);
  const Tensor final_state = gru.ForwardFinal(seq);
  const Tensor all_states = gru.ForwardSequence(seq);
  EXPECT_EQ(all_states.shape(), Shape({2, 5, 3}));
  // Last step of the sequence must equal the final state.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t hdim = 0; hdim < 3; ++hdim) {
      EXPECT_FLOAT_EQ(all_states.at({b, 4, hdim}), final_state.at({b, hdim}));
    }
  }
}

TEST(GruTest, LongerHistoryChangesState) {
  Rng rng(8);
  const Gru gru(1, 2, &rng);
  const Tensor short_seq = Tensor::Ones(Shape({1, 2, 1}));
  const Tensor long_seq = Tensor::Ones(Shape({1, 8, 1}));
  const Tensor h_short = gru.ForwardFinal(short_seq);
  const Tensor h_long = gru.ForwardFinal(long_seq);
  bool differs = false;
  for (int64_t i = 0; i < 2; ++i) {
    if (std::fabs(h_short.data()[i] - h_long.data()[i]) > 1e-6) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(LayerNormTest, NormalisesLastDim) {
  const LayerNorm norm(4);
  const Tensor x =
      Tensor::FromVector(Shape({2, 4}), {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = norm.Forward(x);
  for (int64_t r = 0; r < 2; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 4; ++c) mean += y.at({r, c});
    mean /= 4;
    for (int64_t c = 0; c < 4; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(AttentionTest, ShapePreserved) {
  Rng rng(9);
  const MultiHeadSelfAttention attn(8, 2, &rng);
  Rng data_rng(10);
  const Tensor x = Tensor::Uniform(Shape({3, 5, 8}), -1, 1, &data_rng);
  const Tensor y = attn.Forward(x);
  EXPECT_EQ(y.shape(), Shape({3, 5, 8}));
}

TEST(AttentionTest, PermutationEquivariantOverTime) {
  // Self-attention without positional encoding is permutation-equivariant:
  // swapping two time steps swaps the outputs.
  Rng rng(11);
  const MultiHeadSelfAttention attn(4, 1, &rng);
  Rng data_rng(12);
  Tensor x = Tensor::Uniform(Shape({1, 3, 4}), -1, 1, &data_rng);
  const Tensor y = attn.Forward(x);
  // Swap t=0 and t=2.
  Tensor x_swapped = x.Clone();
  for (int64_t c = 0; c < 4; ++c) {
    x_swapped.set({0, 0, c}, x.at({0, 2, c}));
    x_swapped.set({0, 2, c}, x.at({0, 0, c}));
  }
  const Tensor y_swapped = attn.Forward(x_swapped);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(y_swapped.at({0, 0, c}), y.at({0, 2, c}), 1e-5);
    EXPECT_NEAR(y_swapped.at({0, 2, c}), y.at({0, 0, c}), 1e-5);
    EXPECT_NEAR(y_swapped.at({0, 1, c}), y.at({0, 1, c}), 1e-5);
  }
}

TEST(TransformerBlockTest, ShapeAndGradients) {
  Rng rng(13);
  const TransformerEncoderBlock block(8, 2, 16, &rng);
  Rng data_rng(14);
  const Tensor x = Tensor::Uniform(Shape({2, 4, 8}), -1, 1, &data_rng);
  const Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 4, 8}));
  Mean(Square(y)).Backward();
  // Every parameter received some gradient signal.
  int64_t params_with_grad = 0;
  for (const Tensor& p : block.Parameters()) {
    for (int64_t i = 0; i < p.numel(); ++i) {
      if (p.grad_data()[i] != 0.0f) {
        ++params_with_grad;
        break;
      }
    }
  }
  EXPECT_GT(params_with_grad, 10);
}

}  // namespace
}  // namespace stsm
