// Finite-difference gradient checks THROUGH whole layers: the layer's own
// parameters are the differentiated inputs, so these validate every code
// path a training step exercises.

#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/gcn.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace stsm {
namespace {

void ExpectModuleGradOk(const Module& module,
                        const std::function<Tensor()>& loss_fn,
                        double tolerance = 3e-2) {
  const GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>&) { return loss_fn(); },
      module.Parameters(), 1e-2, tolerance);
  EXPECT_TRUE(result.ok) << "max_abs=" << result.max_abs_error
                         << " max_rel=" << result.max_rel_error
                         << " worst_input=" << result.worst_input;
}

TEST(ModuleGradTest, Linear) {
  Rng rng(1);
  const Linear layer(3, 2, &rng);
  Rng data_rng(2);
  const Tensor x = Tensor::Uniform(Shape({4, 3}), -1, 1, &data_rng);
  ExpectModuleGradOk(layer,
                     [&] { return Mean(Square(layer.Forward(x))); });
}

TEST(ModuleGradTest, TemporalConv) {
  Rng rng(3);
  const TemporalConv conv(2, 3, 2, /*dilation=*/2, &rng);
  Rng data_rng(4);
  const Tensor x = Tensor::Uniform(Shape({1, 5, 2, 2}), -1, 1, &data_rng);
  ExpectModuleGradOk(conv, [&] { return Mean(Square(conv.Forward(x))); });
}

TEST(ModuleGradTest, GcnlLayer) {
  Rng rng(5);
  const GcnlLayer layer(2, 2, &rng);
  Rng data_rng(6);
  const Tensor adj = Tensor::Uniform(Shape({3, 3}), 0, 0.5f, &data_rng);
  const Tensor x = Tensor::Uniform(Shape({1, 2, 3, 2}), -1, 1, &data_rng);
  ExpectModuleGradOk(layer,
                     [&] { return Mean(Square(layer.Forward(adj, x))); });
}

TEST(ModuleGradTest, GruCell) {
  Rng rng(7);
  const GruCell cell(2, 3, &rng);
  Rng data_rng(8);
  const Tensor x = Tensor::Uniform(Shape({2, 2}), -1, 1, &data_rng);
  const Tensor h = Tensor::Uniform(Shape({2, 3}), -0.5f, 0.5f, &data_rng);
  ExpectModuleGradOk(cell,
                     [&] { return Mean(Square(cell.Forward(x, h))); });
}

TEST(ModuleGradTest, GruUnrolled) {
  Rng rng(9);
  const Gru gru(2, 2, &rng);
  Rng data_rng(10);
  const Tensor seq = Tensor::Uniform(Shape({1, 4, 2}), -1, 1, &data_rng);
  ExpectModuleGradOk(gru,
                     [&] { return Mean(Square(gru.ForwardFinal(seq))); });
}

TEST(ModuleGradTest, LayerNorm) {
  const LayerNorm norm(4);
  Rng data_rng(11);
  const Tensor x = Tensor::Uniform(Shape({3, 4}), -1, 1, &data_rng);
  // Weight the output so the gradient w.r.t. gamma/beta is non-trivial.
  const Tensor weights =
      Tensor::Uniform(Shape({3, 4}), -1, 1, &data_rng);
  ExpectModuleGradOk(norm,
                     [&] { return Mean(Mul(norm.Forward(x), weights)); });
}

TEST(ModuleGradTest, MultiHeadSelfAttention) {
  Rng rng(12);
  const MultiHeadSelfAttention attention(4, 2, &rng);
  Rng data_rng(13);
  const Tensor x = Tensor::Uniform(Shape({1, 3, 4}), -1, 1, &data_rng);
  ExpectModuleGradOk(attention,
                     [&] { return Mean(Square(attention.Forward(x))); });
}

TEST(ModuleGradTest, MultiHeadSelfAttentionSingleHead) {
  Rng rng(16);
  const MultiHeadSelfAttention attention(4, 1, &rng);
  Rng data_rng(17);
  const Tensor x = Tensor::Uniform(Shape({2, 3, 4}), -1, 1, &data_rng);
  ExpectModuleGradOk(attention,
                     [&] { return Mean(Square(attention.Forward(x))); });
}

TEST(ModuleGradTest, MultiHeadSelfAttentionFourHeads) {
  Rng rng(18);
  const MultiHeadSelfAttention attention(8, 4, &rng);
  Rng data_rng(19);
  const Tensor x = Tensor::Uniform(Shape({1, 2, 8}), -1, 1, &data_rng);
  ExpectModuleGradOk(attention,
                     [&] { return Mean(Square(attention.Forward(x))); });
}

TEST(ModuleGradTest, TransformerEncoderBlock) {
  Rng rng(14);
  const TransformerEncoderBlock block(4, 2, 6, &rng);
  Rng data_rng(15);
  const Tensor x = Tensor::Uniform(Shape({1, 3, 4}), -0.5f, 0.5f, &data_rng);
  ExpectModuleGradOk(block,
                     [&] { return Mean(Square(block.Forward(x))); },
                     /*tolerance=*/5e-2);
}

TEST(ModuleGradTest, GcnLayerParams) {
  Rng rng(20);
  const GcnLayer layer(2, 3, &rng);
  Rng data_rng(21);
  const Tensor adj = Tensor::Uniform(Shape({3, 3}), 0, 0.5f, &data_rng);
  const Tensor x = Tensor::Uniform(Shape({1, 2, 3, 2}), -1, 1, &data_rng);
  ExpectModuleGradOk(layer,
                     [&] { return Mean(Square(layer.Forward(adj, x))); });
}

TEST(ModuleGradTest, GcnLayerSparseAdjacency) {
  // Same layer, CSR adjacency: parameter gradients flow through SpMM.
  Rng rng(40);
  const GcnLayer layer(2, 3, &rng);
  Rng data_rng(41);
  Tensor dense = Tensor::Uniform(Shape({4, 4}), 0, 0.6f, &data_rng);
  for (int64_t i = 0; i < dense.numel(); ++i) {
    if (dense.data()[i] < 0.3f) dense.data()[i] = 0.0f;  // Prune to sparse.
  }
  const Adjacency adj(SparseCsr::FromDense(dense));
  const Tensor x = Tensor::Uniform(Shape({1, 2, 4, 2}), -1, 1, &data_rng);
  ExpectModuleGradOk(layer,
                     [&] { return Mean(Square(layer.Forward(adj, x))); });
}

// Input-gradient checks: the differentiated input is the module's data
// input x, not its parameters. This exercises the backward paths the
// encoder relies on when gradients flow from deeper layers through a
// module into shallower ones.

void ExpectInputGradOk(const std::function<Tensor(const Tensor&)>& loss_fn,
                       const Tensor& x, double tolerance = 3e-2) {
  const GradCheckResult result = CheckGradients(
      [&](const std::vector<Tensor>& inputs) { return loss_fn(inputs[0]); },
      {x}, 1e-2, tolerance);
  EXPECT_TRUE(result.ok) << "max_abs=" << result.max_abs_error
                         << " max_rel=" << result.max_rel_error
                         << " worst_input=" << result.worst_input;
}

TEST(ModuleGradTest, AttentionInputGrad) {
  Rng rng(22);
  const MultiHeadSelfAttention attention(4, 2, &rng);
  Rng data_rng(23);
  const Tensor x = Tensor::Uniform(Shape({1, 3, 4}), -1, 1, &data_rng,
                                   /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(attention.Forward(in))); },
      x);
}

TEST(ModuleGradTest, TransformerInputGrad) {
  Rng rng(24);
  const TransformerEncoderBlock block(4, 2, 6, &rng);
  Rng data_rng(25);
  const Tensor x = Tensor::Uniform(Shape({1, 3, 4}), -0.5f, 0.5f, &data_rng,
                                   /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(block.Forward(in))); }, x,
      /*tolerance=*/5e-2);
}

TEST(ModuleGradTest, GcnLayerInputGrad) {
  Rng rng(26);
  const GcnLayer layer(2, 3, &rng);
  Rng data_rng(27);
  const Tensor adj = Tensor::Uniform(Shape({3, 3}), 0, 0.5f, &data_rng);
  const Tensor x = Tensor::Uniform(Shape({1, 2, 3, 2}), -1, 1, &data_rng,
                                   /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(layer.Forward(adj, in))); },
      x);
}

TEST(ModuleGradTest, GcnlLayerInputGrad) {
  Rng rng(28);
  const GcnlLayer layer(2, 2, &rng);
  Rng data_rng(29);
  const Tensor adj = Tensor::Uniform(Shape({3, 3}), 0, 0.5f, &data_rng);
  const Tensor x = Tensor::Uniform(Shape({1, 2, 3, 2}), -1, 1, &data_rng,
                                   /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(layer.Forward(adj, in))); },
      x);
}

TEST(ModuleGradTest, GcnlLayerSparseInputGrad) {
  Rng rng(42);
  const GcnlLayer layer(2, 2, &rng);
  Rng data_rng(43);
  Tensor dense = Tensor::Uniform(Shape({3, 3}), 0, 0.5f, &data_rng);
  dense.data()[1] = 0.0f;  // At least one pruned edge.
  const Adjacency adj(SparseCsr::FromDense(dense));
  const Tensor x = Tensor::Uniform(Shape({1, 2, 3, 2}), -1, 1, &data_rng,
                                   /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(layer.Forward(adj, in))); },
      x);
}

TEST(ModuleGradTest, GruInputGrad) {
  Rng rng(30);
  const Gru gru(2, 2, &rng);
  Rng data_rng(31);
  const Tensor seq = Tensor::Uniform(Shape({1, 4, 2}), -1, 1, &data_rng,
                                     /*requires_grad=*/true);
  ExpectInputGradOk(
      [&](const Tensor& in) { return Mean(Square(gru.ForwardFinal(in))); },
      seq);
}

}  // namespace
}  // namespace stsm
