// Checkpoint round-trips for every model in the zoo: SaveModule on a
// network, LoadModule into a differently-initialised twin, and the probe
// forward must match bitwise. Covers the three baselines and all seven
// StsmVariants (each variant is a distinct ModelKind).

#include "baselines/zoo.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "nn/serialize.h"

namespace stsm {
namespace {

StsmConfig SmallConfig() {
  StsmConfig config;
  config.input_length = 8;
  config.horizon = 4;
  config.hidden_dim = 8;
  config.num_blocks = 1;
  config.seed = 31;
  return config;
}

std::vector<ModelKind> AllKinds() {
  return {ModelKind::kGeGan,     ModelKind::kIgnnk,  ModelKind::kIncrease,
          ModelKind::kStsmRnc,   ModelKind::kStsmNc, ModelKind::kStsmR,
          ModelKind::kStsm,      ModelKind::kStsmTrans,
          ModelKind::kStsmRdA,   ModelKind::kStsmRdM};
}

TEST(ZooRoundTripTest, EveryModelKindRoundTripsBitwise) {
  const std::string path = "/tmp/stsm_zoo_roundtrip.bin";
  const int num_nodes = 12;
  const uint64_t probe_seed = 77;
  for (ModelKind kind : AllKinds()) {
    SCOPED_TRACE(ModelName(kind));
    const StsmConfig config = SmallConfig();
    const ZooNetwork original = MakeZooNetwork(kind, config, num_nodes);
    ASSERT_FALSE(original.module->Parameters().empty());
    ASSERT_TRUE(SaveModule(*original.module, path));

    StsmConfig other = config;
    other.seed = 4099;  // Different init stream: weights start different.
    const ZooNetwork restored = MakeZooNetwork(kind, other, num_nodes);
    ASSERT_TRUE(LoadModule(restored.module.get(), path));

    const Tensor expected = original.probe(probe_seed);
    const Tensor actual = restored.probe(probe_seed);
    ASSERT_EQ(expected.shape(), actual.shape());
    for (int64_t i = 0; i < expected.numel(); ++i) {
      ASSERT_EQ(expected.data()[i], actual.data()[i])
          << "element " << i << " differs after checkpoint round-trip";
    }
  }
  std::remove(path.c_str());
}

TEST(ZooRoundTripTest, LoadRejectsMismatchedArchitecture) {
  const std::string path = "/tmp/stsm_zoo_mismatch.bin";
  const StsmConfig config = SmallConfig();
  const ZooNetwork small = MakeZooNetwork(ModelKind::kStsm, config, 12);
  ASSERT_TRUE(SaveModule(*small.module, path));
  StsmConfig bigger = config;
  bigger.hidden_dim = 16;  // Different parameter shapes.
  const ZooNetwork big = MakeZooNetwork(ModelKind::kStsm, bigger, 12);
  EXPECT_FALSE(LoadModule(big.module.get(), path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stsm
