#include <cmath>

#include "baselines/gegan.h"
#include "baselines/ignnk.h"
#include "baselines/increase.h"
#include "baselines/zoo.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

SpatioTemporalDataset TinyDataset() {
  SimulatorConfig config;
  config.name = "tiny-highway";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 36;
  config.num_days = 4;
  config.steps_per_day = 48;
  config.area_km = 25.0;
  config.seed = 3;
  return SimulateDataset(config);
}

BaselineConfig TinyBaselineConfig() {
  BaselineConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.gegan_epochs_multiplier = 2;
  config.seed = 5;
  return config;
}

StsmConfig TinyStsmConfig() {
  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.top_k = 12;
  config.dtw_band = 6;
  config.seed = 5;
  return config;
}

void ExpectSaneResult(const ExperimentResult& result, const char* model) {
  EXPECT_TRUE(std::isfinite(result.metrics.rmse)) << model;
  EXPECT_GT(result.metrics.rmse, 0.0) << model;
  EXPECT_GT(result.metrics.count, 0) << model;
  EXPECT_FALSE(result.train_losses.empty()) << model;
  for (double loss : result.train_losses) {
    EXPECT_TRUE(std::isfinite(loss)) << model;
  }
}

TEST(IgnnkTest, EndToEnd) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult result =
      RunIgnnk(dataset, split, TinyBaselineConfig());
  ExpectSaneResult(result, "IGNNK");
  // Speeds are tens of km/h; predictions should land in a sane range.
  EXPECT_LT(result.metrics.rmse, 120.0);
}

TEST(IncreaseTest, EndToEnd) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult result =
      RunIncrease(dataset, split, TinyBaselineConfig());
  ExpectSaneResult(result, "INCREASE");
  EXPECT_LT(result.metrics.rmse, 60.0);
}

TEST(GeGanTest, EndToEnd) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult result =
      RunGeGan(dataset, split, TinyBaselineConfig());
  ExpectSaneResult(result, "GE-GAN");
  EXPECT_LT(result.metrics.rmse, 200.0);
}

TEST(ZooTest, ModelNamesMatchPaper) {
  EXPECT_EQ(ModelName(ModelKind::kGeGan), "GE-GAN");
  EXPECT_EQ(ModelName(ModelKind::kIgnnk), "IGNNK");
  EXPECT_EQ(ModelName(ModelKind::kIncrease), "INCREASE");
  EXPECT_EQ(ModelName(ModelKind::kStsm), "STSM");
  EXPECT_EQ(ModelName(ModelKind::kStsmRnc), "STSM-RNC");
}

TEST(ZooTest, Table4ModelOrder) {
  const auto models = Table4Models();
  ASSERT_EQ(models.size(), 7u);
  EXPECT_EQ(models.front(), ModelKind::kGeGan);
  EXPECT_EQ(models.back(), ModelKind::kStsm);
}

TEST(ZooTest, BaselineConfigInheritsScale) {
  StsmConfig stsm = TinyStsmConfig();
  const BaselineConfig baseline = BaselineFromStsm(stsm);
  EXPECT_EQ(baseline.input_length, stsm.input_length);
  EXPECT_EQ(baseline.epochs, stsm.epochs);
  EXPECT_EQ(baseline.batch_size, stsm.batch_size);
  EXPECT_EQ(baseline.max_eval_windows, stsm.max_eval_windows);
}

TEST(ZooTest, DispatchRunsEveryKind) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const StsmConfig config = TinyStsmConfig();
  for (const ModelKind kind :
       {ModelKind::kIgnnk, ModelKind::kIncrease, ModelKind::kStsm}) {
    const ExperimentResult result = RunModel(kind, dataset, split, config);
    ExpectSaneResult(result, ModelName(kind).c_str());
  }
}

TEST(ContextTest, BuildsConsistentShapes) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const BaselineContext context =
      BuildBaselineContext(dataset, split, TinyBaselineConfig());
  EXPECT_EQ(context.observed.size() + context.unobserved.size(),
            static_cast<size_t>(dataset.num_nodes()));
  EXPECT_EQ(context.train_observed.num_nodes,
            static_cast<int>(context.observed.size()));
  EXPECT_EQ(context.train_observed.num_steps, context.time_split.train_steps);
  EXPECT_EQ(context.a_s_norm_full.shape()[0], dataset.num_nodes());
  EXPECT_EQ(context.a_s_norm_train.shape()[0],
            static_cast<int64_t>(context.observed.size()));
}

TEST(ContextTest, CapEvalWindowsSubsamplesEvenly) {
  std::vector<int> starts;
  for (int i = 0; i < 100; ++i) starts.push_back(i);
  const auto capped = CapEvalWindows(starts, 10);
  EXPECT_EQ(capped.size(), 10u);
  EXPECT_EQ(capped.front(), 0);
  EXPECT_GE(capped.back(), 80);
  const auto untouched = CapEvalWindows(starts, 0);
  EXPECT_EQ(untouched.size(), 100u);
}

}  // namespace
}  // namespace stsm
