// Cross-module integration tests: the full pipeline from simulation through
// splits, masking, training and evaluation, under the configurations the
// benchmark suite exercises.

#include <cmath>
#include <set>

#include "baselines/zoo.h"
#include "core/config.h"
#include "core/stsm.h"
#include "data/registry.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

SpatioTemporalDataset SmallDataset(uint64_t seed = 3) {
  SimulatorConfig config;
  config.name = "integration-highway";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 40;
  config.num_days = 4;
  config.steps_per_day = 48;
  config.area_km = 25.0;
  config.seed = seed;
  return SimulateDataset(config);
}

StsmConfig SmallConfig() {
  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.top_k = 12;
  config.dtw_band = 6;
  return config;
}

TEST(IntegrationTest, RingSplitPipeline) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpaceRing(dataset.coords);
  StsmRunner runner(dataset, split, SmallConfig());
  const ExperimentResult result = runner.Run();
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
  EXPECT_GT(result.metrics.count, 0);
}

TEST(IntegrationTest, UnobservedRatioChangesEvaluationSize) {
  const auto dataset = SmallDataset();
  const SpaceSplit narrow =
      SplitSpaceWithRatio(dataset.coords, SplitAxis::kVertical, 0.2);
  const SpaceSplit wide =
      SplitSpaceWithRatio(dataset.coords, SplitAxis::kVertical, 0.5);
  const ExperimentResult narrow_result =
      StsmRunner(dataset, narrow, SmallConfig()).Run();
  const ExperimentResult wide_result =
      StsmRunner(dataset, wide, SmallConfig()).Run();
  // Metric sample count scales with the unobserved node count.
  EXPECT_GT(wide_result.metrics.count, narrow_result.metrics.count);
}

TEST(IntegrationTest, HorizonRmseMatchesHorizon) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig config = SmallConfig();
  config.horizon = 6;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  ASSERT_EQ(result.horizon_rmse.size(), 6u);
  for (double rmse : result.horizon_rmse) {
    EXPECT_TRUE(std::isfinite(rmse));
    EXPECT_GT(rmse, 0.0);
  }
}

TEST(IntegrationTest, PseudoNeighborsChangesPredictions) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig all = SmallConfig();
  all.pseudo_neighbors = 0;
  StsmConfig knn = SmallConfig();
  knn.pseudo_neighbors = 4;
  const ExperimentResult result_all = StsmRunner(dataset, split, all).Run();
  const ExperimentResult result_knn = StsmRunner(dataset, split, knn).Run();
  EXPECT_NE(result_all.metrics.rmse, result_knn.metrics.rmse);
}

TEST(IntegrationTest, SeedChangesResultsDatasetFixed) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig a = SmallConfig();
  a.seed = 1;
  StsmConfig b = SmallConfig();
  b.seed = 2;
  const ExperimentResult result_a = StsmRunner(dataset, split, a).Run();
  const ExperimentResult result_b = StsmRunner(dataset, split, b).Run();
  EXPECT_NE(result_a.metrics.rmse, result_b.metrics.rmse);
}

TEST(IntegrationTest, MergedRegionSubsetsTrainEndToEnd) {
  // The Table 6 path: subset a merged region and run a model on it.
  const SpatioTemporalDataset merged = MakeMergedFreewayRegion(60, 5);
  std::vector<int> subset;
  for (int i = 0; i < 30; ++i) subset.push_back(i);
  const SpatioTemporalDataset dataset = SelectSensors(merged, subset);
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult result =
      RunModel(ModelKind::kIncrease, dataset, split, SmallConfig());
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
}

TEST(IntegrationTest, AirQualityConfigPipeline) {
  // Hourly data with T = T' = 12 (scaled-down version of the AirQ setup).
  SimulatorConfig sim;
  sim.kind = RegionKind::kAirQuality;
  sim.num_sensors = 24;
  sim.num_days = 20;
  sim.steps_per_day = 24;
  sim.area_km = 100.0;
  sim.events_per_day = 0.4;
  sim.seed = 9;
  const auto dataset = SimulateDataset(sim);
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kHorizontal);
  StsmConfig config = SmallConfig();
  config.input_length = 12;
  config.horizon = 12;
  config.dtw_band = 4;
  config.top_k = 5;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
  // PM2.5-scale values: errors should be in a plausible band, far from the
  // degenerate all-zeros regime.
  EXPECT_GT(result.metrics.rmse, 1.0);
  EXPECT_LT(result.metrics.rmse, 400.0);
}

TEST(IntegrationTest, ReversedSplitAlsoTrains) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kHorizontal,
                                      0.4, 0.1, /*reverse=*/true);
  const ExperimentResult result =
      StsmRunner(dataset, split, SmallConfig()).Run();
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
}

}  // namespace
}  // namespace stsm
