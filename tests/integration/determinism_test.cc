// Two STSM runs with the same seed must be bitwise identical, including
// when tensor ops dispatch through the multi-threaded global pool. This
// binary is separate from integration_test so it can pin STSM_NUM_THREADS
// before ThreadPool::Global() is first constructed.

#include <cmath>
#include <cstdlib>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/stsm.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

// Runs before main(): force a multi-threaded global pool regardless of the
// host's core count, so determinism is checked under real parallelism.
const bool g_env_pinned = [] {
  setenv("STSM_NUM_THREADS", "4", /*overwrite=*/1);
  return true;
}();

SpatioTemporalDataset SmallDataset() {
  SimulatorConfig config;
  config.name = "determinism-highway";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 40;
  config.num_days = 4;
  config.steps_per_day = 48;
  config.area_km = 25.0;
  config.seed = 3;
  return SimulateDataset(config);
}

StsmConfig SmallConfig(uint64_t seed) {
  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.top_k = 12;
  config.dtw_band = 6;
  config.seed = seed;
  return config;
}

ExperimentResult RunOnce(uint64_t seed) {
  const auto dataset = SmallDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmRunner runner(dataset, split, SmallConfig(seed));
  return runner.Run();
}

TEST(DeterminismTest, GlobalPoolIsMultiThreaded) {
  ASSERT_TRUE(g_env_pinned);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 4);
}

TEST(DeterminismTest, SameSeedSameLossesAndMetrics) {
  const ExperimentResult first = RunOnce(11);
  const ExperimentResult second = RunOnce(11);

  ASSERT_EQ(first.train_losses.size(), second.train_losses.size());
  for (size_t i = 0; i < first.train_losses.size(); ++i) {
    // Bitwise equality: identical arithmetic in identical order.
    EXPECT_EQ(first.train_losses[i], second.train_losses[i])
        << "epoch " << i << " diverged";
  }
  EXPECT_EQ(first.metrics.rmse, second.metrics.rmse);
  EXPECT_EQ(first.metrics.mae, second.metrics.mae);
  EXPECT_EQ(first.metrics.mape, second.metrics.mape);
  EXPECT_EQ(first.metrics.r2, second.metrics.r2);
  EXPECT_EQ(first.metrics.count, second.metrics.count);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const ExperimentResult first = RunOnce(11);
  const ExperimentResult other = RunOnce(12);
  ASSERT_FALSE(first.train_losses.empty());
  ASSERT_EQ(first.train_losses.size(), other.train_losses.size());
  bool any_diff = false;
  for (size_t i = 0; i < first.train_losses.size(); ++i) {
    if (first.train_losses[i] != other.train_losses[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "seed should affect training";
}

}  // namespace
}  // namespace stsm
