#include "core/stsm.h"

#include <cmath>

#include "core/config.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

SpatioTemporalDataset TinyDataset() {
  SimulatorConfig config;
  config.name = "tiny-highway";
  config.kind = RegionKind::kHighway;
  config.num_sensors = 36;
  config.num_days = 4;
  config.steps_per_day = 48;
  config.area_km = 25.0;
  config.seed = 3;
  return SimulateDataset(config);
}

StsmConfig TinyConfig() {
  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 8;
  config.num_blocks = 2;
  config.epochs = 3;
  config.batches_per_epoch = 4;
  config.batch_size = 4;
  config.eval_stride = 8;
  config.max_eval_windows = 6;
  config.top_k = 12;
  config.dtw_band = 6;
  config.seed = 5;
  return config;
}

TEST(ConfigTest, VariantSwitches) {
  const StsmConfig base;
  const StsmConfig nc = ApplyVariant(base, StsmVariant::kNc);
  EXPECT_TRUE(nc.selective_masking);
  EXPECT_FALSE(nc.contrastive);
  const StsmConfig r = ApplyVariant(base, StsmVariant::kR);
  EXPECT_FALSE(r.selective_masking);
  EXPECT_TRUE(r.contrastive);
  const StsmConfig rnc = ApplyVariant(base, StsmVariant::kRnc);
  EXPECT_FALSE(rnc.selective_masking);
  EXPECT_FALSE(rnc.contrastive);
  const StsmConfig trans = ApplyVariant(base, StsmVariant::kTrans);
  EXPECT_EQ(trans.temporal_module, TemporalModule::kTransformer);
  const StsmConfig rd_a = ApplyVariant(base, StsmVariant::kRdA);
  EXPECT_EQ(rd_a.distance_mode, DistanceMode::kRoadAll);
  const StsmConfig rd_m = ApplyVariant(base, StsmVariant::kRdM);
  EXPECT_EQ(rd_m.distance_mode, DistanceMode::kRoadMatrixOnly);
}

TEST(ConfigTest, VariantNames) {
  EXPECT_EQ(VariantName(StsmVariant::kFull), "STSM");
  EXPECT_EQ(VariantName(StsmVariant::kRnc), "STSM-RNC");
  EXPECT_EQ(VariantName(StsmVariant::kTrans), "STSM-trans");
}

TEST(ConfigTest, Table3PerDatasetParameters) {
  EXPECT_FLOAT_EQ(ConfigForDataset("bay-sim").lambda, 0.01f);
  EXPECT_FLOAT_EQ(ConfigForDataset("pems07-sim").lambda, 1.0f);
  EXPECT_DOUBLE_EQ(ConfigForDataset("pems07-sim").epsilon_sg, 0.7);
  EXPECT_EQ(ConfigForDataset("melbourne-sim").top_k, 45);
  EXPECT_EQ(ConfigForDataset("airq-sim").top_k, 5);
  EXPECT_EQ(ConfigForDataset("airq-sim").input_length, 24);
}

TEST(StsmRunnerTest, EndToEndTrainsAndEvaluates) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmRunner runner(dataset, split, TinyConfig());
  const ExperimentResult result = runner.Run();

  EXPECT_EQ(result.train_losses.size(), 3u);
  for (double loss : result.train_losses) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GE(loss, 0.0);
  }
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
  EXPECT_GT(result.metrics.rmse, 0.0);
  EXPECT_GT(result.metrics.count, 0);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.test_seconds, 0.0);
  EXPECT_GT(result.mean_mask_similarity, 0.0);
  // Speeds are tens of km/h; a sane model is far below 50 RMSE.
  EXPECT_LT(result.metrics.rmse, 50.0);
}

TEST(StsmRunnerTest, TrainingReducesLoss) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig config = TinyConfig();
  config.epochs = 10;
  config.batches_per_epoch = 8;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  // Per-epoch losses are noisy (every epoch draws a fresh mask), so compare
  // the mean of the first two epochs against the mean of the last two.
  const auto& losses = result.train_losses;
  const double early = (losses[0] + losses[1]) / 2.0;
  const double late =
      (losses[losses.size() - 1] + losses[losses.size() - 2]) / 2.0;
  EXPECT_LT(late, early);
}

TEST(StsmRunnerTest, DeterministicForSeed) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult a =
      StsmRunner(dataset, split, TinyConfig()).Run();
  const ExperimentResult b =
      StsmRunner(dataset, split, TinyConfig()).Run();
  EXPECT_DOUBLE_EQ(a.metrics.rmse, b.metrics.rmse);
  EXPECT_DOUBLE_EQ(a.metrics.mae, b.metrics.mae);
}

TEST(StsmRunnerTest, VariantsAllRun) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  for (const StsmVariant variant :
       {StsmVariant::kNc, StsmVariant::kR, StsmVariant::kRnc}) {
    const ExperimentResult result =
        RunStsmVariant(dataset, split, variant, TinyConfig());
    EXPECT_TRUE(std::isfinite(result.metrics.rmse)) << VariantName(variant);
    EXPECT_LT(result.metrics.rmse, 60.0) << VariantName(variant);
  }
}

TEST(StsmRunnerTest, TransformerVariantRuns) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  const ExperimentResult result =
      RunStsmVariant(dataset, split, StsmVariant::kTrans, TinyConfig());
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
}

TEST(StsmRunnerTest, RoadDistanceVariantsRun) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  for (const StsmVariant variant : {StsmVariant::kRdA, StsmVariant::kRdM}) {
    const ExperimentResult result =
        RunStsmVariant(dataset, split, variant, TinyConfig());
    EXPECT_TRUE(std::isfinite(result.metrics.rmse)) << VariantName(variant);
  }
}

TEST(StsmRunnerTest, BeatsGlobalMeanPredictor) {
  // R2 > 0 means the model beats predicting the mean observation — the
  // paper's bar for a useful model on this task (Section 5.1.3).
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig config = TinyConfig();
  config.epochs = 8;
  config.batches_per_epoch = 6;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  EXPECT_GT(result.metrics.r2, -0.5);
}

TEST(StsmRunnerTest, ValidationSelectionRunsAndStaysFinite) {
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig config = TinyConfig();
  config.validation_selection = true;
  config.epochs = 5;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();
  EXPECT_TRUE(std::isfinite(result.metrics.rmse));
  EXPECT_LT(result.metrics.rmse, 50.0);
}

TEST(StsmRunnerTest, ValidationSelectionChangesOutcome) {
  // With selection on, the reported metrics come from the best-validation
  // epoch's weights, which generally differ from the last epoch's.
  const auto dataset = TinyDataset();
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  StsmConfig plain = TinyConfig();
  plain.epochs = 6;
  StsmConfig selected = plain;
  selected.validation_selection = true;
  const ExperimentResult a = StsmRunner(dataset, split, plain).Run();
  const ExperimentResult b = StsmRunner(dataset, split, selected).Run();
  // Same seed, same training trajectory; only the final weights differ
  // (unless the last epoch happened to be the best).
  EXPECT_TRUE(std::isfinite(a.metrics.rmse));
  EXPECT_TRUE(std::isfinite(b.metrics.rmse));
}

TEST(ExperimentTest, AverageResults) {
  ExperimentResult a, b;
  a.metrics.rmse = 2.0;
  b.metrics.rmse = 4.0;
  a.metrics.r2 = 0.1;
  b.metrics.r2 = 0.3;
  a.train_seconds = 1.0;
  b.train_seconds = 3.0;
  const ExperimentResult avg = AverageResults({a, b});
  EXPECT_DOUBLE_EQ(avg.metrics.rmse, 3.0);
  EXPECT_DOUBLE_EQ(avg.metrics.r2, 0.2);
  EXPECT_DOUBLE_EQ(avg.train_seconds, 2.0);
}

}  // namespace
}  // namespace stsm
