// Equation-anchored tests for the spatial-temporal network (Section 3.4).

#include "core/st_model.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

StsmConfig SmallModelConfig() {
  StsmConfig config;
  config.input_length = 6;
  config.horizon = 4;
  config.hidden_dim = 8;
  config.num_blocks = 2;
  config.gcn_layers_per_block = 2;
  return config;
}

Tensor RandomInput(int batch, int time, int nodes, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(Shape({batch, time, nodes, 1}), -1, 1, &rng);
}

Tensor RandomTime(int batch, int time, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(Shape({batch, time, 3}), -1, 1, &rng);
}

TEST(StModelTest, OutputShapes) {
  const StsmConfig config = SmallModelConfig();
  Rng rng(1);
  const StModel model(config, &rng);
  const int nodes = 5;
  const Tensor adj = Tensor::Eye(nodes);
  const StModel::Output out =
      model.Forward(RandomInput(3, 6, nodes, 2), RandomTime(3, 6, 3), adj,
                    adj);
  EXPECT_EQ(out.predictions.shape(), Shape({3, 4, nodes, 1}));
  EXPECT_EQ(out.final_features.shape(), Shape({3, nodes, 8}));
}

TEST(StModelTest, InductiveAcrossGraphSizes) {
  // The same weights must run on graphs of different size (train on G_o,
  // test on G) — the property Section 3.5 relies on.
  const StsmConfig config = SmallModelConfig();
  Rng rng(3);
  const StModel model(config, &rng);
  const StModel::Output small = model.Forward(
      RandomInput(2, 6, 4, 4), RandomTime(2, 6, 5), Tensor::Eye(4),
      Tensor::Eye(4));
  const StModel::Output large = model.Forward(
      RandomInput(2, 6, 9, 6), RandomTime(2, 6, 7), Tensor::Eye(9),
      Tensor::Eye(9));
  EXPECT_EQ(small.predictions.shape()[2], 4);
  EXPECT_EQ(large.predictions.shape()[2], 9);
}

TEST(StModelTest, Eq4TimeEmbeddingModulatesOutput) {
  // H^0 = phi1(X) * phi2(TE): changing only the time features must change
  // the predictions (rush hour vs midnight contexts differ).
  const StsmConfig config = SmallModelConfig();
  Rng rng(8);
  const StModel model(config, &rng);
  const Tensor x = RandomInput(1, 6, 4, 9);
  const Tensor adj = Tensor::Eye(4);
  const StModel::Output a =
      model.Forward(x, RandomTime(1, 6, 10), adj, adj);
  const StModel::Output b =
      model.Forward(x, RandomTime(1, 6, 11), adj, adj);
  double diff = 0;
  for (int64_t i = 0; i < a.predictions.numel(); ++i) {
    diff += std::fabs(a.predictions.data()[i] - b.predictions.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(StModelTest, AdjacencyMattersForPredictions) {
  // Swapping the spatial adjacency changes the GCN branch (Eq. 6-11).
  const StsmConfig config = SmallModelConfig();
  Rng rng(12);
  const StModel model(config, &rng);
  const Tensor x = RandomInput(1, 6, 4, 13);
  const Tensor tf = RandomTime(1, 6, 14);
  const Tensor eye = Tensor::Eye(4);
  Tensor dense = Tensor::Full(Shape({4, 4}), 0.25f);
  const StModel::Output a = model.Forward(x, tf, eye, eye);
  const StModel::Output b = model.Forward(x, tf, dense, eye);
  double diff = 0;
  for (int64_t i = 0; i < a.predictions.numel(); ++i) {
    diff += std::fabs(a.predictions.data()[i] - b.predictions.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(StModelTest, PersistenceSkipAnchorsOutput) {
  // With the input skip enabled, predictions track a constant input's
  // level far better than random-init outputs otherwise would.
  StsmConfig with_skip = SmallModelConfig();
  with_skip.input_skip = true;
  StsmConfig without_skip = SmallModelConfig();
  without_skip.input_skip = false;
  Rng rng_a(15);
  Rng rng_b(15);
  const StModel model_skip(with_skip, &rng_a);
  const StModel model_plain(without_skip, &rng_b);

  const Tensor x = Tensor::Full(Shape({1, 6, 3, 1}), 5.0f);
  const Tensor tf = Tensor::Zeros(Shape({1, 6, 3}));
  const Tensor adj = Tensor::Eye(3);
  const float skip_out =
      model_skip.Forward(x, tf, adj, adj).predictions.at({0, 0, 0, 0});
  const float plain_out =
      model_plain.Forward(x, tf, adj, adj).predictions.at({0, 0, 0, 0});
  EXPECT_LT(std::fabs(skip_out - 5.0f), std::fabs(plain_out - 5.0f));
}

TEST(StModelTest, ParameterCountsDifferByVariant) {
  Rng rng(16);
  const StsmConfig tcn_config = SmallModelConfig();
  StsmConfig trans_config = SmallModelConfig();
  trans_config.temporal_module = TemporalModule::kTransformer;
  const StModel tcn_model(tcn_config, &rng);
  const StModel trans_model(trans_config, &rng);
  EXPECT_GT(trans_model.NumParameters(), tcn_model.NumParameters());
}

TEST(StModelTest, GradientsReachAllParameters) {
  const StsmConfig config = SmallModelConfig();
  Rng rng(17);
  const StModel model(config, &rng);
  const Tensor adj = Tensor::Full(Shape({4, 4}), 0.25f);
  const StModel::Output out = model.Forward(
      RandomInput(2, 6, 4, 18), RandomTime(2, 6, 19), adj, adj);
  Mean(Square(out.predictions)).Backward();
  int with_grad = 0, total = 0;
  for (const Tensor& p : model.Parameters()) {
    ++total;
    for (int64_t i = 0; i < p.numel(); ++i) {
      if (p.grad_data()[i] != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  // Nearly all parameters should receive gradient (head + blocks + input
  // projections). Allow a couple of dead gates.
  EXPECT_GE(with_grad, total - 2);
}

TEST(StModelTest, SparseAdjacencyMatchesDenseForward) {
  // Table 4 guarantee of the CSR refactor: swapping the dense adjacencies
  // for their CSR form changes only the flop order of the node mixing, so
  // predictions agree within float accumulation tolerance.
  const StsmConfig config = SmallModelConfig();
  Rng rng(30);
  const StModel model(config, &rng);
  const int nodes = 6;
  Rng adj_rng(31);
  Tensor dense_s = Tensor::Uniform(Shape({nodes, nodes}), 0, 0.4f, &adj_rng);
  Tensor dense_t = Tensor::Uniform(Shape({nodes, nodes}), 0, 0.4f, &adj_rng);
  for (Tensor* adj : {&dense_s, &dense_t}) {
    for (int64_t i = 0; i < adj->numel(); ++i) {
      if (adj->data()[i] < 0.2f) adj->data()[i] = 0.0f;  // Prune to sparse.
    }
  }
  const Tensor x = RandomInput(2, 6, nodes, 32);
  const Tensor tf = RandomTime(2, 6, 33);

  const StModel::Output dense_out = model.Forward(x, tf, dense_s, dense_t);
  const StModel::Output sparse_out =
      model.Forward(x, tf, Adjacency(SparseCsr::FromDense(dense_s)),
                    Adjacency(SparseCsr::FromDense(dense_t)));
  ASSERT_EQ(dense_out.predictions.shape(), sparse_out.predictions.shape());
  for (int64_t i = 0; i < dense_out.predictions.numel(); ++i) {
    const float d = dense_out.predictions.data()[i];
    const float s = sparse_out.predictions.data()[i];
    EXPECT_NEAR(s, d, 1e-5f * std::max(1.0f, std::fabs(d))) << "element " << i;
  }
}

TEST(StBlockTest, Eq12ResidualCombination) {
  // With a zero adjacency the spatial branch contributes only gated-bias
  // terms; the block must still produce finite output of the right shape.
  const StsmConfig config = SmallModelConfig();
  Rng rng(20);
  const StBlock block(8, config, &rng);
  Rng data_rng(21);
  const Tensor x = Tensor::Uniform(Shape({2, 6, 4, 8}), -1, 1, &data_rng);
  const Tensor zero_adj = Tensor::Zeros(Shape({4, 4}));
  const Tensor y = block.Forward(x, zero_adj, zero_adj);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(ProjectionHeadTest, Eq16PoolsOverNodes) {
  Rng rng(22);
  const ProjectionHead head(8, &rng);
  Rng data_rng(23);
  const Tensor features = Tensor::Uniform(Shape({3, 5, 8}), -1, 1, &data_rng);
  const Tensor z = head.Forward(features);
  EXPECT_EQ(z.shape(), Shape({3, 8}));
  // Permuting nodes must not change the pooled representation.
  Tensor permuted = Tensor::Zeros(Shape({3, 5, 8}));
  const int perm[5] = {4, 2, 0, 3, 1};
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t n = 0; n < 5; ++n) {
      for (int64_t c = 0; c < 8; ++c) {
        permuted.set({b, n, c}, features.at({b, perm[n], c}));
      }
    }
  }
  const Tensor z_permuted = head.Forward(permuted);
  for (int64_t i = 0; i < z.numel(); ++i) {
    EXPECT_NEAR(z.data()[i], z_permuted.data()[i], 1e-5);
  }
}

}  // namespace
}  // namespace stsm
