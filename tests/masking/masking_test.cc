#include "masking/masking.h"

#include <algorithm>
#include <set>

#include "data/simulator.h"
#include "data/splits.h"
#include "graph/adjacency.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

struct Fixture {
  SpatioTemporalDataset dataset;
  SpaceSplit split;
  Tensor a_sg;
  MaskingContext context;
};

Fixture MakeFixture(double mask_ratio = 0.5, int top_k = 20) {
  SimulatorConfig config;
  config.kind = RegionKind::kHighway;
  config.num_sensors = 60;
  config.num_days = 2;
  config.steps_per_day = 24;
  config.area_km = 30.0;
  config.seed = 11;

  Fixture f{SimulateDataset(config), {}, {}, {}};
  f.split = SplitSpace(f.dataset.coords, SplitAxis::kVertical);
  const auto distances = PairwiseDistances(f.dataset.coords);
  f.a_sg = GaussianThresholdAdjacency(distances, 60, 0.6);
  MaskingConfig mask_config;
  mask_config.mask_ratio = mask_ratio;
  mask_config.top_k = top_k;
  f.context = BuildMaskingContext(f.a_sg, f.dataset.coords,
                                  f.dataset.metadata, f.split.Observed(),
                                  f.split.test, mask_config);
  return f;
}

TEST(MaskingContextTest, SubgraphsContainRootAndOnlyObserved) {
  const Fixture f = MakeFixture();
  const std::set<int> observed(f.context.observed.begin(),
                               f.context.observed.end());
  for (size_t i = 0; i < f.context.observed.size(); ++i) {
    const auto& subgraph = f.context.subgraphs[i];
    EXPECT_TRUE(std::binary_search(subgraph.begin(), subgraph.end(),
                                   f.context.observed[i]))
        << "subgraph must contain its root";
    for (int node : subgraph) {
      EXPECT_TRUE(observed.count(node))
          << "subgraphs must not contain unobserved nodes";
    }
  }
  EXPECT_GE(f.context.average_subgraph_size, 1.0);
}

TEST(MaskingContextTest, CsrAdjacencyGivesIdenticalContext) {
  // Masking reads only the neighbour structure of a_sg; feeding the same
  // adjacency as CSR must reproduce the context exactly.
  const Fixture f = MakeFixture();
  MaskingConfig mask_config;
  mask_config.mask_ratio = 0.5;
  mask_config.top_k = 20;
  const MaskingContext sparse_context = BuildMaskingContext(
      Adjacency(SparseCsr::FromDense(f.a_sg)), f.dataset.coords,
      f.dataset.metadata, f.split.Observed(), f.split.test, mask_config);
  EXPECT_EQ(sparse_context.subgraphs, f.context.subgraphs);
  EXPECT_EQ(sparse_context.similarity, f.context.similarity);
  EXPECT_EQ(sparse_context.proximity, f.context.proximity);
  EXPECT_EQ(sparse_context.probability, f.context.probability);
}

TEST(MaskingContextTest, SimilaritiesInUnitRange) {
  const Fixture f = MakeFixture();
  for (double s : f.context.similarity) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  for (double p : f.context.probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MaskingContextTest, TopKLimitsCandidates) {
  const Fixture f = MakeFixture(0.5, /*top_k=*/5);
  int candidates = 0;
  for (double p : f.context.probability) {
    if (p > 0.0) ++candidates;
  }
  EXPECT_LE(candidates, 5);
  EXPECT_GE(candidates, 1);
}

TEST(MaskingContextTest, ProximityFavoursBorderNodes) {
  // Observed nodes closest to the unobserved region's centroid should have
  // the largest proximity values.
  const Fixture f = MakeFixture();
  const GeoPoint centroid = Centroid(f.dataset.coords, f.split.test);
  size_t closest = 0;
  double best = 1e18;
  for (size_t i = 0; i < f.context.observed.size(); ++i) {
    const double d =
        Distance(f.dataset.coords[f.context.observed[i]], centroid);
    if (d < best) {
      best = d;
      closest = i;
    }
  }
  const double max_proximity =
      *std::max_element(f.context.proximity.begin(), f.context.proximity.end());
  EXPECT_DOUBLE_EQ(f.context.proximity[closest], max_proximity);
}

TEST(DrawMaskTest, SelectiveMaskNonEmptyAndObservedOnly) {
  Fixture f = MakeFixture();
  Rng rng(21);
  const std::set<int> observed(f.context.observed.begin(),
                               f.context.observed.end());
  for (int draw = 0; draw < 10; ++draw) {
    const auto masked = DrawSelectiveMask(f.context, &rng);
    EXPECT_FALSE(masked.empty());
    EXPECT_LT(masked.size(), observed.size());
    for (int node : masked) EXPECT_TRUE(observed.count(node));
  }
}

TEST(DrawMaskTest, BothStrategiesHitTargetCountExactly) {
  // MaskToTarget makes the masked count equal to N_o * delta_m for both
  // strategies, so ablations compare like-for-like difficulty.
  Fixture f = MakeFixture(0.4);
  Rng rng(22);
  const size_t target =
      static_cast<size_t>(0.4 * f.context.observed.size());
  for (int draw = 0; draw < 10; ++draw) {
    EXPECT_EQ(DrawRandomMask(f.context, &rng).size(), target);
    EXPECT_EQ(DrawSelectiveMask(f.context, &rng).size(), target);
  }
}

TEST(DrawMaskTest, TargetRespectsSurvivorFloor) {
  // Even with mask_ratio ~ 1, at least a quarter of observed nodes survive.
  Fixture f = MakeFixture(0.99);
  Rng rng(25);
  const size_t observed = f.context.observed.size();
  const auto masked = DrawRandomMask(f.context, &rng);
  EXPECT_LE(masked.size(), observed - std::max<size_t>(2, observed / 4));
}

TEST(DrawMaskTest, SelectiveBeatsRandomOnSimilarity) {
  // The core claim behind Table 8: selective masking picks sub-graphs more
  // similar to the unobserved region than random masking does.
  Fixture f = MakeFixture();
  Rng rng(23);
  double selective = 0.0, random = 0.0;
  const int draws = 30;
  for (int draw = 0; draw < draws; ++draw) {
    selective += MeanMaskSimilarity(f.context, DrawSelectiveMask(f.context, &rng));
    random += MeanMaskSimilarity(f.context, DrawRandomMask(f.context, &rng));
  }
  EXPECT_GT(selective / draws, random / draws);
}

TEST(DrawMaskTest, MaskNeverSwallowsAllObserved) {
  // Even with an aggressive ratio, a quarter of observed nodes survive.
  Fixture f = MakeFixture(0.95, /*top_k=*/60);
  Rng rng(24);
  for (int draw = 0; draw < 10; ++draw) {
    const auto selective = DrawSelectiveMask(f.context, &rng);
    const auto random = DrawRandomMask(f.context, &rng);
    EXPECT_LE(selective.size(), f.context.observed.size() * 3 / 4 + 1);
    EXPECT_LE(random.size(), f.context.observed.size() * 3 / 4 + 1);
  }
}

TEST(DrawMaskTest, SelectiveDrawsFollowProbabilities) {
  // Locations with zero Eq. 15 probability (outside the top-K) must never
  // be chosen as sub-graph roots; with small sub-graphs the masked set then
  // concentrates on high-probability locations.
  Fixture f = MakeFixture(0.3, /*top_k=*/5);
  Rng rng(26);
  // Count how often each observed node is masked over many draws.
  std::vector<int> counts(f.context.observed.size(), 0);
  for (int draw = 0; draw < 50; ++draw) {
    const auto masked = DrawSelectiveMask(f.context, &rng);
    for (int node : masked) {
      for (size_t i = 0; i < f.context.observed.size(); ++i) {
        if (f.context.observed[i] == node) ++counts[i];
      }
    }
  }
  // Mean mask frequency of positive-probability nodes should exceed that
  // of zero-probability nodes (the latter can only appear as neighbours).
  double hot = 0, cold = 0;
  int hot_n = 0, cold_n = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (f.context.probability[i] > 0) {
      hot += counts[i];
      ++hot_n;
    } else {
      cold += counts[i];
      ++cold_n;
    }
  }
  ASSERT_GT(hot_n, 0);
  ASSERT_GT(cold_n, 0);
  EXPECT_GT(hot / hot_n, cold / cold_n);
}

TEST(MeanMaskSimilarityTest, MatchesManualAverage) {
  Fixture f = MakeFixture();
  // Take the first three observed nodes as the mask.
  const std::vector<int> masked = {f.context.observed[0],
                                   f.context.observed[1],
                                   f.context.observed[2]};
  const double expected = (f.context.similarity[0] + f.context.similarity[1] +
                           f.context.similarity[2]) /
                          3.0;
  EXPECT_DOUBLE_EQ(MeanMaskSimilarity(f.context, masked), expected);
}

}  // namespace
}  // namespace stsm
