#include <cmath>

#include "gtest/gtest.h"
#include "timeseries/dtw.h"
#include "timeseries/pseudo_observations.h"
#include "timeseries/series.h"
#include "timeseries/temporal_adjacency.h"
#include "timeseries/time_features.h"

namespace stsm {
namespace {

TEST(DtwTest, IdenticalSequencesZero) {
  const std::vector<float> a = {1, 2, 3, 4, 3, 2};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DtwDistance(a, a, /*band=*/2), 0.0);
}

TEST(DtwTest, SymmetricInArguments) {
  const std::vector<float> a = {1, 3, 5, 7};
  const std::vector<float> b = {2, 2, 6, 6};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
}

TEST(DtwTest, NonNegativeAndDiscriminative) {
  const std::vector<float> base = {0, 1, 2, 3, 4, 5};
  const std::vector<float> close = {0, 1, 2, 3, 4, 6};
  const std::vector<float> far = {10, 9, 8, 7, 6, 5};
  const double d_close = DtwDistance(base, close);
  const double d_far = DtwDistance(base, far);
  EXPECT_GE(d_close, 0.0);
  EXPECT_LT(d_close, d_far);
}

TEST(DtwTest, InvariantToTimeShiftUnlikeEuclidean) {
  // A shifted copy of a bump: DTW should be much smaller than the
  // point-wise L1 distance.
  std::vector<float> a(20, 0.0f), b(20, 0.0f);
  for (int i = 5; i < 10; ++i) a[i] = 10.0f;
  for (int i = 7; i < 12; ++i) b[i] = 10.0f;
  double l1 = 0;
  for (int i = 0; i < 20; ++i) l1 += std::fabs(a[i] - b[i]);
  EXPECT_LT(DtwDistance(a, b), l1 * 0.25);
}

TEST(DtwTest, BandRestrictsWarping) {
  // With a wide shift and a narrow band, the banded distance exceeds the
  // unconstrained one.
  std::vector<float> a(30, 0.0f), b(30, 0.0f);
  for (int i = 0; i < 5; ++i) a[i] = 5.0f;
  for (int i = 20; i < 25; ++i) b[i] = 5.0f;
  EXPECT_GE(DtwDistance(a, b, /*band=*/2), DtwDistance(a, b, /*band=*/0));
}

TEST(DtwTest, DifferentLengthSequences) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {1, 1, 2, 2, 3, 3};
  EXPECT_GE(DtwDistance(a, b), 0.0);
  EXPECT_LT(DtwDistance(a, b), 1e-9);  // Perfectly warpable.
}

TEST(DailyProfileTest, AveragesAcrossDays) {
  // Two days, 4 slots: day2 = day1 + 2.
  const std::vector<float> series = {1, 2, 3, 4, 3, 4, 5, 6};
  const auto profile = DailyProfile(series, 4);
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_FLOAT_EQ(profile[0], 2.0f);
  EXPECT_FLOAT_EQ(profile[3], 5.0f);
}

TEST(SeriesMatrixTest, AccessorsAndSlicing) {
  SeriesMatrix m(4, 2);
  m.set(2, 1, 7.5f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 7.5f);
  const auto node = m.NodeSeries(1);
  EXPECT_FLOAT_EQ(node[2], 7.5f);
  const SeriesMatrix slice = m.TimeSlice(2, 4);
  EXPECT_EQ(slice.num_steps, 2);
  EXPECT_FLOAT_EQ(slice.at(0, 1), 7.5f);
}

TEST(PseudoObsTest, WeightsSumToOne) {
  // 3 nodes on a line; node 1 is the target.
  const std::vector<double> d = {0, 1, 3,
                                 1, 0, 2,
                                 3, 2, 0};
  const auto w = InverseDistanceWeights(d, 3, /*targets=*/{1},
                                        /*sources=*/{0, 2});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  // Closer source gets more weight: d(1,0)=1 < d(1,2)=2.
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(w[0], (1.0 / 1.0) / (1.0 / 1.0 + 1.0 / 2.0), 1e-12);
}

TEST(PseudoObsTest, CoincidentSourceCopiesExactly) {
  const std::vector<double> d = {0, 0, 5,
                                 0, 0, 5,
                                 5, 5, 0};
  const auto w = InverseDistanceWeights(d, 3, {1}, {0, 2});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

TEST(PseudoObsTest, MaxNeighborsRestrictsSupport) {
  // 4 nodes on a line at x = 0, 1, 2, 10; target is node 1.
  const std::vector<double> d = {0, 1, 2, 10,
                                 1, 0, 1, 9,
                                 2, 1, 0, 8,
                                 10, 9, 8, 0};
  const auto w_all =
      InverseDistanceWeights(d, 4, {1}, {0, 2, 3}, /*max_neighbors=*/0);
  const auto w_two =
      InverseDistanceWeights(d, 4, {1}, {0, 2, 3}, /*max_neighbors=*/2);
  // Full weighting touches node 3; 2-NN weighting must not.
  EXPECT_GT(w_all[2], 0.0);
  EXPECT_DOUBLE_EQ(w_two[2], 0.0);
  EXPECT_NEAR(w_two[0] + w_two[1], 1.0, 1e-12);
  // Nearest nodes 0 and 2 are equidistant: equal weights.
  EXPECT_NEAR(w_two[0], 0.5, 1e-12);
}

TEST(PseudoObsTest, FillReproducesConvexCombination) {
  SeriesMatrix series(2, 3);
  series.set(0, 0, 10.0f);
  series.set(0, 2, 40.0f);
  series.set(1, 0, 20.0f);
  series.set(1, 2, 80.0f);
  const std::vector<double> d = {0, 1, 2,
                                 1, 0, 1,
                                 2, 1, 0};
  FillPseudoObservations(&series, d, /*targets=*/{1}, /*sources=*/{0, 2});
  // Equidistant: plain average.
  EXPECT_NEAR(series.at(0, 1), 25.0f, 1e-4);
  EXPECT_NEAR(series.at(1, 1), 50.0f, 1e-4);
  // Pseudo-values lie within the source range (convexity).
  EXPECT_GE(series.at(0, 1), 10.0f);
  EXPECT_LE(series.at(0, 1), 40.0f);
}

TEST(TemporalAdjacencyTest, DirectedObservedToTarget) {
  // Node 2 (target) mirrors node 0's daily pattern; node 1 differs.
  const int steps_per_day = 8;
  SeriesMatrix series(steps_per_day * 2, 3);
  for (int t = 0; t < series.num_steps; ++t) {
    const float phase = static_cast<float>(t % steps_per_day);
    series.set(t, 0, std::sin(phase));
    series.set(t, 1, 5.0f * std::cos(phase) + 20.0f);
    series.set(t, 2, std::sin(phase));  // Pseudo-obs identical to node 0.
  }
  TemporalAdjacencyOptions options;
  options.q_kk = 1;
  options.q_ku = 1;
  options.steps_per_day = steps_per_day;
  options.dtw_band = 0;
  const Tensor adj =
      TemporalSimilarityAdjacency(series, /*observed=*/{0, 1},
                                  /*targets=*/{2}, options);
  // Target 2 aggregates from its most similar observed node (0).
  EXPECT_EQ(adj.at({2, 0}), 1.0f);
  EXPECT_EQ(adj.at({2, 1}), 0.0f);
  // No edges from observed nodes into the target (directedness).
  EXPECT_EQ(adj.at({0, 2}), 0.0f);
  EXPECT_EQ(adj.at({1, 2}), 0.0f);
  // Observed pair linked symmetrically (q_kk = 1, only one other obs).
  EXPECT_EQ(adj.at({0, 1}), 1.0f);
  EXPECT_EQ(adj.at({1, 0}), 1.0f);
}

TEST(TemporalAdjacencyTest, QkuControlsInDegree) {
  const int steps_per_day = 6;
  SeriesMatrix series(steps_per_day * 2, 5);
  Rng rng(11);
  for (int t = 0; t < series.num_steps; ++t) {
    for (int n = 0; n < 5; ++n) {
      series.set(t, n, static_cast<float>(rng.Uniform()));
    }
  }
  TemporalAdjacencyOptions options;
  options.q_kk = 1;
  options.q_ku = 3;
  options.steps_per_day = steps_per_day;
  const Tensor adj = TemporalSimilarityAdjacency(series, {0, 1, 2, 3}, {4},
                                                 options);
  int in_degree = 0;
  for (int64_t j = 0; j < 5; ++j) {
    in_degree += adj.at({4, j}) != 0.0f ? 1 : 0;
  }
  EXPECT_EQ(in_degree, 3);
}

TEST(TimeFeaturesTest, IdsWrapAtMidnight) {
  const auto ids = TimeOfDayIds(/*start=*/6, /*window=*/4, /*steps_per_day=*/8);
  EXPECT_EQ(ids, (std::vector<int>{6, 7, 0, 1}));
}

TEST(TimeFeaturesTest, FeatureEncodingContinuity) {
  // sin/cos features must be continuous across midnight; the raw id is not.
  const auto before = TimeOfDayFeatures({287}, 288);
  const auto after = TimeOfDayFeatures({0}, 288);
  EXPECT_NEAR(before.at({0, 1}), after.at({0, 1}), 0.05);  // sin.
  EXPECT_NEAR(before.at({0, 2}), after.at({0, 2}), 0.05);  // cos.
}

TEST(TimeFeaturesTest, ShapeAndRange) {
  const auto ids = TimeOfDayIds(0, 24, 288);
  const Tensor f = TimeOfDayFeatures(ids, 288);
  EXPECT_EQ(f.shape(), Shape({24, 3}));
  for (int64_t i = 0; i < f.numel(); ++i) {
    EXPECT_LE(std::fabs(f.data()[i]), 1.0f);
  }
}

TEST(ProfileDtwTest, ZeroDiagonalSymmetric) {
  SeriesMatrix series(16, 3);
  Rng rng(13);
  for (auto& v : series.values) v = static_cast<float>(rng.Uniform());
  const auto d = ProfileDtwDistances(series, /*steps_per_day=*/8, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(d[i * 3 + i], 0.0);
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d[i * 3 + j], d[j * 3 + i]);
  }
}

}  // namespace
}  // namespace stsm
