// Property-based differential fuzz for the SIMD kernel dispatch: randomized
// shapes, strides (transposes/slices), and values drive every vectorized op
// through BOTH dispatch paths — forward and backward — and compare. Seeded
// and deterministic; skips cleanly on machines without SIMD kernels.
//
// Comparison tiers match the contract in tensor/simd.h:
//  - elementwise, Max/Min (values AND routed gradients): bitwise
//  - Sum/SumDim/Softmax/MatMul (reassociated flop order): tight ULP / scaled
//    absolute tolerance, on outputs and on input gradients

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace stsm {
namespace {

uint32_t Bits(float v) {
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

int64_t UlpDiff(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return Bits(a) == Bits(b) ? 0 : std::numeric_limits<int64_t>::max();
  }
  auto ordered = [](float v) {
    const auto u = static_cast<int64_t>(Bits(v));
    return (u & 0x80000000) ? (0x80000000 - u) : u;
  };
  const int64_t d = ordered(a) - ordered(b);
  return d < 0 ? -d : d;
}

// One differential run: `build` constructs fresh leaf inputs (same values
// every call — callers close over stored vectors) and returns a scalar loss
// plus the leaves whose gradients should be compared. The harness executes
// it under scalar dispatch, then under SIMD dispatch, and hands both results
// to `compare`.
struct RunResult {
  std::vector<float> output;               // forward values being compared
  std::vector<std::vector<float>> grads;   // per-leaf input gradients
};

RunResult RunOnce(
    bool vectorized,
    const std::function<std::pair<Tensor, std::vector<Tensor>>()>& build) {
  simd::SetDispatchForTesting(vectorized);
  auto [out, leaves] = build();
  RunResult r;
  Tensor loss = Sum(out);
  r.output.assign(out.data(), out.data() + out.numel());
  loss.Backward();
  for (const Tensor& leaf : leaves) {
    r.grads.emplace_back(leaf.grad_data(),
                         leaf.grad_data() + leaf.numel());
  }
  simd::ResetDispatch();
  return r;
}

void ExpectBitwise(const RunResult& a, const RunResult& b, const char* what) {
  ASSERT_EQ(a.output.size(), b.output.size()) << what;
  for (size_t i = 0; i < a.output.size(); ++i) {
    ASSERT_EQ(Bits(a.output[i]), Bits(b.output[i]))
        << what << " forward [" << i << "]: " << a.output[i] << " vs "
        << b.output[i];
  }
  ASSERT_EQ(a.grads.size(), b.grads.size()) << what;
  for (size_t t = 0; t < a.grads.size(); ++t) {
    ASSERT_EQ(a.grads[t].size(), b.grads[t].size()) << what;
    for (size_t i = 0; i < a.grads[t].size(); ++i) {
      ASSERT_EQ(Bits(a.grads[t][i]), Bits(b.grads[t][i]))
          << what << " grad " << t << " [" << i << "]";
    }
  }
}

void ExpectClose(const RunResult& a, const RunResult& b, const char* what,
                 int64_t max_ulp, float abs_floor) {
  ASSERT_EQ(a.output.size(), b.output.size()) << what;
  for (size_t i = 0; i < a.output.size(); ++i) {
    ASSERT_TRUE(UlpDiff(a.output[i], b.output[i]) <= max_ulp ||
                std::fabs(a.output[i] - b.output[i]) <= abs_floor)
        << what << " forward [" << i << "]: " << a.output[i] << " vs "
        << b.output[i];
  }
  ASSERT_EQ(a.grads.size(), b.grads.size()) << what;
  for (size_t t = 0; t < a.grads.size(); ++t) {
    ASSERT_EQ(a.grads[t].size(), b.grads[t].size()) << what;
    for (size_t i = 0; i < a.grads[t].size(); ++i) {
      ASSERT_TRUE(UlpDiff(a.grads[t][i], b.grads[t][i]) <= max_ulp ||
                  std::fabs(a.grads[t][i] - b.grads[t][i]) <= abs_floor)
          << what << " grad " << t << " [" << i << "]: " << a.grads[t][i]
          << " vs " << b.grads[t][i];
    }
  }
}

// Random shape with numel spanning sub-lane (tail-only) through multi-vector.
Shape RandomShape(std::mt19937* rng, int max_dims = 4, int64_t max_dim = 9) {
  std::uniform_int_distribution<int> nd(1, max_dims);
  std::uniform_int_distribution<int64_t> dim(1, max_dim);
  std::vector<int64_t> dims(nd(*rng));
  for (auto& d : dims) d = dim(*rng);
  return Shape(dims);
}

std::vector<float> RandomValues(int64_t n, std::mt19937* rng, float lo,
                                float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = dist(*rng);
  return v;
}

class SimdDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (simd::Supported() == nullptr) {
      GTEST_SKIP() << "no SIMD kernels on this machine";
    }
  }
  void TearDown() override { simd::ResetDispatch(); }
};

// ---- Elementwise chains: bitwise forward AND backward -----------------------

TEST_F(SimdDifferentialTest, ElementwiseChainsBitwise) {
  std::mt19937 rng(20240808);
  for (int trial = 0; trial < 40; ++trial) {
    const Shape shape = RandomShape(&rng);
    const auto av = RandomValues(shape.numel(), &rng, -2.0f, 2.0f);
    const auto bv = RandomValues(shape.numel(), &rng, 0.5f, 2.0f);
    const int which = trial % 8;
    auto build = [&]() {
      Tensor a = Tensor::FromVector(shape, std::vector<float>(av))
                     .set_requires_grad(true);
      Tensor b = Tensor::FromVector(shape, std::vector<float>(bv))
                     .set_requires_grad(true);
      Tensor out;
      switch (which) {
        case 0: out = Add(Mul(a, b), b); break;
        case 1: out = Div(a, b); break;
        case 2: out = Maximum(a, Neg(b)); break;
        case 3: out = Minimum(Square(a), b); break;
        case 4: out = Relu(Sub(a, b)); break;
        case 5: out = LeakyRelu(Mul(a, b), 0.05f); break;
        case 6: out = Sqrt(Abs(Mul(a, b))); break;
        default: out = Mul(Add(a, 0.5f), Div(b, 2.0f)); break;
      }
      return std::make_pair(out, std::vector<Tensor>{a, b});
    };
    const RunResult scalar = RunOnce(false, build);
    const RunResult vec = RunOnce(true, build);
    ExpectBitwise(scalar, vec, "elementwise chain");
  }
}

// ---- Strided / transposed / sliced views ------------------------------------

TEST_F(SimdDifferentialTest, StridedViewsBitwiseElementwise) {
  std::mt19937 rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    // Build a 3-D base, then view it via transpose and/or slice; the strided
    // operand exercises the scalar fallback path inside the op while the
    // other operand may still be contiguous — results must not depend on
    // which internal path ran.
    std::uniform_int_distribution<int64_t> dim(2, 7);
    const int64_t d0 = dim(rng), d1 = dim(rng), d2 = dim(rng);
    const Shape base_shape({d0, d1, d2});
    const auto av = RandomValues(base_shape.numel(), &rng, -2.0f, 2.0f);
    const int mode = trial % 3;
    auto build = [&]() {
      Tensor base = Tensor::FromVector(base_shape, std::vector<float>(av))
                        .set_requires_grad(true);
      Tensor view;
      switch (mode) {
        case 0: view = Transpose(base, 0, 2); break;
        case 1: view = Slice(base, 1, 0, std::max<int64_t>(1, d1 - 1)); break;
        default: view = Transpose(Slice(base, 2, 1, d2), 0, 1); break;
      }
      Tensor out = Mul(Relu(view), Add(view, 1.0f));
      return std::make_pair(out, std::vector<Tensor>{base});
    };
    const RunResult scalar = RunOnce(false, build);
    const RunResult vec = RunOnce(true, build);
    ExpectBitwise(scalar, vec, "strided elementwise");
  }
}

// ---- Reductions -------------------------------------------------------------

TEST_F(SimdDifferentialTest, MaxMinBitwiseIncludingTiesAndViews) {
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const Shape shape = RandomShape(&rng, 3, 11);
    // Quantized values create cross-lane ties; argmax routing must still be
    // identical, which the gradient comparison proves.
    std::uniform_int_distribution<int> q(-4, 4);
    std::vector<float> av(static_cast<size_t>(shape.numel()));
    for (float& v : av) v = static_cast<float>(q(rng)) * 0.25f;
    std::uniform_int_distribution<int> dim_dist(0, shape.ndim() - 1);
    const int dim = dim_dist(rng);
    const bool is_max = trial % 2 == 0;
    const bool transposed = shape.ndim() >= 2 && trial % 3 == 0;
    auto build = [&]() {
      Tensor a = Tensor::FromVector(shape, std::vector<float>(av))
                     .set_requires_grad(true);
      Tensor x = transposed ? Transpose(a, 0, shape.ndim() - 1) : a;
      const int d = dim % x.ndim();
      Tensor out = is_max ? Max(x, d, false) : Min(x, d, false);
      return std::make_pair(out, std::vector<Tensor>{a});
    };
    const RunResult scalar = RunOnce(false, build);
    const RunResult vec = RunOnce(true, build);
    ExpectBitwise(scalar, vec, is_max ? "max" : "min");
  }
}

TEST_F(SimdDifferentialTest, SumAndSumDimTightUlp) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    const Shape shape = RandomShape(&rng, 3, 17);
    const auto av = RandomValues(shape.numel(), &rng, -3.0f, 3.0f);
    std::uniform_int_distribution<int> dim_dist(0, shape.ndim() - 1);
    const int dim = dim_dist(rng);
    const bool full = trial % 2 == 0;
    const bool transposed = shape.ndim() >= 2 && trial % 3 == 0;
    auto build = [&]() {
      Tensor a = Tensor::FromVector(shape, std::vector<float>(av))
                     .set_requires_grad(true);
      Tensor x = transposed ? Transpose(a, 0, shape.ndim() - 1) : a;
      Tensor out = full ? Sum(x) : Sum(x, dim % x.ndim(), false);
      return std::make_pair(out, std::vector<Tensor>{a});
    };
    const RunResult scalar = RunOnce(false, build);
    const RunResult vec = RunOnce(true, build);
    // Double accumulation on both sides, reassociated: results agree to a
    // couple ULP after the final float rounding. Sum's backward adds the
    // incoming gradient verbatim, so gradients stay bitwise — covered by
    // the 0-ULP-or-floor bound on grads via max_ulp here.
    ExpectClose(scalar, vec, full ? "sum" : "sum_dim", 2, 1e-30f);
  }
}

TEST_F(SimdDifferentialTest, SoftmaxUlpBoundedForwardAndBackward) {
  std::mt19937 rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    const Shape shape = RandomShape(&rng, 3, 13);
    const auto av = RandomValues(shape.numel(), &rng, -6.0f, 6.0f);
    std::uniform_int_distribution<int> dim_dist(0, shape.ndim() - 1);
    const int dim = dim_dist(rng);
    const bool transposed = shape.ndim() >= 2 && trial % 4 == 0;
    // Weight the loss so softmax's backward has a non-trivial Jacobian
    // product (Sum alone would make y^T(g - (g.y)1) collapse to 0). The
    // weights are frozen outside build() so both dispatch runs see them.
    const auto frozen_w = RandomValues(shape.numel(), &rng, 0.0f, 1.0f);
    auto frozen_build = [&]() {
      Tensor a = Tensor::FromVector(shape, std::vector<float>(av))
                     .set_requires_grad(true);
      Tensor x = transposed ? Transpose(a, 0, shape.ndim() - 1) : a;
      Tensor w = Tensor::FromVector(x.shape(), std::vector<float>(frozen_w));
      Tensor out = Mul(Softmax(x, dim % x.ndim()), w);
      return std::make_pair(out, std::vector<Tensor>{a});
    };
    const RunResult scalar = RunOnce(false, frozen_build);
    const RunResult vec = RunOnce(true, frozen_build);
    // Polynomial exp vs libm: outputs within tens of ULP; gradients pick up
    // one more rounding through the Jacobian product.
    ExpectClose(scalar, vec, "softmax", 128, 1e-6f);
  }
}

// ---- MatMul -----------------------------------------------------------------

TEST_F(SimdDifferentialTest, MatMulScaledToleranceWithTransposes) {
  std::mt19937 rng(60607);
  for (int trial = 0; trial < 25; ++trial) {
    std::uniform_int_distribution<int64_t> dim(1, 24);
    const int64_t m = dim(rng), k = dim(rng), n = dim(rng);
    const auto av = RandomValues(m * k, &rng, -1.0f, 1.0f);
    const auto bv = RandomValues(k * n, &rng, -1.0f, 1.0f);
    const int mode = trial % 3;  // plain / A^T view / B^T view
    auto build = [&]() {
      Tensor a, b;
      if (mode == 1) {
        a = Tensor::FromVector(Shape({k, m}), std::vector<float>(av))
                .set_requires_grad(true);
      } else {
        a = Tensor::FromVector(Shape({m, k}), std::vector<float>(av))
                .set_requires_grad(true);
      }
      if (mode == 2) {
        b = Tensor::FromVector(Shape({n, k}), std::vector<float>(bv))
                .set_requires_grad(true);
      } else {
        b = Tensor::FromVector(Shape({k, n}), std::vector<float>(bv))
                .set_requires_grad(true);
      }
      const Tensor lhs = mode == 1 ? Transpose(a, 0, 1) : a;
      const Tensor rhs = mode == 2 ? Transpose(b, 0, 1) : b;
      Tensor out = MatMul(lhs, rhs);
      return std::make_pair(out, std::vector<Tensor>{a, b});
    };
    const RunResult scalar = RunOnce(false, build);
    const RunResult vec = RunOnce(true, build);
    // FMA + 6x16 tiles reassociate the dot products; with inputs in [-1,1]
    // the error scales with k. Backward runs two more GEMMs => same bound
    // with one extra factor.
    const float tol = 1e-6f * static_cast<float>(k + 8);
    ASSERT_EQ(scalar.output.size(), vec.output.size());
    for (size_t i = 0; i < scalar.output.size(); ++i) {
      ASSERT_NEAR(scalar.output[i], vec.output[i], tol)
          << "matmul fwd mode=" << mode << " m=" << m << " k=" << k
          << " n=" << n;
    }
    for (size_t t = 0; t < scalar.grads.size(); ++t) {
      const float gtol = 1e-6f * static_cast<float>(m + n + k + 8);
      for (size_t i = 0; i < scalar.grads[t].size(); ++i) {
        ASSERT_NEAR(scalar.grads[t][i], vec.grads[t][i], gtol)
            << "matmul grad " << t << " mode=" << mode;
      }
    }
  }
}

// ---- Special values through tensor-level dispatch ---------------------------

TEST_F(SimdDifferentialTest, SpecialValuesIdenticalAcrossDispatch) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> soup = {0.0f, -0.0f, nan,  inf,   -inf, 1e-41f,
                                   1.0f, -1.0f, 2.5f, -2.5f, nan,  -0.0f};
  const Shape shape({static_cast<int64_t>(soup.size())});
  auto run = [&](bool vec) {
    simd::SetDispatchForTesting(vec);
    Tensor x = Tensor::FromVector(shape, std::vector<float>(soup));
    std::vector<Tensor> outs = {
        Relu(x),           Maximum(x, Neg(x)), Minimum(x, Neg(x)),
        Max(x, 0, false),  Min(x, 0, false),   Softmax(x, 0),
        Add(x, 1.0f),      Abs(x),
    };
    std::vector<std::vector<float>> vals;
    for (const Tensor& t : outs) {
      vals.emplace_back(t.data(), t.data() + t.numel());
    }
    simd::ResetDispatch();
    return vals;
  };
  const auto scalar = run(false);
  const auto vec = run(true);
  ASSERT_EQ(scalar.size(), vec.size());
  for (size_t t = 0; t < scalar.size(); ++t) {
    ASSERT_EQ(scalar[t].size(), vec[t].size()) << "op " << t;
    for (size_t i = 0; i < scalar[t].size(); ++i) {
      if (std::isnan(scalar[t][i])) {
        // NaN-producing arithmetic may differ in payload, never in NaN-ness.
        EXPECT_TRUE(std::isnan(vec[t][i])) << "op " << t << " [" << i << "]";
      } else {
        EXPECT_EQ(Bits(scalar[t][i]), Bits(vec[t][i]))
            << "op " << t << " [" << i << "]: " << scalar[t][i] << " vs "
            << vec[t][i];
      }
    }
  }
}

}  // namespace
}  // namespace stsm
