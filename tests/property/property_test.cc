// Parameterized property tests: invariants that must hold across whole
// parameter ranges, swept with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "data/metrics.h"
#include "data/normalizer.h"
#include "data/splits.h"
#include "graph/adjacency.h"
#include "graph/geo.h"
#include "gtest/gtest.h"
#include "masking/masking.h"
#include "nn/optim.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "timeseries/dtw.h"
#include "timeseries/pseudo_observations.h"

namespace stsm {
namespace {

// ---- DTW properties over (length, band) -------------------------------------

class DtwProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DtwProperty, IdentityIsZero) {
  const auto [length, band] = GetParam();
  Rng rng(length * 131 + band);
  std::vector<float> series(length);
  for (auto& v : series) v = static_cast<float>(rng.Uniform(-5, 5));
  EXPECT_DOUBLE_EQ(DtwDistance(series, series, band), 0.0);
}

TEST_P(DtwProperty, SymmetricAndNonNegative) {
  const auto [length, band] = GetParam();
  Rng rng(length * 31 + band);
  std::vector<float> a(length), b(length);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-5, 5));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-5, 5));
  const double ab = DtwDistance(a, b, band);
  const double ba = DtwDistance(b, a, band);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
}

TEST_P(DtwProperty, BoundedByL1OnDiagonalPath) {
  // The diagonal warping path is always feasible (band >= 0 keeps the
  // diagonal), so DTW can never exceed the pointwise L1 distance.
  const auto [length, band] = GetParam();
  Rng rng(length * 17 + band);
  std::vector<float> a(length), b(length);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-5, 5));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-5, 5));
  double l1 = 0.0;
  for (int i = 0; i < length; ++i) l1 += std::fabs(a[i] - b[i]);
  EXPECT_LE(DtwDistance(a, b, band), l1 * (1.0 + 1e-6) + 1e-6);
}

TEST_P(DtwProperty, WiderBandNeverIncreasesDistance) {
  const auto [length, band] = GetParam();
  if (band == 0) GTEST_SKIP() << "unbounded band has nothing wider";
  Rng rng(length * 7 + band);
  std::vector<float> a(length), b(length);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-5, 5));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-5, 5));
  EXPECT_LE(DtwDistance(a, b, band * 2), DtwDistance(a, b, band) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndBands, DtwProperty,
    ::testing::Combine(::testing::Values(4, 16, 48, 96),
                       ::testing::Values(0, 2, 8)));

// ---- Adjacency properties over epsilon ---------------------------------------

class AdjacencyProperty : public ::testing::TestWithParam<double> {};

TEST_P(AdjacencyProperty, SymmetricWithUnitDiagonal) {
  const double epsilon = GetParam();
  Rng rng(11);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 25; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto d = PairwiseDistances(coords);
  const Tensor adj = GaussianThresholdAdjacency(d, 25, epsilon);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_FLOAT_EQ(adj.at({i, i}), 1.0f);
    for (int64_t j = 0; j < 25; ++j) {
      EXPECT_FLOAT_EQ(adj.at({i, j}), adj.at({j, i}));
      EXPECT_GE(adj.at({i, j}), 0.0f);
      EXPECT_LE(adj.at({i, j}), 1.0f);
    }
  }
}

TEST_P(AdjacencyProperty, NormalisationRowSumsBounded) {
  const double epsilon = GetParam();
  Rng rng(13);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 25; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto d = PairwiseDistances(coords);
  const Tensor norm = NormalizeRow(
      GaussianThresholdAdjacency(d, 25, epsilon), /*add_self_loops=*/true);
  for (int64_t i = 0; i < 25; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < 25; ++j) row_sum += norm.at({i, j});
    EXPECT_NEAR(row_sum, 1.0f, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, AdjacencyProperty,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8));

// ---- Split properties over (count, fractions) ---------------------------------

class SplitProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(SplitProperty, PartitionsAllNodes) {
  const auto [n, train_frac, val_frac] = GetParam();
  Rng rng(n);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < n; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  for (const SplitAxis axis : {SplitAxis::kHorizontal, SplitAxis::kVertical}) {
    const SpaceSplit split = SplitSpace(coords, axis, train_frac, val_frac);
    std::set<int> all(split.train.begin(), split.train.end());
    all.insert(split.validation.begin(), split.validation.end());
    all.insert(split.test.begin(), split.test.end());
    EXPECT_EQ(static_cast<int>(all.size()), n);
    EXPECT_EQ(split.train.size() + split.validation.size() +
                  split.test.size(),
              static_cast<size_t>(n));
    EXPECT_NEAR(static_cast<double>(split.train.size()) / n, train_frac,
                0.5 / std::sqrt(static_cast<double>(n)) + 0.02);
  }
}

TEST_P(SplitProperty, TestBandIsContiguous) {
  const auto [n, train_frac, val_frac] = GetParam();
  Rng rng(n + 1);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < n; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const SpaceSplit split =
      SplitSpace(coords, SplitAxis::kVertical, train_frac, val_frac);
  double max_observed_x = -1e18, min_test_x = 1e18;
  for (int i : split.Observed()) {
    max_observed_x = std::max(max_observed_x, coords[i].x);
  }
  for (int i : split.test) min_test_x = std::min(min_test_x, coords[i].x);
  EXPECT_LE(max_observed_x, min_test_x);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndFractions, SplitProperty,
    ::testing::Values(std::make_tuple(30, 0.4, 0.1),
                      std::make_tuple(100, 0.4, 0.1),
                      std::make_tuple(100, 0.3, 0.2),
                      std::make_tuple(333, 0.6, 0.1)));

// ---- Pseudo-observation properties over neighbour counts ----------------------

class PseudoObsProperty : public ::testing::TestWithParam<int> {};

TEST_P(PseudoObsProperty, WeightsFormConvexCombination) {
  const int max_neighbors = GetParam();
  Rng rng(41);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 30; ++i) {
    coords.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  const auto d = PairwiseDistances(coords);
  std::vector<int> sources, targets;
  for (int i = 0; i < 30; ++i) (i < 20 ? sources : targets).push_back(i);
  const auto weights =
      InverseDistanceWeights(d, 30, targets, sources, max_neighbors);
  for (size_t t = 0; t < targets.size(); ++t) {
    double sum = 0.0;
    int support = 0;
    for (size_t s = 0; s < sources.size(); ++s) {
      const double w = weights[t * sources.size() + s];
      EXPECT_GE(w, 0.0);
      sum += w;
      if (w > 0.0) {
        ++support;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    if (max_neighbors > 0) {
      EXPECT_LE(support, max_neighbors);
    }
  }
}

TEST_P(PseudoObsProperty, FilledValuesWithinSourceRange) {
  const int max_neighbors = GetParam();
  Rng rng(43);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < 20; ++i) {
    coords.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
  }
  const auto d = PairwiseDistances(coords);
  SeriesMatrix series(10, 20);
  std::vector<int> sources, targets;
  for (int i = 0; i < 20; ++i) (i < 14 ? sources : targets).push_back(i);
  float lo = 1e18f, hi = -1e18f;
  for (int t = 0; t < 10; ++t) {
    for (int s : sources) {
      const float v = static_cast<float>(rng.Uniform(40, 90));
      series.set(t, s, v);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  FillPseudoObservations(&series, d, targets, sources, max_neighbors);
  for (int t = 0; t < 10; ++t) {
    for (int target : targets) {
      EXPECT_GE(series.at(t, target), lo - 1e-4);
      EXPECT_LE(series.at(t, target), hi + 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NeighborCounts, PseudoObsProperty,
                         ::testing::Values(0, 1, 4, 8, 100));

// ---- Metrics properties over scales -------------------------------------------

class MetricsProperty : public ::testing::TestWithParam<double> {};

TEST_P(MetricsProperty, RmseAtLeastMae) {
  const double scale = GetParam();
  Rng rng(47);
  std::vector<float> pred(50), target(50);
  for (int i = 0; i < 50; ++i) {
    target[i] = static_cast<float>(scale * rng.Uniform(0.5, 1.5));
    pred[i] = target[i] + static_cast<float>(scale * rng.Normal(0, 0.1));
  }
  const Metrics m = ComputeMetrics(pred, target, /*mape_threshold=*/1e-9);
  EXPECT_GE(m.rmse, m.mae - 1e-9);
}

TEST_P(MetricsProperty, R2AndMapeScaleInvariant) {
  const double scale = GetParam();
  Rng rng(53);
  std::vector<float> pred(50), target(50);
  std::vector<float> pred_scaled(50), target_scaled(50);
  for (int i = 0; i < 50; ++i) {
    target[i] = static_cast<float>(rng.Uniform(10, 20));
    pred[i] = target[i] + static_cast<float>(rng.Normal(0, 1));
    target_scaled[i] = static_cast<float>(target[i] * scale);
    pred_scaled[i] = static_cast<float>(pred[i] * scale);
  }
  const Metrics base = ComputeMetrics(pred, target, 1e-9);
  const Metrics scaled = ComputeMetrics(pred_scaled, target_scaled, 1e-9);
  EXPECT_NEAR(base.r2, scaled.r2, 1e-3);
  EXPECT_NEAR(base.mape, scaled.mape, 1e-4);
  // Errors scale linearly.
  EXPECT_NEAR(scaled.rmse, base.rmse * scale, base.rmse * scale * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Scales, MetricsProperty,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0));

// ---- Masking properties over (ratio, top_k) ------------------------------------

class MaskingProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(MaskingProperty, DrawsHitTargetAndStayObserved) {
  const auto [ratio, top_k] = GetParam();
  Rng coords_rng(59);
  std::vector<GeoPoint> coords;
  std::vector<NodeMetadata> metadata(50);
  for (int i = 0; i < 50; ++i) {
    coords.push_back({coords_rng.Uniform(0, 10), coords_rng.Uniform(0, 10)});
    metadata[i].scale = static_cast<float>(coords_rng.Uniform(1, 20));
    metadata[i].maxspeed = 100.0f;
    metadata[i].lanes = 3.0f;
  }
  const SpaceSplit split = SplitSpace(coords, SplitAxis::kVertical);
  const auto d = PairwiseDistances(coords);
  const Tensor a_sg = GaussianThresholdAdjacency(d, 50, 0.6, 0.0, true);
  MaskingConfig config;
  config.mask_ratio = ratio;
  config.top_k = top_k;
  const MaskingContext context = BuildMaskingContext(
      a_sg, coords, metadata, split.Observed(), split.test, config);

  Rng rng(61);
  const std::set<int> observed(context.observed.begin(),
                               context.observed.end());
  const size_t expected = std::min(
      std::max<size_t>(1, static_cast<size_t>(ratio * observed.size())),
      observed.size() - std::max<size_t>(2, observed.size() / 4));
  for (int draw = 0; draw < 5; ++draw) {
    // Random masking can always reach the target (every root available).
    const auto random_mask = DrawRandomMask(context, &rng);
    EXPECT_EQ(random_mask.size(), expected);
    // Selective masking may fall short when the union of the top-K
    // sub-graphs is smaller than the target, but never overshoots.
    const auto selective_mask = DrawSelectiveMask(context, &rng);
    EXPECT_LE(selective_mask.size(), expected);
    EXPECT_GE(selective_mask.size(), 1u);
    for (const auto& masked : {random_mask, selective_mask}) {
      for (int node : masked) EXPECT_TRUE(observed.count(node));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndK, MaskingProperty,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(3, 10, 50)));

// ---- Adam convergence over learning rates ---------------------------------------

class AdamProperty : public ::testing::TestWithParam<float> {};

TEST_P(AdamProperty, ConvergesOnConvexQuadratic) {
  const float lr = GetParam();
  Tensor x = Tensor::FromVector(Shape({3}), {4.0f, -7.0f, 2.5f}, true);
  Adam adam({x}, lr);
  for (int i = 0; i < 2000; ++i) {
    adam.ZeroGrad();
    Sum(Square(x)).Backward();
    adam.Step();
  }
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.data()[i], 0.0f, 0.1f) << "lr=" << lr;
  }
}

INSTANTIATE_TEST_SUITE_P(LearningRates, AdamProperty,
                         ::testing::Values(0.01f, 0.05f, 0.1f));

// ---- Gradient checks across tensor shapes ----------------------------------------

class GradShapeProperty
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(GradShapeProperty, ElementwiseChainGradientsCorrect) {
  const Shape shape(GetParam());
  Rng rng(71);
  Tensor x = Tensor::Uniform(shape, 0.2f, 1.2f, &rng, true);
  Tensor y = Tensor::Uniform(shape, 0.2f, 1.2f, &rng, true);
  const GradCheckResult result = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Mean(Mul(Sigmoid(in[0]), Tanh(Add(in[0], in[1]))));
      },
      {x, y}, 1e-2, 2e-2);
  EXPECT_TRUE(result.ok) << "shape " << shape.ToString()
                         << " max_rel=" << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GradShapeProperty,
    ::testing::Values(std::vector<int64_t>{1}, std::vector<int64_t>{7},
                      std::vector<int64_t>{3, 4},
                      std::vector<int64_t>{2, 3, 2},
                      std::vector<int64_t>{2, 2, 2, 2}));

}  // namespace
}  // namespace stsm
