#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, 4, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  const int64_t n = 100000;
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, n, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 100, [&](int64_t begin, int64_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, GlobalPoolAvailable) {
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
  std::atomic<int> count{0};
  ParallelFor(0, 64, [&](int64_t begin, int64_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace stsm
