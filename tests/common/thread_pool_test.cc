#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace stsm {
namespace {

// Sets STSM_NUM_THREADS for the test's lifetime and restores the previous
// value (or unsets it) on destruction.
class ScopedNumThreadsEnv {
 public:
  explicit ScopedNumThreadsEnv(const char* value) {
    const char* previous = std::getenv("STSM_NUM_THREADS");
    if (previous != nullptr) {
      had_previous_ = true;
      previous_ = previous;
    }
    setenv("STSM_NUM_THREADS", value, /*overwrite=*/1);
  }
  ~ScopedNumThreadsEnv() {
    if (had_previous_) {
      setenv("STSM_NUM_THREADS", previous_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("STSM_NUM_THREADS");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(0, 1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, 4, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  const int64_t n = 100000;
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, n, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 100, [&](int64_t begin, int64_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeAcrossSizesAndPools) {
  // No gaps, no overlaps, for ranges that exercise every chunking branch:
  // below/at/above the worker count and with a ragged final chunk.
  const int64_t sizes[] = {1, 2, 3, 7, 16, 101, 1000};
  const int pool_sizes[] = {1, 2, 3, 8};
  for (int threads : pool_sizes) {
    ThreadPool pool(threads);
    for (int64_t total : sizes) {
      const int64_t begin = 5;  // Non-zero start catches begin-offset bugs.
      const int64_t end = begin + total;
      std::vector<std::atomic<int>> counts(total);
      pool.ParallelFor(begin, end, [&](int64_t chunk_begin, int64_t chunk_end) {
        ASSERT_GE(chunk_begin, begin);
        ASSERT_LE(chunk_end, end);
        ASSERT_LT(chunk_begin, chunk_end);
        for (int64_t i = chunk_begin; i < chunk_end; ++i) {
          counts[i - begin].fetch_add(1);
        }
      });
      for (int64_t i = 0; i < total; ++i) {
        EXPECT_EQ(counts[i].load(), 1)
            << "index " << i << " with " << threads << " threads over "
            << total << " items";
      }
    }
  }
}

TEST(ThreadPoolTest, SmallRangeRunsInlineOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  {
    ThreadPool pool(4);
    std::thread::id executed;
    pool.ParallelFor(0, 1, [&](int64_t, int64_t) {
      executed = std::this_thread::get_id();
    });
    EXPECT_EQ(executed, caller) << "total == 1 should not touch the queue";
  }
  {
    ThreadPool pool(1);
    std::thread::id executed;
    pool.ParallelFor(0, 100, [&](int64_t, int64_t) {
      executed = std::this_thread::get_id();
    });
    EXPECT_EQ(executed, caller) << "1-thread pools should run inline";
  }
}

TEST(ThreadPoolTest, ConfiguredThreadCountHonoursEnv) {
  {
    ScopedNumThreadsEnv env("1");
    EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 1);
  }
  {
    ScopedNumThreadsEnv env("3");
    EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 3);
  }
}

TEST(ThreadPoolTest, ConfiguredThreadCountClampsToValidRange) {
  {
    ScopedNumThreadsEnv env("64");
    EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 16);
  }
  {
    ScopedNumThreadsEnv env("0");
    EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 1);
  }
  {
    ScopedNumThreadsEnv env("-4");
    EXPECT_EQ(ThreadPool::ConfiguredThreadCount(), 1);
  }
}

TEST(ThreadPoolTest, GlobalPoolAvailable) {
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
  std::atomic<int> count{0};
  ParallelFor(0, 64, [&](int64_t begin, int64_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace stsm
