#include "common/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(TableTest, TextRenderingAligned) {
  Table table({"Model", "RMSE"});
  table.AddRow({"STSM", "8.610"});
  table.AddRow({"INCREASE", "8.820"});
  const std::string text = table.ToText();
  EXPECT_NE(text.find("| Model"), std::string::npos);
  EXPECT_NE(text.find("STSM"), std::string::npos);
  EXPECT_NE(text.find("INCREASE"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(text.find("|--"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table table({"a", "b"});
  table.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table table({"h"});
  table.AddRow({"v"});
  const std::string path = "/tmp/stsm_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path));
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_EQ(buffer.str(), "h\nv\n");
  std::remove(path.c_str());
}

TEST(TableTest, NumRows) {
  Table table({"h"});
  EXPECT_EQ(table.num_rows(), 0);
  table.AddRow({"a"});
  table.AddRow({"b"});
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(FormatFloatTest, DigitControl) {
  EXPECT_EQ(FormatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFloat(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatFloat(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatFloat(2.0, 0), "2");
}

}  // namespace
}  // namespace stsm
