#include <cstdlib>

#include "common/check.h"
#include "common/env.h"
#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(EnvTest, StringFallback) {
  unsetenv("STSM_TEST_VAR");
  EXPECT_EQ(GetEnvOr("STSM_TEST_VAR", std::string("fallback")), "fallback");
  setenv("STSM_TEST_VAR", "value", 1);
  EXPECT_EQ(GetEnvOr("STSM_TEST_VAR", std::string("fallback")), "value");
  unsetenv("STSM_TEST_VAR");
}

TEST(EnvTest, IntFallback) {
  unsetenv("STSM_TEST_INT");
  EXPECT_EQ(GetEnvOr("STSM_TEST_INT", 7), 7);
  setenv("STSM_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvOr("STSM_TEST_INT", 7), 42);
  unsetenv("STSM_TEST_INT");
}

TEST(EnvTest, DoubleFallback) {
  unsetenv("STSM_TEST_DBL");
  EXPECT_DOUBLE_EQ(GetEnvOr("STSM_TEST_DBL", 1.5), 1.5);
  setenv("STSM_TEST_DBL", "2.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvOr("STSM_TEST_DBL", 1.5), 2.25);
  unsetenv("STSM_TEST_DBL");
}

TEST(EnvTest, BenchFullScaleFlag) {
  unsetenv("STSM_BENCH_SCALE");
  EXPECT_FALSE(BenchFullScale());
  setenv("STSM_BENCH_SCALE", "full", 1);
  EXPECT_TRUE(BenchFullScale());
  setenv("STSM_BENCH_SCALE", "fast", 1);
  EXPECT_FALSE(BenchFullScale());
  unsetenv("STSM_BENCH_SCALE");
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ STSM_CHECK(1 == 2) << "boom"; }, "STSM_CHECK failed");
}

TEST(CheckDeathTest, ComparisonPrintsOperands) {
  // The streamed context separates tokens with spaces: "( 3  vs  4 )".
  EXPECT_DEATH({ STSM_CHECK_EQ(3, 4); }, "3.*vs.*4");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  STSM_CHECK(true);
  STSM_CHECK_EQ(2, 2);
  STSM_CHECK_LT(1, 2);
  STSM_CHECK_GE(2, 2);
  SUCCEED();
}

}  // namespace
}  // namespace stsm
