#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace stsm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(19);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit over 1000 draws.
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(31);
  const std::vector<int> perm = rng.Permutation(50);
  std::set<int> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  const std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng forked = a.Fork();
  // The fork and the parent should not emit identical streams.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == forked.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace stsm
