#include "common/prof.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace stsm {
namespace prof {
namespace {

// Every test runs against the process-global registry, so each one starts
// from a clean slate and leaves profiling enabled state as it found it.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = Enabled();
    SetEnabled(true);
    Reset();
  }
  void TearDown() override {
    Reset();
    SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(ProfTest, RecordsTimerCountAndTotal) {
  RecordTimerNs("prof_test.alpha", 100);
  RecordTimerNs("prof_test.alpha", 300);
  RecordTimerNs("prof_test.beta", 50);

  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* alpha = snapshot.FindTimer("prof_test.alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->count, 2u);
  EXPECT_EQ(alpha->total_ns, 400u);
  EXPECT_EQ(alpha->min_ns, 100u);
  EXPECT_EQ(alpha->max_ns, 300u);
  EXPECT_DOUBLE_EQ(alpha->MeanNs(), 200.0);

  const StatSnapshot* beta = snapshot.FindTimer("prof_test.beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->count, 1u);
  EXPECT_EQ(beta->total_ns, 50u);
}

TEST_F(ProfTest, RecordsCounters) {
  RecordCounter("prof_test.events");
  RecordCounter("prof_test.events", 4);

  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* events = snapshot.FindCounter("prof_test.events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->count, 2u);
  EXPECT_EQ(events->total_ns, 5u);  // Counters store the sum in total_ns.
}

TEST_F(ProfTest, ScopedTimerRecordsPositiveDuration) {
  {
    ScopedTimer timer("prof_test.scope");
    // Do a little work so the duration is non-zero on coarse clocks.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* scope = snapshot.FindTimer("prof_test.scope");
  ASSERT_NE(scope, nullptr);
  EXPECT_EQ(scope->count, 1u);
}

TEST_F(ProfTest, DisabledModeRecordsNothing) {
  SetEnabled(false);
  RecordTimerNs("prof_test.disabled", 123);
  RecordCounter("prof_test.disabled_count", 7);
  { STSM_PROF_SCOPE("prof_test.disabled_scope"); }
  STSM_PROF_COUNT("prof_test.disabled_macro", 1);
  SetEnabled(true);

  const Snapshot snapshot = TakeSnapshot();
  EXPECT_EQ(snapshot.FindTimer("prof_test.disabled"), nullptr);
  EXPECT_EQ(snapshot.FindTimer("prof_test.disabled_scope"), nullptr);
  EXPECT_EQ(snapshot.FindCounter("prof_test.disabled_count"), nullptr);
  EXPECT_EQ(snapshot.FindCounter("prof_test.disabled_macro"), nullptr);
}

TEST_F(ProfTest, ResetClearsStatsButKeepsRecording) {
  RecordTimerNs("prof_test.reset", 10);
  Reset();
  EXPECT_EQ(TakeSnapshot().FindTimer("prof_test.reset"), nullptr);

  // The same name must keep working after Reset (thread-local caches hold
  // pointers into the registry).
  RecordTimerNs("prof_test.reset", 20);
  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* stat = snapshot.FindTimer("prof_test.reset");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 1u);
  EXPECT_EQ(stat->total_ns, 20u);
}

TEST_F(ProfTest, ConcurrentScopedTimersFromThreadPool) {
  constexpr int kTasks = 200;
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  pool.ParallelFor(0, kTasks, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      STSM_PROF_SCOPE("prof_test.pool");
      RecordTimerNs("prof_test.pool_manual", 7);
      executed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  ASSERT_EQ(executed.load(), kTasks);

  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* scoped = snapshot.FindTimer("prof_test.pool");
  ASSERT_NE(scoped, nullptr);
  EXPECT_EQ(scoped->count, static_cast<uint64_t>(kTasks));
  const StatSnapshot* manual = snapshot.FindTimer("prof_test.pool_manual");
  ASSERT_NE(manual, nullptr);
  EXPECT_EQ(manual->count, static_cast<uint64_t>(kTasks));
  EXPECT_EQ(manual->total_ns, static_cast<uint64_t>(kTasks) * 7u);
}

TEST_F(ProfTest, StatsSurviveThreadExit) {
  std::thread worker([] {
    for (int i = 0; i < 50; ++i) RecordTimerNs("prof_test.exited", 11);
  });
  worker.join();

  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* stat = snapshot.FindTimer("prof_test.exited");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 50u);
  EXPECT_EQ(stat->total_ns, 550u);
}

TEST_F(ProfTest, HistogramPercentilesBracketTrueValues) {
  // 100 samples of 1000ns, then 5 of 1ms: p50 should sit near 1000ns and
  // p99 near 1ms. Log2 buckets quantise, so allow a factor-of-two band.
  for (int i = 0; i < 100; ++i) RecordTimerNs("prof_test.hist", 1000);
  for (int i = 0; i < 5; ++i) RecordTimerNs("prof_test.hist", 1000000);

  const Snapshot snapshot = TakeSnapshot();
  const StatSnapshot* stat = snapshot.FindTimer("prof_test.hist");
  ASSERT_NE(stat, nullptr);
  const double p50 = stat->PercentileNs(0.50);
  const double p99 = stat->PercentileNs(0.99);
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 2000.0);
  EXPECT_GE(p99, 500000.0);
  EXPECT_LE(p99, 2000000.0);
  // Percentiles are clamped to the observed range.
  EXPECT_GE(stat->PercentileNs(0.0), static_cast<double>(stat->min_ns));
  EXPECT_LE(stat->PercentileNs(1.0), static_cast<double>(stat->max_ns));
}

TEST_F(ProfTest, JsonRoundTripPreservesRawFields) {
  for (int i = 0; i < 10; ++i) RecordTimerNs("prof_test.json", 100 + 37 * i);
  RecordTimerNs("prof_test.json_other", 123456789);
  RecordCounter("prof_test.json_count", 42);

  const Snapshot original = TakeSnapshot();
  const std::string json = original.ToJson();

  Snapshot restored;
  ASSERT_TRUE(SnapshotFromJson(json, &restored));
  ASSERT_EQ(restored.timers.size(), original.timers.size());
  ASSERT_EQ(restored.counters.size(), original.counters.size());
  for (size_t i = 0; i < original.timers.size(); ++i) {
    const StatSnapshot& a = original.timers[i];
    const StatSnapshot& b = restored.timers[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.total_ns, b.total_ns);
    EXPECT_EQ(a.min_ns, b.min_ns);
    EXPECT_EQ(a.max_ns, b.max_ns);
    EXPECT_EQ(a.buckets, b.buckets);
  }
  const StatSnapshot* count = restored.FindCounter("prof_test.json_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->total_ns, 42u);
}

TEST_F(ProfTest, JsonParserRejectsGarbage) {
  Snapshot out;
  EXPECT_FALSE(SnapshotFromJson("not json", &out));
  EXPECT_FALSE(SnapshotFromJson("{\"timers\": [", &out));
}

TEST_F(ProfTest, CsvHasHeaderAndOneRowPerStat) {
  RecordTimerNs("prof_test.csv", 10);
  RecordCounter("prof_test.csv_count", 3);
  const std::string csv = TakeSnapshot().ToCsv();
  EXPECT_NE(csv.find("kind,name,count,total_ns"), std::string::npos);
  EXPECT_NE(csv.find("timer,prof_test.csv,"), std::string::npos);
  EXPECT_NE(csv.find("counter,prof_test.csv_count,"), std::string::npos);
}

}  // namespace
}  // namespace prof
}  // namespace stsm
