// Multi-producer / multi-consumer stress for BoundedQueue — the serving
// layer's delivery guarantee, asserted under contention: every accepted
// item is delivered exactly once (none lost, none double-delivered), pops
// are batch-compatible, and per-producer FIFO order survives the
// micro-batching scan. Runs in the TSan CI lane, so the queue's locking is
// also checked for data races, not just logical delivery.

#include "serve/queue.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace stsm {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

struct StressItem {
  int producer = 0;
  int seq = 0;
  int model = 0;  // Batch-compatibility key (same-model micro-batching).
  Clock::time_point deadline;
};

struct Delivered {
  StressItem item;
  bool expired = false;  // Past its deadline at pickup, like the server's
                         // degraded path; still must be delivered exactly
                         // once.
};

constexpr int kProducers = 4;
constexpr int kConsumers = 3;
constexpr int kItemsPerProducer = 2000;
constexpr int kModels = 3;
constexpr size_t kCapacity = 64;
constexpr size_t kMaxBatch = 8;
// Every kExpiredStride-th item is born past-deadline, so the expiry path is
// exercised deterministically.
constexpr int kExpiredStride = 7;

// Drains `queue` until it is closed and empty, recording every popped item
// and asserting every batch is model-homogeneous.
void ConsumerLoop(BoundedQueue<StressItem>* queue,
                  std::vector<Delivered>* sink) {
  std::vector<StressItem> batch;
  const auto compatible = [](const StressItem& first, const StressItem& it) {
    return first.model == it.model;
  };
  while (queue->PopBatch(&batch, kMaxBatch, compatible)) {
    ASSERT_FALSE(batch.empty());
    ASSERT_LE(batch.size(), kMaxBatch);
    const Clock::time_point now = Clock::now();
    for (const StressItem& item : batch) {
      EXPECT_EQ(item.model, batch.front().model);
      sink->push_back(Delivered{item, now > item.deadline});
    }
  }
}

TEST(QueueStressTest, NoItemLostOrDoubleDeliveredUnderContention) {
  BoundedQueue<StressItem> queue(kCapacity);

  std::vector<std::vector<Delivered>> consumed(kConsumers);
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back(ConsumerLoop, &queue, &consumed[c]);
  }

  // Producers retry full-queue rejections (the server would answer
  // kRejected instead; here we want every item accepted so the exactly-once
  // ledger is exhaustive).
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int seq = 0; seq < kItemsPerProducer; ++seq) {
        StressItem item;
        item.producer = p;
        item.seq = seq;
        item.model = (p + seq) % kModels;
        item.deadline = seq % kExpiredStride == 0
                            ? Clock::now() - std::chrono::milliseconds(1)
                            : Clock::now() + std::chrono::seconds(60);
        while (!queue.TryPush(item)) std::this_thread::yield();
      }
    });
  }

  for (std::thread& producer : producers) producer.join();
  queue.Close();  // Consumers drain the remainder, then exit.
  for (std::thread& consumer : consumers) consumer.join();

  // Exactly-once ledger: every (producer, seq) pair appears exactly once
  // across all consumers.
  std::set<std::pair<int, int>> seen;
  int64_t total = 0;
  int64_t expired = 0;
  for (const auto& sink : consumed) {
    for (const Delivered& delivery : sink) {
      ++total;
      expired += delivery.expired ? 1 : 0;
      const auto key =
          std::make_pair(delivery.item.producer, delivery.item.seq);
      EXPECT_TRUE(seen.insert(key).second)
          << "double delivery of producer " << key.first << " seq "
          << key.second;
    }
  }
  EXPECT_EQ(total, int64_t{kProducers} * kItemsPerProducer);
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kProducers) * kItemsPerProducer);
  // Every pre-expired item must still have been delivered (expiry is the
  // server's business — the queue never drops), and they are a lower bound
  // on the observed-expired count because in-flight queueing can expire
  // more, never fewer.
  EXPECT_GE(expired, int64_t{kProducers} *
                         ((kItemsPerProducer + kExpiredStride - 1) /
                          kExpiredStride));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(QueueStressTest, PerProducerFifoSurvivesBatchScan) {
  // Single consumer: PopBatch always takes the global oldest first and
  // scans forward, so each producer's sequence must arrive monotonically.
  BoundedQueue<StressItem> queue(kCapacity);
  std::vector<Delivered> sink;
  std::thread consumer(ConsumerLoop, &queue, &sink);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int seq = 0; seq < kItemsPerProducer; ++seq) {
        StressItem item;
        item.producer = p;
        item.seq = seq;
        item.model = p % kModels;
        item.deadline = Clock::now() + std::chrono::seconds(60);
        while (!queue.TryPush(item)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  queue.Close();
  consumer.join();

  std::vector<int> next_seq(kProducers, 0);
  for (const Delivered& delivery : sink) {
    EXPECT_EQ(delivery.item.seq, next_seq[delivery.item.producer])
        << "producer " << delivery.item.producer << " reordered";
    next_seq[delivery.item.producer] = delivery.item.seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kItemsPerProducer);
  }
}

TEST(QueueStressTest, CloseWhileProducingStrandsNothingAccepted) {
  // Producers race Close(): pushes may be rejected, but whatever TryPush
  // accepted must still come out exactly once — a closed queue keeps
  // draining.
  BoundedQueue<StressItem> queue(kCapacity);

  std::vector<std::vector<Delivered>> consumed(kConsumers);
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back(ConsumerLoop, &queue, &consumed[c]);
  }

  std::atomic<int64_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, p] {
      for (int seq = 0; seq < kItemsPerProducer; ++seq) {
        StressItem item;
        item.producer = p;
        item.seq = seq;
        item.model = seq % kModels;
        item.deadline = Clock::now() + std::chrono::seconds(60);
        if (queue.TryPush(item)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();  // Full or closed; drop and move on.
        }
      }
    });
  }

  // Close mid-stream from a separate thread to race the producers.
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    queue.Close();
  });

  for (std::thread& producer : producers) producer.join();
  closer.join();
  for (std::thread& consumer : consumers) consumer.join();

  int64_t total = 0;
  std::set<std::pair<int, int>> seen;
  for (const auto& sink : consumed) {
    for (const Delivered& delivery : sink) {
      ++total;
      EXPECT_TRUE(
          seen.insert(std::make_pair(delivery.item.producer * kModels +
                                         delivery.item.model,
                                     delivery.item.seq))
              .second);
    }
  }
  EXPECT_EQ(total, accepted.load());
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace stsm
