// Tests for the stsm::serve subsystem: forecast cache, bounded batching
// queue, and the end-to-end server (no-grad forwards, cache hits, deadline
// degradation, unhealthy-model degradation, request validation).

#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/st_model.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "serve/cache.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "tensor/autograd.h"
#include "tensor/dtype.h"
#include "tensor/storage.h"

namespace stsm {
namespace serve {
namespace {

// ---- Cache ----

TEST(ForecastCacheTest, HitMissAndLruEviction) {
  ForecastCache cache(2);
  const CacheKey a{"m", 1, 0, {0}};
  const CacheKey b{"m", 2, 0, {0}};
  const CacheKey c{"m", 3, 0, {0}};
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(a, &out));
  cache.Insert(a, {1.0f});
  cache.Insert(b, {2.0f});
  ASSERT_TRUE(cache.Lookup(a, &out));  // Promotes a over b.
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  cache.Insert(c, {3.0f});  // Evicts b (least recently used).
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ForecastCacheTest, KeyDistinguishesAllComponents) {
  ForecastCache cache(8);
  const CacheKey base{"m", 7, 3, {1, 2}};
  cache.Insert(base, {1.0f});
  std::vector<float> out;
  EXPECT_FALSE(cache.Lookup(CacheKey{"other", 7, 3, {1, 2}}, &out));
  EXPECT_FALSE(cache.Lookup(CacheKey{"m", 8, 3, {1, 2}}, &out));
  EXPECT_FALSE(cache.Lookup(CacheKey{"m", 7, 4, {1, 2}}, &out));
  EXPECT_FALSE(cache.Lookup(CacheKey{"m", 7, 3, {2, 1}}, &out));
  EXPECT_TRUE(cache.Lookup(base, &out));
}

TEST(ForecastCacheTest, HashWindowSensitiveToValues) {
  EXPECT_NE(HashWindow({1.0f, 2.0f}), HashWindow({2.0f, 1.0f}));
  EXPECT_EQ(HashWindow({1.0f, 2.0f}), HashWindow({1.0f, 2.0f}));
}

TEST(ForecastCacheTest, Bf16EntriesRoundTripAndHalvePayload) {
  ForecastCache f32_cache(4);
  ForecastCache bf16_cache(4, CacheProfNames{"t.hit", "t.miss", "t.evict"},
                           DType::kBf16);
  const CacheKey key{"m", 1, 0, {0}};
  const std::vector<float> forecast = {1.0f, -2.5f, 0.333333f, 1e6f};
  f32_cache.Insert(key, forecast);
  bf16_cache.Insert(key, forecast);
  // The fp32 cache returns the values verbatim; the bf16 cache returns the
  // RNE-rounded values, widened — never raw bf16 bits.
  std::vector<float> out;
  ASSERT_TRUE(bf16_cache.Lookup(key, &out));
  ASSERT_EQ(out.size(), forecast.size());
  for (size_t i = 0; i < forecast.size(); ++i) {
    EXPECT_EQ(out[i], F32FromBf16(Bf16FromF32(forecast[i]))) << i;
    EXPECT_NEAR(out[i], forecast[i],
                1e-2f * std::max(1.0f, std::fabs(forecast[i])));
  }
  // Payload accounting: bf16 entries hold exactly half the bytes.
  EXPECT_EQ(f32_cache.stats().payload_bytes,
            forecast.size() * sizeof(float));
  EXPECT_EQ(bf16_cache.stats().payload_bytes,
            forecast.size() * sizeof(uint16_t));
  // Eviction and replacement keep the gauge exact.
  bf16_cache.Insert(key, {1.0f, 2.0f});
  EXPECT_EQ(bf16_cache.stats().payload_bytes, 2 * sizeof(uint16_t));
}

// ---- Queue ----

struct Item {
  int key = 0;
  int id = 0;
};

TEST(BoundedQueueTest, BackpressureWhenFull) {
  BoundedQueue<Item> queue(2);
  EXPECT_TRUE(queue.TryPush({1, 0}));
  EXPECT_TRUE(queue.TryPush({1, 1}));
  EXPECT_FALSE(queue.TryPush({1, 2}));  // Full.
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, PopBatchGroupsCompatibleItemsInOrder) {
  BoundedQueue<Item> queue(8);
  ASSERT_TRUE(queue.TryPush({1, 0}));
  ASSERT_TRUE(queue.TryPush({2, 1}));
  ASSERT_TRUE(queue.TryPush({1, 2}));
  ASSERT_TRUE(queue.TryPush({1, 3}));
  const auto same_key = [](const Item& a, const Item& b) {
    return a.key == b.key;
  };
  std::vector<Item> batch;
  ASSERT_TRUE(queue.PopBatch(&batch, 3, same_key));
  ASSERT_EQ(batch.size(), 3u);  // All key-1 items, oldest first.
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[1].id, 2);
  EXPECT_EQ(batch[2].id, 3);
  ASSERT_TRUE(queue.PopBatch(&batch, 3, same_key));
  ASSERT_EQ(batch.size(), 1u);  // The key-2 item was left in place.
  EXPECT_EQ(batch[0].id, 1);
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<Item> queue(4);
  ASSERT_TRUE(queue.TryPush({1, 0}));
  queue.Close();
  EXPECT_FALSE(queue.TryPush({1, 1}));  // Closed to producers.
  std::vector<Item> batch;
  const auto any = [](const Item&, const Item&) { return true; };
  ASSERT_TRUE(queue.PopBatch(&batch, 4, any));  // Still drains.
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(queue.PopBatch(&batch, 4, any));  // Closed and empty.
}

// ---- Server ----

struct ServeFixture {
  SpatioTemporalDataset dataset;
  StsmConfig config;
  SpaceSplit split;
  ModelSpec spec;
  ModelRegistry registry;
  std::string checkpoint = "/tmp/stsm_serve_test_ckpt.bin";
};

ServeFixture& Fixture() {
  static ServeFixture* fixture = [] {
    auto* f = new ServeFixture();
    SimulatorConfig sim;
    sim.name = "serve-tiny";
    sim.kind = RegionKind::kHighway;
    sim.num_sensors = 24;
    sim.num_days = 3;
    sim.steps_per_day = 48;
    sim.area_km = 16.0;
    sim.seed = 11;
    f->dataset = SimulateDataset(sim);

    f->config.input_length = 8;
    f->config.horizon = 4;
    f->config.hidden_dim = 8;
    f->config.num_blocks = 1;
    f->config.dtw_band = 6;
    f->config.seed = 21;

    f->split = SplitSpace(f->dataset.coords, SplitAxis::kVertical);

    Rng init_rng(f->config.seed + 13);
    StModel model(f->config, &init_rng);
    EXPECT_TRUE(SaveModule(model, f->checkpoint));

    f->spec = BuildModelSpec("stsm", f->dataset, f->split, f->config,
                             f->checkpoint);
    EXPECT_TRUE(f->registry.Load(f->spec).healthy);
    return f;
  }();
  return *fixture;
}

ForecastRequest MakeRequest(const ServeFixture& f, int start) {
  ForecastRequest request;
  request.model = "stsm";
  request.start_step = start;
  request.regions = f.split.test;
  const int n = f.dataset.num_nodes();
  request.window.resize(static_cast<size_t>(f.config.input_length) * n);
  for (int t = 0; t < f.config.input_length; ++t) {
    for (int node = 0; node < n; ++node) {
      request.window[static_cast<size_t>(t) * n + node] =
          f.dataset.series.at(start + t, node);
    }
  }
  return request;
}

TEST(ModelSpecTest, SparseAdjacencyPredictsLikeDense) {
  // config.sparse_adjacency flips the spec's adjacencies to CSR; the served
  // forecasts must agree with the dense spec within float accumulation
  // tolerance (same Table 4 guarantee as the offline model).
  ServeFixture& f = Fixture();
  StsmConfig sparse_config = f.config;
  sparse_config.sparse_adjacency = true;
  const ModelSpec sparse_spec = BuildModelSpec(
      "stsm-sparse", f.dataset, f.split, sparse_config, f.checkpoint);
  EXPECT_TRUE(sparse_spec.adj_spatial.is_sparse());
  EXPECT_TRUE(sparse_spec.adj_temporal.is_sparse());
  EXPECT_FALSE(f.spec.adj_spatial.is_sparse());

  const auto dense_model = ServedModel::Load(f.spec);
  const auto sparse_model = ServedModel::Load(sparse_spec);
  ASSERT_TRUE(dense_model->healthy());
  ASSERT_TRUE(sparse_model->healthy());

  Rng rng(31);
  const int n = f.dataset.num_nodes();
  const Tensor inputs = Tensor::Uniform(
      Shape({2, f.config.input_length, n, 1}), -1, 1, &rng);
  const Tensor time_features =
      Tensor::Uniform(Shape({2, f.config.input_length, 3}), -1, 1, &rng);
  const Tensor dense_out = dense_model->Predict(inputs, time_features);
  const Tensor sparse_out = sparse_model->Predict(inputs, time_features);
  ASSERT_EQ(dense_out.shape(), sparse_out.shape());
  for (int64_t i = 0; i < dense_out.numel(); ++i) {
    const float d = dense_out.data()[i];
    EXPECT_NEAR(sparse_out.data()[i], d,
                1e-5f * std::max(1.0f, std::fabs(d)))
        << "element " << i;
  }
}

TEST(ModelSpecTest, Bf16ServingParity) {
  // The end-to-end tolerance gate of DESIGN.md §13: a bf16-served model
  // (weights and adjacency values rounded, fp32 accumulation) must agree
  // with the fp32-served model within 1e-2 relative — the same order as
  // the paper's Table 4 metric resolution.
  ServeFixture& f = Fixture();
  StsmConfig bf16_config = f.config;
  bf16_config.serve_dtype = DType::kBf16;
  const ModelSpec bf16_spec = BuildModelSpec(
      "stsm-bf16", f.dataset, f.split, bf16_config, f.checkpoint);
  EXPECT_EQ(bf16_spec.adj_spatial.values_dtype(), DType::kBf16);
  EXPECT_EQ(bf16_spec.adj_temporal.values_dtype(), DType::kBf16);

  const auto f32_model = ServedModel::Load(f.spec);
  const auto bf16_model = ServedModel::Load(bf16_spec);
  ASSERT_TRUE(f32_model->healthy());
  ASSERT_TRUE(bf16_model->healthy());
  // Resident weights shrink by exactly 2x (every parameter converts).
  EXPECT_EQ(f32_model->weight_bytes(), 2 * bf16_model->weight_bytes());

  Rng rng(57);
  const int n = f.dataset.num_nodes();
  const Tensor inputs = Tensor::Uniform(
      Shape({2, f.config.input_length, n, 1}), -1, 1, &rng);
  const Tensor time_features =
      Tensor::Uniform(Shape({2, f.config.input_length, 3}), -1, 1, &rng);
  const Tensor f32_out = f32_model->Predict(inputs, time_features);
  const Tensor bf16_out = bf16_model->Predict(inputs, time_features);
  ASSERT_EQ(f32_out.shape(), bf16_out.shape());
  for (int64_t i = 0; i < f32_out.numel(); ++i) {
    const float expected = f32_out.data()[i];
    EXPECT_NEAR(bf16_out.data()[i], expected,
                1e-2f * std::max(1.0f, std::fabs(expected)))
        << "element " << i;
  }
}

TEST(ForecastServerTest, HealthyModelServesOk) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  const ForecastResponse response = server.SubmitAndWait(MakeRequest(f, 0));
  ASSERT_EQ(response.status, Status::kOk) << response.message;
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.horizon, f.config.horizon);
  EXPECT_GE(response.batch_size, 1);
  ASSERT_EQ(response.forecast.size(),
            static_cast<size_t>(f.config.horizon) * f.split.test.size());
  for (float value : response.forecast) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(ForecastServerTest, RepeatedQueryHitsCache) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  const ForecastResponse first = server.SubmitAndWait(MakeRequest(f, 5));
  ASSERT_EQ(first.status, Status::kOk);
  const ForecastResponse second = server.SubmitAndWait(MakeRequest(f, 5));
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.forecast.size(), first.forecast.size());
  for (size_t i = 0; i < first.forecast.size(); ++i) {
    EXPECT_FLOAT_EQ(second.forecast[i], first.forecast[i]);
  }
  EXPECT_GE(server.stats().cache_hits, 1u);
}

TEST(ForecastServerTest, ServingBuildsNoAutogradState) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  server.SubmitAndWait(MakeRequest(f, 2));  // Warm up lazy init.
  const uint64_t nodes = autograd::NodesCreated();
  const uint64_t grads = Storage::GradAllocations();
  const ForecastResponse response = server.SubmitAndWait(MakeRequest(f, 9));
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(autograd::NodesCreated(), nodes)
      << "serving forward recorded autograd nodes";
  EXPECT_EQ(Storage::GradAllocations(), grads)
      << "serving forward allocated grad buffers";
}

TEST(ForecastServerTest, UnknownModelAndBadShapesError) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  ForecastRequest unknown = MakeRequest(f, 0);
  unknown.model = "no-such-model";
  EXPECT_EQ(server.SubmitAndWait(std::move(unknown)).status, Status::kError);

  ForecastRequest short_window = MakeRequest(f, 0);
  short_window.window.pop_back();
  EXPECT_EQ(server.SubmitAndWait(std::move(short_window)).status,
            Status::kError);

  ForecastRequest bad_region = MakeRequest(f, 0);
  bad_region.regions = {f.dataset.num_nodes() + 5};
  EXPECT_EQ(server.SubmitAndWait(std::move(bad_region)).status,
            Status::kError);

  ForecastRequest no_regions = MakeRequest(f, 0);
  no_regions.regions.clear();
  EXPECT_EQ(server.SubmitAndWait(std::move(no_regions)).status,
            Status::kError);
  EXPECT_EQ(server.stats().errors, 4u);
}

TEST(ForecastServerTest, ExpiredDeadlineDegradesToHistoricalAverage) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  ForecastRequest request = MakeRequest(f, 3);
  request.deadline = Clock::now() - std::chrono::seconds(1);
  const ForecastResponse response = server.SubmitAndWait(request);
  ASSERT_EQ(response.status, Status::kDegraded);
  EXPECT_EQ(response.message, "deadline missed");
  const int n = f.dataset.num_nodes();
  ASSERT_EQ(response.forecast.size(),
            static_cast<size_t>(f.config.horizon) * request.regions.size());
  // Fallback = per-region mean of the request's own window, repeated.
  for (size_t r = 0; r < request.regions.size(); ++r) {
    double sum = 0.0;
    for (int t = 0; t < f.config.input_length; ++t) {
      sum += request.window[static_cast<size_t>(t) * n + request.regions[r]];
    }
    const float mean = static_cast<float>(sum / f.config.input_length);
    for (int h = 0; h < f.config.horizon; ++h) {
      EXPECT_FLOAT_EQ(
          response.forecast[static_cast<size_t>(h) * request.regions.size() +
                            r],
          mean);
    }
  }
  EXPECT_GE(server.stats().degraded, 1u);
}

TEST(ForecastServerTest, UnhealthyModelDegradesInsteadOfFailing) {
  ServeFixture& f = Fixture();
  ModelRegistry registry;
  ModelSpec broken = f.spec;
  broken.name = "broken";
  broken.checkpoint_path = "/tmp/stsm_serve_test_missing_ckpt.bin";
  EXPECT_FALSE(registry.Load(broken).healthy);  // Load failure reported...
  ASSERT_NE(registry.Find("broken"), nullptr);  // ...but still registered.
  EXPECT_FALSE(registry.Find("broken")->healthy());

  ForecastServer server(&registry, ServerConfig{});
  ForecastRequest request = MakeRequest(f, 0);
  request.model = "broken";
  const ForecastResponse response = server.SubmitAndWait(std::move(request));
  EXPECT_EQ(response.status, Status::kDegraded);
  EXPECT_EQ(response.message, "model unavailable");
  EXPECT_FALSE(response.forecast.empty());
}

TEST(ForecastServerTest, StopAnswersAllAcceptedRequests) {
  ServeFixture& f = Fixture();
  ForecastServer server(&f.registry, ServerConfig{});
  std::vector<std::future<ForecastResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.Submit(MakeRequest(f, i)));
  }
  server.Stop();
  for (auto& future : futures) {
    const ForecastResponse response = future.get();  // Must not hang/throw.
    EXPECT_TRUE(response.status == Status::kOk ||
                response.status == Status::kRejected)
        << StatusName(response.status);
  }
}

}  // namespace
}  // namespace serve
}  // namespace stsm
