// Network ingress + sharded serving tests: loopback end-to-end requests
// through the epoll listener, pipelining, back-pressure read pauses,
// malformed-frame rejection, per-shard routing and cache stats, registry
// unload/hot-swap transitions (including the TSan-exercised
// replace-while-Find race), and ServerConfig construction validation.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/st_model.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "gtest/gtest.h"
#include "nn/serialize.h"
#include "serve/net/client.h"
#include "serve/net/listener.h"
#include "serve/net/wire.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/sharding.h"

namespace stsm {
namespace serve {
namespace {

struct NetFixture {
  SpatioTemporalDataset dataset;
  StsmConfig config_tcn;
  StsmConfig config_trans;
  SpaceSplit split;
  ModelSpec spec_tcn;     // "stsm": TCN temporal module.
  ModelSpec spec_trans;   // "stsm-trans": transformer temporal module.
  ModelSpec spec_tcn_v2;  // Same name, different weights: the hot-swap spec.
  std::string ckpt_tcn = "/tmp/stsm_net_test_tcn.bin";
  std::string ckpt_trans = "/tmp/stsm_net_test_trans.bin";
  std::string ckpt_tcn_v2 = "/tmp/stsm_net_test_tcn_v2.bin";
};

NetFixture& Fixture() {
  static NetFixture* fixture = [] {
    auto* f = new NetFixture();
    SimulatorConfig sim;
    sim.name = "net-tiny";
    sim.kind = RegionKind::kHighway;
    sim.num_sensors = 16;
    sim.num_days = 2;
    sim.steps_per_day = 48;
    sim.area_km = 12.0;
    sim.seed = 7;
    f->dataset = SimulateDataset(sim);

    f->config_tcn.input_length = 6;
    f->config_tcn.horizon = 3;
    f->config_tcn.hidden_dim = 8;
    f->config_tcn.num_blocks = 1;
    f->config_tcn.dtw_band = 6;
    f->config_tcn.seed = 3;
    f->config_trans = f->config_tcn;
    f->config_trans.temporal_module = TemporalModule::kTransformer;

    f->split = SplitSpace(f->dataset.coords, SplitAxis::kVertical);

    Rng rng_tcn(f->config_tcn.seed + 1);
    StModel tcn(f->config_tcn, &rng_tcn);
    EXPECT_TRUE(SaveModule(tcn, f->ckpt_tcn));
    Rng rng_trans(f->config_trans.seed + 2);
    StModel trans(f->config_trans, &rng_trans);
    EXPECT_TRUE(SaveModule(trans, f->ckpt_trans));
    Rng rng_v2(f->config_tcn.seed + 3);
    StModel tcn_v2(f->config_tcn, &rng_v2);
    EXPECT_TRUE(SaveModule(tcn_v2, f->ckpt_tcn_v2));

    f->spec_tcn = BuildModelSpec("stsm", f->dataset, f->split, f->config_tcn,
                                 f->ckpt_tcn);
    f->spec_trans = BuildModelSpec("stsm-trans", f->dataset, f->split,
                                   f->config_trans, f->ckpt_trans);
    f->spec_tcn_v2 = BuildModelSpec("stsm", f->dataset, f->split,
                                    f->config_tcn, f->ckpt_tcn_v2);
    return f;
  }();
  return *fixture;
}

ForecastRequest MakeRequest(const std::string& model, int start) {
  const NetFixture& f = Fixture();
  ForecastRequest request;
  request.model = model;
  request.start_step = start;
  request.regions = f.split.test;
  const int n = f.dataset.num_nodes();
  const int t = f.config_tcn.input_length;
  request.window.resize(static_cast<size_t>(t) * n);
  for (int step = 0; step < t; ++step) {
    for (int node = 0; node < n; ++node) {
      request.window[static_cast<size_t>(step) * n + node] =
          f.dataset.series.at(start + step, node);
    }
  }
  return request;
}

net::RequestFrame MakeFrame(uint64_t id, const std::string& model,
                            int start) {
  net::RequestFrame frame;
  frame.id = id;
  frame.request = MakeRequest(model, start);
  return frame;
}

// A ShardedRegistry with both model kinds loaded, fronted by a listener on
// an ephemeral loopback port.
struct LoopbackServer {
  explicit LoopbackServer(net::ListenerConfig config = {},
                          ShardedConfig sharded_config = {})
      : sharded(sharded_config),
        listener(
            [this](ForecastRequest request,
                   std::function<void(ForecastResponse)> done) {
              sharded.SubmitAsync(std::move(request), std::move(done));
            },
            std::move(config)) {
    NetFixture& f = Fixture();
    EXPECT_TRUE(sharded.Load(f.spec_tcn).healthy);
    EXPECT_TRUE(sharded.Load(f.spec_trans).healthy);
    std::string error;
    EXPECT_TRUE(listener.Start(&error)) << error;
  }

  net::NetClient Connect() {
    net::NetClient client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", listener.port(), &error))
        << error;
    return client;
  }

  ShardedRegistry sharded;
  net::Listener listener;  // Declared last: destroyed (stopped) first.
};

template <typename Pred>
bool WaitFor(Pred pred,
             std::chrono::milliseconds timeout = std::chrono::seconds(5)) {
  const auto deadline = Clock::now() + timeout;
  while (!pred()) {
    if (Clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---- sharding --------------------------------------------------------------

TEST(ShardedRegistryTest, RoutingIsStableAndSplitsTheModelKinds) {
  LoopbackServer server;
  ASSERT_EQ(server.sharded.num_shards(), 2);
  EXPECT_EQ(server.sharded.ShardFor("stsm"),
            server.sharded.ShardFor("stsm"));  // Deterministic.
  // The two served model kinds land on different shards (FNV-1a % 2), which
  // the acceptance smoke and the per-shard counter checks rely on.
  EXPECT_NE(server.sharded.ShardFor("stsm"),
            server.sharded.ShardFor("stsm-trans"));
  EXPECT_EQ(server.sharded.Names().size(), 2u);
}

TEST(ShardedRegistryTest, PerShardCacheStatsAttributeToTheOwningShard) {
  LoopbackServer server;
  for (const std::string model : {"stsm", "stsm-trans"}) {
    ASSERT_EQ(server.sharded.SubmitAndWait(MakeRequest(model, 1)).status,
              Status::kOk);
    const ForecastResponse again =
        server.sharded.SubmitAndWait(MakeRequest(model, 1));
    ASSERT_EQ(again.status, Status::kOk);
    EXPECT_TRUE(again.cache_hit);
  }
  for (int shard = 0; shard < server.sharded.num_shards(); ++shard) {
    const ServerStats stats = server.sharded.shard_stats(shard);
    EXPECT_EQ(stats.submitted, 2u) << "shard " << shard;
    EXPECT_GE(stats.cache.hits, 1u) << "shard " << shard;
  }
}

TEST(ShardedRegistryTest, InternProfNameReturnsStablePointers) {
  const char* a = InternProfName("serve.cache.shard0.hit");
  const char* b = InternProfName("serve.cache.shard0.hit");
  const char* c = InternProfName("serve.cache.shard1.hit");
  EXPECT_EQ(a, b);  // Same name, same static-lifetime pointer.
  EXPECT_NE(a, c);
  EXPECT_STREQ(c, "serve.cache.shard1.hit");
}

// ---- registry load/unload/hot-swap -----------------------------------------

TEST(ModelRegistryTest, LoadReportsThePreviousEntryHealthTransition) {
  NetFixture& f = Fixture();
  ModelRegistry registry;
  const LoadResult initial = registry.Load(f.spec_tcn);
  EXPECT_TRUE(initial.healthy);
  EXPECT_EQ(initial.previous, EntryHealth::kAbsent);

  const LoadResult swap = registry.Load(f.spec_tcn_v2);
  EXPECT_TRUE(swap.healthy);
  EXPECT_EQ(swap.previous, EntryHealth::kHealthy);

  ModelSpec broken = f.spec_tcn;
  broken.checkpoint_path = "/tmp/stsm_net_test_missing.bin";
  const LoadResult regression = registry.Load(broken);
  EXPECT_FALSE(regression.healthy);
  EXPECT_EQ(regression.previous, EntryHealth::kHealthy);

  const LoadResult recovery = registry.Load(f.spec_tcn);
  EXPECT_TRUE(recovery.healthy);
  EXPECT_EQ(recovery.previous, EntryHealth::kUnhealthy);
}

TEST(ModelRegistryTest, UnloadRemovesTheEntry) {
  NetFixture& f = Fixture();
  ModelRegistry registry;
  EXPECT_FALSE(registry.Unload("stsm"));  // Nothing registered yet.
  ASSERT_TRUE(registry.Load(f.spec_tcn).healthy);
  ASSERT_NE(registry.Find("stsm"), nullptr);
  EXPECT_TRUE(registry.Unload("stsm"));
  EXPECT_EQ(registry.Find("stsm"), nullptr);
  EXPECT_FALSE(registry.Unload("stsm"));  // Second unload: already gone.
  // A load after unload is an initial load again.
  EXPECT_EQ(registry.Load(f.spec_tcn).previous, EntryHealth::kAbsent);
}

// The hot-swap contract under the race the design promises to survive:
// readers holding a Find()-result keep a usable model while the entry is
// concurrently replaced and unloaded. Run under TSan in CI.
TEST(ModelRegistryTest, ReplaceWhileFindInFlight) {
  NetFixture& f = Fixture();
  ModelRegistry registry;
  ASSERT_TRUE(registry.Load(f.spec_tcn).healthy);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ServedModel> model =
            registry.Find("stsm");
        if (model != nullptr) {
          // Use the model after the registry may have dropped it.
          EXPECT_EQ(model->spec().num_nodes, Fixture().dataset.num_nodes());
          EXPECT_TRUE(model->healthy());
          observed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Keep swapping until the readers have demonstrably raced against the
  // replacements (bounded by a wall-clock guard for pathological schedulers).
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < 40 || (observed.load(std::memory_order_relaxed) < 500 &&
                             Clock::now() < deadline);
       ++i) {
    const LoadResult result =
        registry.Load((i % 2 == 0) ? f.spec_tcn_v2 : f.spec_tcn);
    EXPECT_TRUE(result.healthy);
    if (i % 10 == 9) {
      EXPECT_TRUE(registry.Unload("stsm"));
      ASSERT_TRUE(registry.Load(f.spec_tcn).healthy);
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(observed.load(), 0u);
}

TEST(ShardedRegistryTest, HotSwapUnderLoadFailsNoRequest) {
  NetFixture& f = Fixture();
  LoopbackServer server;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      int start = c * 7;
      while (!stop.load(std::memory_order_acquire)) {
        const ForecastResponse response = server.sharded.SubmitAndWait(
            MakeRequest("stsm", start++ % 32));
        answered.fetch_add(1, std::memory_order_relaxed);
        if (response.status != Status::kOk &&
            response.status != Status::kRejected) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int swap = 0; swap < 10; ++swap) {
    const LoadResult result = server.sharded.Swap(
        (swap % 2 == 0) ? f.spec_tcn_v2 : f.spec_tcn);
    EXPECT_TRUE(result.healthy);
    EXPECT_EQ(result.previous, EntryHealth::kHealthy);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  EXPECT_GT(answered.load(), 0u);
  // A swap must never surface as a failed request: every answer is either
  // served (possibly by the previous generation) or back-pressured.
  EXPECT_EQ(failed.load(), 0u);
}

// ---- loopback ingress ------------------------------------------------------

TEST(NetIngressTest, LoopbackRequestRoundTrips) {
  NetFixture& f = Fixture();
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  ASSERT_TRUE(client.SendRequest(MakeFrame(99, "stsm", 0), &error)) << error;
  net::ResponseFrame response;
  ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
  EXPECT_EQ(response.id, 99u);
  ASSERT_EQ(response.response.status, Status::kOk)
      << response.response.message;
  EXPECT_EQ(response.response.horizon, f.config_tcn.horizon);
  ASSERT_EQ(response.response.forecast.size(),
            static_cast<size_t>(f.config_tcn.horizon) * f.split.test.size());
  for (float value : response.response.forecast) {
    EXPECT_TRUE(std::isfinite(value));
  }
  // The identical query again: answered from the shard cache, and the
  // cache-hit flag survives the wire.
  ASSERT_TRUE(client.SendRequest(MakeFrame(100, "stsm", 0), &error));
  net::ResponseFrame cached;
  ASSERT_TRUE(client.ReadResponse(&cached, &error)) << error;
  EXPECT_EQ(cached.id, 100u);
  EXPECT_TRUE(cached.response.cache_hit);
  EXPECT_EQ(cached.response.forecast, response.response.forecast);
}

TEST(NetIngressTest, PipelinedRequestsAcrossBothShardsAllAnswered) {
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    const std::string model = (i % 2 == 0) ? "stsm" : "stsm-trans";
    ASSERT_TRUE(client.SendRequest(
        MakeFrame(1000 + i, model, i % 16), &error))
        << error;
  }
  std::unordered_map<uint64_t, Status> statuses;
  for (int i = 0; i < kRequests; ++i) {
    net::ResponseFrame response;
    ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
    statuses[response.id] = response.response.status;
  }
  ASSERT_EQ(statuses.size(), static_cast<size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(statuses.count(1000 + i)) << "missing response " << i;
    EXPECT_EQ(statuses[1000 + i], Status::kOk) << "request " << i;
  }
  const net::ListenerStats stats = server.listener.stats();
  EXPECT_EQ(stats.frames_in, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.frames_out, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.malformed, 0u);
}

TEST(NetIngressTest, InflightCapPausesReadsButAnswersEverything) {
  net::ListenerConfig config;
  config.max_inflight_per_connection = 1;
  LoopbackServer server(config);
  net::NetClient client = server.Connect();
  std::string error;
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendRequest(MakeFrame(i, "stsm", i), &error)) << error;
  }
  for (int i = 0; i < kRequests; ++i) {
    net::ResponseFrame response;
    ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
    EXPECT_EQ(response.response.status, Status::kOk);
  }
  // With a single in-flight slot and pipelined sends, back-pressure must
  // have paused reads at least once — and buffered frames must still have
  // been parsed after completions drained (or the reads above would hang).
  EXPECT_GE(server.listener.stats().read_pauses, 1u);
}

TEST(NetIngressTest, UnknownModelAnsweredOverTheWire) {
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  net::RequestFrame frame = MakeFrame(7, "stsm", 0);
  frame.request.model = "no-such-model";
  ASSERT_TRUE(client.SendRequest(frame, &error)) << error;
  net::ResponseFrame response;
  ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.response.status, Status::kError);
  EXPECT_NE(response.response.message.find("unknown model"),
            std::string::npos);
}

TEST(NetIngressTest, GarbageBytesCloseTheConnection) {
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  const std::vector<uint8_t> garbage(64, 0xA5);
  ASSERT_TRUE(client.SendBytes(garbage.data(), garbage.size(), &error));
  net::ResponseFrame response;
  EXPECT_FALSE(client.ReadResponse(&response, &error));
  EXPECT_TRUE(WaitFor([&] {
    const net::ListenerStats stats = server.listener.stats();
    return stats.malformed >= 1 && stats.closed >= 1;
  })) << "listener never recorded the malformed close";
}

TEST(NetIngressTest, ValidThenMalformedFrameAnswersThenCloses) {
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  ASSERT_TRUE(client.SendRequest(MakeFrame(11, "stsm", 2), &error));
  net::ResponseFrame response;
  ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
  EXPECT_EQ(response.id, 11u);
  // An oversized length field: rejected at the header, before any
  // allocation, and terminal for the stream.
  std::vector<uint8_t> bad(net::kHeaderBytes, 0);
  std::memcpy(bad.data(), &net::kMagic, 4);
  bad[4] = net::kWireVersion;
  bad[5] = 1;
  const uint32_t huge = static_cast<uint32_t>(net::kMaxPayloadBytes) + 1;
  std::memcpy(bad.data() + 8, &huge, 4);
  ASSERT_TRUE(client.SendBytes(bad.data(), bad.size(), &error));
  EXPECT_FALSE(client.ReadResponse(&response, &error));
  EXPECT_TRUE(WaitFor(
      [&] { return server.listener.stats().malformed >= 1; }));
}

TEST(NetIngressTest, HalfCloseDrainsResponsesThenClosesGracefully) {
  LoopbackServer server;
  net::NetClient client = server.Connect();
  std::string error;
  ASSERT_TRUE(client.SendRequest(MakeFrame(21, "stsm-trans", 3), &error));
  client.ShutdownWrite();
  net::ResponseFrame response;
  ASSERT_TRUE(client.ReadResponse(&response, &error)) << error;
  EXPECT_EQ(response.id, 21u);
  EXPECT_EQ(response.response.status, Status::kOk);
  // After the last response the server closes its side too.
  EXPECT_FALSE(client.ReadResponse(&response, &error));
  EXPECT_TRUE(WaitFor([&] { return server.listener.stats().closed >= 1; }));
}

// ---- ServerConfig validation -----------------------------------------------

TEST(ServerConfigDeathTest, ConstructionRejectsNonPositiveSettings) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ModelRegistry registry;
  ServerConfig bad_workers;
  bad_workers.num_workers = 0;
  EXPECT_DEATH({ ForecastServer server(&registry, bad_workers); },
               "num_workers");
  ServerConfig bad_queue;
  bad_queue.queue_capacity = -1;
  EXPECT_DEATH({ ForecastServer server(&registry, bad_queue); },
               "queue_capacity");
  ServerConfig bad_batch;
  bad_batch.batch_max = 0;
  EXPECT_DEATH({ ForecastServer server(&registry, bad_batch); }, "batch_max");
  ServerConfig bad_cache;
  bad_cache.cache_capacity = -5;
  EXPECT_DEATH({ ForecastServer server(&registry, bad_cache); },
               "cache_capacity");
}

}  // namespace
}  // namespace serve
}  // namespace stsm
