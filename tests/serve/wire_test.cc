// Wire-protocol tests: round-trips for every status tag and boundary tensor
// size, plus defensive decoding of truncated, oversized, and garbage frames
// — a hostile length field must be rejected before it can size a buffer.

#include "serve/net/wire.h"

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace stsm {
namespace serve {
namespace net {
namespace {

RequestFrame MakeRequest() {
  RequestFrame frame;
  frame.id = 0x0123456789ABCDEFull;
  frame.deadline_ms = 250;
  frame.request.model = "stsm";
  frame.request.start_step = -17;
  frame.request.window = {1.0f, -2.5f, 0.0f, 3.25f};
  frame.request.regions = {0, 3, 7};
  return frame;
}

// Decodes one encoded frame back through the header + payload path.
template <typename Frame>
bool RoundTrip(const std::vector<uint8_t>& bytes, Frame* out,
               bool (*decode)(const uint8_t*, size_t, Frame*, std::string*)) {
  FrameHeader header;
  std::string error;
  if (DecodeHeader(bytes.data(), bytes.size(), &header, &error) !=
      DecodeResult::kOk) {
    return false;
  }
  if (bytes.size() != kHeaderBytes + header.payload_bytes) return false;
  return decode(bytes.data() + kHeaderBytes, header.payload_bytes, out,
                &error);
}

TEST(WireTest, RequestRoundTrip) {
  const RequestFrame frame = MakeRequest();
  std::vector<uint8_t> bytes;
  EncodeRequest(frame, &bytes);
  RequestFrame decoded;
  ASSERT_TRUE(RoundTrip(bytes, &decoded, DecodeRequestPayload));
  EXPECT_EQ(decoded.id, frame.id);
  EXPECT_EQ(decoded.deadline_ms, frame.deadline_ms);
  EXPECT_EQ(decoded.request.model, frame.request.model);
  EXPECT_EQ(decoded.request.start_step, frame.request.start_step);
  EXPECT_EQ(decoded.request.window, frame.request.window);
  EXPECT_EQ(decoded.request.regions, frame.request.regions);
  // The absolute deadline is never carried across hosts.
  EXPECT_EQ(decoded.request.deadline, Clock::time_point::max());
}

TEST(WireTest, ResponseRoundTripEveryStatusTag) {
  for (Status status :
       {Status::kOk, Status::kDegraded, Status::kRejected, Status::kError}) {
    ResponseFrame frame;
    frame.id = 42;
    frame.response.status = status;
    frame.response.message = "detail";
    frame.response.forecast = {0.5f, -1.5f};
    frame.response.horizon = 4;
    frame.response.batch_size = 3;
    frame.response.cache_hit = (status == Status::kOk);
    std::vector<uint8_t> bytes;
    EncodeResponse(frame, &bytes);
    ResponseFrame decoded;
    ASSERT_TRUE(RoundTrip(bytes, &decoded, DecodeResponsePayload));
    EXPECT_EQ(decoded.id, 42u);
    EXPECT_EQ(decoded.response.status, status);
    EXPECT_EQ(decoded.response.message, "detail");
    EXPECT_EQ(decoded.response.forecast, frame.response.forecast);
    EXPECT_EQ(decoded.response.horizon, 4);
    EXPECT_EQ(decoded.response.batch_size, 3);
    EXPECT_EQ(decoded.response.cache_hit, frame.response.cache_hit);
  }
}

TEST(WireTest, ZeroLengthTensorsRoundTrip) {
  RequestFrame request;
  request.id = 1;  // Everything else at defaults: empty model/window/regions.
  std::vector<uint8_t> request_bytes;
  EncodeRequest(request, &request_bytes);
  EXPECT_EQ(request_bytes.size(), kHeaderBytes + 26);
  RequestFrame decoded_request;
  ASSERT_TRUE(RoundTrip(request_bytes, &decoded_request,
                        DecodeRequestPayload));
  EXPECT_TRUE(decoded_request.request.model.empty());
  EXPECT_TRUE(decoded_request.request.window.empty());
  EXPECT_TRUE(decoded_request.request.regions.empty());

  ResponseFrame response;
  response.id = 2;  // Empty message and forecast (the kRejected shape).
  response.response.status = Status::kRejected;
  std::vector<uint8_t> response_bytes;
  EncodeResponse(response, &response_bytes);
  ResponseFrame decoded_response;
  ASSERT_TRUE(RoundTrip(response_bytes, &decoded_response,
                        DecodeResponsePayload));
  EXPECT_TRUE(decoded_response.response.message.empty());
  EXPECT_TRUE(decoded_response.response.forecast.empty());
}

TEST(WireTest, MaxSizePayloadRoundTrips) {
  // Largest forecast that fits the payload cap exactly: fixed response
  // fields are 24 bytes, the rest is floats.
  const size_t forecast_len = (kMaxPayloadBytes - 24) / 4;
  ResponseFrame frame;
  frame.response.status = Status::kOk;
  frame.response.forecast.assign(forecast_len, 1.25f);
  std::vector<uint8_t> bytes;
  EncodeResponse(frame, &bytes);
  FrameHeader header;
  std::string error;
  ASSERT_EQ(DecodeHeader(bytes.data(), bytes.size(), &header, &error),
            DecodeResult::kOk);
  EXPECT_EQ(header.payload_bytes, kMaxPayloadBytes);
  ResponseFrame decoded;
  ASSERT_TRUE(RoundTrip(bytes, &decoded, DecodeResponsePayload));
  EXPECT_EQ(decoded.response.forecast.size(), forecast_len);
}

// ---- header rejection ------------------------------------------------------

std::vector<uint8_t> RawHeader(uint32_t magic, uint8_t version, uint8_t type,
                               uint16_t reserved, uint32_t payload_bytes) {
  std::vector<uint8_t> bytes(kHeaderBytes);
  std::memcpy(bytes.data(), &magic, 4);
  bytes[4] = version;
  bytes[5] = type;
  std::memcpy(bytes.data() + 6, &reserved, 2);
  std::memcpy(bytes.data() + 8, &payload_bytes, 4);
  return bytes;
}

TEST(WireTest, ShortHeaderNeedsMoreBytes) {
  std::vector<uint8_t> bytes;
  EncodeRequest(MakeRequest(), &bytes);
  FrameHeader header;
  std::string error;
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    EXPECT_EQ(DecodeHeader(bytes.data(), len, &header, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireTest, HeaderRejectsGarbageAndWrongFields) {
  FrameHeader header;
  std::string error;
  const auto malformed = [&](const std::vector<uint8_t>& bytes) {
    return DecodeHeader(bytes.data(), bytes.size(), &header, &error) ==
           DecodeResult::kMalformed;
  };
  EXPECT_TRUE(malformed(RawHeader(0xDEADBEEF, kWireVersion, 1, 0, 0)));
  EXPECT_TRUE(malformed(RawHeader(kMagic, kWireVersion + 1, 1, 0, 0)));
  EXPECT_TRUE(malformed(RawHeader(kMagic, kWireVersion, 0, 0, 0)));
  EXPECT_TRUE(malformed(RawHeader(kMagic, kWireVersion, 3, 0, 0)));
  EXPECT_TRUE(malformed(RawHeader(kMagic, kWireVersion, 1, 7, 0)));
  // An oversized length field is rejected at the header, before any
  // allocation could be sized from it.
  EXPECT_TRUE(malformed(RawHeader(kMagic, kWireVersion, 1, 0,
                                  static_cast<uint32_t>(kMaxPayloadBytes) +
                                      1)));
  // All-garbage bytes fail on the magic.
  std::vector<uint8_t> garbage(kHeaderBytes, 0xA5);
  EXPECT_TRUE(malformed(garbage));
}

// ---- payload rejection -----------------------------------------------------

TEST(WireTest, TruncatedRequestPayloadRejected) {
  std::vector<uint8_t> bytes;
  EncodeRequest(MakeRequest(), &bytes);
  const size_t payload_size = bytes.size() - kHeaderBytes;
  RequestFrame decoded;
  std::string error;
  for (size_t len = 0; len < payload_size; ++len) {
    EXPECT_FALSE(DecodeRequestPayload(bytes.data() + kHeaderBytes, len,
                                      &decoded, &error))
        << "truncated to " << len << " bytes";
  }
}

TEST(WireTest, TrailingBytesAfterRequestRejected) {
  std::vector<uint8_t> bytes;
  EncodeRequest(MakeRequest(), &bytes);
  bytes.push_back(0);
  RequestFrame decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequestPayload(bytes.data() + kHeaderBytes,
                                    bytes.size() - kHeaderBytes, &decoded,
                                    &error));
}

TEST(WireTest, HostileCountsRejectedWithoutAllocation) {
  // A tiny payload claiming 4 billion window floats: the count must be
  // checked against the actual bytes before any vector is sized.
  std::vector<uint8_t> bytes;
  EncodeRequest(MakeRequest(), &bytes);
  const size_t window_len_at = kHeaderBytes + 8 + 4 + 4 + 2;
  const uint32_t hostile = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + window_len_at, &hostile, 4);
  RequestFrame decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequestPayload(bytes.data() + kHeaderBytes,
                                    bytes.size() - kHeaderBytes, &decoded,
                                    &error));
  EXPECT_TRUE(decoded.request.window.empty());

  // Same through the region count.
  std::vector<uint8_t> bytes2;
  EncodeRequest(MakeRequest(), &bytes2);
  std::memcpy(bytes2.data() + window_len_at + 4, &hostile, 4);
  EXPECT_FALSE(DecodeRequestPayload(bytes2.data() + kHeaderBytes,
                                    bytes2.size() - kHeaderBytes, &decoded,
                                    &error));
}

TEST(WireTest, OverlongModelNameRejected) {
  std::vector<uint8_t> bytes;
  EncodeRequest(MakeRequest(), &bytes);
  const size_t model_len_at = kHeaderBytes + 8 + 4 + 4;
  const uint16_t overlong = kMaxModelNameBytes + 1;
  std::memcpy(bytes.data() + model_len_at, &overlong, 2);
  RequestFrame decoded;
  std::string error;
  EXPECT_FALSE(DecodeRequestPayload(bytes.data() + kHeaderBytes,
                                    bytes.size() - kHeaderBytes, &decoded,
                                    &error));
  EXPECT_EQ(error, "model name too long");
}

TEST(WireTest, UnknownStatusTagRejected) {
  ResponseFrame frame;
  frame.response.status = Status::kOk;
  std::vector<uint8_t> bytes;
  EncodeResponse(frame, &bytes);
  bytes[kHeaderBytes + 8] = 9;  // Status byte past every known tag.
  ResponseFrame decoded;
  std::string error;
  EXPECT_FALSE(DecodeResponsePayload(bytes.data() + kHeaderBytes,
                                     bytes.size() - kHeaderBytes, &decoded,
                                     &error));
  EXPECT_EQ(error, "unknown status tag");
}

TEST(WireTest, TruncatedResponsePayloadRejected) {
  ResponseFrame frame;
  frame.response.status = Status::kDegraded;
  frame.response.message = "deadline missed";
  frame.response.forecast = {1.0f, 2.0f, 3.0f};
  std::vector<uint8_t> bytes;
  EncodeResponse(frame, &bytes);
  const size_t payload_size = bytes.size() - kHeaderBytes;
  ResponseFrame decoded;
  std::string error;
  for (size_t len = 0; len < payload_size; ++len) {
    EXPECT_FALSE(DecodeResponsePayload(bytes.data() + kHeaderBytes, len,
                                       &decoded, &error))
        << "truncated to " << len << " bytes";
  }
}

}  // namespace
}  // namespace net
}  // namespace serve
}  // namespace stsm
