// Tour of the tensor/autograd substrate the models are built on.
//
// Shows the public Tensor API: construction, broadcasting arithmetic,
// reverse-mode autodiff, and a tiny gradient-descent fit — everything STSM
// itself uses, at toy scale.
//
// Run: ./build/examples/tensor_playground

#include <cstdio>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

int main() {
  using namespace stsm;

  // ---- Tensors and broadcasting -------------------------------------------
  const Tensor matrix =
      Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor row = Tensor::FromVector(Shape({3}), {10, 20, 30});
  const Tensor sum = matrix + row;  // Row broadcasts over the first dim.
  std::printf("matrix + row          = %s\n", sum.ToString().c_str());
  std::printf("mean(matrix)          = %.3f\n", Mean(matrix).item());
  std::printf("max over columns      = %s\n",
              Max(matrix, /*dim=*/1).ToString().c_str());

  // ---- Automatic differentiation -------------------------------------------
  // f(x) = sum(x^2): df/dx = 2x.
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3}, /*requires_grad=*/true);
  Tensor f = Sum(Square(x));
  f.Backward();
  std::printf("\nf(x) = sum(x^2) = %.1f, df/dx = [%.1f, %.1f, %.1f]\n",
              f.item(), x.grad_data()[0], x.grad_data()[1], x.grad_data()[2]);

  // Gradients flow through matmul, activations, reductions...
  Rng rng(1);
  Tensor w = Tensor::Normal(Shape({3, 2}), 0.0f, 0.5f, &rng, true);
  Tensor g = Mean(Sigmoid(MatMul(Reshape(x.Detach(), Shape({1, 3})), w)));
  g.Backward();
  std::printf("d mean(sigmoid(x@W))/dW has %lld entries, first %.4f\n",
              static_cast<long long>(w.numel()), w.grad_data()[0]);

  // ---- A two-line training loop --------------------------------------------
  // Fit y = 3x - 1 with a Linear layer and Adam.
  const Linear layer(1, 1, &rng);
  Adam adam(layer.Parameters(), 0.05f);
  for (int step = 0; step < 400; ++step) {
    const Tensor inputs = Tensor::Uniform(Shape({16, 1}), -1, 1, &rng);
    const Tensor targets = inputs * 3.0f + (-1.0f);
    adam.ZeroGrad();
    MseLoss(layer.Forward(inputs), targets).Backward();
    adam.Step();
  }
  std::printf("\nfit of y = 3x - 1: weight = %.3f, bias = %.3f\n",
              layer.Parameters()[0].item(), layer.Parameters()[1].item());

  // ---- Inference mode -------------------------------------------------------
  {
    NoGradGuard no_grad;  // No tape is recorded inside this scope.
    const Tensor y = layer.Forward(Tensor::Ones(Shape({1, 1})));
    std::printf("prediction at x=1: %.3f (expected ~2)\n", y.item());
  }
  return 0;
}
