// Air-quality forecasting for a city without monitoring stations.
//
// Uses the simulated AirQ stand-in (two adjacent cities, hourly PM2.5): the
// model trains on one part of the region and forecasts a full day ahead for
// the stations it has never seen, mirroring the paper's AirQ experiment
// (T = T' = 24 hours). Also demonstrates the per-horizon error breakdown.
//
// Run: ./build/examples/air_quality

#include <cstdio>

#include "core/config.h"
#include "core/stsm.h"
#include "data/registry.h"
#include "data/splits.h"

int main() {
  using namespace stsm;

  const SpatioTemporalDataset dataset =
      MakeDataset("airq-sim", DataScale::kFast);
  std::printf("Simulated AirQ: %d PM2.5 stations, %d days hourly\n",
              dataset.num_nodes(), dataset.num_days());

  // Horizontal split: the southern stations are unobserved.
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kHorizontal);
  std::printf("Observed: %zu stations; forecasting for %zu unobserved\n",
              split.Observed().size(), split.test.size());

  // Table 3 hyper-parameters for AirQ (lambda = 1, eps_sg = 0.6, K = 5) and
  // the paper's 24 h -> 24 h window come from ConfigForDataset.
  StsmConfig config = ConfigForDataset("airq-sim");
  config.epochs = 10;
  config.batches_per_epoch = 8;
  config.hidden_dim = 16;
  config.max_eval_windows = 24;

  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();

  std::printf("\n24-hour-ahead PM2.5 forecasts for unseen stations:\n");
  std::printf("  RMSE = %.2f ug/m3, MAE = %.2f ug/m3, R2 = %.3f\n",
              result.metrics.rmse, result.metrics.mae, result.metrics.r2);

  std::printf("\nError growth with forecast horizon:\n");
  for (size_t t = 0; t < result.horizon_rmse.size(); t += 4) {
    std::printf("  +%2zu h: RMSE %.2f\n", t + 1, result.horizon_rmse[t]);
  }
  std::printf(
      "\n(Short horizons lean on the diurnal cycle the model has learned;\n"
      " long horizons show how far the spatial transfer carries.)\n");
  return 0;
}
