// Bringing your own data: export a dataset to CSV, reload it, and train.
//
// Real deployments load sensor data from CSV exports (e.g. PEMS downloads)
// instead of the built-in simulators. This example round-trips a dataset
// through the CSV layout documented in data/csv_io.h, then runs STSM on the
// reloaded copy — the exact workflow for custom data.
//
// Run: ./build/examples/custom_data

#include <cstdio>
#include <filesystem>

#include "core/config.h"
#include "core/stsm.h"
#include "data/csv_io.h"
#include "data/simulator.h"
#include "data/splits.h"
#include "data/svg_map.h"

int main() {
  using namespace stsm;
  const std::string directory = "/tmp/stsm_custom_data";
  std::filesystem::create_directories(directory);

  // Stand-in for your own data: a simulated region written out as CSV.
  SimulatorConfig sim;
  sim.name = "my-city";
  sim.kind = RegionKind::kUrban;
  sim.num_sensors = 40;
  sim.num_days = 6;
  sim.steps_per_day = 96;
  sim.area_km = 5.0;
  sim.seed = 321;
  if (!SaveDatasetCsv(SimulateDataset(sim), directory)) {
    std::fprintf(stderr, "failed to write %s\n", directory.c_str());
    return 1;
  }
  std::printf("Wrote CSV bundle to %s:\n", directory.c_str());
  std::printf("  meta.csv, sensors.csv, series.csv\n");

  // --- This is where your pipeline would start: load the CSVs. ---
  const auto dataset = LoadDatasetCsv(directory);
  if (!dataset.has_value()) {
    std::fprintf(stderr, "failed to load the CSV bundle\n");
    return 1;
  }
  std::printf("Loaded %s: %d sensors x %d steps (%d/day)\n",
              dataset->name.c_str(), dataset->num_nodes(),
              dataset->num_steps(), dataset->steps_per_day);

  const SpaceSplit split = SplitSpace(dataset->coords, SplitAxis::kVertical);
  // Render the split like the paper's Fig. 6 for a sanity check.
  SvgMapOptions map_options;
  map_options.title = dataset->name + " split";
  WriteSvg(RenderSplitMapSvg(dataset->coords, split, map_options),
           directory + "/split.svg");
  std::printf("Split map written to %s/split.svg\n", directory.c_str());

  StsmConfig config;
  config.input_length = 8;
  config.horizon = 8;
  config.hidden_dim = 12;
  config.epochs = 6;
  config.batches_per_epoch = 8;
  config.top_k = 16;
  config.max_eval_windows = 16;
  StsmRunner runner(*dataset, split, config);
  const ExperimentResult result = runner.Run();
  std::printf("\nForecasts for the unobserved half of %s:\n",
              dataset->name.c_str());
  std::printf("  RMSE %.3f, MAE %.3f, R2 %.3f (train %.1fs)\n",
              result.metrics.rmse, result.metrics.mae, result.metrics.r2,
              result.train_seconds);
  return 0;
}
