// Command-line experiment runner: train and evaluate any model on any
// registered dataset and split, from the shell.
//
// Usage:
//   run_experiment [dataset] [model] [split] [epochs]
//     dataset: bay-sim | pems07-sim | pems08-sim | melbourne-sim | airq-sim
//     model:   gegan | ignnk | increase | stsm | stsm-nc | stsm-r |
//              stsm-rnc | stsm-trans | stsm-rd-a | stsm-rd-m
//     split:   vertical | horizontal | ring | multi2 | multi3
//     epochs:  training epochs (default 10)
//
// Example:
//   ./build/examples/run_experiment pems08-sim stsm ring 12

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "baselines/zoo.h"
#include "core/config.h"
#include "data/registry.h"
#include "data/splits.h"

namespace {

using namespace stsm;

const std::map<std::string, ModelKind>& ModelsByName() {
  static const auto* kModels = new std::map<std::string, ModelKind>{
      {"gegan", ModelKind::kGeGan},       {"ignnk", ModelKind::kIgnnk},
      {"increase", ModelKind::kIncrease}, {"stsm", ModelKind::kStsm},
      {"stsm-nc", ModelKind::kStsmNc},    {"stsm-r", ModelKind::kStsmR},
      {"stsm-rnc", ModelKind::kStsmRnc},  {"stsm-trans", ModelKind::kStsmTrans},
      {"stsm-rd-a", ModelKind::kStsmRdA}, {"stsm-rd-m", ModelKind::kStsmRdM},
  };
  return *kModels;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [dataset] [model] [split] [epochs]\n"
               "  datasets:",
               argv0);
  for (const auto& name : RegisteredDatasets()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n  models:  ");
  for (const auto& [name, kind] : ModelsByName()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n  splits:   vertical horizontal ring multi2 multi3\n");
  std::fprintf(stderr, "%s", argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "bay-sim";
  const std::string model_name = argc > 2 ? argv[2] : "stsm";
  const std::string split_name = argc > 3 ? argv[3] : "vertical";
  const int epochs = argc > 4 ? std::atoi(argv[4]) : 10;

  if (!IsRegisteredDataset(dataset_name)) return Usage(argv[0]);
  const auto model_it = ModelsByName().find(model_name);
  if (model_it == ModelsByName().end()) return Usage(argv[0]);

  std::printf("Building %s (fast scale)...\n", dataset_name.c_str());
  const SpatioTemporalDataset dataset =
      MakeDataset(dataset_name, DataScale::kFast);

  SpaceSplit split;
  if (split_name == "vertical") {
    split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  } else if (split_name == "horizontal") {
    split = SplitSpace(dataset.coords, SplitAxis::kHorizontal);
  } else if (split_name == "ring") {
    split = SplitSpaceRing(dataset.coords);
  } else if (split_name == "multi2") {
    split = SplitSpaceMultiRegion(dataset.coords, SplitAxis::kVertical, 2);
  } else if (split_name == "multi3") {
    split = SplitSpaceMultiRegion(dataset.coords, SplitAxis::kVertical, 3);
  } else {
    return Usage(argv[0]);
  }

  StsmConfig config = ConfigForDataset(dataset_name);
  config.epochs = epochs > 0 ? epochs : 10;

  std::printf("Running %s on %s (%s split, %zu observed / %zu unobserved, "
              "%d epochs)...\n",
              ModelName(model_it->second).c_str(), dataset_name.c_str(),
              split_name.c_str(), split.Observed().size(), split.test.size(),
              config.epochs);
  const ExperimentResult result =
      RunModel(model_it->second, dataset, split, config);

  std::printf("\nResults on the unobserved region:\n");
  std::printf("  RMSE  %10.3f\n", result.metrics.rmse);
  std::printf("  MAE   %10.3f\n", result.metrics.mae);
  std::printf("  MAPE  %10.3f\n", result.metrics.mape);
  std::printf("  R2    %10.3f\n", result.metrics.r2);
  std::printf("  train %9.1fs, test %.2fs, %lld evaluated points\n",
              result.train_seconds, result.test_seconds,
              static_cast<long long>(result.metrics.count));
  if (result.mean_mask_similarity > 0) {
    std::printf("  mean masked-subgraph similarity: %.3f\n",
                result.mean_mask_similarity);
  }
  return 0;
}
