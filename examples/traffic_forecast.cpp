// Traffic forecasting for an unobserved district, with baselines.
//
// Reproduces the paper's headline scenario on the simulated PEMS-Bay
// stand-in: a contiguous half of the freeway network has no sensors, and we
// compare STSM against the adapted Kriging baselines (IGNNK, INCREASE) and
// the STSM-RNC base model. This is the workload behind Table 4, scoped to
// one dataset so it finishes in about a minute.
//
// Run: ./build/examples/traffic_forecast

#include <cstdio>

#include "baselines/zoo.h"
#include "core/config.h"
#include "data/registry.h"
#include "data/splits.h"

int main() {
  using namespace stsm;

  std::printf("Loading the simulated PEMS-Bay stand-in...\n");
  const SpatioTemporalDataset dataset =
      MakeDataset("bay-sim", DataScale::kFast);
  std::printf("  %d sensors, %d days of 5-minute speeds\n",
              dataset.num_nodes(), dataset.num_days());

  // Space-based split (Fig. 6): a vertical band of the map is unobserved.
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);

  StsmConfig config = ConfigForDataset("bay-sim");
  config.epochs = 10;
  config.batches_per_epoch = 10;
  config.hidden_dim = 16;
  config.max_eval_windows = 32;

  std::printf("\n%-10s %8s %8s %8s %8s %9s\n", "Model", "RMSE", "MAE", "MAPE",
              "R2", "train(s)");
  const ModelKind models[] = {ModelKind::kIgnnk, ModelKind::kIncrease,
                              ModelKind::kStsmRnc, ModelKind::kStsm};
  double best_baseline_rmse = 1e18;
  double stsm_rmse = 0.0;
  for (const ModelKind kind : models) {
    const ExperimentResult result = RunModel(kind, dataset, split, config);
    std::printf("%-10s %8.3f %8.3f %8.3f %8.3f %9.1f\n",
                ModelName(kind).c_str(), result.metrics.rmse,
                result.metrics.mae, result.metrics.mape, result.metrics.r2,
                result.train_seconds);
    std::fflush(stdout);
    if (kind == ModelKind::kIgnnk || kind == ModelKind::kIncrease) {
      best_baseline_rmse = std::min(best_baseline_rmse, result.metrics.rmse);
    }
    if (kind == ModelKind::kStsm) stsm_rmse = result.metrics.rmse;
  }
  std::printf(
      "\nSTSM vs best baseline: %+.2f%% RMSE\n",
      (best_baseline_rmse - stsm_rmse) / best_baseline_rmse * 100.0);
  std::printf(
      "(positive = error reduced; see bench_table4_overall for the full "
      "multi-dataset, multi-split comparison)\n");
  return 0;
}
