// Quickstart: forecast traffic for a region without observations.
//
// This is the smallest end-to-end use of the library:
//   1. simulate a sensor network (stands in for loading real data),
//   2. split the region so a contiguous band of sensors is "unobserved",
//   3. train STSM on the observed side,
//   4. report forecasting accuracy on the unobserved region.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/config.h"
#include "core/stsm.h"
#include "data/registry.h"
#include "data/simulator.h"
#include "data/splits.h"

int main() {
  using namespace stsm;

  // 1. A small simulated highway region: 48 sensors over 4 days of
  //    5-minute speed readings.
  SimulatorConfig sim;
  sim.name = "quickstart-city";
  sim.kind = RegionKind::kHighway;
  sim.num_sensors = 48;
  sim.num_days = 4;
  sim.steps_per_day = 96;  // 15-minute readings keep the example snappy.
  sim.area_km = 30.0;
  sim.seed = 2024;
  const SpatioTemporalDataset dataset = SimulateDataset(sim);
  std::printf("Simulated %d sensors x %d steps (%s)\n", dataset.num_nodes(),
              dataset.num_steps(), dataset.name.c_str());

  // 2. The paper's setting: the region of interest (here the right half of
  //    the map) has NO sensors; only the left half is observed.
  const SpaceSplit split = SplitSpace(dataset.coords, SplitAxis::kVertical);
  std::printf("Observed sensors: %zu, unobserved region: %zu sensors\n",
              split.Observed().size(), split.test.size());

  // 3. Train STSM. The defaults implement the full model (selective masking
  //    + contrastive learning); only the budget knobs are reduced here.
  StsmConfig config;
  config.input_length = 8;   // 2 h of history ...
  config.horizon = 8;        // ... to forecast the next 2 h.
  config.hidden_dim = 12;
  config.epochs = 8;
  config.batches_per_epoch = 8;
  config.top_k = 16;
  config.max_eval_windows = 24;
  StsmRunner runner(dataset, split, config);
  const ExperimentResult result = runner.Run();

  // 4. Results.
  std::printf("\nTraining loss per epoch:");
  for (double loss : result.train_losses) std::printf(" %.3f", loss);
  std::printf("\n\nForecast accuracy on the unobserved region:\n");
  std::printf("  RMSE = %.3f km/h\n", result.metrics.rmse);
  std::printf("  MAE  = %.3f km/h\n", result.metrics.mae);
  std::printf("  MAPE = %.1f%%\n", result.metrics.mape * 100.0);
  std::printf("  R2   = %.3f (0 = as good as predicting the mean)\n",
              result.metrics.r2);
  std::printf("  (train %.1fs, test %.2fs)\n", result.train_seconds,
              result.test_seconds);
  return 0;
}
