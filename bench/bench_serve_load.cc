// Load generator for the stsm::serve forecast service.
//
// Drives a ForecastServer over a simulated dataset through four phases:
//   1. closed loop  - C client threads, each waiting for its response
//                     before sending the next request (latency under light,
//                     self-clocking load);
//   2. open loop    - a burst submitted without waiting, sized past the
//                     queue capacity so backpressure (kRejected) is
//                     exercised;
//   3. cache replay - distinct queries submitted twice each, so the second
//                     round is answered from the LRU forecast cache;
//   4. degradation  - requests injected with already-expired deadlines,
//                     which the workers must answer with the
//                     historical-average fallback (kDegraded).
//
// Also measures the no-grad inference speedup: the same batched forward
// with autograd recording on vs. under autograd::NoGradGuard.
//
// Emits serve_load.json (QPS, p50/p95/p99 latency from the prof log2
// histograms, batch-size distribution, cache hit rate, degraded/rejected
// counts, no-grad speedup) plus the usual serve_load_profile.json.
//
// Usage: bench_serve_load [--smoke]   (--smoke forces STSM_BENCH_SCALE=smoke)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/prof.h"
#include "common/rng.h"
#include "data/windows.h"
#include "harness.h"
#include "nn/serialize.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "timeseries/time_features.h"

namespace stsm {
namespace bench {
namespace {

struct LoadShape {
  int clients;         // Closed-loop client threads.
  int per_client;      // Requests per closed-loop client.
  int burst;           // Open-loop burst size (> queue capacity).
  int cache_pairs;     // Distinct queries replayed once each.
  int expired;         // Requests with already-missed deadlines.
  int speedup_repeats; // Forward passes per timing arm.
};

LoadShape ShapeFor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return {2, 8, 96, 6, 4, 12};
    case BenchScale::kFast:
      return {3, 16, 128, 12, 8, 16};
    case BenchScale::kFull:
      return {4, 32, 256, 24, 16, 24};
  }
  return {2, 8, 96, 6, 4, 12};
}

// A raw observation window of the full graph starting at `start`.
std::vector<float> WindowAt(const SeriesMatrix& series, int start, int t) {
  std::vector<float> window(static_cast<size_t>(t) * series.num_nodes);
  for (int step = 0; step < t; ++step) {
    for (int node = 0; node < series.num_nodes; ++node) {
      window[static_cast<size_t>(step) * series.num_nodes + node] =
          series.at(start + step, node);
    }
  }
  return window;
}

serve::ForecastRequest RequestAt(const SpatioTemporalDataset& dataset,
                                 const std::vector<int>& regions,
                                 int start, int t) {
  serve::ForecastRequest request;
  request.model = "stsm";
  request.window = WindowAt(dataset.series, start, t);
  request.regions = regions;
  request.start_step = start;
  return request;
}

// One timed forward (includes graph destruction for the grad-enabled arm —
// tearing down the recorded graph is part of that mode's per-request cost).
double TimeForwardOnce(const StModel& model, const Tensor& x,
                       const Tensor& time, const Adjacency& adj_s,
                       const Adjacency& adj_t, bool no_grad) {
  const auto start = std::chrono::steady_clock::now();
  if (no_grad) {
    NoGradGuard guard;
    model.Forward(x, time, adj_s, adj_t);
  } else {
    model.Forward(x, time, adj_s, adj_t);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run() {
  prof::SetEnabled(true);
  prof::Reset();
  const BenchScale scale = ScaleFromEnv();
  const LoadShape shape = ShapeFor(scale);

  const std::string dataset_name = "bay-sim";
  const SpatioTemporalDataset dataset =
      MakeDataset(dataset_name, DataScaleFor(scale));
  StsmConfig config = ScaledConfig(dataset_name, scale);
  // The smoke run serves through the CSR sparse-adjacency route (DESIGN.md
  // §11): CI's serve_load_profile.json then carries the sparse.* counters,
  // and tools/check_pool_stats.py cross-checks that every CSR matrix built
  // during the run was destroyed (sparse.csr_create == sparse.csr_destroy).
  if (scale == BenchScale::kSmoke) config.sparse_adjacency = true;
  const SpaceSplit split = BenchSplits(dataset.coords, 1)[0];
  const int t = config.input_length;

  // Checkpoint: deterministically initialised weights. Serving cost is
  // independent of the weight values, so the load test skips training.
  const std::string checkpoint = "serve_load_checkpoint.bin";
  {
    Rng init_rng(config.seed + 13);
    StModel model(config, &init_rng);
    STSM_CHECK(SaveModule(model, checkpoint)) << "cannot write " << checkpoint;
  }

  // Everything holding tensors (registry, spec, server, timing model) lives
  // in this scope so the buffers all return to the pool before the profile
  // snapshot — check_pool_stats.py asserts zero net-leaked buffers.
  double grad_seconds = 0.0, nograd_seconds = 0.0, load_seconds = 0.0;
  serve::ServerStats stats;
  {
    std::fprintf(stderr, "[serve_load] building model spec (%d nodes) ...\n",
                 dataset.num_nodes());
    serve::ModelRegistry registry;
    const serve::ModelSpec spec =
        serve::BuildModelSpec("stsm", dataset, split, config, checkpoint);
    STSM_CHECK(registry.Load(spec)) << "checkpoint load failed";

    // ---- No-grad speedup (grad-recording forward vs NoGradGuard) ----
    // Batched like the server path (batch_max windows), arms interleaved,
    // min-of-N per arm so scheduler noise cancels out of the factor.
    {
      Rng init_rng(config.seed + 13);
      StModel model(config, &init_rng);
      STSM_CHECK(LoadModule(&model, checkpoint));
      model.SetTraining(false);
      const int speedup_batch = 8;
      const int start_span = std::max(1, dataset.num_steps() - t -
                                             config.horizon - 1);
      std::vector<int> starts;
      for (int i = 0; i < speedup_batch; ++i) {
        starts.push_back((i * 7) % start_span);
      }
      const WindowBatch batch = MakeWindowBatch(
          dataset.series, starts, WindowSpec{t, config.horizon},
          dataset.steps_per_day);
      // Warm both arms (buffer pool, instruction + data caches).
      TimeForwardOnce(model, batch.inputs, batch.input_time, spec.adj_spatial,
                      spec.adj_temporal, false);
      TimeForwardOnce(model, batch.inputs, batch.input_time, spec.adj_spatial,
                      spec.adj_temporal, true);
      double grad_min = 0.0, nograd_min = 0.0;
      for (int r = 0; r < shape.speedup_repeats; ++r) {
        const double g =
            TimeForwardOnce(model, batch.inputs, batch.input_time,
                            spec.adj_spatial, spec.adj_temporal, false);
        const double n =
            TimeForwardOnce(model, batch.inputs, batch.input_time,
                            spec.adj_spatial, spec.adj_temporal, true);
        if (r == 0 || g < grad_min) grad_min = g;
        if (r == 0 || n < nograd_min) nograd_min = n;
      }
      grad_seconds = grad_min;
      nograd_seconds = nograd_min;
    }
    std::fprintf(stderr,
                 "[serve_load] forward: grad %.2f ms, no-grad %.2f ms "
                 "(%.2fx)\n",
                 grad_seconds * 1e3, nograd_seconds * 1e3,
                 nograd_seconds > 0.0 ? grad_seconds / nograd_seconds : 0.0);

    // ---- Load phases ----
    serve::ServerConfig server_config;
    server_config.num_workers = 2;
    server_config.queue_capacity = 32;
    server_config.batch_max = 8;
    server_config.cache_capacity = 128;
    serve::ForecastServer server(&registry, server_config);

    const std::vector<int>& regions = split.test;
    const int max_start = dataset.num_steps() - t - 1;
    STSM_CHECK_GE(max_start, 1);
    const auto load_start = std::chrono::steady_clock::now();

    // Phase 1: closed loop.
    std::fprintf(stderr, "[serve_load] closed loop: %d clients x %d ...\n",
                 shape.clients, shape.per_client);
    std::vector<std::thread> clients;
    for (int c = 0; c < shape.clients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(1000 + c);
        for (int i = 0; i < shape.per_client; ++i) {
          const int start = rng.UniformInt(max_start);
          server.SubmitAndWait(RequestAt(dataset, regions, start, t));
        }
      });
    }
    for (std::thread& client : clients) client.join();

    // Phase 2: open-loop burst past the queue capacity.
    std::fprintf(stderr, "[serve_load] open-loop burst: %d ...\n",
                 shape.burst);
    {
      Rng rng(42);
      std::vector<std::future<serve::ForecastResponse>> futures;
      futures.reserve(shape.burst);
      for (int i = 0; i < shape.burst; ++i) {
        const int start = rng.UniformInt(max_start);
        futures.push_back(
            server.Submit(RequestAt(dataset, regions, start, t)));
      }
      for (auto& future : futures) future.get();
    }

    // Phase 3: cache replay — each query twice, second round must hit.
    std::fprintf(stderr, "[serve_load] cache replay: %d pairs ...\n",
                 shape.cache_pairs);
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < shape.cache_pairs; ++i) {
        const int start = (i * 37) % max_start;
        server.SubmitAndWait(RequestAt(dataset, regions, start, t));
      }
    }

    // Phase 4: injected deadline misses -> degraded responses.
    std::fprintf(stderr, "[serve_load] expired deadlines: %d ...\n",
                 shape.expired);
    int degraded_seen = 0;
    for (int i = 0; i < shape.expired; ++i) {
      serve::ForecastRequest request =
          RequestAt(dataset, regions, (i * 53 + 1) % max_start, t);
      request.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
      const serve::ForecastResponse response =
          server.SubmitAndWait(std::move(request));
      if (response.status == serve::Status::kDegraded) ++degraded_seen;
    }
    STSM_CHECK_GE(degraded_seen, 1)
        << "deadline injection produced no degrade";

    server.Stop();
    load_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - load_start)
                       .count();
    stats = server.stats();
  }

  // ---- Report ----
  const double speedup =
      nograd_seconds > 0.0 ? grad_seconds / nograd_seconds : 0.0;
  const uint64_t completed = stats.ok + stats.cache_hits + stats.degraded;
  const double qps = load_seconds > 0.0 ? completed / load_seconds : 0.0;
  const uint64_t lookups = stats.cache.hits + stats.cache.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0.0;
  const double degraded_rate =
      completed > 0 ? static_cast<double>(stats.degraded) / completed : 0.0;

  const prof::Snapshot snapshot = prof::TakeSnapshot();
  const prof::StatSnapshot* latency = snapshot.FindTimer("serve.latency");
  STSM_CHECK(latency != nullptr) << "serve.latency not recorded";
  const double p50 = latency->PercentileNs(0.50);
  const double p95 = latency->PercentileNs(0.95);
  const double p99 = latency->PercentileNs(0.99);

  std::FILE* out = std::fopen("serve_load.json", "w");
  STSM_CHECK(out != nullptr) << "cannot write serve_load.json";
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", ScaleName(scale));
  std::fprintf(out, "  \"submitted\": %llu,\n",
               static_cast<unsigned long long>(stats.submitted));
  std::fprintf(out, "  \"completed\": %llu,\n",
               static_cast<unsigned long long>(completed));
  std::fprintf(out, "  \"qps\": %.3f,\n", qps);
  std::fprintf(out, "  \"latency_p50_ns\": %.0f,\n", p50);
  std::fprintf(out, "  \"latency_p95_ns\": %.0f,\n", p95);
  std::fprintf(out, "  \"latency_p99_ns\": %.0f,\n", p99);
  std::fprintf(out, "  \"ok\": %llu,\n",
               static_cast<unsigned long long>(stats.ok));
  std::fprintf(out, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(stats.cache_hits));
  std::fprintf(out, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(out, "  \"degraded\": %llu,\n",
               static_cast<unsigned long long>(stats.degraded));
  std::fprintf(out, "  \"degraded_rate\": %.4f,\n", degraded_rate);
  std::fprintf(out, "  \"rejected\": %llu,\n",
               static_cast<unsigned long long>(stats.rejected));
  std::fprintf(out, "  \"errors\": %llu,\n",
               static_cast<unsigned long long>(stats.errors));
  std::fprintf(out, "  \"batches\": %llu,\n",
               static_cast<unsigned long long>(stats.batches));
  std::fprintf(out, "  \"batch_size_counts\": [");
  for (size_t i = 0; i < stats.batch_size_counts.size(); ++i) {
    std::fprintf(out, "%s%llu", i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(stats.batch_size_counts[i]));
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"grad_forward_seconds\": %.6f,\n", grad_seconds);
  std::fprintf(out, "  \"nograd_forward_seconds\": %.6f,\n", nograd_seconds);
  std::fprintf(out, "  \"nograd_speedup\": %.3f\n", speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf(
      "[serve_load] %llu completed in %.2fs (%.1f QPS), p50 %.2fms p99 "
      "%.2fms, cache hit rate %.1f%%, %llu degraded, %llu rejected, "
      "no-grad speedup %.2fx\n[serve_load.json written]\n",
      static_cast<unsigned long long>(completed), load_seconds, qps,
      p50 / 1e6, p99 / 1e6, hit_rate * 100.0,
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.rejected), speedup);

  EmitProfile("serve_load");
  std::remove(checkpoint.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("STSM_BENCH_SCALE", "smoke", /*overwrite=*/1);
    }
  }
  stsm::bench::Run();
  return 0;
}
