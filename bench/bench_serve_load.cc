// Load generator for the stsm::serve forecast service.
//
// Serves TWO model kinds — "stsm" (TCN temporal module) and "stsm-trans"
// (transformer) — through a 2-shard ShardedRegistry, and drives it through
// five phases:
//   1. closed loop  - C client threads, each waiting for its response
//                     before sending the next request (latency under light,
//                     self-clocking load);
//   2. burst        - a burst submitted without waiting, sized past the
//                     queue capacity so backpressure (kRejected) is
//                     exercised;
//   3. cache replay - distinct queries submitted twice each, alternating
//                     model kinds so BOTH shard caches serve hits;
//   4. degradation  - requests injected with already-expired deadlines,
//                     which the workers must answer with the
//                     historical-average fallback (kDegraded);
//   5. open loop    - Poisson arrivals over REAL loopback TCP sockets
//                     through the epoll ingress: a rate sweep below and
//                     above the estimated service capacity, with bursty
//                     on/off modulation, client-side tail-latency
//                     measurement (p50/p95/p99/p99.9 over exact sorted
//                     samples), and checkpoint hot-swaps performed mid-load
//                     — which must fail zero requests.
//
// Also measures the no-grad inference speedup (same batched forward with
// autograd recording on vs. under autograd::NoGradGuard); the no-grad
// timing doubles as the capacity estimate for the open-loop rate sweep.
//
// Emits serve_load.json (aggregate + per-shard stats, open-loop tail
// latencies per arrival rate, hot-swap accounting) plus the usual
// serve_load_profile.json with per-shard serve.cache.shard<k>.* counters.
//
// Usage: bench_serve_load [--smoke] [--open-loop]
//   --smoke      forces STSM_BENCH_SCALE=smoke
//   --open-loop  runs the network open-loop phase only (skips phases 1-4)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/prof.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "data/windows.h"
#include "harness.h"
#include "nn/serialize.h"
#include "serve/net/client.h"
#include "serve/net/listener.h"
#include "serve/net/wire.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/sharding.h"
#include "tensor/autograd.h"
#include "tensor/dtype.h"
#include "tensor/ops.h"
#include "timeseries/time_features.h"

namespace stsm {
namespace bench {
namespace {

constexpr const char* kModelTcn = "stsm";
constexpr const char* kModelTrans = "stsm-trans";

struct LoadShape {
  int clients;          // Closed-loop client threads.
  int per_client;       // Requests per closed-loop client.
  int burst;            // Burst size (> queue capacity).
  int cache_pairs;      // Distinct queries replayed once each (per model).
  int expired;          // Requests with already-missed deadlines.
  int speedup_repeats;  // Forward passes per timing arm.
  double open_loop_seconds;  // Duration of each open-loop rate phase.
  int open_loop_connections;
};

LoadShape ShapeFor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return {2, 8, 96, 6, 4, 12, 1.2, 4};
    case BenchScale::kFast:
      return {3, 16, 128, 12, 8, 16, 2.5, 4};
    case BenchScale::kFull:
      return {4, 32, 256, 24, 16, 24, 5.0, 8};
  }
  return {2, 8, 96, 6, 4, 12, 1.2, 4};
}

// A raw observation window of the full graph starting at `start`.
std::vector<float> WindowAt(const SeriesMatrix& series, int start, int t) {
  std::vector<float> window(static_cast<size_t>(t) * series.num_nodes);
  for (int step = 0; step < t; ++step) {
    for (int node = 0; node < series.num_nodes; ++node) {
      window[static_cast<size_t>(step) * series.num_nodes + node] =
          series.at(start + step, node);
    }
  }
  return window;
}

serve::ForecastRequest RequestAt(const SpatioTemporalDataset& dataset,
                                 const std::vector<int>& regions,
                                 const std::string& model, int start, int t) {
  serve::ForecastRequest request;
  request.model = model;
  request.window = WindowAt(dataset.series, start, t);
  request.regions = regions;
  request.start_step = start;
  return request;
}

// One timed forward (includes graph destruction for the grad-enabled arm —
// tearing down the recorded graph is part of that mode's per-request cost).
double TimeForwardOnce(const StModel& model, const Tensor& x,
                       const Tensor& time, const Adjacency& adj_s,
                       const Adjacency& adj_t, bool no_grad) {
  const auto start = std::chrono::steady_clock::now();
  if (no_grad) {
    NoGradGuard guard;
    model.Forward(x, time, adj_s, adj_t);
  } else {
    model.Forward(x, time, adj_s, adj_t);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Element-wise sum of every shard's counters: the "whole front-end" view
// reported at the top level of serve_load.json.
serve::ServerStats TotalStats(const serve::ShardedRegistry& sharded) {
  serve::ServerStats total;
  for (int shard = 0; shard < sharded.num_shards(); ++shard) {
    const serve::ServerStats stats = sharded.shard_stats(shard);
    total.submitted += stats.submitted;
    total.ok += stats.ok;
    total.cache_hits += stats.cache_hits;
    total.degraded += stats.degraded;
    total.rejected += stats.rejected;
    total.errors += stats.errors;
    total.batches += stats.batches;
    if (total.batch_size_counts.size() < stats.batch_size_counts.size()) {
      total.batch_size_counts.resize(stats.batch_size_counts.size(), 0);
    }
    for (size_t i = 0; i < stats.batch_size_counts.size(); ++i) {
      total.batch_size_counts[i] += stats.batch_size_counts[i];
    }
    total.cache.hits += stats.cache.hits;
    total.cache.misses += stats.cache.misses;
    total.cache.evictions += stats.cache.evictions;
    total.cache.payload_bytes += stats.cache.payload_bytes;
  }
  return total;
}

// Resident weight bytes of one model at both serving dtypes, measured by
// actually loading the checkpoint each way — the reported ratio is what a
// deployment gains, not an ElementSize arithmetic exercise.
struct WeightReport {
  std::string model;
  int64_t f32_bytes = 0;
  int64_t bf16_bytes = 0;

  double ratio() const {
    return bf16_bytes > 0
               ? static_cast<double>(f32_bytes) / static_cast<double>(bf16_bytes)
               : 0.0;
  }
};

WeightReport MeasureWeightBytes(const serve::ModelSpec& spec) {
  WeightReport report;
  report.model = spec.name;
  serve::ModelSpec probe = spec;
  probe.config.serve_dtype = DType::kF32;
  const auto f32 = serve::ServedModel::Load(probe);
  probe.config.serve_dtype = DType::kBf16;
  const auto bf16 = serve::ServedModel::Load(probe);
  STSM_CHECK(f32->healthy() && bf16->healthy())
      << "weight measurement load failed for " << spec.name;
  report.f32_bytes = f32->weight_bytes();
  report.bf16_bytes = bf16->weight_bytes();
  return report;
}

// ---- open-loop network phase -----------------------------------------------

struct RateResult {
  double target_rps = 0.0;
  int sent = 0;
  int completed = 0;
  int ok = 0;
  int cache_hits = 0;
  int degraded = 0;
  int rejected = 0;
  int errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

struct ShardSlice {
  uint64_t requests = 0;  // Submitted to this shard during the open loop.
  double share = 0.0;
};

struct OpenLoopResult {
  double capacity_rps = 0.0;
  uint32_t deadline_ms = 0;
  int hot_swaps = 0;
  uint64_t swap_failed_requests = 0;  // Client-observed kError count.
  std::vector<RateResult> rates;
  std::vector<ShardSlice> shards;
  serve::net::ListenerStats listener;
};

// One open-loop client connection: a Poisson sender pipelining frames and a
// reader matching responses by id. The sender half-closes when its time is
// up; the server then answers everything outstanding and closes, which
// terminates the reader.
struct OpenLoopConnection {
  serve::net::NetClient client;
  Mutex mutex;
  std::unordered_map<uint64_t, serve::Clock::time_point> sent_at
      STSM_GUARDED_BY(mutex);
  int sent = 0;
  std::vector<double> latencies_ms;
  int ok = 0;
  int cache_hits = 0;
  int degraded = 0;
  int rejected = 0;
  int errors = 0;
  bool transport_error = false;
};

double PercentileMs(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

// Runs one arrival-rate phase against the live listener. Arrivals are
// Poisson at `rate_rps` split across the connections, with bursty on/off
// modulation (alternating 250 ms windows at full and quarter rate). While
// the load runs, `swaps` checkpoint hot-swaps are executed through the
// sharded registry.
RateResult RunOpenLoopRate(uint16_t port, double rate_rps, double seconds,
                           int connections, const SpatioTemporalDataset& dataset,
                           const std::vector<int>& regions, int t,
                           int max_start, uint32_t deadline_ms, int seed,
                           serve::ShardedRegistry* sharded,
                           const serve::ModelSpec& swap_a,
                           const serve::ModelSpec& swap_b, int swaps,
                           int* swaps_done) {
  std::vector<std::unique_ptr<OpenLoopConnection>> conns;
  std::vector<std::thread> threads;
  static std::atomic<uint64_t> next_id{1};

  for (int c = 0; c < connections; ++c) {
    auto conn = std::make_unique<OpenLoopConnection>();
    std::string error;
    STSM_CHECK(conn->client.Connect("127.0.0.1", port, &error))
        << "open-loop connect failed: " << error;
    conns.push_back(std::move(conn));
  }

  const double rate_per_conn = rate_rps / connections;
  const auto phase_start = serve::Clock::now();
  const auto phase_end =
      phase_start + std::chrono::microseconds(
                        static_cast<int64_t>(seconds * 1e6));

  for (int c = 0; c < connections; ++c) {
    OpenLoopConnection* conn = conns[c].get();
    // Sender: Poisson arrivals, bursty modulation, pipelined frames.
    threads.emplace_back([&, conn, c] {
      Rng rng(seed * 977 + c);
      auto next = serve::Clock::now();
      while (next < phase_end) {
        std::this_thread::sleep_until(next);
        serve::net::RequestFrame frame;
        frame.id = next_id.fetch_add(1, std::memory_order_relaxed);
        frame.deadline_ms = deadline_ms;
        const std::string model =
            (frame.id % 2 == 0) ? kModelTcn : kModelTrans;
        frame.request = RequestAt(dataset, regions, model,
                                  rng.UniformInt(max_start), t);
        {
          MutexLock lock(conn->mutex);
          conn->sent_at.emplace(frame.id, serve::Clock::now());
        }
        std::string error;
        if (!conn->client.SendRequest(frame, &error)) {
          MutexLock lock(conn->mutex);
          conn->sent_at.erase(frame.id);
          conn->transport_error = true;
          break;
        }
        ++conn->sent;
        // Bursty on/off modulation: alternating 250 ms windows at the full
        // rate and a quarter of it.
        const int64_t elapsed_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                serve::Clock::now() - phase_start)
                .count();
        const bool on = (elapsed_ms / 250) % 2 == 0;
        const double rate = on ? rate_per_conn : rate_per_conn * 0.25;
        const double gap_s = -std::log(1.0 - rng.Uniform()) / rate;
        next += std::chrono::microseconds(
            static_cast<int64_t>(std::min(gap_s, 1.0) * 1e6));
      }
      conn->client.ShutdownWrite();
    });
    // Reader: drains responses until the server's graceful close.
    threads.emplace_back([conn] {
      while (true) {
        serve::net::ResponseFrame frame;
        std::string error;
        if (!conn->client.ReadResponse(&frame, &error)) break;
        serve::Clock::time_point sent;
        bool known = false;
        {
          MutexLock lock(conn->mutex);
          auto it = conn->sent_at.find(frame.id);
          if (it != conn->sent_at.end()) {
            sent = it->second;
            known = true;
            conn->sent_at.erase(it);
          }
        }
        if (known) {
          conn->latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  serve::Clock::now() - sent)
                  .count());
        }
        switch (frame.response.status) {
          case serve::Status::kOk:
            ++conn->ok;
            if (frame.response.cache_hit) ++conn->cache_hits;
            break;
          case serve::Status::kDegraded:
            ++conn->degraded;
            break;
          case serve::Status::kRejected:
            ++conn->rejected;
            break;
          case serve::Status::kError:
            ++conn->errors;
            break;
        }
      }
    });
  }

  // Checkpoint hot-swaps in the thick of the load: the acceptance bar is
  // that not one request fails because of them.
  for (int swap = 0; swap < swaps; ++swap) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(seconds * 1e6 / (swaps + 1))));
    const serve::LoadResult result =
        sharded->Swap(swap % 2 == 0 ? swap_a : swap_b);
    STSM_CHECK(result.healthy) << "hot-swap installed an unhealthy model";
    STSM_CHECK(result.previous == serve::EntryHealth::kHealthy)
        << "hot-swap should replace a healthy serving model";
    ++*swaps_done;
  }

  for (std::thread& thread : threads) thread.join();

  RateResult result;
  result.target_rps = rate_rps;
  std::vector<double> latencies;
  for (const auto& conn : conns) {
    STSM_CHECK(!conn->transport_error) << "open-loop send failed mid-phase";
    result.sent += conn->sent;
    result.ok += conn->ok;
    result.cache_hits += conn->cache_hits;
    result.degraded += conn->degraded;
    result.rejected += conn->rejected;
    result.errors += conn->errors;
    latencies.insert(latencies.end(), conn->latencies_ms.begin(),
                     conn->latencies_ms.end());
  }
  result.completed = static_cast<int>(latencies.size());
  STSM_CHECK_EQ(result.completed, result.sent)
      << "open-loop responses went missing";
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p95_ms = PercentileMs(latencies, 0.95);
  result.p99_ms = PercentileMs(latencies, 0.99);
  result.p999_ms = PercentileMs(latencies, 0.999);
  return result;
}

OpenLoopResult RunOpenLoopPhase(const LoadShape& shape,
                                const SpatioTemporalDataset& dataset,
                                const std::vector<int>& regions, int t,
                                int max_start, double nograd_seconds,
                                int speedup_batch, int num_workers,
                                serve::ShardedRegistry* sharded,
                                const serve::ModelSpec& swap_a,
                                const serve::ModelSpec& swap_b) {
  OpenLoopResult result;

  serve::net::Listener listener(
      [sharded](serve::ForecastRequest request,
                std::function<void(serve::ForecastResponse)> done) {
        sharded->SubmitAsync(std::move(request), std::move(done));
      },
      serve::net::ListenerConfig{});
  std::string error;
  STSM_CHECK(listener.Start(&error)) << "listener start failed: " << error;
  std::fprintf(stderr, "[serve_load] listener on 127.0.0.1:%u\n",
               listener.port());

  // Service capacity from the no-grad timing: each worker finishes a
  // batch_max-sized forward in about the measured batched-forward time.
  // Cache hits and batching slack make the real capacity higher; the sweep
  // brackets it from both sides regardless.
  const double per_request_s =
      nograd_seconds > 0.0 ? nograd_seconds / speedup_batch : 1e-3;
  const double capacity =
      std::min(2000.0, std::max(20.0, num_workers / per_request_s));
  result.capacity_rps = capacity;
  result.deadline_ms = 1000;

  std::vector<uint64_t> before(
      static_cast<size_t>(sharded->num_shards()), 0);
  for (int shard = 0; shard < sharded->num_shards(); ++shard) {
    before[shard] = sharded->shard_stats(shard).submitted;
  }

  // Under capacity, near capacity, and past it (tail under overload).
  const double sweep[] = {0.25 * capacity, 0.75 * capacity, 1.5 * capacity};
  int seed = 1;
  for (double rate : sweep) {
    std::fprintf(stderr,
                 "[serve_load] open loop: %.0f rps for %.1fs "
                 "(capacity est. %.0f) ...\n",
                 rate, shape.open_loop_seconds, capacity);
    result.rates.push_back(RunOpenLoopRate(
        listener.port(), rate, shape.open_loop_seconds,
        shape.open_loop_connections, dataset, regions, t, max_start,
        result.deadline_ms, seed++, sharded, swap_a, swap_b,
        /*swaps=*/2, &result.hot_swaps));
    result.swap_failed_requests +=
        static_cast<uint64_t>(result.rates.back().errors);
  }
  STSM_CHECK_EQ(result.swap_failed_requests, 0u)
      << "requests failed during checkpoint hot-swaps";

  uint64_t total_requests = 0;
  for (int shard = 0; shard < sharded->num_shards(); ++shard) {
    ShardSlice slice;
    slice.requests = sharded->shard_stats(shard).submitted - before[shard];
    total_requests += slice.requests;
    result.shards.push_back(slice);
  }
  for (ShardSlice& slice : result.shards) {
    slice.share = total_requests > 0
                      ? static_cast<double>(slice.requests) / total_requests
                      : 0.0;
  }

  listener.Stop();
  result.listener = listener.stats();
  STSM_CHECK_EQ(result.listener.malformed, 0u);
  return result;
}

void Run(bool open_loop_only) {
  prof::SetEnabled(true);
  prof::Reset();
  const BenchScale scale = ScaleFromEnv();
  const LoadShape shape = ShapeFor(scale);

  const std::string dataset_name = "bay-sim";
  const SpatioTemporalDataset dataset =
      MakeDataset(dataset_name, DataScaleFor(scale));
  StsmConfig config = ScaledConfig(dataset_name, scale);
  // The smoke run serves through the CSR sparse-adjacency route (DESIGN.md
  // §11): CI's serve_load_profile.json then carries the sparse.* counters,
  // and tools/check_pool_stats.py cross-checks that every CSR matrix built
  // during the run was destroyed (sparse.csr_create == sparse.csr_destroy).
  if (scale == BenchScale::kSmoke) config.sparse_adjacency = true;
  // STSM_SERVE_DTYPE=bf16 flips the whole serving side — registry weights,
  // adjacency values, cache entries — onto the reduced-precision path
  // (DESIGN.md §13). CI runs the smoke load both ways.
  const char* serve_dtype_env = std::getenv("STSM_SERVE_DTYPE");
  if (serve_dtype_env != nullptr && std::strcmp(serve_dtype_env, "bf16") == 0) {
    config.serve_dtype = DType::kBf16;
  }
  StsmConfig config_trans = config;
  config_trans.temporal_module = TemporalModule::kTransformer;
  const SpaceSplit split = BenchSplits(dataset.coords, 1)[0];
  const int t = config.input_length;

  // Checkpoints: deterministically initialised weights (serving cost is
  // independent of the weight values, so the load test skips training). The
  // second TCN checkpoint is the hot-swap target.
  const std::string checkpoint = "serve_load_checkpoint.bin";
  const std::string checkpoint_v2 = "serve_load_checkpoint_v2.bin";
  const std::string checkpoint_trans = "serve_load_checkpoint_trans.bin";
  {
    Rng init_rng(config.seed + 13);
    StModel model(config, &init_rng);
    STSM_CHECK(SaveModule(model, checkpoint)) << "cannot write " << checkpoint;
    Rng v2_rng(config.seed + 14);
    StModel model_v2(config, &v2_rng);
    STSM_CHECK(SaveModule(model_v2, checkpoint_v2));
    Rng trans_rng(config.seed + 15);
    StModel model_trans(config_trans, &trans_rng);
    STSM_CHECK(SaveModule(model_trans, checkpoint_trans));
  }

  // Everything holding tensors (registry shards, specs, servers, timing
  // model) lives in this scope so the buffers all return to the pool before
  // the profile snapshot — check_pool_stats.py asserts zero net-leaked
  // buffers.
  double grad_seconds = 0.0, nograd_seconds = 0.0, load_seconds = 0.0;
  serve::ServerStats stats;
  std::vector<serve::ServerStats> shard_stats;
  std::vector<WeightReport> weight_reports;
  OpenLoopResult open_loop;
  const int speedup_batch = 8;
  {
    std::fprintf(stderr, "[serve_load] building model specs (%d nodes) ...\n",
                 dataset.num_nodes());
    const serve::ModelSpec spec =
        serve::BuildModelSpec(kModelTcn, dataset, split, config, checkpoint);
    const serve::ModelSpec spec_v2 = serve::BuildModelSpec(
        kModelTcn, dataset, split, config, checkpoint_v2);
    const serve::ModelSpec spec_trans = serve::BuildModelSpec(
        kModelTrans, dataset, split, config_trans, checkpoint_trans);

    // Per-model resident weight bytes at both dtypes (the bf16 ratio has a
    // floor in bench/baselines.json, enforced by tools/check_pool_stats.py).
    weight_reports.push_back(MeasureWeightBytes(spec));
    weight_reports.push_back(MeasureWeightBytes(spec_trans));

    serve::ShardedConfig sharded_config;
    sharded_config.num_shards = 2;
    sharded_config.server.num_workers = 2;
    sharded_config.server.queue_capacity = 32;
    sharded_config.server.batch_max = 8;
    sharded_config.server.cache_capacity = 128;
    sharded_config.server.cache_dtype = config.serve_dtype;
    serve::ShardedRegistry sharded(sharded_config);
    STSM_CHECK(sharded.Load(spec).healthy) << "checkpoint load failed";
    STSM_CHECK(sharded.Load(spec_trans).healthy)
        << "transformer checkpoint load failed";
    STSM_CHECK_NE(sharded.ShardFor(kModelTcn), sharded.ShardFor(kModelTrans))
        << "the two model kinds should exercise distinct shards";

    // ---- No-grad speedup (grad-recording forward vs NoGradGuard) ----
    // Batched like the server path (batch_max windows), arms interleaved,
    // min-of-N per arm so scheduler noise cancels out of the factor.
    {
      Rng init_rng(config.seed + 13);
      StModel model(config, &init_rng);
      STSM_CHECK(LoadModule(&model, checkpoint));
      model.SetTraining(false);
      // The grad arm records autograd, and bf16 operands in a recorded
      // forward are a checked error — so the timing arms always run on
      // fp32 adjacencies, whatever the serving dtype.
      const Adjacency timing_adj_s =
          config.serve_dtype == DType::kF32
              ? spec.adj_spatial
              : spec.adj_spatial.Cast(DType::kF32);
      const Adjacency timing_adj_t =
          config.serve_dtype == DType::kF32
              ? spec.adj_temporal
              : spec.adj_temporal.Cast(DType::kF32);
      const int start_span = std::max(1, dataset.num_steps() - t -
                                             config.horizon - 1);
      std::vector<int> starts;
      for (int i = 0; i < speedup_batch; ++i) {
        starts.push_back((i * 7) % start_span);
      }
      const WindowBatch batch = MakeWindowBatch(
          dataset.series, starts, WindowSpec{t, config.horizon},
          dataset.steps_per_day);
      // Warm both arms (buffer pool, instruction + data caches).
      TimeForwardOnce(model, batch.inputs, batch.input_time, timing_adj_s,
                      timing_adj_t, false);
      TimeForwardOnce(model, batch.inputs, batch.input_time, timing_adj_s,
                      timing_adj_t, true);
      double grad_min = 0.0, nograd_min = 0.0;
      for (int r = 0; r < shape.speedup_repeats; ++r) {
        const double g =
            TimeForwardOnce(model, batch.inputs, batch.input_time,
                            timing_adj_s, timing_adj_t, false);
        const double n =
            TimeForwardOnce(model, batch.inputs, batch.input_time,
                            timing_adj_s, timing_adj_t, true);
        if (r == 0 || g < grad_min) grad_min = g;
        if (r == 0 || n < nograd_min) nograd_min = n;
      }
      grad_seconds = grad_min;
      nograd_seconds = nograd_min;
    }
    std::fprintf(stderr,
                 "[serve_load] forward: grad %.2f ms, no-grad %.2f ms "
                 "(%.2fx)\n",
                 grad_seconds * 1e3, nograd_seconds * 1e3,
                 nograd_seconds > 0.0 ? grad_seconds / nograd_seconds : 0.0);

    const std::vector<int>& regions = split.test;
    const int max_start = dataset.num_steps() - t - 1;
    STSM_CHECK_GE(max_start, 1);
    const auto load_start = std::chrono::steady_clock::now();

    if (!open_loop_only) {
      // Phase 1: closed loop, alternating model kinds per request.
      std::fprintf(stderr, "[serve_load] closed loop: %d clients x %d ...\n",
                   shape.clients, shape.per_client);
      std::vector<std::thread> clients;
      for (int c = 0; c < shape.clients; ++c) {
        clients.emplace_back([&, c] {
          Rng rng(1000 + c);
          for (int i = 0; i < shape.per_client; ++i) {
            const int start = rng.UniformInt(max_start);
            const std::string model =
                (i % 2 == 0) ? kModelTcn : kModelTrans;
            sharded.SubmitAndWait(
                RequestAt(dataset, regions, model, start, t));
          }
        });
      }
      for (std::thread& client : clients) client.join();

      // Phase 2: burst past one shard's queue capacity.
      std::fprintf(stderr, "[serve_load] burst: %d ...\n", shape.burst);
      {
        Rng rng(42);
        std::vector<std::future<serve::ForecastResponse>> futures;
        futures.reserve(shape.burst);
        for (int i = 0; i < shape.burst; ++i) {
          const int start = rng.UniformInt(max_start);
          futures.push_back(sharded.Submit(
              RequestAt(dataset, regions, kModelTcn, start, t)));
        }
        for (auto& future : futures) future.get();
      }

      // Phase 3: cache replay — each query twice, alternating model kinds
      // so both shard caches take hits.
      std::fprintf(stderr, "[serve_load] cache replay: %d pairs ...\n",
                   shape.cache_pairs * 2);
      for (int round = 0; round < 2; ++round) {
        for (int i = 0; i < shape.cache_pairs * 2; ++i) {
          const int start = ((i / 2) * 37) % max_start;
          const std::string model = (i % 2 == 0) ? kModelTcn : kModelTrans;
          sharded.SubmitAndWait(
              RequestAt(dataset, regions, model, start, t));
        }
      }

      // Phase 4: injected deadline misses -> degraded responses.
      std::fprintf(stderr, "[serve_load] expired deadlines: %d ...\n",
                   shape.expired);
      int degraded_seen = 0;
      for (int i = 0; i < shape.expired; ++i) {
        serve::ForecastRequest request = RequestAt(
            dataset, regions, kModelTcn, (i * 53 + 1) % max_start, t);
        request.deadline = serve::Clock::now() - std::chrono::milliseconds(1);
        const serve::ForecastResponse response =
            sharded.SubmitAndWait(std::move(request));
        if (response.status == serve::Status::kDegraded) ++degraded_seen;
      }
      STSM_CHECK_GE(degraded_seen, 1)
          << "deadline injection produced no degrade";
    }

    // Phase 5: open-loop Poisson arrivals over real loopback sockets, with
    // checkpoint hot-swaps mid-load.
    open_loop = RunOpenLoopPhase(shape, dataset, regions, t, max_start,
                                 nograd_seconds, speedup_batch,
                                 sharded_config.server.num_workers, &sharded,
                                 spec_v2, spec);

    sharded.Stop();
    load_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - load_start)
                       .count();
    stats = TotalStats(sharded);
    for (int shard = 0; shard < sharded.num_shards(); ++shard) {
      shard_stats.push_back(sharded.shard_stats(shard));
    }
  }

  // ---- Report ----
  const double speedup =
      nograd_seconds > 0.0 ? grad_seconds / nograd_seconds : 0.0;
  const uint64_t completed = stats.ok + stats.cache_hits + stats.degraded;
  const double qps = load_seconds > 0.0 ? completed / load_seconds : 0.0;
  const uint64_t lookups = stats.cache.hits + stats.cache.misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups : 0.0;
  const double degraded_rate =
      completed > 0 ? static_cast<double>(stats.degraded) / completed : 0.0;

  const prof::Snapshot snapshot = prof::TakeSnapshot();
  const prof::StatSnapshot* latency = snapshot.FindTimer("serve.latency");
  STSM_CHECK(latency != nullptr) << "serve.latency not recorded";
  const double p50 = latency->PercentileNs(0.50);
  const double p95 = latency->PercentileNs(0.95);
  const double p99 = latency->PercentileNs(0.99);

  std::FILE* out = std::fopen("serve_load.json", "w");
  STSM_CHECK(out != nullptr) << "cannot write serve_load.json";
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": \"%s\",\n", ScaleName(scale));
  std::fprintf(out, "  \"num_shards\": %zu,\n", shard_stats.size());
  std::fprintf(out, "  \"submitted\": %llu,\n",
               static_cast<unsigned long long>(stats.submitted));
  std::fprintf(out, "  \"completed\": %llu,\n",
               static_cast<unsigned long long>(completed));
  std::fprintf(out, "  \"qps\": %.3f,\n", qps);
  std::fprintf(out, "  \"latency_p50_ns\": %.0f,\n", p50);
  std::fprintf(out, "  \"latency_p95_ns\": %.0f,\n", p95);
  std::fprintf(out, "  \"latency_p99_ns\": %.0f,\n", p99);
  std::fprintf(out, "  \"ok\": %llu,\n",
               static_cast<unsigned long long>(stats.ok));
  std::fprintf(out, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(stats.cache_hits));
  std::fprintf(out, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(out, "  \"degraded\": %llu,\n",
               static_cast<unsigned long long>(stats.degraded));
  std::fprintf(out, "  \"degraded_rate\": %.4f,\n", degraded_rate);
  std::fprintf(out, "  \"rejected\": %llu,\n",
               static_cast<unsigned long long>(stats.rejected));
  std::fprintf(out, "  \"errors\": %llu,\n",
               static_cast<unsigned long long>(stats.errors));
  std::fprintf(out, "  \"batches\": %llu,\n",
               static_cast<unsigned long long>(stats.batches));
  std::fprintf(out, "  \"batch_size_counts\": [");
  for (size_t i = 0; i < stats.batch_size_counts.size(); ++i) {
    std::fprintf(out, "%s%llu", i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(stats.batch_size_counts[i]));
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"shards\": [\n");
  for (size_t shard = 0; shard < shard_stats.size(); ++shard) {
    const serve::ServerStats& s = shard_stats[shard];
    std::fprintf(out,
                 "    {\"shard\": %zu, \"submitted\": %llu, \"ok\": %llu, "
                 "\"cache_hits\": %llu, \"degraded\": %llu, "
                 "\"rejected\": %llu, \"errors\": %llu, "
                 "\"batches\": %llu}%s\n",
                 shard, static_cast<unsigned long long>(s.submitted),
                 static_cast<unsigned long long>(s.ok),
                 static_cast<unsigned long long>(s.cache_hits),
                 static_cast<unsigned long long>(s.degraded),
                 static_cast<unsigned long long>(s.rejected),
                 static_cast<unsigned long long>(s.errors),
                 static_cast<unsigned long long>(s.batches),
                 shard + 1 < shard_stats.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"open_loop\": {\n");
  std::fprintf(out, "    \"capacity_rps_estimate\": %.1f,\n",
               open_loop.capacity_rps);
  std::fprintf(out, "    \"deadline_ms\": %u,\n", open_loop.deadline_ms);
  std::fprintf(out, "    \"hot_swaps\": %d,\n", open_loop.hot_swaps);
  std::fprintf(out, "    \"swap_failed_requests\": %llu,\n",
               static_cast<unsigned long long>(
                   open_loop.swap_failed_requests));
  std::fprintf(out, "    \"rates\": [\n");
  for (size_t i = 0; i < open_loop.rates.size(); ++i) {
    const RateResult& r = open_loop.rates[i];
    std::fprintf(out,
                 "      {\"target_rps\": %.1f, \"sent\": %d, "
                 "\"completed\": %d, \"ok\": %d, \"cache_hits\": %d, "
                 "\"degraded\": %d, \"rejected\": %d, \"errors\": %d, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"p999_ms\": %.3f}%s\n",
                 r.target_rps, r.sent, r.completed, r.ok, r.cache_hits,
                 r.degraded, r.rejected, r.errors, r.p50_ms, r.p95_ms,
                 r.p99_ms, r.p999_ms,
                 i + 1 < open_loop.rates.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"shards\": [\n");
  for (size_t shard = 0; shard < open_loop.shards.size(); ++shard) {
    const ShardSlice& slice = open_loop.shards[shard];
    std::fprintf(out,
                 "      {\"shard\": %zu, \"requests\": %llu, "
                 "\"share\": %.4f}%s\n",
                 shard, static_cast<unsigned long long>(slice.requests),
                 slice.share,
                 shard + 1 < open_loop.shards.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out,
               "    \"listener\": {\"accepted\": %llu, \"closed\": %llu, "
               "\"frames_in\": %llu, \"frames_out\": %llu, "
               "\"malformed\": %llu, \"read_pauses\": %llu}\n",
               static_cast<unsigned long long>(open_loop.listener.accepted),
               static_cast<unsigned long long>(open_loop.listener.closed),
               static_cast<unsigned long long>(open_loop.listener.frames_in),
               static_cast<unsigned long long>(open_loop.listener.frames_out),
               static_cast<unsigned long long>(open_loop.listener.malformed),
               static_cast<unsigned long long>(
                   open_loop.listener.read_pauses));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"serve_dtype\": \"%s\",\n",
               DTypeName(config.serve_dtype));
  std::fprintf(out, "  \"cache_payload_bytes\": %llu,\n",
               static_cast<unsigned long long>(stats.cache.payload_bytes));
  double min_ratio = 0.0;
  std::fprintf(out, "  \"weights\": {\n");
  std::fprintf(out, "    \"models\": [\n");
  for (size_t i = 0; i < weight_reports.size(); ++i) {
    const WeightReport& w = weight_reports[i];
    if (i == 0 || w.ratio() < min_ratio) min_ratio = w.ratio();
    std::fprintf(out,
                 "      {\"model\": \"%s\", \"f32_bytes\": %lld, "
                 "\"bf16_bytes\": %lld, \"ratio\": %.4f}%s\n",
                 w.model.c_str(), static_cast<long long>(w.f32_bytes),
                 static_cast<long long>(w.bf16_bytes), w.ratio(),
                 i + 1 < weight_reports.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"bf16_weight_ratio\": %.4f\n", min_ratio);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"grad_forward_seconds\": %.6f,\n", grad_seconds);
  std::fprintf(out, "  \"nograd_forward_seconds\": %.6f,\n", nograd_seconds);
  std::fprintf(out, "  \"nograd_speedup\": %.3f\n", speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  const RateResult& top_rate = open_loop.rates.back();
  std::printf(
      "[serve_load] %llu completed in %.2fs (%.1f QPS), p50 %.2fms p99 "
      "%.2fms, cache hit rate %.1f%%, %llu degraded, %llu rejected, "
      "no-grad speedup %.2fx\n"
      "[serve_load] open loop @%.0frps: p50 %.2fms p95 %.2fms p99 %.2fms "
      "p99.9 %.2fms, %d rejected, %d hot swaps, %llu swap failures\n"
      "[serve_load.json written]\n",
      static_cast<unsigned long long>(completed), load_seconds, qps,
      p50 / 1e6, p99 / 1e6, hit_rate * 100.0,
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.rejected), speedup,
      top_rate.target_rps, top_rate.p50_ms, top_rate.p95_ms, top_rate.p99_ms,
      top_rate.p999_ms, top_rate.rejected, open_loop.hot_swaps,
      static_cast<unsigned long long>(open_loop.swap_failed_requests));

  EmitProfile("serve_load");
  std::remove(checkpoint.c_str());
  std::remove(checkpoint_v2.c_str());
  std::remove(checkpoint_trans.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main(int argc, char** argv) {
  bool open_loop_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      setenv("STSM_BENCH_SCALE", "smoke", /*overwrite=*/1);
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      open_loop_only = true;
    }
  }
  stsm::bench::Run(open_loop_only);
  return 0;
}
