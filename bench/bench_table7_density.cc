// Regenerates Table 7: varying the density of sensors on the pems08-sim
// region (fixed area, growing sensor count; paper: 200 -> 964).

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  std::vector<int> counts;
  switch (scale) {
    case BenchScale::kSmoke: counts = {40, 80}; break;
    case BenchScale::kFast:  counts = {60, 120, 180, 240}; break;
    case BenchScale::kFull:  counts = {200, 400, 600, 800, 964}; break;
  }

  Table table({"#Sensors", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (int count : counts) {
    const SpatioTemporalDataset dataset = MakePems08WithDensity(count);
    StsmConfig config = ScaledConfig("pems08-sim", scale, /*effort=*/0.5);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (const ModelKind kind : ComparisonModels()) {
      std::fprintf(stderr, "[table7] %d sensors / %s ...\n", count,
                   ModelName(kind).c_str());
      const ExperimentResult result =
          RunAveraged(kind, dataset, splits, config);
      std::vector<std::string> row = {std::to_string(count), ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }
  }
  EmitTable("table7_density", "Table 7: varying the density of sensors",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
