// Regenerates Table 7: varying the density of sensors on the pems08-sim
// region (fixed area, growing sensor count; paper: 200 -> 964).

#include <cstdio>
#include <cstring>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

// City-scale extension (DESIGN.md §11), density axis: a fixed node count
// with the layout shrunk so the Eq. 2 radius captures ever more neighbours.
// Dense cost is degree-independent, so the dense-over-sparse factor shows
// how the CSR advantage narrows as the graph densifies. Reachable without
// the training sweep via `bench_table7_density --city-only`.
void RunCity(BenchScale scale) {
  const int city_nodes = scale == BenchScale::kSmoke ? 2000 : 10000;
  RunCityScalePhase("table7_density",
                    {{city_nodes, 8.0}, {city_nodes, 25.0}, {city_nodes, 64.0}},
                    /*dense_node_cap=*/12000);
}

void Run(bool city_only) {
  const BenchScale scale = ScaleFromEnv();
  if (city_only) {
    RunCity(scale);
    return;
  }
  std::vector<int> counts;
  switch (scale) {
    case BenchScale::kSmoke: counts = {40, 80}; break;
    case BenchScale::kFast:  counts = {60, 120, 180, 240}; break;
    case BenchScale::kFull:  counts = {200, 400, 600, 800, 964}; break;
  }

  Table table({"#Sensors", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (int count : counts) {
    const SpatioTemporalDataset dataset = MakePems08WithDensity(count);
    StsmConfig config = ScaledConfig("pems08-sim", scale, /*effort=*/0.5);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (const ModelKind kind : ComparisonModels()) {
      std::fprintf(stderr, "[table7] %d sensors / %s ...\n", count,
                   ModelName(kind).c_str());
      const ExperimentResult result =
          RunAveraged(kind, dataset, splits, config);
      std::vector<std::string> row = {std::to_string(count), ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }
  }
  EmitTable("table7_density", "Table 7: varying the density of sensors",
            table);
  RunCity(scale);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main(int argc, char** argv) {
  bool city_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--city-only") == 0) city_only = true;
  }
  stsm::bench::Run(city_only);
  return 0;
}
