// Regenerates Table 4: overall forecasting accuracy of GE-GAN, IGNNK,
// INCREASE and the four STSM variants on all five datasets, averaged over
// space splits, plus the "Improvement" row (best STSM variant vs best
// baseline).

#include <array>
#include <cmath>
#include <cstdio>
#include <map>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

std::string SignedPercent(double value) {
  return (value >= 0 ? "+" : "") + FormatFloat(value, 2) + "%";
}

std::string ImprovementCell(double best_baseline, double best_ours,
                            bool larger_is_better) {
  if (larger_is_better) {
    if (best_baseline <= 0.0) return "N/A";
    return SignedPercent((best_ours - best_baseline) / best_baseline * 100.0);
  }
  return SignedPercent((best_baseline - best_ours) / best_baseline * 100.0);
}

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const std::vector<ModelKind> models = Table4Models();
  const std::vector<ModelKind> baselines = {
      ModelKind::kGeGan, ModelKind::kIgnnk, ModelKind::kIncrease};

  Table table({"Dataset", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (const std::string& name : RegisteredDatasets()) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const StsmConfig config = ScaledConfig(name, scale);
    const std::vector<SpaceSplit> splits =
        BenchSplits(dataset.coords, NumSplits(scale));

    std::map<ModelKind, Metrics> metrics;
    for (const ModelKind kind : models) {
      std::fprintf(stderr, "[table4] %s / %s ...\n", name.c_str(),
                   ModelName(kind).c_str());
      const ExperimentResult result =
          RunAveraged(kind, dataset, splits, config);
      metrics[kind] = result.metrics;
      std::vector<std::string> row = {name, ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }

    // Improvement of the best STSM variant over the best baseline.
    auto best = [&](const std::vector<ModelKind>& kinds, auto proj,
                    bool larger) {
      double value = larger ? -1e18 : 1e18;
      for (const ModelKind kind : kinds) {
        const double v = proj(metrics[kind]);
        value = larger ? std::max(value, v) : std::min(value, v);
      }
      return value;
    };
    const std::vector<ModelKind> ours = {ModelKind::kStsmRnc,
                                         ModelKind::kStsmNc, ModelKind::kStsmR,
                                         ModelKind::kStsm};
    table.AddRow(
        {name, "Improvement",
         ImprovementCell(best(baselines, [](const Metrics& m) { return m.rmse; },
                              false),
                         best(ours, [](const Metrics& m) { return m.rmse; },
                              false),
                         false),
         ImprovementCell(best(baselines, [](const Metrics& m) { return m.mae; },
                              false),
                         best(ours, [](const Metrics& m) { return m.mae; },
                              false),
                         false),
         ImprovementCell(best(baselines, [](const Metrics& m) { return m.mape; },
                              false),
                         best(ours, [](const Metrics& m) { return m.mape; },
                              false),
                         false),
         ImprovementCell(best(baselines, [](const Metrics& m) { return m.r2; },
                              true),
                         best(ours, [](const Metrics& m) { return m.r2; },
                              true),
                         true)});
  }
  EmitTable("table4_overall", "Table 4: overall model performance", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
