// Regenerates Fig. 10: sensitivity of the STSM variants to the sub-graph
// threshold epsilon_sg (larger threshold -> smaller 1-hop sub-graphs).

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

std::vector<double> SweepValues(double default_eps, BenchScale scale) {
  if (scale == BenchScale::kSmoke) return {default_eps};
  if (scale == BenchScale::kFull) {
    return {default_eps - 0.2, default_eps - 0.1, default_eps,
            default_eps + 0.1, default_eps + 0.2};
  }
  return {std::max(0.1, default_eps - 0.2), default_eps,
          std::min(0.9, default_eps + 0.2)};
}

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const std::vector<ModelKind> variants = {ModelKind::kStsm, ModelKind::kStsmNc,
                                           ModelKind::kStsmR,
                                           ModelKind::kStsmRnc};
  Table table({"Dataset", "eps_sg", "STSM", "STSM-NC", "STSM-R", "STSM-RNC"});
  for (const std::string& name : RegisteredDatasets()) {
    const StsmConfig base = ScaledConfig(name, scale, /*effort=*/0.25);
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (double eps : SweepValues(base.epsilon_sg, scale)) {
      std::fprintf(stderr, "[fig10] %s eps=%.2f ...\n", name.c_str(), eps);
      StsmConfig config = base;
      config.epsilon_sg = eps;
      std::vector<std::string> row = {name, FormatFloat(eps, 2)};
      for (const ModelKind kind : variants) {
        const ExperimentResult result =
            RunAveraged(kind, dataset, splits, config);
        row.push_back(FormatFloat(result.metrics.rmse, 3));
      }
      table.AddRow(row);
    }
  }
  EmitTable("fig10_epsilon", "Fig. 10: model performance vs epsilon_sg",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
