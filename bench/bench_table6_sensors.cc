// Regenerates Table 6: varying the number of sensors. The paper merges the
// PEMS-07 and PEMS-08 regions into one large region and grows the sensor
// set 200 -> 800 by taking 1..4 vertical partitions. Here one large merged
// freeway region is simulated and subset the same way.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

// City-scale extension (DESIGN.md §11): past the paper's 800 sensors, grow
// a synthetic city at a fixed ~25-neighbour density and compare CSR
// propagation against the dense operator. The dense arm is gated at 12k
// nodes — beyond that the N x N matrix alone is multiple GB while the CSR
// arrays stay O(edges). Reachable without the training sweep via
// `bench_table6_sensors --city-only`.
void RunCity(BenchScale scale) {
  std::vector<CityPoint> city;
  switch (scale) {
    case BenchScale::kSmoke:
      city = {{2000, 25.0}};
      break;
    case BenchScale::kFast:
      city = {{10000, 25.0}};
      break;
    case BenchScale::kFull:
      city = {{10000, 25.0}, {30000, 25.0}, {100000, 25.0}};
      break;
  }
  RunCityScalePhase("table6_sensors", city, /*dense_node_cap=*/12000);
}

void Run(bool city_only) {
  const BenchScale scale = ScaleFromEnv();
  if (city_only) {
    RunCity(scale);
    return;
  }
  int total = 0;
  std::vector<int> counts;
  switch (scale) {
    case BenchScale::kSmoke:
      total = 120;
      counts = {60, 120};
      break;
    case BenchScale::kFast:
      total = 240;
      counts = {60, 120, 180, 240};
      break;
    case BenchScale::kFull:
      total = 800;
      counts = {200, 400, 600, 800};
      break;
  }
  const SpatioTemporalDataset merged = MakeMergedFreewayRegion(total);
  // Order sensors left-to-right so partitions grow like the paper's.
  std::vector<int> order(merged.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return merged.coords[a].x < merged.coords[b].x;
  });

  Table table({"#Sensors", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (int count : counts) {
    const std::vector<int> subset(order.begin(), order.begin() + count);
    const SpatioTemporalDataset dataset = SelectSensors(merged, subset);
    StsmConfig config = ScaledConfig("pems08-sim", scale, /*effort=*/0.5);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (const ModelKind kind : ComparisonModels()) {
      std::fprintf(stderr, "[table6] %d sensors / %s ...\n", count,
                   ModelName(kind).c_str());
      const ExperimentResult result =
          RunAveraged(kind, dataset, splits, config);
      std::vector<std::string> row = {std::to_string(count), ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }
  }
  EmitTable("table6_sensors", "Table 6: varying the number of sensors",
            table);
  RunCity(scale);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main(int argc, char** argv) {
  bool city_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--city-only") == 0) city_only = true;
  }
  stsm::bench::Run(city_only);
  return 0;
}
