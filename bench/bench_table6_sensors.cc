// Regenerates Table 6: varying the number of sensors. The paper merges the
// PEMS-07 and PEMS-08 regions into one large region and grows the sensor
// set 200 -> 800 by taking 1..4 vertical partitions. Here one large merged
// freeway region is simulated and subset the same way.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  int total = 0;
  std::vector<int> counts;
  switch (scale) {
    case BenchScale::kSmoke:
      total = 120;
      counts = {60, 120};
      break;
    case BenchScale::kFast:
      total = 240;
      counts = {60, 120, 180, 240};
      break;
    case BenchScale::kFull:
      total = 800;
      counts = {200, 400, 600, 800};
      break;
  }
  const SpatioTemporalDataset merged = MakeMergedFreewayRegion(total);
  // Order sensors left-to-right so partitions grow like the paper's.
  std::vector<int> order(merged.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return merged.coords[a].x < merged.coords[b].x;
  });

  Table table({"#Sensors", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (int count : counts) {
    const std::vector<int> subset(order.begin(), order.begin() + count);
    const SpatioTemporalDataset dataset = SelectSensors(merged, subset);
    StsmConfig config = ScaledConfig("pems08-sim", scale, /*effort=*/0.5);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (const ModelKind kind : ComparisonModels()) {
      std::fprintf(stderr, "[table6] %d sensors / %s ...\n", count,
                   ModelName(kind).c_str());
      const ExperimentResult result =
          RunAveraged(kind, dataset, splits, config);
      std::vector<std::string> row = {std::to_string(count), ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }
  }
  EmitTable("table6_sensors", "Table 6: varying the number of sensors",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
