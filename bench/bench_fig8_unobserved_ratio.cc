// Regenerates Fig. 8: RMSE of STSM vs INCREASE (the strongest baseline in
// this setting) as the unobserved ratio grows from 0.2 to 0.5 on every
// dataset.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const std::vector<double> ratios =
      scale == BenchScale::kSmoke ? std::vector<double>{0.3, 0.5}
                                  : std::vector<double>{0.2, 0.3, 0.4, 0.5};

  Table table({"Dataset", "UnobservedRatio", "INCREASE RMSE", "STSM RMSE"});
  for (const std::string& name : RegisteredDatasets()) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const StsmConfig config = ScaledConfig(name, scale, /*effort=*/0.5);
    for (double ratio : ratios) {
      std::fprintf(stderr, "[fig8] %s ratio=%.1f ...\n", name.c_str(), ratio);
      // The paper averages the horizontal/vertical x normal/reversed
      // settings; smoke/fast use the first setting only.
      std::vector<SpaceSplit> splits = {SplitSpaceWithRatio(
          dataset.coords, SplitAxis::kVertical, ratio)};
      if (scale == BenchScale::kFull) {
        splits.push_back(SplitSpaceWithRatio(dataset.coords,
                                             SplitAxis::kVertical, ratio,
                                             /*reverse=*/true));
        splits.push_back(SplitSpaceWithRatio(dataset.coords,
                                             SplitAxis::kHorizontal, ratio));
        splits.push_back(SplitSpaceWithRatio(dataset.coords,
                                             SplitAxis::kHorizontal, ratio,
                                             /*reverse=*/true));
      }
      const ExperimentResult increase =
          RunAveraged(ModelKind::kIncrease, dataset, splits, config);
      const ExperimentResult stsm_result =
          RunAveraged(ModelKind::kStsm, dataset, splits, config);
      table.AddRow({name, FormatFloat(ratio, 1),
                    FormatFloat(increase.metrics.rmse, 3),
                    FormatFloat(stsm_result.metrics.rmse, 3)});
    }
  }
  EmitTable("fig8_unobserved_ratio",
            "Fig. 8: model performance vs unobserved ratio", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
