// Extension experiment (the paper's Section 6 future work): forecasting for
// MULTIPLE disjoint unobserved regions at once. Compares STSM and INCREASE
// with 1, 2 and 3 unobserved regions at a fixed total unobserved ratio, and
// reports per-region RMSE for the multi-region case.

#include <cstdio>

#include "core/stsm.h"
#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const SpatioTemporalDataset dataset =
      MakeDataset("pems07-sim", DataScaleFor(scale));
  const StsmConfig config = ScaledConfig("pems07-sim", scale, /*effort=*/0.7);
  const std::vector<int> region_counts =
      scale == BenchScale::kSmoke ? std::vector<int>{2}
                                  : std::vector<int>{1, 2, 3};

  Table table({"#Regions", "Model", "RMSE", "MAE", "MAPE", "R2"});
  for (int regions : region_counts) {
    const SpaceSplit split = SplitSpaceMultiRegion(
        dataset.coords, SplitAxis::kVertical, regions, /*unobserved_ratio=*/0.5);
    for (const ModelKind kind : {ModelKind::kIncrease, ModelKind::kStsm}) {
      std::fprintf(stderr, "[multiregion] %d regions / %s ...\n", regions,
                   ModelName(kind).c_str());
      const ExperimentResult result = RunModel(kind, dataset, split, config);
      std::vector<std::string> row = {std::to_string(regions),
                                      ModelName(kind)};
      for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
      table.AddRow(row);
    }
  }
  EmitTable("ext_multiregion",
            "Extension: multiple unobserved regions (paper Section 6)",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
