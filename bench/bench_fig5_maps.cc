// Regenerates the paper's map figures as SVG files:
//   Fig. 5  - sensor distribution of every dataset,
//   Fig. 6  - horizontal split on bay-sim (train/validation/test colours),
//   Fig. 11 - ring split on bay-sim.
// Files are written to the current working directory.

#include <cstdio>

#include "data/svg_map.h"
#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  Table table({"Figure", "File", "#Sensors"});

  for (const std::string& name : RegisteredDatasets()) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    SvgMapOptions options;
    options.title = name + " sensor distribution";
    const std::string path = "fig5_" + name + ".svg";
    if (WriteSvg(RenderSensorMapSvg(dataset.coords, options), path)) {
      table.AddRow({"Fig. 5", path, std::to_string(dataset.num_nodes())});
    }
  }

  const SpatioTemporalDataset bay = MakeDataset("bay-sim", DataScaleFor(scale));
  {
    SvgMapOptions options;
    options.title = "bay-sim horizontal split (Fig. 6)";
    const SpaceSplit split = SplitSpace(bay.coords, SplitAxis::kHorizontal);
    if (WriteSvg(RenderSplitMapSvg(bay.coords, split, options),
                 "fig6_bay_split.svg")) {
      table.AddRow({"Fig. 6", "fig6_bay_split.svg",
                    std::to_string(bay.num_nodes())});
    }
  }
  {
    SvgMapOptions options;
    options.title = "bay-sim ring split (Fig. 11)";
    const SpaceSplit split = SplitSpaceRing(bay.coords);
    if (WriteSvg(RenderSplitMapSvg(bay.coords, split, options),
                 "fig11_bay_ring.svg")) {
      table.AddRow({"Fig. 11", "fig11_bay_ring.svg",
                    std::to_string(bay.num_nodes())});
    }
  }
  EmitTable("fig5_maps", "Fig. 5/6/11: sensor maps rendered to SVG", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
