#include "harness.h"

#include <cstdio>

#include "common/env.h"
#include "common/prof.h"
#include "tensor/storage.h"

namespace stsm {
namespace bench {

BenchScale ScaleFromEnv() {
  const std::string scale = GetEnvOr("STSM_BENCH_SCALE", std::string("fast"));
  if (scale == "smoke") return BenchScale::kSmoke;
  if (scale == "full") return BenchScale::kFull;
  return BenchScale::kFast;
}

const char* ScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return "smoke";
    case BenchScale::kFast:  return "fast";
    case BenchScale::kFull:  return "full";
  }
  return "fast";
}

DataScale DataScaleFor(BenchScale scale) {
  return scale == BenchScale::kFull ? DataScale::kFull : DataScale::kFast;
}

StsmConfig ScaledConfig(const std::string& dataset_name, BenchScale scale,
                        double effort) {
  StsmConfig config = ConfigForDataset(dataset_name);
  switch (scale) {
    case BenchScale::kSmoke:
      config.epochs = 2;
      config.batches_per_epoch = 4;
      config.batch_size = 4;
      config.hidden_dim = 8;
      config.max_eval_windows = 8;
      break;
    case BenchScale::kFast:
      config.epochs = static_cast<int>(14 * effort + 0.5);
      config.batches_per_epoch = 10;
      config.batch_size = 8;
      config.hidden_dim = 16;
      config.max_eval_windows = 48;
      break;
    case BenchScale::kFull:
      config.epochs = static_cast<int>(30 * effort + 0.5);
      config.batches_per_epoch = 20;
      config.batch_size = 16;
      config.hidden_dim = 32;
      config.max_eval_windows = 120;
      // Paper windows: 2 h at 5-minute resolution for the traffic sets
      // (the AirQ / Melbourne configs already set their own windows).
      if (config.input_length == 12) {
        config.input_length = 24;
        config.horizon = 24;
      }
      break;
  }
  if (config.epochs < 2) config.epochs = 2;
  return config;
}

int NumSplits(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return 1;
    case BenchScale::kFast:  return 2;
    case BenchScale::kFull:  return 4;
  }
  return 1;
}

std::vector<SpaceSplit> BenchSplits(const std::vector<GeoPoint>& coords,
                                    int count) {
  std::vector<SpaceSplit> splits = FourSplits(coords);
  if (count < static_cast<int>(splits.size())) splits.resize(count);
  return splits;
}

ExperimentResult RunAveraged(ModelKind kind,
                             const SpatioTemporalDataset& dataset,
                             const std::vector<SpaceSplit>& splits,
                             const StsmConfig& config) {
  std::vector<ExperimentResult> results;
  results.reserve(splits.size());
  for (const SpaceSplit& split : splits) {
    results.push_back(RunModel(kind, dataset, split, config));
  }
  return AverageResults(results);
}

std::vector<std::string> MetricCells(const Metrics& metrics) {
  return {FormatFloat(metrics.rmse, 3), FormatFloat(metrics.mae, 3),
          FormatFloat(metrics.mape, 3), FormatFloat(metrics.r2, 3)};
}

void EmitTable(const std::string& name, const std::string& heading,
               const Table& table) {
  std::printf("\n=== %s (%s scale) ===\n%s", heading.c_str(),
              ScaleName(ScaleFromEnv()), table.ToText().c_str());
  const std::string csv_path = name + ".csv";
  if (table.WriteCsv(csv_path)) {
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  std::fflush(stdout);
}

void EmitProfile(const std::string& name) {
  // Flush the allocator counters so the snapshot carries final pool totals
  // (net leaked buffers = pool.acquire + pool.adopt - pool.release).
  RecordPoolProfCounters();
  const prof::Snapshot snapshot = prof::TakeSnapshot();
  if (snapshot.timers.empty() && snapshot.counters.empty()) return;
  const std::string json_path = name + "_profile.json";
  if (snapshot.WriteJson(json_path)) {
    std::printf("[profile written to %s]\n", json_path.c_str());
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace stsm
