#include "harness.h"

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/env.h"
#include "common/prof.h"
#include "common/rng.h"
#include "graph/adjacency.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/storage.h"

namespace stsm {
namespace bench {

BenchScale ScaleFromEnv() {
  const std::string scale = GetEnvOr("STSM_BENCH_SCALE", std::string("fast"));
  if (scale == "smoke") return BenchScale::kSmoke;
  if (scale == "full") return BenchScale::kFull;
  return BenchScale::kFast;
}

const char* ScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return "smoke";
    case BenchScale::kFast:  return "fast";
    case BenchScale::kFull:  return "full";
  }
  return "fast";
}

DataScale DataScaleFor(BenchScale scale) {
  return scale == BenchScale::kFull ? DataScale::kFull : DataScale::kFast;
}

StsmConfig ScaledConfig(const std::string& dataset_name, BenchScale scale,
                        double effort) {
  StsmConfig config = ConfigForDataset(dataset_name);
  switch (scale) {
    case BenchScale::kSmoke:
      config.epochs = 2;
      config.batches_per_epoch = 4;
      config.batch_size = 4;
      config.hidden_dim = 8;
      config.max_eval_windows = 8;
      break;
    case BenchScale::kFast:
      config.epochs = static_cast<int>(14 * effort + 0.5);
      config.batches_per_epoch = 10;
      config.batch_size = 8;
      config.hidden_dim = 16;
      config.max_eval_windows = 48;
      break;
    case BenchScale::kFull:
      config.epochs = static_cast<int>(30 * effort + 0.5);
      config.batches_per_epoch = 20;
      config.batch_size = 16;
      config.hidden_dim = 32;
      config.max_eval_windows = 120;
      // Paper windows: 2 h at 5-minute resolution for the traffic sets
      // (the AirQ / Melbourne configs already set their own windows).
      if (config.input_length == 12) {
        config.input_length = 24;
        config.horizon = 24;
      }
      break;
  }
  if (config.epochs < 2) config.epochs = 2;
  return config;
}

int NumSplits(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke: return 1;
    case BenchScale::kFast:  return 2;
    case BenchScale::kFull:  return 4;
  }
  return 1;
}

std::vector<SpaceSplit> BenchSplits(const std::vector<GeoPoint>& coords,
                                    int count) {
  std::vector<SpaceSplit> splits = FourSplits(coords);
  if (count < static_cast<int>(splits.size())) splits.resize(count);
  return splits;
}

ExperimentResult RunAveraged(ModelKind kind,
                             const SpatioTemporalDataset& dataset,
                             const std::vector<SpaceSplit>& splits,
                             const StsmConfig& config) {
  std::vector<ExperimentResult> results;
  results.reserve(splits.size());
  for (const SpaceSplit& split : splits) {
    results.push_back(RunModel(kind, dataset, split, config));
  }
  return AverageResults(results);
}

std::vector<std::string> MetricCells(const Metrics& metrics) {
  return {FormatFloat(metrics.rmse, 3), FormatFloat(metrics.mae, 3),
          FormatFloat(metrics.mape, 3), FormatFloat(metrics.r2, 3)};
}

void EmitTable(const std::string& name, const std::string& heading,
               const Table& table) {
  std::printf("\n=== %s (%s scale) ===\n%s", heading.c_str(),
              ScaleName(ScaleFromEnv()), table.ToText().c_str());
  const std::string csv_path = name + ".csv";
  if (table.WriteCsv(csv_path)) {
    std::printf("[csv written to %s]\n", csv_path.c_str());
  }
  std::fflush(stdout);
}

namespace {

// Fixed Eq. 2 kernel parameters for the synthetic city; the layout extent
// (not the kernel) controls the neighbour count.
constexpr double kCityEpsilon = 0.5;
constexpr double kCitySigma = 1.0;   // km
constexpr int kCityChannels = 16;    // feature width per propagation pass
constexpr int kCityDepth = 8;        // stacked propagation passes

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB.
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Uniform sensor layout over a square sized so that the Eq. 2 threshold
// radius r = sigma * sqrt(ln(1/epsilon)) captures about `target_degree`
// neighbours per node: extent^2 = nodes * pi r^2 / target_degree.
std::vector<GeoPoint> SyntheticCity(int nodes, double target_degree,
                                    uint64_t seed) {
  const double radius = kCitySigma * std::sqrt(std::log(1.0 / kCityEpsilon));
  const double extent =
      std::sqrt(nodes * M_PI * radius * radius / target_degree);
  Rng rng(seed);
  std::vector<GeoPoint> coords;
  coords.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    coords.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return coords;
}

}  // namespace

void RunCityScalePhase(const std::string& bench_name,
                       const std::vector<CityPoint>& points,
                       int dense_node_cap) {
  struct Arm {
    CityPoint point;
    SparseCsr adj;
    Tensor x;
    double avg_degree = 0.0;
    double sparse_build = 0.0, sparse_prop = 0.0, sparse_check = 0.0;
    double rss_after_sparse = 0.0;
    bool dense_ran = false;
    double dense_build = -1.0, dense_prop = -1.0, rss_after_dense = -1.0;
  };
  std::vector<Arm> arms;
  arms.reserve(points.size());

  // Pass 1 — every sparse arm, before any dense matrix exists: ru_maxrss is
  // monotone per process, so the reading after each arm is a sparse-only
  // peak (the largest point's reading is the sparse phase's true peak).
  for (const CityPoint& point : points) {
    std::fprintf(stderr, "[%s] city phase: %d nodes, ~%.0f neighbours ...\n",
                 bench_name.c_str(), point.nodes, point.target_degree);
    Arm arm;
    arm.point = point;
    const std::vector<GeoPoint> coords =
        SyntheticCity(point.nodes, point.target_degree,
                      1234u + static_cast<uint64_t>(point.nodes));
    auto start = std::chrono::steady_clock::now();
    arm.adj = NormalizeSymmetric(
        GaussianAdjacencyFromCoords(coords, kCityEpsilon, kCitySigma),
        /*add_self_loops=*/false);
    arm.sparse_build = SecondsSince(start);
    arm.avg_degree =
        static_cast<double>(arm.adj.nnz()) / point.nodes - 1.0;  // - self-loop
    Rng data_rng(99);
    arm.x = Tensor::Uniform(Shape({point.nodes, kCityChannels}), -1, 1,
                            &data_rng);
    {
      NoGradGuard no_grad;
      Spmm(arm.adj, arm.x);  // Warm the buffer pool before timing.
      Tensor h = arm.x;
      start = std::chrono::steady_clock::now();
      for (int d = 0; d < kCityDepth; ++d) h = Spmm(arm.adj, h);
      arm.sparse_prop = SecondsSince(start);
      arm.sparse_check = Sum(Square(h)).item();
    }
    arm.rss_after_sparse = PeakRssMb();
    arms.push_back(std::move(arm));
  }

  // Pass 2 — the same operator materialised as an N x N tensor. Gated: past
  // the cap the dense matrix alone is multiple GB and the MatMul stack
  // hundreds of times the SpMM flops.
  for (Arm& arm : arms) {
    if (arm.point.nodes > dense_node_cap) continue;
    std::fprintf(stderr, "[%s] city phase: %d nodes dense arm ...\n",
                 bench_name.c_str(), arm.point.nodes);
    arm.dense_ran = true;
    auto start = std::chrono::steady_clock::now();
    const Tensor dense = arm.adj.ToDense();
    arm.dense_build = SecondsSince(start);
    double dense_check = 0.0;
    {
      NoGradGuard no_grad;
      Tensor h = arm.x;
      start = std::chrono::steady_clock::now();
      for (int d = 0; d < kCityDepth; ++d) h = MatMul(dense, h);
      arm.dense_prop = SecondsSince(start);
      dense_check = Sum(Square(h)).item();
    }
    arm.rss_after_dense = PeakRssMb();
    STSM_CHECK_LE(std::fabs(dense_check - arm.sparse_check),
                  1e-2 * std::max(1.0, std::fabs(dense_check)))
        << "sparse and dense propagation diverged at " << arm.point.nodes
        << " nodes";
  }

  Table table({"Nodes", "AvgDeg", "nnz", "Sparse build s", "Sparse prop s",
               "RSS MB", "Dense prop s", "Dense/sparse"});
  std::string json = "{\n  \"scale\": \"" +
                     std::string(ScaleName(ScaleFromEnv())) +
                     "\",\n  \"channels\": " + std::to_string(kCityChannels) +
                     ",\n  \"depth\": " + std::to_string(kCityDepth) +
                     ",\n  \"points\": [";
  char buf[512];
  bool first = true;
  for (const Arm& arm : arms) {
    const double speedup = arm.dense_ran && arm.sparse_prop > 0.0
                               ? arm.dense_prop / arm.sparse_prop
                               : 0.0;
    table.AddRow(
        {std::to_string(arm.point.nodes), FormatFloat(arm.avg_degree, 1),
         std::to_string(arm.adj.nnz()), FormatFloat(arm.sparse_build, 3),
         FormatFloat(arm.sparse_prop, 3), FormatFloat(arm.rss_after_sparse, 0),
         arm.dense_ran ? FormatFloat(arm.dense_prop, 3) : "skipped",
         arm.dense_ran ? FormatFloat(speedup, 1) : "-"});
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"nodes\": %d, \"nnz\": %lld, \"avg_degree\": %.2f,\n"
        "     \"sparse_build_seconds\": %.4f, "
        "\"sparse_propagate_seconds\": %.4f,\n"
        "     \"peak_rss_mb_after_sparse\": %.1f, \"dense_ran\": %s,\n"
        "     \"dense_build_seconds\": %.4f, "
        "\"dense_propagate_seconds\": %.4f,\n"
        "     \"peak_rss_mb_after_dense\": %.1f, "
        "\"dense_over_sparse_propagate\": %.2f}",
        first ? "" : ",", arm.point.nodes,
        static_cast<long long>(arm.adj.nnz()), arm.avg_degree,
        arm.sparse_build, arm.sparse_prop, arm.rss_after_sparse,
        arm.dense_ran ? "true" : "false", arm.dense_build, arm.dense_prop,
        arm.rss_after_dense, speedup);
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  EmitTable(bench_name + "_city",
            "City scale: CSR sparse vs dense propagation", table);
  const std::string json_path = bench_name + "_city.json";
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  STSM_CHECK(out != nullptr) << "cannot write " << json_path;
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::printf("[city json written to %s]\n", json_path.c_str());
  std::fflush(stdout);
}

void EmitProfile(const std::string& name) {
  // Flush the allocator counters so the snapshot carries final pool totals
  // (net leaked buffers = pool.acquire + pool.adopt - pool.release).
  RecordPoolProfCounters();
  const prof::Snapshot snapshot = prof::TakeSnapshot();
  if (snapshot.timers.empty() && snapshot.counters.empty()) return;
  const std::string json_path = name + "_profile.json";
  if (snapshot.WriteJson(json_path)) {
    std::printf("[profile written to %s]\n", json_path.c_str());
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace stsm
