// Ablation of this reproduction's documented design choices (DESIGN.md §5):
//
//   1. weighted Gaussian kernel vs the literal binary Eq. 2 adjacency,
//   2. persistence skip in the output head on/off,
//   3. k-nearest vs all-sources pseudo-observations (Eq. 3).
//
// Each row flips exactly one switch off the full STSM configuration on
// bay-sim, so the contribution of every deviation is measurable.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const SpatioTemporalDataset dataset =
      MakeDataset("pems08-sim", DataScaleFor(scale));
  const StsmConfig base = ScaledConfig("pems08-sim", scale, /*effort=*/0.7);
  const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);

  struct Setting {
    const char* name;
    StsmConfig config;
  };
  std::vector<Setting> settings;
  settings.push_back({"STSM (as shipped)", base});
  {
    StsmConfig c = base;
    c.binary_spatial_kernel = true;
    settings.push_back({"binary Eq.2 kernel", c});
  }
  {
    StsmConfig c = base;
    c.input_skip = false;
    settings.push_back({"no persistence skip", c});
  }
  {
    StsmConfig c = base;
    c.pseudo_neighbors = 0;
    settings.push_back({"all-source pseudo-obs", c});
  }

  Table table({"Setting", "RMSE", "MAE", "MAPE", "R2"});
  for (const Setting& setting : settings) {
    std::fprintf(stderr, "[ablation] %s ...\n", setting.name);
    const ExperimentResult result =
        RunAveraged(ModelKind::kStsm, dataset, splits, setting.config);
    std::vector<std::string> row = {setting.name};
    for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
    table.AddRow(row);
  }
  EmitTable("ablation_design",
            "Ablation: reproduction design choices (DESIGN.md §5)", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
