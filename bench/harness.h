// Shared scaffolding for the paper-reproduction benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper. The
// STSM_BENCH_SCALE environment variable selects the run size:
//   smoke - minutes-long sanity sweep (tiny datasets, 2 epochs);
//   fast  - default; laptop-scale run preserving the papers' result shape;
//   full  - paper-scale sensor counts and training budgets.

#ifndef STSM_BENCH_HARNESS_H_
#define STSM_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "baselines/zoo.h"
#include "common/table.h"
#include "core/config.h"
#include "core/experiment.h"
#include "data/registry.h"
#include "data/splits.h"

namespace stsm {
namespace bench {

enum class BenchScale { kSmoke, kFast, kFull };

// Reads STSM_BENCH_SCALE (default "fast").
BenchScale ScaleFromEnv();
const char* ScaleName(BenchScale scale);

// Dataset scale matching the bench scale (smoke uses fast's datasets with a
// reduced sensor count cap applied by the config below).
DataScale DataScaleFor(BenchScale scale);

// STSM config for `dataset_name` with Table 3 hyper-parameters and
// scale-appropriate training knobs. `effort` scales the training budget:
// 1.0 for headline tables, < 1 for parameter sweeps with many cells.
StsmConfig ScaledConfig(const std::string& dataset_name, BenchScale scale,
                        double effort = 1.0);

// Number of space splits to average over (paper: 4).
int NumSplits(BenchScale scale);

// The first `count` of the paper's four splits.
std::vector<SpaceSplit> BenchSplits(const std::vector<GeoPoint>& coords,
                                    int count);

// Runs `kind` averaged over `splits`.
ExperimentResult RunAveraged(ModelKind kind,
                             const SpatioTemporalDataset& dataset,
                             const std::vector<SpaceSplit>& splits,
                             const StsmConfig& config);

// Formats a metric row [rmse, mae, mape, r2].
std::vector<std::string> MetricCells(const Metrics& metrics);

// Prints the table with a heading and writes `<name>.csv` beside the binary
// (current working directory).
void EmitTable(const std::string& name, const std::string& heading,
               const Table& table);

// One measurement point of the city-scale phase: `nodes` sensors laid out
// uniformly over an area sized so the Eq. 2 threshold radius captures about
// `target_degree` neighbours per node. Table 6's phase grows `nodes` at a
// fixed degree; Table 7's grows the degree at a fixed node count.
struct CityPoint {
  int nodes;
  double target_degree;
};

// City-scale sparse-vs-dense comparison (DESIGN.md §11). For each point:
// builds the CSR adjacency straight from coordinates (grid-binned, never
// O(N^2)), normalises it, and times a stack of SpMM propagation passes; then
// — only when nodes <= dense_node_cap — materialises the same operator dense
// and times the equivalent MatMul stack. The sparse phase runs first so the
// monotone ru_maxrss reading after it is the sparse-only peak. Emits
// `<bench_name>_city.csv` (table) and `<bench_name>_city.json` with
// per-point {nnz, seconds, peak RSS MB, dense-over-sparse speedup}.
void RunCityScalePhase(const std::string& bench_name,
                       const std::vector<CityPoint>& points,
                       int dense_node_cap);

// Writes the current stsm::prof snapshot to `<name>_profile.json` in the
// current working directory and prints the path. No-op (and no file) when
// the snapshot is empty, e.g. when profiling was never enabled.
void EmitProfile(const std::string& name);

}  // namespace bench
}  // namespace stsm

#endif  // STSM_BENCH_HARNESS_H_
