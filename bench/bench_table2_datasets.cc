// Regenerates Table 2 (dataset statistics) for the simulated stand-ins,
// plus the Fig. 5 sensor-distribution summaries and Fig. 7 adjacency
// sparsity diagnostics.

#include <cstdio>

#include "common/table.h"
#include "graph/adjacency.h"
#include "graph/geo.h"
#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();

  Table stats({"Dataset", "Interval", "#Sensors", "#Days", "#Steps",
               "Mean", "Min", "Max"});
  Table layout({"Dataset", "AreaKm", "SpreadX", "SpreadY",
                "A_s edges", "A_s density", "A_sg edges", "A_sg density"});

  for (const std::string& name : RegisteredDatasets()) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const int n = dataset.num_nodes();

    double mean = 0.0, min_v = 1e18, max_v = -1e18;
    for (float v : dataset.series.values) {
      mean += v;
      min_v = std::min<double>(min_v, v);
      max_v = std::max<double>(max_v, v);
    }
    mean /= static_cast<double>(dataset.series.values.size());
    const int interval_minutes = 24 * 60 / dataset.steps_per_day;
    stats.AddRow({name, std::to_string(interval_minutes) + " min",
                  std::to_string(n), std::to_string(dataset.num_days()),
                  std::to_string(dataset.num_steps()), FormatFloat(mean, 1),
                  FormatFloat(min_v, 1), FormatFloat(max_v, 1)});

    // Fig. 5 / Fig. 7 style diagnostics.
    double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
    for (const GeoPoint& p : dataset.coords) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    const auto distances = PairwiseDistances(dataset.coords);
    const StsmConfig config = ScaledConfig(name, scale);
    const Tensor a_s = GaussianThresholdAdjacency(distances, n,
                                                  config.epsilon_s);
    const Tensor a_sg = GaussianThresholdAdjacency(
        distances, n, config.epsilon_sg, 0.0, /*binary=*/true);
    const double denom = static_cast<double>(n) * n;
    layout.AddRow({name, FormatFloat(std::max(max_x - min_x, max_y - min_y), 1),
                   FormatFloat(max_x - min_x, 1), FormatFloat(max_y - min_y, 1),
                   std::to_string(CountEdges(a_s)),
                   FormatFloat(CountEdges(a_s) / denom, 3),
                   std::to_string(CountEdges(a_sg)),
                   FormatFloat(CountEdges(a_sg) / denom, 3)});
  }

  EmitTable("table2_datasets", "Table 2: dataset statistics (simulated)",
            stats);
  EmitTable("fig7_adjacency",
            "Fig. 5/7: sensor layout and adjacency sparsity", layout);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
