// Regenerates Table 9: model performance on bay-sim under the ring split
// (Section 5.2.4, Fig. 11): the city centre is observed, the outer ring is
// the unobserved region of interest.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const SpatioTemporalDataset dataset =
      MakeDataset("bay-sim", DataScaleFor(scale));
  const StsmConfig config = ScaledConfig("bay-sim", scale);
  const std::vector<SpaceSplit> splits = {SplitSpaceRing(dataset.coords)};

  Table table({"Model", "RMSE", "MAE", "MAPE", "R2"});
  Metrics best_baseline;
  best_baseline.rmse = 1e18;
  Metrics stsm_metrics;
  for (const ModelKind kind : ComparisonModels()) {
    std::fprintf(stderr, "[table9] %s ...\n", ModelName(kind).c_str());
    const ExperimentResult result = RunAveraged(kind, dataset, splits, config);
    std::vector<std::string> row = {ModelName(kind)};
    for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
    table.AddRow(row);
    if (kind == ModelKind::kStsm) {
      stsm_metrics = result.metrics;
    } else if (result.metrics.rmse < best_baseline.rmse) {
      best_baseline = result.metrics;
    }
  }
  auto signed_percent = [](double value) {
    return (value >= 0 ? "+" : "") + FormatFloat(value, 1) + "%";
  };
  table.AddRow(
      {"Improvement",
       signed_percent((best_baseline.rmse - stsm_metrics.rmse) /
                      best_baseline.rmse * 100.0),
       signed_percent((best_baseline.mae - stsm_metrics.mae) /
                      best_baseline.mae * 100.0),
       signed_percent((best_baseline.mape - stsm_metrics.mape) /
                      best_baseline.mape * 100.0),
       best_baseline.r2 > 0
           ? signed_percent((stsm_metrics.r2 - best_baseline.r2) /
                            best_baseline.r2 * 100.0)
           : "N/A"});
  EmitTable("table9_ring", "Table 9: performance under the ring split",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
