// Regenerates Fig. 9: sensitivity of STSM and STSM-NC (the two variants
// using selective masking) to the number of top similar sub-graphs K.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

// K sweep values per dataset, scaled around the Table 3 defaults.
std::vector<int> SweepValues(int default_k, BenchScale scale) {
  if (scale == BenchScale::kSmoke) return {default_k};
  return {std::max(2, default_k / 4), std::max(3, default_k / 2), default_k,
          default_k * 2};
}

void Run() {
  const BenchScale scale = ScaleFromEnv();
  Table table({"Dataset", "K", "STSM RMSE", "STSM-NC RMSE"});
  for (const std::string& name : RegisteredDatasets()) {
    const StsmConfig base = ScaledConfig(name, scale, /*effort=*/0.35);
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (int k : SweepValues(base.top_k, scale)) {
      std::fprintf(stderr, "[fig9] %s K=%d ...\n", name.c_str(), k);
      StsmConfig config = base;
      config.top_k = k;
      const ExperimentResult full =
          RunAveraged(ModelKind::kStsm, dataset, splits, config);
      const ExperimentResult nc =
          RunAveraged(ModelKind::kStsmNc, dataset, splits, config);
      table.AddRow({name, std::to_string(k),
                    FormatFloat(full.metrics.rmse, 3),
                    FormatFloat(nc.metrics.rmse, 3)});
    }
  }
  EmitTable("fig9_topk", "Fig. 9: model performance vs K", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
