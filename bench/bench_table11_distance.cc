// Regenerates Table 11: impact of the distance function on bay-sim —
// Euclidean (STSM) vs road-network distance for adjacency+pseudo-obs
// (STSM-rd-a) vs adjacency only (STSM-rd-m), Section 5.2.6.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const SpatioTemporalDataset dataset =
      MakeDataset("bay-sim", DataScaleFor(scale));
  const StsmConfig config = ScaledConfig("bay-sim", scale);
  const std::vector<SpaceSplit> splits =
      BenchSplits(dataset.coords, NumSplits(scale));

  Table table({"Model", "RMSE", "MAE", "MAPE", "R2"});
  for (const ModelKind kind :
       {ModelKind::kStsm, ModelKind::kStsmRdA, ModelKind::kStsmRdM}) {
    std::fprintf(stderr, "[table11] %s ...\n", ModelName(kind).c_str());
    const ExperimentResult result = RunAveraged(kind, dataset, splits, config);
    std::vector<std::string> row = {ModelName(kind)};
    for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
    table.AddRow(row);
  }
  EmitTable("table11_distance", "Table 11: impact of distance functions",
            table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
