// Regenerates Table 8: similarity gain of selective over random masking —
// the mean similarity between the masked sub-graphs and the unobserved
// region, compared between the two strategies over many draws.

#include <cstdio>

#include "graph/adjacency.h"
#include "harness.h"
#include "masking/masking.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const int draws = scale == BenchScale::kSmoke ? 10 : 200;

  Table table({"Dataset", "SelectiveSim", "RandomSim", "SimGain(%)"});
  for (const std::string& name : RegisteredDatasets()) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const StsmConfig config = ScaledConfig(name, scale);
    const SpaceSplit split = BenchSplits(dataset.coords, 1)[0];
    const auto distances = PairwiseDistances(dataset.coords);
    const Tensor a_sg = GaussianThresholdAdjacency(
        distances, dataset.num_nodes(), config.epsilon_sg, 0.0,
        /*binary=*/true);
    MaskingConfig mask_config;
    mask_config.mask_ratio = config.mask_ratio;
    mask_config.top_k = config.top_k;
    const MaskingContext context =
        BuildMaskingContext(a_sg, dataset.coords, dataset.metadata,
                            split.Observed(), split.test, mask_config);

    Rng rng(7);
    double selective = 0.0, random = 0.0;
    for (int d = 0; d < draws; ++d) {
      selective +=
          MeanMaskSimilarity(context, DrawSelectiveMask(context, &rng));
      random += MeanMaskSimilarity(context, DrawRandomMask(context, &rng));
    }
    selective /= draws;
    random /= draws;
    const double gain = (selective - random) / std::max(random, 1e-9) * 100.0;
    table.AddRow({name, FormatFloat(selective, 3), FormatFloat(random, 3),
                  FormatFloat(gain, 2)});
  }
  EmitTable("table8_simgain",
            "Table 8: similarity gain of selective vs random masking", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
