// Regenerates Table 10: STSM vs STSM-trans (transformer temporal module +
// gated fusion, Section 5.2.5) on bay-sim.

#include <cstdio>

#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = ScaleFromEnv();
  const SpatioTemporalDataset dataset =
      MakeDataset("bay-sim", DataScaleFor(scale));
  const StsmConfig config = ScaledConfig("bay-sim", scale);
  const std::vector<SpaceSplit> splits =
      BenchSplits(dataset.coords, NumSplits(scale));

  Table table({"Model", "RMSE", "MAE", "MAPE", "R2"});
  for (const ModelKind kind : {ModelKind::kStsm, ModelKind::kStsmTrans}) {
    std::fprintf(stderr, "[table10] %s ...\n", ModelName(kind).c_str());
    const ExperimentResult result = RunAveraged(kind, dataset, splits, config);
    std::vector<std::string> row = {ModelName(kind)};
    for (const auto& cell : MetricCells(result.metrics)) row.push_back(cell);
    table.AddRow(row);
  }
  EmitTable("table10_trans",
            "Table 10: advanced temporal correlation modules", table);
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
