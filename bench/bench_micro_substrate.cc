// Micro-benchmarks of the substrate the models are built on: tensor kernels,
// graph convolution, DTW, and pseudo-observation filling. Uses
// google-benchmark; run in Release mode for meaningful numbers.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "graph/geo.h"
#include "nn/gcn.h"
#include "nn/loss.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"
#include "timeseries/dtw.h"
#include "timeseries/pseudo_observations.h"

namespace stsm {
namespace {

// Pins the scalar reference kernels for the duration of one benchmark so the
// *Scalar variants measure the exact code the SIMD dispatch replaced. The
// micro/baseline speedup pairs in bench/baselines.json compare against these.
class ScalarDispatchScope {
 public:
  ScalarDispatchScope() { simd::SetDispatchForTesting(false); }
  ~ScalarDispatchScope() { simd::ResetDispatch(); }
  ScalarDispatchScope(const ScalarDispatchScope&) = delete;
  ScalarDispatchScope& operator=(const ScalarDispatchScope&) = delete;
};

void BM_MatMulGcnShaped(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  Rng rng(1);
  const Tensor adj = Tensor::Uniform(Shape({nodes, nodes}), 0, 1, &rng);
  const Tensor h = Tensor::Uniform(Shape({8, 12, nodes, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(adj, h).data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 12 * nodes * nodes * 16);
}
BENCHMARK(BM_MatMulGcnShaped)->Arg(50)->Arg(100)->Arg(200);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  Rng rng(1);
  const Tensor adj = Tensor::Uniform(Shape({nodes, nodes}), 0, 1, &rng);
  Tensor h =
      Tensor::Uniform(Shape({8, 12, nodes, 16}), -1, 1, &rng, true);
  for (auto _ : state) {
    h.ZeroGrad();
    Tensor loss = Sum(MatMul(adj, h));
    loss.Backward();
    benchmark::DoNotOptimize(h.grad_data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(50)->Arg(100);

void BM_ReshapeView(benchmark::State& state) {
  // Zero-copy path: must not scale with tensor size or touch the allocator.
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({8, 12, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Reshape(x, Shape({96, 1600})).data());
  }
}
BENCHMARK(BM_ReshapeView);

void BM_SliceLeadingDimView(benchmark::State& state) {
  // Contiguous slice: aliases the storage at an offset.
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({64, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Slice(x, /*dim=*/0, 16, 48).data());
  }
}
BENCHMARK(BM_SliceLeadingDimView);

void BM_SliceInnerDimView(benchmark::State& state) {
  // Non-contiguous slice: also zero-copy now — just a strided view.
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({64, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Slice(x, /*dim=*/1, 25, 75).data());
  }
}
BENCHMARK(BM_SliceInnerDimView);

void BM_TransposeView(benchmark::State& state) {
  // Transpose is a pure metadata swap; must not scale with tensor size.
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({64, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Transpose(x, 1, 2).data());
  }
}
BENCHMARK(BM_TransposeView);

void BM_TransposeThenContiguous(benchmark::State& state) {
  // The materializing path, for contrast with the view: gathers through the
  // swapped strides into a fresh row-major buffer.
  Rng rng(7);
  const Tensor x = Tensor::Uniform(Shape({64, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contiguous(Transpose(x, 1, 2)).data());
  }
}
BENCHMARK(BM_TransposeThenContiguous);

void BM_PackedGemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(9);
  std::vector<float> a(static_cast<size_t>(n * n));
  std::vector<float> b(static_cast<size_t>(n * n));
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto _ : state) {
    PackedGemm(n, n, n, a.data(), n, 1, b.data(), n, 1, c.data(), n, 1,
               /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_PackedGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_NaiveGemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(9);
  std::vector<float> a(static_cast<size_t>(n * n));
  std::vector<float> b(static_cast<size_t>(n * n));
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto _ : state) {
    NaiveGemm(n, n, n, a.data(), n, 1, b.data(), n, 1, c.data(), n, 1,
              /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_NaiveGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_PackedGemmScalar(benchmark::State& state) {
  // Same workload as BM_PackedGemm with the dispatch pinned to the scalar
  // microkernel; BM_PackedGemm / BM_PackedGemmScalar is the SIMD speedup.
  ScalarDispatchScope scalar_only;
  const int64_t n = state.range(0);
  Rng rng(9);
  std::vector<float> a(static_cast<size_t>(n * n));
  std::vector<float> b(static_cast<size_t>(n * n));
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (auto _ : state) {
    PackedGemm(n, n, n, a.data(), n, 1, b.data(), n, 1, c.data(), n, 1,
               /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_PackedGemmScalar)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposedOperand(benchmark::State& state) {
  // A^T @ B without materializing A^T: the GEMM packing absorbs the swapped
  // strides, so this should track BM_PackedGemm rather than paying an extra
  // transpose copy.
  const int64_t n = state.range(0);
  Rng rng(10);
  const Tensor a = Tensor::Uniform(Shape({n, n}), -1, 1, &rng);
  const Tensor b = Tensor::Uniform(Shape({n, n}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(Transpose(a, 0, 1), b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransposedOperand)->Arg(64)->Arg(128);

void BM_TrainStepPoolReuse(benchmark::State& state) {
  // Steady-state step: after the first iteration every intermediate buffer
  // comes from the pool (backward releases them eagerly).
  Rng rng(7);
  Tensor w = Tensor::Uniform(Shape({64, 64}), -0.1f, 0.1f, &rng, true);
  const Tensor x = Tensor::Uniform(Shape({32, 64}), -1, 1, &rng);
  for (auto _ : state) {
    Tensor loss = Mean(Square(Tanh(MatMul(x, w))));
    loss.Backward();
    w.ZeroGrad();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_TrainStepPoolReuse);

void BM_Conv1dTime(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = Tensor::Uniform(Shape({8, 12, 100, 16}), -1, 1, &rng);
  const Tensor w = Tensor::Uniform(Shape({16, 16, 2}), -1, 1, &rng);
  const Tensor b = Tensor::Zeros(Shape({16}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1dTime(x, w, b, 2).data());
  }
}
BENCHMARK(BM_Conv1dTime);

void BM_GcnlLayerForward(benchmark::State& state) {
  Rng rng(3);
  const GcnlLayer layer(16, 16, &rng);
  const Tensor adj = Tensor::Uniform(Shape({100, 100}), 0, 0.1f, &rng);
  const Tensor x = Tensor::Uniform(Shape({8, 12, 100, 16}), -1, 1, &rng);
  for (auto _ : state) {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(layer.Forward(adj, x).data());
  }
}
BENCHMARK(BM_GcnlLayerForward);

void BM_DtwDistance(benchmark::State& state) {
  const int band = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<float> a(288), b(288);
  for (auto& v : a) v = static_cast<float>(rng.Uniform());
  for (auto& v : b) v = static_cast<float>(rng.Uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b, band));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(0)->Arg(12);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(x, -1).data());
  }
}
BENCHMARK(BM_Softmax);

void BM_SoftmaxScalar(benchmark::State& state) {
  ScalarDispatchScope scalar_only;
  Rng rng(5);
  const Tensor x = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(x, -1).data());
  }
}
BENCHMARK(BM_SoftmaxScalar);

void BM_AddContiguous(benchmark::State& state) {
  // Contiguous elementwise binary op: the canonical vectorized fast path.
  Rng rng(11);
  const Tensor a = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  const Tensor b = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
}
BENCHMARK(BM_AddContiguous);

void BM_AddContiguousScalar(benchmark::State& state) {
  ScalarDispatchScope scalar_only;
  Rng rng(11);
  const Tensor a = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  const Tensor b = Tensor::Uniform(Shape({64, 8, 24, 24}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Add(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
}
BENCHMARK(BM_AddContiguousScalar);

void BM_InfoNce(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::Uniform(Shape({16, 32}), -1, 1, &rng, true);
  Tensor b = Tensor::Uniform(Shape({16, 32}), -1, 1, &rng, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = InfoNceLoss(a, b, 0.5f);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_InfoNce);

void BM_PseudoObservations(benchmark::State& state) {
  const int nodes = 200;
  Rng rng(7);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < nodes; ++i) {
    coords.push_back({rng.Uniform(0, 40), rng.Uniform(0, 40)});
  }
  const auto distances = PairwiseDistances(coords);
  std::vector<int> sources, targets;
  for (int i = 0; i < nodes; ++i) {
    (i < nodes / 2 ? sources : targets).push_back(i);
  }
  SeriesMatrix series(288, nodes);
  for (auto& v : series.values) v = static_cast<float>(rng.Uniform());
  for (auto _ : state) {
    FillPseudoObservations(&series, distances, targets, sources);
    benchmark::DoNotOptimize(series.values.data());
  }
}
BENCHMARK(BM_PseudoObservations);

void BM_AdjacencyBuild(benchmark::State& state) {
  const int nodes = 400;
  Rng rng(8);
  std::vector<GeoPoint> coords;
  for (int i = 0; i < nodes; ++i) {
    coords.push_back({rng.Uniform(0, 40), rng.Uniform(0, 40)});
  }
  const auto distances = PairwiseDistances(coords);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NormalizeSymmetric(GaussianThresholdAdjacency(distances, nodes, 0.05))
            .data());
  }
}
BENCHMARK(BM_AdjacencyBuild);

// City-scale propagation pair: one graph-propagation pass over a 10k-node
// synthetic city as CSR SpMM vs the same normalised operator materialised
// dense. BM_DenseSpmmCity / BM_SpmmCity is the sparse speedup whose floor
// tools/check_pool_stats.py --micro enforces (bench/baselines.json,
// "spmm.sparse_vs_dense"); the pair is degree-matched, so the ratio tracks
// the N^2 / nnz work ratio rather than kernel tuning.
SparseCsr CityAdjacency(int nodes) {
  // Extent sized so the Eq. 2 radius (epsilon 0.5, sigma 1 km) captures
  // ~25 neighbours per node — metro-scale sensor density.
  const double radius = std::sqrt(std::log(2.0));
  const double extent = std::sqrt(nodes * M_PI * radius * radius / 25.0);
  Rng rng(12);
  std::vector<GeoPoint> coords;
  coords.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    coords.push_back({rng.Uniform(0, extent), rng.Uniform(0, extent)});
  }
  return NormalizeSymmetric(GaussianAdjacencyFromCoords(coords, 0.5, 1.0),
                            /*add_self_loops=*/false);
}

void BM_SpmmCity(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const SparseCsr adj = CityAdjacency(nodes);
  Rng rng(13);
  const Tensor x = Tensor::Uniform(Shape({nodes, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spmm(adj, x).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * adj.nnz() * 16);
}
BENCHMARK(BM_SpmmCity)->Arg(10000);

void BM_DenseSpmmCity(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const Tensor dense = CityAdjacency(nodes).ToDense();
  Rng rng(13);
  const Tensor x = Tensor::Uniform(Shape({nodes, 16}), -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(dense, x).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * nodes * nodes * 16);
}
BENCHMARK(BM_DenseSpmmCity)->Arg(10000);

}  // namespace
}  // namespace stsm

// Custom main (instead of BENCHMARK_MAIN) so the JSON report records which
// kernel table was live: tools/check_pool_stats.py --micro skips the
// SIMD-vs-scalar speedup pairs when the context says the scalar table ran
// (older CPU, -DSTSM_SIMD=OFF build, or STSM_SIMD=off in the environment).
int main(int argc, char** argv) {
  const stsm::simd::KernelTable* active = stsm::simd::Active();
  benchmark::AddCustomContext("stsm_simd", active ? "on" : "off");
  benchmark::AddCustomContext("stsm_simd_isa", active ? active->isa : "scalar");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
