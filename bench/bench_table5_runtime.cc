// Regenerates Table 5: training and testing time of GE-GAN, IGNNK, INCREASE
// and STSM over the traffic datasets. Absolute times are CPU seconds on
// this machine rather than the paper's V100 hours; the reproduction target
// is the relative ordering (GE-GAN needs the most training; GE-GAN and STSM
// are the fastest at test time).

#include <cstdio>

#include "common/prof.h"
#include "harness.h"

namespace stsm {
namespace bench {
namespace {

void Run() {
  // Table 5 is the runtime table, so it also carries the per-op profile.
  prof::SetEnabled(true);
  prof::Reset();
  const BenchScale scale = ScaleFromEnv();
  const std::vector<std::string> datasets = {"bay-sim", "pems07-sim",
                                             "pems08-sim", "melbourne-sim"};
  const std::vector<ModelKind> models = ComparisonModels();

  Table table({"Model", "Time", "bay-sim", "pems07-sim", "pems08-sim",
               "melbourne-sim"});
  std::vector<std::vector<double>> train_times(models.size()),
      test_times(models.size());

  for (const std::string& name : datasets) {
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    const StsmConfig config = ScaledConfig(name, scale);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    for (size_t m = 0; m < models.size(); ++m) {
      std::fprintf(stderr, "[table5] %s / %s ...\n", name.c_str(),
                   ModelName(models[m]).c_str());
      const ExperimentResult result =
          RunAveraged(models[m], dataset, splits, config);
      train_times[m].push_back(result.train_seconds);
      test_times[m].push_back(result.test_seconds);
    }
  }
  for (size_t m = 0; m < models.size(); ++m) {
    std::vector<std::string> train_row = {ModelName(models[m]), "Train (s)"};
    std::vector<std::string> test_row = {ModelName(models[m]), "Test (s)"};
    for (double t : train_times[m]) train_row.push_back(FormatFloat(t, 2));
    for (double t : test_times[m]) test_row.push_back(FormatFloat(t, 3));
    table.AddRow(train_row);
    table.AddRow(test_row);
  }
  EmitTable("table5_runtime", "Table 5: model training/testing time", table);

  // The four comparison models all use TCN or GRU temporal modules, so run
  // one small STSM-trans split to get attention into the profile as well.
  {
    const std::string name = datasets.front();
    const SpatioTemporalDataset dataset =
        MakeDataset(name, DataScaleFor(scale));
    StsmConfig config = ScaledConfig(name, scale, /*effort=*/0.2);
    const std::vector<SpaceSplit> splits = BenchSplits(dataset.coords, 1);
    std::fprintf(stderr, "[table5] %s / %s (profile only) ...\n", name.c_str(),
                 ModelName(ModelKind::kStsmTrans).c_str());
    RunAveraged(ModelKind::kStsmTrans, dataset, splits, config);
  }

  // Per-op summary of the linear-algebra substrate before the profile is
  // written: matmul / transpose / contiguous totals are the numbers the
  // stride-aware tensor core is meant to move, so surface them on stdout in
  // addition to table5_profile.json.
  {
    const prof::Snapshot snapshot = prof::TakeSnapshot();
    std::printf("\n=== Table 5 per-op substrate totals ===\n");
    for (const auto& timer : snapshot.timers) {
      const bool substrate = timer.name.rfind("matmul", 0) == 0 ||
                             timer.name.rfind("transpose", 0) == 0 ||
                             timer.name.rfind("contiguous", 0) == 0 ||
                             timer.name.rfind("slice", 0) == 0;
      if (!substrate) continue;
      std::printf("%-16s %10llu calls %12.3f ms\n", timer.name.c_str(),
                  static_cast<unsigned long long>(timer.count),
                  static_cast<double>(timer.total_ns) / 1e6);
    }
    std::fflush(stdout);
  }
  EmitProfile("table5");
}

}  // namespace
}  // namespace bench
}  // namespace stsm

int main() {
  stsm::bench::Run();
  return 0;
}
