#!/usr/bin/env bash
# Builds the library, runs the full test suite, and regenerates every table
# and figure of the paper, recording outputs at the repository root.
#
# Usage: scripts/run_all.sh [smoke|fast|full]
#   smoke - minutes-long sanity pass
#   fast  - default; laptop-scale reproduction preserving result shapes
#   full  - paper-scale sensor counts and budgets (hours on CPU)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-fast}"
export STSM_BENCH_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

echo "Done. See test_output.txt, bench_output.txt, and *.csv / *.svg files."
