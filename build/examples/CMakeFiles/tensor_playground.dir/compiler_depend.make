# Empty compiler generated dependencies file for tensor_playground.
# This may be replaced when dependencies are built.
