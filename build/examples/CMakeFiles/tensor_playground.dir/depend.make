# Empty dependencies file for tensor_playground.
# This may be replaced when dependencies are built.
