file(REMOVE_RECURSE
  "CMakeFiles/tensor_playground.dir/tensor_playground.cpp.o"
  "CMakeFiles/tensor_playground.dir/tensor_playground.cpp.o.d"
  "tensor_playground"
  "tensor_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
