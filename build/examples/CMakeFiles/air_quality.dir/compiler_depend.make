# Empty compiler generated dependencies file for air_quality.
# This may be replaced when dependencies are built.
