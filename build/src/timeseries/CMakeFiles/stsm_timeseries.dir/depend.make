# Empty dependencies file for stsm_timeseries.
# This may be replaced when dependencies are built.
