
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/dtw.cc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/dtw.cc.o" "gcc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/dtw.cc.o.d"
  "/root/repo/src/timeseries/pseudo_observations.cc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/pseudo_observations.cc.o" "gcc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/pseudo_observations.cc.o.d"
  "/root/repo/src/timeseries/temporal_adjacency.cc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/temporal_adjacency.cc.o" "gcc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/temporal_adjacency.cc.o.d"
  "/root/repo/src/timeseries/time_features.cc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/time_features.cc.o" "gcc" "src/timeseries/CMakeFiles/stsm_timeseries.dir/time_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stsm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
