file(REMOVE_RECURSE
  "CMakeFiles/stsm_timeseries.dir/dtw.cc.o"
  "CMakeFiles/stsm_timeseries.dir/dtw.cc.o.d"
  "CMakeFiles/stsm_timeseries.dir/pseudo_observations.cc.o"
  "CMakeFiles/stsm_timeseries.dir/pseudo_observations.cc.o.d"
  "CMakeFiles/stsm_timeseries.dir/temporal_adjacency.cc.o"
  "CMakeFiles/stsm_timeseries.dir/temporal_adjacency.cc.o.d"
  "CMakeFiles/stsm_timeseries.dir/time_features.cc.o"
  "CMakeFiles/stsm_timeseries.dir/time_features.cc.o.d"
  "libstsm_timeseries.a"
  "libstsm_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
