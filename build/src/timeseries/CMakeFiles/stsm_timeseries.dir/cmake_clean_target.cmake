file(REMOVE_RECURSE
  "libstsm_timeseries.a"
)
