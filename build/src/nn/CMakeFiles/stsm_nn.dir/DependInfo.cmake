
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/stsm_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/stsm_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/stsm_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/stsm_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/stsm_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/stsm_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/nn/CMakeFiles/stsm_nn.dir/norm.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/norm.cc.o.d"
  "/root/repo/src/nn/optim.cc" "src/nn/CMakeFiles/stsm_nn.dir/optim.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/optim.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/stsm_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/stsm_nn.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stsm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
