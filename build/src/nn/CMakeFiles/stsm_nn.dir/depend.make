# Empty dependencies file for stsm_nn.
# This may be replaced when dependencies are built.
