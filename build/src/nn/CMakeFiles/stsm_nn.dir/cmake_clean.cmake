file(REMOVE_RECURSE
  "CMakeFiles/stsm_nn.dir/attention.cc.o"
  "CMakeFiles/stsm_nn.dir/attention.cc.o.d"
  "CMakeFiles/stsm_nn.dir/conv.cc.o"
  "CMakeFiles/stsm_nn.dir/conv.cc.o.d"
  "CMakeFiles/stsm_nn.dir/gcn.cc.o"
  "CMakeFiles/stsm_nn.dir/gcn.cc.o.d"
  "CMakeFiles/stsm_nn.dir/gru.cc.o"
  "CMakeFiles/stsm_nn.dir/gru.cc.o.d"
  "CMakeFiles/stsm_nn.dir/linear.cc.o"
  "CMakeFiles/stsm_nn.dir/linear.cc.o.d"
  "CMakeFiles/stsm_nn.dir/loss.cc.o"
  "CMakeFiles/stsm_nn.dir/loss.cc.o.d"
  "CMakeFiles/stsm_nn.dir/norm.cc.o"
  "CMakeFiles/stsm_nn.dir/norm.cc.o.d"
  "CMakeFiles/stsm_nn.dir/optim.cc.o"
  "CMakeFiles/stsm_nn.dir/optim.cc.o.d"
  "CMakeFiles/stsm_nn.dir/serialize.cc.o"
  "CMakeFiles/stsm_nn.dir/serialize.cc.o.d"
  "libstsm_nn.a"
  "libstsm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
