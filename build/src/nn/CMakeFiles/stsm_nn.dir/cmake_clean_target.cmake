file(REMOVE_RECURSE
  "libstsm_nn.a"
)
