file(REMOVE_RECURSE
  "CMakeFiles/stsm_tensor.dir/grad_check.cc.o"
  "CMakeFiles/stsm_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/stsm_tensor.dir/ops.cc.o"
  "CMakeFiles/stsm_tensor.dir/ops.cc.o.d"
  "CMakeFiles/stsm_tensor.dir/shape.cc.o"
  "CMakeFiles/stsm_tensor.dir/shape.cc.o.d"
  "CMakeFiles/stsm_tensor.dir/tensor.cc.o"
  "CMakeFiles/stsm_tensor.dir/tensor.cc.o.d"
  "libstsm_tensor.a"
  "libstsm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
