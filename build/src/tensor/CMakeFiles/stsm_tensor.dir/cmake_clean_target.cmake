file(REMOVE_RECURSE
  "libstsm_tensor.a"
)
