# Empty compiler generated dependencies file for stsm_tensor.
# This may be replaced when dependencies are built.
