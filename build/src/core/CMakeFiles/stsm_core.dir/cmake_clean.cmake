file(REMOVE_RECURSE
  "CMakeFiles/stsm_core.dir/config.cc.o"
  "CMakeFiles/stsm_core.dir/config.cc.o.d"
  "CMakeFiles/stsm_core.dir/experiment.cc.o"
  "CMakeFiles/stsm_core.dir/experiment.cc.o.d"
  "CMakeFiles/stsm_core.dir/st_model.cc.o"
  "CMakeFiles/stsm_core.dir/st_model.cc.o.d"
  "CMakeFiles/stsm_core.dir/stsm.cc.o"
  "CMakeFiles/stsm_core.dir/stsm.cc.o.d"
  "libstsm_core.a"
  "libstsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
