file(REMOVE_RECURSE
  "libstsm_core.a"
)
