# Empty compiler generated dependencies file for stsm_core.
# This may be replaced when dependencies are built.
