file(REMOVE_RECURSE
  "libstsm_masking.a"
)
