file(REMOVE_RECURSE
  "CMakeFiles/stsm_masking.dir/masking.cc.o"
  "CMakeFiles/stsm_masking.dir/masking.cc.o.d"
  "libstsm_masking.a"
  "libstsm_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
