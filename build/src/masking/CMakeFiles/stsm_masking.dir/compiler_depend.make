# Empty compiler generated dependencies file for stsm_masking.
# This may be replaced when dependencies are built.
