# Empty dependencies file for stsm_common.
# This may be replaced when dependencies are built.
