file(REMOVE_RECURSE
  "libstsm_common.a"
)
