file(REMOVE_RECURSE
  "CMakeFiles/stsm_common.dir/env.cc.o"
  "CMakeFiles/stsm_common.dir/env.cc.o.d"
  "CMakeFiles/stsm_common.dir/rng.cc.o"
  "CMakeFiles/stsm_common.dir/rng.cc.o.d"
  "CMakeFiles/stsm_common.dir/table.cc.o"
  "CMakeFiles/stsm_common.dir/table.cc.o.d"
  "CMakeFiles/stsm_common.dir/thread_pool.cc.o"
  "CMakeFiles/stsm_common.dir/thread_pool.cc.o.d"
  "libstsm_common.a"
  "libstsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
