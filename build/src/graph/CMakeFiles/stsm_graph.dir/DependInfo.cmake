
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency.cc" "src/graph/CMakeFiles/stsm_graph.dir/adjacency.cc.o" "gcc" "src/graph/CMakeFiles/stsm_graph.dir/adjacency.cc.o.d"
  "/root/repo/src/graph/geo.cc" "src/graph/CMakeFiles/stsm_graph.dir/geo.cc.o" "gcc" "src/graph/CMakeFiles/stsm_graph.dir/geo.cc.o.d"
  "/root/repo/src/graph/road.cc" "src/graph/CMakeFiles/stsm_graph.dir/road.cc.o" "gcc" "src/graph/CMakeFiles/stsm_graph.dir/road.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stsm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
