file(REMOVE_RECURSE
  "libstsm_graph.a"
)
