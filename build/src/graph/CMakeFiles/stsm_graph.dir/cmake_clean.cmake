file(REMOVE_RECURSE
  "CMakeFiles/stsm_graph.dir/adjacency.cc.o"
  "CMakeFiles/stsm_graph.dir/adjacency.cc.o.d"
  "CMakeFiles/stsm_graph.dir/geo.cc.o"
  "CMakeFiles/stsm_graph.dir/geo.cc.o.d"
  "CMakeFiles/stsm_graph.dir/road.cc.o"
  "CMakeFiles/stsm_graph.dir/road.cc.o.d"
  "libstsm_graph.a"
  "libstsm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
