# Empty dependencies file for stsm_graph.
# This may be replaced when dependencies are built.
