file(REMOVE_RECURSE
  "libstsm_baselines.a"
)
