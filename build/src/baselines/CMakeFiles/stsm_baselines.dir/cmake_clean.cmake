file(REMOVE_RECURSE
  "CMakeFiles/stsm_baselines.dir/context.cc.o"
  "CMakeFiles/stsm_baselines.dir/context.cc.o.d"
  "CMakeFiles/stsm_baselines.dir/gegan.cc.o"
  "CMakeFiles/stsm_baselines.dir/gegan.cc.o.d"
  "CMakeFiles/stsm_baselines.dir/ignnk.cc.o"
  "CMakeFiles/stsm_baselines.dir/ignnk.cc.o.d"
  "CMakeFiles/stsm_baselines.dir/increase.cc.o"
  "CMakeFiles/stsm_baselines.dir/increase.cc.o.d"
  "CMakeFiles/stsm_baselines.dir/zoo.cc.o"
  "CMakeFiles/stsm_baselines.dir/zoo.cc.o.d"
  "libstsm_baselines.a"
  "libstsm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
