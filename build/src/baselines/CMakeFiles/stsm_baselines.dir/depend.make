# Empty dependencies file for stsm_baselines.
# This may be replaced when dependencies are built.
