file(REMOVE_RECURSE
  "libstsm_data.a"
)
