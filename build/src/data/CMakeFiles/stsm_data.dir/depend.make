# Empty dependencies file for stsm_data.
# This may be replaced when dependencies are built.
