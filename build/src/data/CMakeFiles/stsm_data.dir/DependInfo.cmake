
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_io.cc" "src/data/CMakeFiles/stsm_data.dir/csv_io.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/csv_io.cc.o.d"
  "/root/repo/src/data/metadata.cc" "src/data/CMakeFiles/stsm_data.dir/metadata.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/metadata.cc.o.d"
  "/root/repo/src/data/metrics.cc" "src/data/CMakeFiles/stsm_data.dir/metrics.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/metrics.cc.o.d"
  "/root/repo/src/data/normalizer.cc" "src/data/CMakeFiles/stsm_data.dir/normalizer.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/normalizer.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/data/CMakeFiles/stsm_data.dir/registry.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/registry.cc.o.d"
  "/root/repo/src/data/simulator.cc" "src/data/CMakeFiles/stsm_data.dir/simulator.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/simulator.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/data/CMakeFiles/stsm_data.dir/splits.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/splits.cc.o.d"
  "/root/repo/src/data/svg_map.cc" "src/data/CMakeFiles/stsm_data.dir/svg_map.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/svg_map.cc.o.d"
  "/root/repo/src/data/windows.cc" "src/data/CMakeFiles/stsm_data.dir/windows.cc.o" "gcc" "src/data/CMakeFiles/stsm_data.dir/windows.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/stsm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/stsm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stsm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
