file(REMOVE_RECURSE
  "CMakeFiles/stsm_data.dir/csv_io.cc.o"
  "CMakeFiles/stsm_data.dir/csv_io.cc.o.d"
  "CMakeFiles/stsm_data.dir/metadata.cc.o"
  "CMakeFiles/stsm_data.dir/metadata.cc.o.d"
  "CMakeFiles/stsm_data.dir/metrics.cc.o"
  "CMakeFiles/stsm_data.dir/metrics.cc.o.d"
  "CMakeFiles/stsm_data.dir/normalizer.cc.o"
  "CMakeFiles/stsm_data.dir/normalizer.cc.o.d"
  "CMakeFiles/stsm_data.dir/registry.cc.o"
  "CMakeFiles/stsm_data.dir/registry.cc.o.d"
  "CMakeFiles/stsm_data.dir/simulator.cc.o"
  "CMakeFiles/stsm_data.dir/simulator.cc.o.d"
  "CMakeFiles/stsm_data.dir/splits.cc.o"
  "CMakeFiles/stsm_data.dir/splits.cc.o.d"
  "CMakeFiles/stsm_data.dir/svg_map.cc.o"
  "CMakeFiles/stsm_data.dir/svg_map.cc.o.d"
  "CMakeFiles/stsm_data.dir/windows.cc.o"
  "CMakeFiles/stsm_data.dir/windows.cc.o.d"
  "libstsm_data.a"
  "libstsm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
