
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/data_test.cc" "tests/CMakeFiles/data_test.dir/data/data_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/data_test.cc.o.d"
  "/root/repo/tests/data/io_test.cc" "tests/CMakeFiles/data_test.dir/data/io_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/io_test.cc.o.d"
  "/root/repo/tests/data/multiregion_test.cc" "tests/CMakeFiles/data_test.dir/data/multiregion_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/multiregion_test.cc.o.d"
  "/root/repo/tests/data/simulator_extra_test.cc" "tests/CMakeFiles/data_test.dir/data/simulator_extra_test.cc.o" "gcc" "tests/CMakeFiles/data_test.dir/data/simulator_extra_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/stsm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stsm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/masking/CMakeFiles/stsm_masking.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stsm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stsm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/stsm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stsm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
