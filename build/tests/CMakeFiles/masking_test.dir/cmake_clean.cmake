file(REMOVE_RECURSE
  "CMakeFiles/masking_test.dir/masking/masking_test.cc.o"
  "CMakeFiles/masking_test.dir/masking/masking_test.cc.o.d"
  "masking_test"
  "masking_test.pdb"
  "masking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
