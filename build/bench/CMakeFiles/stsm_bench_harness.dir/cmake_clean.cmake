file(REMOVE_RECURSE
  "CMakeFiles/stsm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/stsm_bench_harness.dir/harness.cc.o.d"
  "libstsm_bench_harness.a"
  "libstsm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
