file(REMOVE_RECURSE
  "libstsm_bench_harness.a"
)
