# Empty dependencies file for stsm_bench_harness.
# This may be replaced when dependencies are built.
