file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiregion.dir/bench_ext_multiregion.cc.o"
  "CMakeFiles/bench_ext_multiregion.dir/bench_ext_multiregion.cc.o.d"
  "bench_ext_multiregion"
  "bench_ext_multiregion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiregion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
