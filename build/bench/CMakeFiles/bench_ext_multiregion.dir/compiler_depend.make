# Empty compiler generated dependencies file for bench_ext_multiregion.
# This may be replaced when dependencies are built.
