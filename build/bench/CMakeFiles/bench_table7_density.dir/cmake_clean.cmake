file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_density.dir/bench_table7_density.cc.o"
  "CMakeFiles/bench_table7_density.dir/bench_table7_density.cc.o.d"
  "bench_table7_density"
  "bench_table7_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
