# Empty dependencies file for bench_table7_density.
# This may be replaced when dependencies are built.
