file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_ring.dir/bench_table9_ring.cc.o"
  "CMakeFiles/bench_table9_ring.dir/bench_table9_ring.cc.o.d"
  "bench_table9_ring"
  "bench_table9_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
