file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_topk.dir/bench_fig9_topk.cc.o"
  "CMakeFiles/bench_fig9_topk.dir/bench_fig9_topk.cc.o.d"
  "bench_fig9_topk"
  "bench_fig9_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
