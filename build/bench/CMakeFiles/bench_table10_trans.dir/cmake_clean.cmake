file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_trans.dir/bench_table10_trans.cc.o"
  "CMakeFiles/bench_table10_trans.dir/bench_table10_trans.cc.o.d"
  "bench_table10_trans"
  "bench_table10_trans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_trans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
