# Empty dependencies file for bench_table6_sensors.
# This may be replaced when dependencies are built.
