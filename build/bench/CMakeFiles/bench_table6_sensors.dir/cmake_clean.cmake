file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_sensors.dir/bench_table6_sensors.cc.o"
  "CMakeFiles/bench_table6_sensors.dir/bench_table6_sensors.cc.o.d"
  "bench_table6_sensors"
  "bench_table6_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
