file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_maps.dir/bench_fig5_maps.cc.o"
  "CMakeFiles/bench_fig5_maps.dir/bench_fig5_maps.cc.o.d"
  "bench_fig5_maps"
  "bench_fig5_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
