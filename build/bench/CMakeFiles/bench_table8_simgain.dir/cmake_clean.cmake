file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_simgain.dir/bench_table8_simgain.cc.o"
  "CMakeFiles/bench_table8_simgain.dir/bench_table8_simgain.cc.o.d"
  "bench_table8_simgain"
  "bench_table8_simgain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_simgain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
