// ShardedRegistry: K independent {ModelRegistry, ForecastServer} shards
// behind one submit surface, so multiple cities/datasets serve concurrently
// without sharing a queue, a cache, or a registry lock.
//
// Routing is by model name: FNV-1a(name) % K, computed once per request.
// Every model's whole request stream lands on one shard, which keeps the
// micro-batcher effective (a batch is same-model by construction) and makes
// per-shard stats attributable to the models hashed there. Each shard's
// forecast cache records per-shard prof counters
// (`serve.cache.shard<k>.hit/miss/evict`), interned once at construction —
// the prof collectors require static-lifetime names.
//
// Checkpoint hot-swap: Swap(spec) routes to the owning shard's registry,
// whose Load builds the replacement model outside the lock and flips the
// shared_ptr under it. In-flight batches hold the old shared_ptr and finish
// on the old weights; the swap is a pointer store, never a pause. The
// LoadResult reports the replaced entry's health so callers can tell an
// initial load from a swap (and a recovery from a regression).

#ifndef STSM_SERVE_SHARDING_H_
#define STSM_SERVE_SHARDING_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/registry.h"
#include "serve/server.h"
#include "serve/types.h"

namespace stsm {
namespace serve {

// Returns a pointer with static storage duration to a string equal to
// `name`, interning it on first use. Needed because prof counter names are
// cached by pointer; exposed for tests.
const char* InternProfName(const std::string& name);

struct ShardedConfig {
  // Number of {registry, server} shards; must be >= 1.
  int num_shards = 2;
  // Per-shard server configuration. cache_counters is overridden per shard
  // with the interned serve.cache.shard<k>.* names.
  ServerConfig server;
};

class ShardedRegistry {
 public:
  explicit ShardedRegistry(const ShardedConfig& config);
  ~ShardedRegistry();  // Stops every shard server.

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Owning shard of `model`: FNV-1a 64-bit of the name, modulo num_shards.
  int ShardFor(const std::string& model) const;

  // Registers (or replaces) `spec.name` on its owning shard.
  LoadResult Load(const ModelSpec& spec);

  // Checkpoint hot-swap: identical routing to Load; the name states the
  // intent and the returned transition says what actually happened
  // (previous == EntryHealth::kAbsent means this was an initial load).
  LoadResult Swap(const ModelSpec& spec);

  // Removes `name` from its owning shard; false when it was not registered.
  bool Unload(const std::string& name);

  // All registered model names across shards (unordered across shards).
  std::vector<std::string> Names() const;

  // Request entry points; identical contracts to ForecastServer's, routed
  // by request.model. An empty model name routes like any other string and
  // is answered kError by the shard ("unknown model").
  void SubmitAsync(ForecastRequest request,
                   ForecastServer::ResponseCallback done);
  std::future<ForecastResponse> Submit(ForecastRequest request);
  ForecastResponse SubmitAndWait(ForecastRequest request);

  // Stops every shard's workers; accepted requests are answered first.
  // Idempotent; also run by the destructor.
  void Stop();

  // Point-in-time counters of one shard's server (and its cache).
  ServerStats shard_stats(int shard) const;

  const ServerConfig& shard_config() const { return shard_config_; }

 private:
  struct Shard {
    explicit Shard(const ServerConfig& config)
        : server(&registry, config) {}
    ModelRegistry registry;
    ForecastServer server;
  };

  const ServerConfig shard_config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_SHARDING_H_
