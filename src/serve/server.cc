#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/prof.h"
#include "tensor/ops.h"
#include "timeseries/time_features.h"

namespace stsm {
namespace serve {
namespace {

ForecastResponse ErrorResponse(std::string message) {
  ForecastResponse response;
  response.status = Status::kError;
  response.message = std::move(message);
  return response;
}

CacheKey KeyFor(const ForecastRequest& request) {
  CacheKey key;
  key.model = request.model;
  key.window_hash = HashWindow(request.window);
  key.start_step = request.start_step;
  key.regions = request.regions;
  return key;
}

}  // namespace

namespace {
// Construction-time validation: a zero-worker server hangs every queued
// request, a zero-capacity queue rejects everything, and a zero batch_max
// indexes batch_size_counts_ out of range — all are configuration bugs
// better reported up front than debugged under load.
const ServerConfig& ValidatedConfig(const ServerConfig& config) {
  STSM_CHECK_GE(config.num_workers, 1)
      << "— ServerConfig.num_workers must be positive (a zero-worker server "
         "never answers queued requests)";
  STSM_CHECK_GE(config.queue_capacity, 1)
      << "— ServerConfig.queue_capacity must be positive (a zero-capacity "
         "queue rejects every request)";
  STSM_CHECK_GE(config.batch_max, 1)
      << "— ServerConfig.batch_max must be positive";
  STSM_CHECK_GE(config.cache_capacity, 0)
      << "— ServerConfig.cache_capacity must be >= 0 (0 disables the cache)";
  return config;
}
}  // namespace

ForecastServer::ForecastServer(const ModelRegistry* registry,
                               const ServerConfig& config)
    : registry_(registry),
      config_(ValidatedConfig(config)),
      cache_(static_cast<size_t>(config.cache_capacity),
             config.cache_counters, config.cache_dtype),
      queue_(static_cast<size_t>(config.queue_capacity)),
      batch_size_counts_(
          new std::atomic<uint64_t>[config.batch_max + 1]()) {
  workers_.reserve(config.num_workers);
  for (int w = 0; w < config.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ForecastServer::~ForecastServer() { Stop(); }

void ForecastServer::Stop() {
  MutexLock lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();  // Workers drain remaining items, then exit.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ForecastServer::SubmitAsync(ForecastRequest request,
                                 ResponseCallback done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  STSM_PROF_COUNT("serve.requests", 1);
  const Clock::time_point now = Clock::now();

  // Validation against the registered model's shapes.
  const std::shared_ptr<const ServedModel> model =
      registry_->Find(request.model);
  if (model == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    STSM_PROF_COUNT("serve.errors", 1);
    done(ErrorResponse("unknown model: " + request.model));
    return;
  }
  const ModelSpec& spec = model->spec();
  const size_t expected_window =
      static_cast<size_t>(spec.config.input_length) * spec.num_nodes;
  if (request.window.size() != expected_window || request.regions.empty()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    STSM_PROF_COUNT("serve.errors", 1);
    done(ErrorResponse("bad request shape"));
    return;
  }
  for (int region : request.regions) {
    if (region < 0 || region >= spec.num_nodes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      STSM_PROF_COUNT("serve.errors", 1);
      done(ErrorResponse("region id out of range"));
      return;
    }
  }

  if (request.deadline == Clock::time_point::max() &&
      config_.default_deadline.count() > 0) {
    request.deadline = now + config_.default_deadline;
  }

  // Fast path: identical query answered from the cache.
  if (model->healthy()) {
    ForecastResponse cached;
    if (cache_.Lookup(KeyFor(request), &cached.forecast)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cached.status = Status::kOk;
      cached.cache_hit = true;
      cached.horizon = spec.config.horizon;
      cached.latency = Clock::now() - now;
      if (prof::Enabled()) {
        prof::RecordTimerNs(
            "serve.latency",
            static_cast<uint64_t>(cached.latency.count()));
      }
      done(std::move(cached));
      return;
    }
  }

  Pending pending;
  pending.enqueue_time = now;
  pending.request = std::move(request);
  pending.done = std::move(done);
  // TryPush consumes the Pending even on failure, so keep a handle on the
  // callback to answer the rejection from.
  ResponseCallback on_reject = pending.done;
  if (!queue_.TryPush(std::move(pending))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    STSM_PROF_COUNT("serve.rejected", 1);
    ForecastResponse rejected;
    rejected.status = Status::kRejected;
    rejected.message = "queue full";
    rejected.latency = Clock::now() - now;
    on_reject(std::move(rejected));
  }
}

std::future<ForecastResponse> ForecastServer::Submit(ForecastRequest request) {
  auto promise = std::make_shared<std::promise<ForecastResponse>>();
  std::future<ForecastResponse> future = promise->get_future();
  SubmitAsync(std::move(request), [promise](ForecastResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

ForecastResponse ForecastServer::SubmitAndWait(ForecastRequest request) {
  return Submit(std::move(request)).get();
}

void ForecastServer::WorkerLoop() {
  std::vector<Pending> batch;
  const auto compatible = [](const Pending& first, const Pending& other) {
    return first.request.model == other.request.model;
  };
  while (queue_.PopBatch(&batch, static_cast<size_t>(config_.batch_max),
                         compatible)) {
    ProcessBatch(&batch);
  }
}

void ForecastServer::ProcessBatch(std::vector<Pending>* batch) {
  const std::shared_ptr<const ServedModel> model =
      registry_->Find((*batch)[0].request.model);
  // The model was present at Submit time; Find can only fail here if the
  // registry entry was replaced and removed concurrently — treat like a
  // load failure and degrade.
  if (model == nullptr || !model->healthy()) {
    for (Pending& pending : *batch) {
      const int n = model ? model->spec().num_nodes : 0;
      const int horizon = model ? model->spec().config.horizon : 1;
      Respond(&pending,
              Fallback(pending.request, n, horizon, "model unavailable"));
    }
    return;
  }
  const ModelSpec& spec = model->spec();
  const int t = spec.config.input_length;
  const int n = spec.num_nodes;
  const int horizon = spec.config.horizon;

  // Split the batch into live requests and deadline misses.
  const Clock::time_point now = Clock::now();
  std::vector<Pending*> live;
  live.reserve(batch->size());
  for (Pending& pending : *batch) {
    if (now > pending.request.deadline) {
      Respond(&pending,
              Fallback(pending.request, n, horizon, "deadline missed"));
    } else {
      live.push_back(&pending);
    }
  }
  if (live.empty()) return;

  const int b = static_cast<int>(live.size());
  batches_.fetch_add(1, std::memory_order_relaxed);
  STSM_PROF_COUNT("serve.batches", 1);
  batch_size_counts_[std::min(b, config_.batch_max)].fetch_add(
      1, std::memory_order_relaxed);

  // Stack the windows into [B, T, N, 1] (normalised) and the per-request
  // time features into [B, T, 3].
  Tensor inputs = Tensor::Zeros(Shape({b, t, n, 1}));
  Tensor time_features = Tensor::Zeros(Shape({b, t, 3}));
  float* x = inputs.data();
  float* tf = time_features.data();
  for (int i = 0; i < b; ++i) {
    const ForecastRequest& request = live[i]->request;
    const int64_t base = static_cast<int64_t>(i) * t * n;
    for (size_t v = 0; v < request.window.size(); ++v) {
      x[base + static_cast<int64_t>(v)] =
          spec.normalizer.Transform(request.window[v]);
    }
    const Tensor features = TimeOfDayFeatures(
        TimeOfDayIds(request.start_step, t, spec.steps_per_day),
        spec.steps_per_day);
    std::copy(features.data(), features.data() + static_cast<int64_t>(t) * 3,
              tf + static_cast<int64_t>(i) * t * 3);
  }

  Tensor predictions;
  {
    STSM_PROF_SCOPE("serve.batch_forward");
    predictions = model->Predict(inputs, time_features);
  }
  const float* p = predictions.data();
  const int64_t horizon_out = predictions.shape()[1];

  for (int i = 0; i < b; ++i) {
    const ForecastRequest& request = live[i]->request;
    ForecastResponse response;
    response.status = Status::kOk;
    response.horizon = static_cast<int>(horizon_out);
    response.batch_size = b;
    response.forecast.resize(static_cast<size_t>(horizon_out) *
                             request.regions.size());
    for (int64_t h = 0; h < horizon_out; ++h) {
      for (size_t r = 0; r < request.regions.size(); ++r) {
        const int64_t index =
            ((static_cast<int64_t>(i) * horizon_out + h) * n +
             request.regions[r]);
        response.forecast[static_cast<size_t>(h) * request.regions.size() +
                          r] = spec.normalizer.Inverse(p[index]);
      }
    }
    cache_.Insert(KeyFor(request), response.forecast);
    Respond(live[i], std::move(response));
  }
}

void ForecastServer::Respond(Pending* pending, ForecastResponse response) {
  response.latency = Clock::now() - pending->enqueue_time;
  if (prof::Enabled()) {
    prof::RecordTimerNs("serve.latency",
                        static_cast<uint64_t>(response.latency.count()));
  }
  switch (response.status) {
    case Status::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      STSM_PROF_COUNT("serve.degraded", 1);
      break;
    default:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  pending->done(std::move(response));
}

ForecastResponse ForecastServer::Fallback(const ForecastRequest& request,
                                          int num_nodes, int horizon,
                                          const std::string& reason) {
  ForecastResponse response;
  response.status = Status::kDegraded;
  response.message = reason;
  response.horizon = horizon;
  const size_t regions = request.regions.size();
  response.forecast.assign(static_cast<size_t>(horizon) * regions, 0.0f);
  if (num_nodes <= 0) return response;
  const int steps = static_cast<int>(request.window.size()) / num_nodes;
  for (size_t r = 0; r < regions; ++r) {
    double sum = 0.0;
    for (int step = 0; step < steps; ++step) {
      sum += request.window[static_cast<size_t>(step) * num_nodes +
                            request.regions[r]];
    }
    const float mean = steps > 0 ? static_cast<float>(sum / steps) : 0.0f;
    for (int h = 0; h < horizon; ++h) {
      response.forecast[static_cast<size_t>(h) * regions + r] = mean;
    }
  }
  return response;
}

ServerStats ForecastServer::stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batch_size_counts.resize(config_.batch_max + 1, 0);
  for (int i = 0; i <= config_.batch_max; ++i) {
    stats.batch_size_counts[i] =
        batch_size_counts_[i].load(std::memory_order_relaxed);
  }
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace serve
}  // namespace stsm
