#include "serve/cache.h"

#include <cstring>

#include "common/prof.h"

namespace stsm {
namespace serve {

uint64_t HashWindow(const std::vector<float>& window) {
  // FNV-1a, 64-bit.
  uint64_t hash = 1469598103934665603ULL;
  for (float value : window) {
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffU;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  uint64_t hash = key.window_hash;
  hash ^= std::hash<std::string>()(key.model) + 0x9e3779b97f4a7c15ULL +
          (hash << 6) + (hash >> 2);
  hash ^= static_cast<uint64_t>(key.start_step) + 0x9e3779b97f4a7c15ULL +
          (hash << 6) + (hash >> 2);
  for (int region : key.regions) {
    hash ^= static_cast<uint64_t>(region) + 0x9e3779b97f4a7c15ULL +
            (hash << 6) + (hash >> 2);
  }
  return static_cast<size_t>(hash);
}

ForecastCache::ForecastCache(size_t capacity, CacheProfNames counters)
    : capacity_(capacity), counters_(counters) {}

bool ForecastCache::Lookup(const CacheKey& key, std::vector<float>* out) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    STSM_PROF_COUNT(counters_.miss, 1);
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  *out = it->second->forecast;
  ++stats_.hits;
  STSM_PROF_COUNT(counters_.hit, 1);
  return true;
}

void ForecastCache::Insert(const CacheKey& key, std::vector<float> forecast) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->forecast = std::move(forecast);
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
    STSM_PROF_COUNT(counters_.evict, 1);
  }
  entries_.push_front(Entry{key, std::move(forecast)});
  index_[key] = entries_.begin();
}

size_t ForecastCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

CacheStats ForecastCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace stsm
