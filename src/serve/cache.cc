#include "serve/cache.h"

#include <cstring>

#include "common/prof.h"

namespace stsm {
namespace serve {

uint64_t HashWindow(const std::vector<float>& window) {
  // FNV-1a, 64-bit.
  uint64_t hash = 1469598103934665603ULL;
  for (float value : window) {
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffU;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

size_t CacheKeyHash::operator()(const CacheKey& key) const {
  uint64_t hash = key.window_hash;
  hash ^= std::hash<std::string>()(key.model) + 0x9e3779b97f4a7c15ULL +
          (hash << 6) + (hash >> 2);
  hash ^= static_cast<uint64_t>(key.start_step) + 0x9e3779b97f4a7c15ULL +
          (hash << 6) + (hash >> 2);
  for (int region : key.regions) {
    hash ^= static_cast<uint64_t>(region) + 0x9e3779b97f4a7c15ULL +
            (hash << 6) + (hash >> 2);
  }
  return static_cast<size_t>(hash);
}

ForecastCache::ForecastCache(size_t capacity, CacheProfNames counters,
                             DType entry_dtype)
    : capacity_(capacity), counters_(counters), entry_dtype_(entry_dtype) {}

bool ForecastCache::Lookup(const CacheKey& key, std::vector<float>* out) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    STSM_PROF_COUNT(counters_.miss, 1);
    return false;
  }
  entries_.splice(entries_.begin(), entries_, it->second);
  if (entry_dtype_ == DType::kBf16) {
    const std::vector<uint16_t>& narrow = it->second->forecast_bf16;
    out->resize(narrow.size());
    for (size_t i = 0; i < narrow.size(); ++i) {
      (*out)[i] = F32FromBf16(narrow[i]);  // Exact widening.
    }
  } else {
    *out = it->second->forecast;
  }
  ++stats_.hits;
  STSM_PROF_COUNT(counters_.hit, 1);
  return true;
}

void ForecastCache::Insert(const CacheKey& key, std::vector<float> forecast) {
  if (capacity_ == 0) return;
  // Narrow outside the lock: the RNE rounding loop is per-element work that
  // the request fast path should not serialise on.
  std::vector<uint16_t> narrow;
  if (entry_dtype_ == DType::kBf16) {
    narrow.resize(forecast.size());
    for (size_t i = 0; i < forecast.size(); ++i) {
      narrow[i] = Bf16FromF32(forecast[i]);
    }
    forecast.clear();
    forecast.shrink_to_fit();
  }
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.payload_bytes -= it->second->payload_bytes();
    it->second->forecast = std::move(forecast);
    it->second->forecast_bf16 = std::move(narrow);
    stats_.payload_bytes += it->second->payload_bytes();
    entries_.splice(entries_.begin(), entries_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    stats_.payload_bytes -= entries_.back().payload_bytes();
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
    STSM_PROF_COUNT(counters_.evict, 1);
  }
  entries_.push_front(Entry{key, std::move(forecast), std::move(narrow)});
  stats_.payload_bytes += entries_.front().payload_bytes();
  index_[key] = entries_.begin();
}

size_t ForecastCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

CacheStats ForecastCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace serve
}  // namespace stsm
