// Model registry for the serving layer.
//
// A ModelSpec bundles everything a checkpoint does NOT contain but inference
// needs: the architecture config, the z-score normaliser fitted at training
// time, and the pre-normalised full-graph adjacency matrices (spatial
// Gaussian kernel + DTW temporal similarity). BuildModelSpec recomputes
// these from the dataset/split exactly as StsmRunner's test path does, so a
// served model sees the same inputs as the offline evaluation.
//
// A ServedModel owns one loaded StModel in eval mode; its Predict runs under
// autograd::NoGradGuard, so serving builds no graph and allocates no grad
// buffers. When the checkpoint cannot be loaded the ServedModel is still
// registered but unhealthy: the server keeps answering its requests with
// the historical-average fallback (tagged kDegraded) instead of failing.
//
// The registry hands out shared_ptr<const ServedModel>; the precomputed
// state is immutable after load and therefore safely shared by all worker
// threads without copying.

#ifndef STSM_SERVE_REGISTRY_H_
#define STSM_SERVE_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/config.h"
#include "core/st_model.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/splits.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace stsm {
namespace serve {

struct ModelSpec {
  std::string name;
  StsmConfig config;
  int num_nodes = 0;
  int steps_per_day = 288;
  Normalizer normalizer;
  // [N, N] symmetric-normalised Eq. 2 kernel / row-normalised DTW
  // similarity. CSR when config.sparse_adjacency (city-scale graphs),
  // dense tensors otherwise.
  Adjacency adj_spatial;
  Adjacency adj_temporal;
  std::string checkpoint_path;
};

// Recomputes the serving-time state for a model trained on
// (dataset, split, config): normaliser fitted on the observed training
// columns, spatial adjacency over the full graph, and the temporal
// adjacency built from pseudo-observation-filled series — the same
// construction as StsmRunner::Evaluate. Euclidean distances (the default
// distance mode) are used throughout.
ModelSpec BuildModelSpec(const std::string& name,
                         const SpatioTemporalDataset& dataset,
                         const SpaceSplit& split, const StsmConfig& config,
                         const std::string& checkpoint_path);

class ServedModel {
 public:
  // Constructs the network, loads weights from spec.checkpoint_path, and
  // switches it to eval mode. On checkpoint failure the model is marked
  // unhealthy (healthy() == false) rather than rejected — the server then
  // degrades its requests gracefully.
  static std::shared_ptr<ServedModel> Load(const ModelSpec& spec);

  const ModelSpec& spec() const { return spec_; }
  bool healthy() const { return model_ != nullptr; }

  // Resident parameter bytes at the serving dtype (0 when unhealthy). For
  // spec.config.serve_dtype == kBf16 this is half the fp32 figure;
  // bench_serve_load reports it per registry entry.
  int64_t weight_bytes() const { return weight_bytes_; }

  // Batched no-grad forward. inputs: [B, T, N, 1] normalised windows;
  // time_features: [B, T, 3]. Returns [B, T', N, 1] normalised forecasts.
  // Requires healthy().
  Tensor Predict(const Tensor& inputs, const Tensor& time_features) const;

 private:
  explicit ServedModel(ModelSpec spec);

  ModelSpec spec_;
  std::unique_ptr<StModel> model_;  // Null when the checkpoint failed.
  int64_t weight_bytes_ = 0;
};

// Health of the registry entry a Load replaced (the "previous generation"
// in a checkpoint hot-swap).
enum class EntryHealth {
  kAbsent,     // No entry of that name existed: an initial load.
  kHealthy,    // Replaced a serving model (the common hot-swap case).
  kUnhealthy,  // Replaced an entry whose checkpoint had failed.
};

// What a Load/Swap did: the new entry's health plus the transition from
// whatever it replaced. `previous == kUnhealthy && healthy` is the
// recovery path; `previous == kHealthy && !healthy` is a swap that made
// things worse and deserves an alert at the call site.
struct LoadResult {
  bool healthy = false;                       // The newly installed entry.
  EntryHealth previous = EntryHealth::kAbsent;
};

// Thread-safe name -> ServedModel map.
//
// Hot-swap semantics: Load builds the replacement ServedModel *outside* the
// lock, then flips the shared_ptr under it — one pointer store. Requests
// that called Find before the flip keep their shared_ptr and finish their
// batch on the old model; the old weights are freed when the last in-flight
// batch drops its reference. Nothing is ever mutated in place.
class ModelRegistry {
 public:
  // Loads and registers a model (replacing any same-named entry). The
  // result carries the new entry's health — false means the checkpoint
  // failed and the entry will only serve degraded responses — plus the
  // replaced entry's health transition.
  LoadResult Load(const ModelSpec& spec) STSM_EXCLUDES(mutex_);

  // Removes `name`. Returns false when no such entry existed. In-flight
  // requests that already hold the model's shared_ptr finish normally;
  // later requests get an "unknown model" error.
  bool Unload(const std::string& name) STSM_EXCLUDES(mutex_);

  // Null when `name` is not registered.
  std::shared_ptr<const ServedModel> Find(const std::string& name) const
      STSM_EXCLUDES(mutex_);

  std::vector<std::string> Names() const STSM_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const ServedModel>>
      models_ STSM_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_REGISTRY_H_
