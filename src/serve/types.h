// Request/response vocabulary of the stsm::serve forecast service.
//
// A client submits a ForecastRequest — a raw (un-normalised) observation
// window over the model's graph plus the region ids it wants forecasts for —
// and receives a ForecastResponse future. The server answers from the
// forecast cache, from a batched no-grad model forward, or (when the
// deadline has already passed or the model is unavailable) from the
// historical-average fallback, tagging the response accordingly.

#ifndef STSM_SERVE_TYPES_H_
#define STSM_SERVE_TYPES_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace stsm {
namespace serve {

using Clock = std::chrono::steady_clock;

enum class Status {
  kOk,        // Forecast produced by the model (or served from cache).
  kDegraded,  // Fallback predictor answered; see ForecastResponse::message.
  kRejected,  // Backpressure: the request queue was full.
  kError,     // Malformed request (unknown model, wrong window size, ...).
};

const char* StatusName(Status status);

struct ForecastRequest {
  std::string model;          // Registry name.
  // Row-major [input_length x num_nodes] raw observation window covering
  // the model's whole graph (pseudo-observations already filled for
  // unobserved columns, exactly like the offline evaluation path).
  std::vector<float> window;
  std::vector<int> regions;   // Node ids to forecast; must be non-empty.
  // Absolute step index of the window's first row — anchors the
  // time-of-day features.
  int start_step = 0;
  // Absolute deadline. A request that is picked up past its deadline is
  // answered by the fallback predictor instead of waiting for a model
  // forward it can no longer afford.
  Clock::time_point deadline = Clock::time_point::max();
};

struct ForecastResponse {
  Status status = Status::kError;
  std::string message;        // Human-readable detail for non-kOk statuses.
  // Row-major [horizon x regions.size()] raw-unit forecasts (empty for
  // kRejected/kError).
  std::vector<float> forecast;
  int horizon = 0;
  bool cache_hit = false;
  // Size of the micro-batch this request was served in (0 for cache hits,
  // rejections and fallback answers).
  int batch_size = 0;
  // End-to-end latency, filled in by the server when the response is
  // fulfilled.
  std::chrono::nanoseconds latency{0};
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_TYPES_H_
