// Minimal blocking client of the wire protocol, used by the tests and the
// load bench. One instance = one TCP connection; not thread-safe. Requests
// may be pipelined (SendRequest repeatedly, then ReadResponse repeatedly) —
// responses carry the echoed request id for matching, and may arrive in a
// different order than the sends when they land on different servers.

#ifndef STSM_SERVE_NET_CLIENT_H_
#define STSM_SERVE_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/net/wire.h"

namespace stsm {
namespace serve {
namespace net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();  // Closes the connection.

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  NetClient& operator=(NetClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  bool Connect(const std::string& host, uint16_t port, std::string* error);
  bool connected() const { return fd_ >= 0; }

  // Encodes and writes one request frame (handles partial writes).
  bool SendRequest(const RequestFrame& frame, std::string* error);

  // Writes raw bytes verbatim — the malformed-frame tests speak through
  // this to poke the server's defensive decoding.
  bool SendBytes(const void* data, size_t size, std::string* error);

  // Blocks until one complete response frame arrives. False on EOF, a read
  // error, or a malformed/unexpected frame from the server.
  bool ReadResponse(ResponseFrame* out, std::string* error);

  // Half-close: tells the server no more requests are coming, while
  // responses can still be read. Lets a test observe the server-side
  // graceful close.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;  // Bytes read past the last parsed frame.
};

}  // namespace net
}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_NET_CLIENT_H_
