// Length-prefixed binary frame protocol of the network forecast service.
//
// Every frame is a fixed 12-byte header followed by a payload:
//
//   offset size  field
//        0    4  magic       0x4D535453 ("STSM" in LE byte order)
//        4    1  version     kWireVersion
//        5    1  type        FrameType (1 = request, 2 = response)
//        6    2  reserved    must be 0
//        8    4  payload     payload byte count (<= kMaxPayloadBytes)
//
// Request payload (client -> server):
//
//   u64 id            echoed verbatim in the response — open-loop clients
//                     pipeline many requests per connection and match by id
//   u32 deadline_ms   relative deadline, applied at decode time (0 = none;
//                     relative because client and server clocks differ)
//   i32 start_step    window anchor for the time-of-day features
//   u16 model_len     registry name length (<= kMaxModelNameBytes)
//   u32 window_len    observation window float count
//   u32 region_count  forecast target count
//   ...  model name bytes, window floats, region i32s, in that order
//
// Response payload (server -> client):
//
//   u64 id, u8 status (Status tag), u8 flags (bit 0 = cache hit),
//   u16 message_len (<= kMaxMessageBytes), u32 horizon, u32 batch_size,
//   u32 forecast_len, then message bytes and forecast floats.
//
// All integers little-endian; floats are IEEE-754 bit patterns. Decoding is
// defensive: the header is rejected on bad magic/version/type or an
// oversized payload *before* any allocation, and payload counts are
// validated against the actual byte count before a vector is sized — a
// malformed frame can never cause an allocation blow-up. A malformed frame
// also means the byte stream can no longer be trusted, so the ingress
// closes the connection rather than resynchronise.

#ifndef STSM_SERVE_NET_WIRE_H_
#define STSM_SERVE_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/types.h"

namespace stsm {
namespace serve {
namespace net {

constexpr uint32_t kMagic = 0x4D535453;  // "STSM" read as LE u32.
constexpr uint8_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 12;
// Generous for any [T x N] window this repo serves (16 MiB ~ a 4M-float
// window) while still bounding what a hostile length field can demand.
constexpr size_t kMaxPayloadBytes = 16u << 20;
constexpr size_t kMaxModelNameBytes = 256;
constexpr size_t kMaxMessageBytes = 1024;

enum class FrameType : uint8_t { kRequest = 1, kResponse = 2 };

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint32_t payload_bytes = 0;
};

struct RequestFrame {
  uint64_t id = 0;
  uint32_t deadline_ms = 0;  // 0 = no deadline.
  // request.deadline is NOT carried on the wire (clocks differ across
  // hosts); the ingress derives it from deadline_ms at decode time.
  ForecastRequest request;
};

struct ResponseFrame {
  uint64_t id = 0;
  // response.latency is not carried: the client measures its own
  // end-to-end latency, which is the number that includes the network.
  ForecastResponse response;
};

enum class DecodeResult {
  kOk,        // A complete, well-formed item was parsed.
  kNeedMore,  // The buffer ends mid-frame; read more bytes and retry.
  kMalformed, // The stream is corrupt; close the connection.
};

// Appends one complete frame (header + payload) to *out.
void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>* out);
void EncodeResponse(const ResponseFrame& frame, std::vector<uint8_t>* out);

// Parses the fixed header from the first kHeaderBytes of [data, size).
DecodeResult DecodeHeader(const uint8_t* data, size_t size,
                          FrameHeader* header, std::string* error);

// Parse a payload of exactly `size` bytes (the header's payload_bytes).
// Returns false (with *error set) on any inconsistency.
bool DecodeRequestPayload(const uint8_t* payload, size_t size,
                          RequestFrame* out, std::string* error);
bool DecodeResponsePayload(const uint8_t* payload, size_t size,
                           ResponseFrame* out, std::string* error);

}  // namespace net
}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_NET_WIRE_H_
