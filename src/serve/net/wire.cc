#include "serve/net/wire.h"

#include <cstring>

#include "common/check.h"

namespace stsm {
namespace serve {
namespace net {
namespace {

// ---- little-endian primitives ----------------------------------------------
// memcpy-based: this code only targets little-endian hosts (x86-64/aarch64),
// where the copy compiles to a plain load/store; memcpy keeps it free of
// alignment UB either way.

template <typename T>
void Append(T value, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void AppendBytes(const void* data, size_t size, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + size);
  if (size > 0) std::memcpy(out->data() + at, data, size);
}

// Bounds-checked sequential reader over one payload.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* value) {
    if (size_ - at_ < sizeof(T)) return false;
    std::memcpy(value, data_ + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }

  // True when exactly `count` elements of `elem_size` bytes remain readable.
  // The division avoids count * elem_size overflow on hostile counts.
  bool CanRead(size_t count, size_t elem_size) const {
    return count <= (size_ - at_) / elem_size;
  }

  bool ReadBytes(void* out, size_t size) {
    if (size_ - at_ < size) return false;
    if (size > 0) std::memcpy(out, data_ + at_, size);
    at_ += size;
    return true;
  }

  size_t remaining() const { return size_ - at_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
};

bool Fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

void AppendHeader(FrameType type, size_t payload_bytes,
                  std::vector<uint8_t>* out) {
  STSM_CHECK_LE(payload_bytes, kMaxPayloadBytes)
      << "frame payload exceeds the wire cap";
  Append<uint32_t>(kMagic, out);
  Append<uint8_t>(kWireVersion, out);
  Append<uint8_t>(static_cast<uint8_t>(type), out);
  Append<uint16_t>(0, out);  // reserved
  Append<uint32_t>(static_cast<uint32_t>(payload_bytes), out);
}

}  // namespace

void EncodeRequest(const RequestFrame& frame, std::vector<uint8_t>* out) {
  const ForecastRequest& request = frame.request;
  STSM_CHECK_LE(request.model.size(), kMaxModelNameBytes)
      << "model name too long for the wire";
  const size_t payload = 8 + 4 + 4 + 2 + 4 + 4 + request.model.size() +
                         4 * request.window.size() +
                         4 * request.regions.size();
  out->reserve(out->size() + kHeaderBytes + payload);
  AppendHeader(FrameType::kRequest, payload, out);
  Append<uint64_t>(frame.id, out);
  Append<uint32_t>(frame.deadline_ms, out);
  Append<int32_t>(request.start_step, out);
  Append<uint16_t>(static_cast<uint16_t>(request.model.size()), out);
  Append<uint32_t>(static_cast<uint32_t>(request.window.size()), out);
  Append<uint32_t>(static_cast<uint32_t>(request.regions.size()), out);
  AppendBytes(request.model.data(), request.model.size(), out);
  AppendBytes(request.window.data(), 4 * request.window.size(), out);
  AppendBytes(request.regions.data(), 4 * request.regions.size(), out);
}

void EncodeResponse(const ResponseFrame& frame, std::vector<uint8_t>* out) {
  const ForecastResponse& response = frame.response;
  // Server-generated detail strings are advisory; truncate rather than
  // refuse to answer.
  const size_t message_len =
      std::min(response.message.size(), kMaxMessageBytes);
  const size_t payload =
      8 + 1 + 1 + 2 + 4 + 4 + 4 + message_len + 4 * response.forecast.size();
  out->reserve(out->size() + kHeaderBytes + payload);
  AppendHeader(FrameType::kResponse, payload, out);
  Append<uint64_t>(frame.id, out);
  Append<uint8_t>(static_cast<uint8_t>(response.status), out);
  Append<uint8_t>(response.cache_hit ? 1 : 0, out);
  Append<uint16_t>(static_cast<uint16_t>(message_len), out);
  Append<uint32_t>(static_cast<uint32_t>(response.horizon), out);
  Append<uint32_t>(static_cast<uint32_t>(response.batch_size), out);
  Append<uint32_t>(static_cast<uint32_t>(response.forecast.size()), out);
  AppendBytes(response.message.data(), message_len, out);
  AppendBytes(response.forecast.data(), 4 * response.forecast.size(), out);
}

DecodeResult DecodeHeader(const uint8_t* data, size_t size,
                          FrameHeader* header, std::string* error) {
  if (size < kHeaderBytes) return DecodeResult::kNeedMore;
  Reader reader(data, kHeaderBytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint16_t reserved = 0;
  uint32_t payload_bytes = 0;
  reader.Read(&magic);
  reader.Read(&version);
  reader.Read(&type);
  reader.Read(&reserved);
  reader.Read(&payload_bytes);
  if (magic != kMagic) {
    Fail(error, "bad frame magic");
    return DecodeResult::kMalformed;
  }
  if (version != kWireVersion) {
    Fail(error, "unsupported wire version");
    return DecodeResult::kMalformed;
  }
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    Fail(error, "unknown frame type");
    return DecodeResult::kMalformed;
  }
  if (reserved != 0) {
    Fail(error, "nonzero reserved field");
    return DecodeResult::kMalformed;
  }
  if (payload_bytes > kMaxPayloadBytes) {
    Fail(error, "frame payload exceeds the wire cap");
    return DecodeResult::kMalformed;
  }
  header->type = static_cast<FrameType>(type);
  header->payload_bytes = payload_bytes;
  return DecodeResult::kOk;
}

bool DecodeRequestPayload(const uint8_t* payload, size_t size,
                          RequestFrame* out, std::string* error) {
  Reader reader(payload, size);
  uint16_t model_len = 0;
  uint32_t window_len = 0;
  uint32_t region_count = 0;
  int32_t start_step = 0;
  if (!reader.Read(&out->id) || !reader.Read(&out->deadline_ms) ||
      !reader.Read(&start_step) || !reader.Read(&model_len) ||
      !reader.Read(&window_len) || !reader.Read(&region_count)) {
    return Fail(error, "request payload truncated");
  }
  if (model_len > kMaxModelNameBytes) {
    return Fail(error, "model name too long");
  }
  // Validate every count against the bytes actually present BEFORE sizing
  // any container: a hostile count must not drive an allocation.
  if (reader.remaining() < model_len ||
      !reader.CanRead(static_cast<size_t>(window_len) +
                          static_cast<size_t>(region_count),
                      4) ||
      reader.remaining() !=
          model_len + 4 * (static_cast<size_t>(window_len) +
                           static_cast<size_t>(region_count))) {
    return Fail(error, "request counts disagree with payload size");
  }
  ForecastRequest& request = out->request;
  request.start_step = start_step;
  request.model.resize(model_len);
  reader.ReadBytes(request.model.data(), model_len);
  request.window.resize(window_len);
  reader.ReadBytes(request.window.data(), 4 * static_cast<size_t>(window_len));
  request.regions.resize(region_count);
  reader.ReadBytes(request.regions.data(),
                   4 * static_cast<size_t>(region_count));
  request.deadline = Clock::time_point::max();  // Derived from deadline_ms.
  return true;
}

bool DecodeResponsePayload(const uint8_t* payload, size_t size,
                           ResponseFrame* out, std::string* error) {
  Reader reader(payload, size);
  uint8_t status = 0;
  uint8_t flags = 0;
  uint16_t message_len = 0;
  uint32_t horizon = 0;
  uint32_t batch_size = 0;
  uint32_t forecast_len = 0;
  if (!reader.Read(&out->id) || !reader.Read(&status) ||
      !reader.Read(&flags) || !reader.Read(&message_len) ||
      !reader.Read(&horizon) || !reader.Read(&batch_size) ||
      !reader.Read(&forecast_len)) {
    return Fail(error, "response payload truncated");
  }
  if (status > static_cast<uint8_t>(Status::kError)) {
    return Fail(error, "unknown status tag");
  }
  if (message_len > kMaxMessageBytes) {
    return Fail(error, "response message too long");
  }
  if (reader.remaining() < message_len ||
      !reader.CanRead(forecast_len, 4) ||
      reader.remaining() != message_len + 4 * static_cast<size_t>(forecast_len)) {
    return Fail(error, "response counts disagree with payload size");
  }
  ForecastResponse& response = out->response;
  response.status = static_cast<Status>(status);
  response.cache_hit = (flags & 1) != 0;
  response.horizon = static_cast<int>(horizon);
  response.batch_size = static_cast<int>(batch_size);
  response.message.resize(message_len);
  reader.ReadBytes(response.message.data(), message_len);
  response.forecast.resize(forecast_len);
  reader.ReadBytes(response.forecast.data(),
                   4 * static_cast<size_t>(forecast_len));
  return true;
}

}  // namespace net
}  // namespace serve
}  // namespace stsm
