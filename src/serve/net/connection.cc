#include "serve/net/connection.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/check.h"

namespace stsm {
namespace serve {
namespace net {
namespace {

// Per-read chunk; the buffer cap below bounds how far past one maximal
// frame a pipelining client can push bytes we have not parsed yet.
constexpr size_t kReadChunkBytes = 64 * 1024;
constexpr size_t kMaxReadBufferBytes = kMaxPayloadBytes + kHeaderBytes +
                                       kReadChunkBytes;

}  // namespace

Waker::Waker() : fd_(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  STSM_CHECK_GE(fd_, 0) << "— eventfd creation failed";
}

Waker::~Waker() { ::close(fd_); }

void Waker::Wake() {
  const uint64_t one = 1;
  // The counter saturates rather than blocks under EFD_NONBLOCK; a failed
  // write means a wake is already pending, which is all we need.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void Waker::Drain() {
  uint64_t count = 0;
  [[maybe_unused]] ssize_t n = ::read(fd_, &count, sizeof(count));
}

Connection::Connection(int fd, int max_inflight,
                       size_t max_write_buffer_bytes)
    : fd_(fd),
      max_inflight_(max_inflight),
      max_write_buffer_bytes_(max_write_buffer_bytes) {
  STSM_CHECK_GE(fd, 0);
  STSM_CHECK_GE(max_inflight, 1);
}

Connection::~Connection() { ::close(fd_); }

Connection::IoStatus Connection::OnReadable() {
  uint8_t chunk[kReadChunkBytes];
  while (read_buffer_.size() < kMaxReadBufferBytes) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      read_buffer_.insert(read_buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;
      return IoStatus::kOk;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

Connection::ParseStatus Connection::ParseAndSubmit(
    const FrameHandler& handler, IngressCounters* counters) {
  size_t consumed = 0;
  ParseStatus status = ParseStatus::kOk;
  while (inflight() < static_cast<size_t>(max_inflight_)) {
    const uint8_t* data = read_buffer_.data() + consumed;
    const size_t available = read_buffer_.size() - consumed;
    FrameHeader header;
    std::string error;
    const DecodeResult head = DecodeHeader(data, available, &header, &error);
    if (head == DecodeResult::kNeedMore) break;
    if (head == DecodeResult::kMalformed ||
        header.type != FrameType::kRequest) {
      counters->malformed.fetch_add(1, std::memory_order_relaxed);
      status = ParseStatus::kMalformed;
      break;
    }
    if (available < kHeaderBytes + header.payload_bytes) break;
    RequestFrame frame;
    if (!DecodeRequestPayload(data + kHeaderBytes, header.payload_bytes,
                              &frame, &error)) {
      counters->malformed.fetch_add(1, std::memory_order_relaxed);
      status = ParseStatus::kMalformed;
      break;
    }
    consumed += kHeaderBytes + header.payload_bytes;
    {
      MutexLock lock(mutex_);
      ++inflight_;
    }
    counters->frames_in.fetch_add(1, std::memory_order_relaxed);
    handler(std::move(frame));
  }
  if (consumed > 0) {
    read_buffer_.erase(read_buffer_.begin(),
                       read_buffer_.begin() + static_cast<long>(consumed));
  }
  return status;
}

void Connection::DrainCompletions(IngressCounters* counters) {
  std::vector<Completion> done;
  {
    MutexLock lock(mutex_);
    done.swap(completions_);
    inflight_ -= done.size();
  }
  for (Completion& completion : done) {
    ResponseFrame frame;
    frame.id = completion.id;
    frame.response = std::move(completion.response);
    EncodeResponse(frame, &write_buffer_);
    counters->frames_out.fetch_add(1, std::memory_order_relaxed);
  }
}

Connection::IoStatus Connection::Flush() {
  while (write_offset_ < write_buffer_.size()) {
    const ssize_t n = ::write(fd_, write_buffer_.data() + write_offset_,
                              write_buffer_.size() - write_offset_);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
  write_buffer_.clear();
  write_offset_ = 0;
  return IoStatus::kOk;
}

Connection::Interest Connection::Wanted() {
  Interest interest;
  interest.write = has_pending_write();
  const size_t pending_write = write_buffer_.size() - write_offset_;
  interest.read = !peer_eof_ &&
                  inflight() < static_cast<size_t>(max_inflight_) &&
                  pending_write < max_write_buffer_bytes_ &&
                  read_buffer_.size() < kMaxReadBufferBytes;
  return interest;
}

bool Connection::Idle() {
  if (has_pending_write()) return false;
  MutexLock lock(mutex_);
  return inflight_ == 0 && completions_.empty();
}

void Connection::PushCompletion(uint64_t id, ForecastResponse response) {
  MutexLock lock(mutex_);
  if (closed_) return;
  Completion completion;
  completion.id = id;
  completion.response = std::move(response);
  completions_.push_back(std::move(completion));
}

void Connection::MarkClosed() {
  MutexLock lock(mutex_);
  closed_ = true;
  completions_.clear();
}

size_t Connection::inflight() {
  MutexLock lock(mutex_);
  return inflight_;
}

}  // namespace net
}  // namespace serve
}  // namespace stsm
