// Per-connection state machine of the epoll ingress.
//
// A Connection is driven from two sides with a strict division of state:
//
//   * The event-loop thread (and only it) owns the socket and the read/write
//     byte buffers. OnReadable/ParseAndSubmit/DrainCompletions/Flush are
//     loop-only calls — no lock protects the buffers because no other thread
//     may touch them.
//   * Server worker threads finish requests by calling PushCompletion from
//     the ForecastServer response callback. The completion queue and the
//     in-flight counter are the only cross-thread state, guarded by mutex_.
//
// Back-pressure: ParseAndSubmit stops decoding once max_inflight requests
// are outstanding, leaving the rest of the bytes buffered; Wanted() then
// drops read interest until completions drain (and the buffered bytes are
// re-parsed on the next service pass, without new socket activity). Writes
// are bounded the same way: a connection whose response bytes back up past
// the write cap stops reading until the peer drains them.
//
// A malformed frame is terminal: the byte stream has no resynchronisation
// point, so the listener records it and closes the connection.

#ifndef STSM_SERVE_NET_CONNECTION_H_
#define STSM_SERVE_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_annotations.h"
#include "serve/net/wire.h"

namespace stsm {
namespace serve {
namespace net {

// Ingress-wide counters, incremented by the loop thread while servicing
// connections and snapshotted by Listener::stats().
struct IngressCounters {
  std::atomic<uint64_t> accepted{0};     // Connections accepted.
  std::atomic<uint64_t> closed{0};       // Connections fully torn down.
  std::atomic<uint64_t> malformed{0};    // Frames rejected (closes the conn).
  std::atomic<uint64_t> frames_in{0};    // Well-formed requests decoded.
  std::atomic<uint64_t> frames_out{0};   // Responses encoded for the wire.
  std::atomic<uint64_t> read_pauses{0};  // Back-pressure read-pause events.
};

// eventfd wrapper that lets worker threads kick the epoll loop. Shared via
// shared_ptr with every response callback so a completion arriving during
// (or after) listener teardown writes to a still-open descriptor.
class Waker {
 public:
  Waker();
  ~Waker();
  Waker(const Waker&) = delete;
  Waker& operator=(const Waker&) = delete;

  int fd() const { return fd_; }
  void Wake();   // Any thread.
  void Drain();  // Loop thread: consume the pending tick(s).

 private:
  int fd_ = -1;
};

class Connection {
 public:
  // What the loop should ask epoll to watch for.
  struct Interest {
    bool read = false;
    bool write = false;
  };

  enum class IoStatus { kOk, kError };
  enum class ParseStatus { kOk, kMalformed };

  // Decoded request handler supplied by the listener; called once per
  // well-formed frame, on the loop thread.
  using FrameHandler = std::function<void(RequestFrame)>;

  // Takes ownership of the (already non-blocking) socket fd.
  Connection(int fd, int max_inflight, size_t max_write_buffer_bytes);
  ~Connection();  // Closes the fd.

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  // ---- loop-thread only ----------------------------------------------------

  // Reads until EAGAIN, EOF, or the read buffer cap. EOF is not an error:
  // it is recorded (peer_eof) and any buffered requests still get answers.
  IoStatus OnReadable();

  // Decodes complete frames from the read buffer and hands each to
  // `handler`, stopping at the in-flight cap. Counts each decoded frame in
  // `counters`. kMalformed means the stream is corrupt — close.
  ParseStatus ParseAndSubmit(const FrameHandler& handler,
                             IngressCounters* counters)
      STSM_EXCLUDES(mutex_);

  // Moves finished responses out of the completion queue and encodes them
  // into the write buffer (releasing their in-flight slots).
  void DrainCompletions(IngressCounters* counters) STSM_EXCLUDES(mutex_);

  // Writes buffered bytes until EAGAIN or empty.
  IoStatus Flush();

  Interest Wanted() STSM_EXCLUDES(mutex_);

  bool peer_eof() const { return peer_eof_; }
  bool has_pending_write() const {
    return write_offset_ < write_buffer_.size();
  }
  // True when nothing is owed to the peer: no request in flight, no
  // completion queued, no byte unflushed. peer_eof + Idle = close.
  bool Idle() STSM_EXCLUDES(mutex_);

  // ---- any thread ----------------------------------------------------------

  // Queues a finished response for the loop to encode; no-op once the
  // connection is closed. The caller wakes the loop afterwards.
  void PushCompletion(uint64_t id, ForecastResponse response)
      STSM_EXCLUDES(mutex_);

  // Tears down the cross-thread side: subsequent PushCompletion calls drop
  // their responses. Called by the listener before destroying the map entry
  // so that late worker callbacks (which hold a shared_ptr to this object)
  // become harmless.
  void MarkClosed() STSM_EXCLUDES(mutex_);

 private:
  size_t inflight() STSM_EXCLUDES(mutex_);

  const int fd_;
  const int max_inflight_;
  const size_t max_write_buffer_bytes_;

  // Loop-thread state (unguarded by design; see file comment).
  std::vector<uint8_t> read_buffer_;
  std::vector<uint8_t> write_buffer_;
  size_t write_offset_ = 0;
  bool peer_eof_ = false;

  struct Completion {
    uint64_t id = 0;
    ForecastResponse response;
  };

  Mutex mutex_;
  std::vector<Completion> completions_ STSM_GUARDED_BY(mutex_);
  size_t inflight_ STSM_GUARDED_BY(mutex_) = 0;
  bool closed_ STSM_GUARDED_BY(mutex_) = false;
};

}  // namespace net
}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_NET_CONNECTION_H_
