// Epoll-based TCP ingress for the forecast service.
//
// One loop thread multiplexes the listen socket, an eventfd waker, and every
// accepted connection (all non-blocking, level-triggered). Decoded requests
// are handed to a SubmitFn — in production a lambda over
// ShardedRegistry::SubmitAsync — whose completion callback runs on a server
// worker thread: it queues the response on the owning Connection and kicks
// the waker, and the loop encodes + writes it on the next pass. The loop
// never blocks on a forecast and a worker never touches a socket.
//
// Lifetime of late completions: every response callback captures a
// shared_ptr to its Connection and to the Waker, so a forecast finishing
// after the connection (or the whole listener) is torn down lands in
// MarkClosed()'d no-ops against still-live objects, in any teardown order.

#ifndef STSM_SERVE_NET_LISTENER_H_
#define STSM_SERVE_NET_LISTENER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "serve/net/connection.h"
#include "serve/types.h"

namespace stsm {
namespace serve {
namespace net {

struct ListenerConfig {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; the chosen one is readable via port() after
  // Start succeeds.
  uint16_t port = 0;
  // Per-connection bound on decoded-but-unanswered requests; parsing (and
  // then reading) pauses at the cap.
  int max_inflight_per_connection = 64;
  // Per-connection bound on un-flushed response bytes; reading pauses while
  // the peer lets responses back up past it.
  size_t max_write_buffer_bytes = 4u << 20;
};

// Point-in-time snapshot of IngressCounters.
struct ListenerStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t malformed = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t read_pauses = 0;
};

class Listener {
 public:
  // Request sink: forwards a validated-by-decode request plus the callback
  // that must eventually receive its response (from any thread).
  using SubmitFn =
      std::function<void(ForecastRequest, std::function<void(ForecastResponse)>)>;

  Listener(SubmitFn submit, ListenerConfig config);
  ~Listener();  // Stops the loop and closes every socket.

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds, listens, and starts the loop thread. False (with *error set) on
  // any socket failure; the listener is then inert and safe to destroy.
  bool Start(std::string* error);

  // Stops the loop thread and closes all connections. Idempotent; requests
  // already handed to the submit fn still complete (their completions are
  // dropped by MarkClosed).
  void Stop();

  // Bound port; valid after Start() returns true.
  uint16_t port() const { return port_; }

  ListenerStats stats() const;

 private:
  struct ConnState {
    std::shared_ptr<Connection> conn;
    uint32_t epoll_mask = 0;
    bool paused = false;  // For the read_pauses transition counter.
  };

  void LoopMain();
  void AcceptAll();
  // Runs the full drain -> read -> parse -> flush pass on one connection;
  // returns false when the connection must be closed and removed.
  bool ServiceConnection(ConnState* state);
  void CloseConnection(int fd);
  void CloseAll();

  const SubmitFn submit_;
  const ListenerConfig config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  std::shared_ptr<Waker> waker_;
  std::thread loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool stopped_ = false;

  // Loop-thread only (constructed before the thread starts, destroyed after
  // it joins).
  std::unordered_map<int, ConnState> connections_;

  mutable IngressCounters counters_;
};

}  // namespace net
}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_NET_LISTENER_H_
