#include "serve/net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

namespace stsm {
namespace serve {
namespace net {
namespace {

constexpr int kListenBacklog = 128;
constexpr int kMaxEpollEvents = 64;

bool FailErrno(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
  return false;
}

}  // namespace

Listener::Listener(SubmitFn submit, ListenerConfig config)
    : submit_(std::move(submit)),
      config_(std::move(config)),
      waker_(std::make_shared<Waker>()) {}

Listener::~Listener() { Stop(); }

bool Listener::Start(std::string* error) {
  if (started_) return FailErrno(error, "listener already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return FailErrno(error, "socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return FailErrno(error, "inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, kListenBacklog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return FailErrno(error, "bind/listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return FailErrno(error, "getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return FailErrno(error, "epoll_create1");
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = waker_->fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, waker_->fd(), &ev);

  started_ = true;
  loop_ = std::thread([this] { LoopMain(); });
  return true;
}

void Listener::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  waker_->Wake();
  loop_.join();
  CloseAll();
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Listener::LoopMain() {
  epoll_event events[kMaxEpollEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll itself broke; Stop() still joins cleanly.
    }
    if (stop_.load(std::memory_order_acquire)) return;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptAll();
      } else if (fd == waker_->fd()) {
        waker_->Drain();
      }
    }
    // Service every connection each pass: a completion wake names no fd, a
    // drained completion can unblock parsing of already-buffered bytes, and
    // connection counts here are small enough that a full sweep is cheaper
    // than tracking which connection each event was for.
    std::vector<int> to_close;
    for (auto& [fd, state] : connections_) {
      if (!ServiceConnection(&state)) to_close.push_back(fd);
    }
    for (int fd : to_close) CloseConnection(fd);
  }
}

void Listener::AcceptAll() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a transient accept failure: retry on
                         // the next readiness event either way.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnState state;
    state.conn = std::make_shared<Connection>(
        fd, config_.max_inflight_per_connection,
        config_.max_write_buffer_bytes);
    state.epoll_mask = EPOLLIN;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    connections_.emplace(fd, std::move(state));
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Listener::ServiceConnection(ConnState* state) {
  const std::shared_ptr<Connection> conn = state->conn;
  conn->DrainCompletions(&counters_);
  if (conn->OnReadable() == Connection::IoStatus::kError) return false;

  const Connection::FrameHandler handler = [this, conn](RequestFrame frame) {
    ForecastRequest request = std::move(frame.request);
    if (frame.deadline_ms > 0) {
      request.deadline =
          Clock::now() + std::chrono::milliseconds(frame.deadline_ms);
    }
    const uint64_t id = frame.id;
    const std::shared_ptr<Waker> waker = waker_;
    submit_(std::move(request),
            [conn, waker, id](ForecastResponse response) {
              conn->PushCompletion(id, std::move(response));
              waker->Wake();
            });
  };
  if (conn->ParseAndSubmit(handler, &counters_) ==
      Connection::ParseStatus::kMalformed) {
    return false;
  }
  // Error and rejection paths answer synchronously on this thread — pick
  // those completions up now instead of waiting for the waker round-trip.
  conn->DrainCompletions(&counters_);
  if (conn->Flush() == Connection::IoStatus::kError) return false;
  if (conn->peer_eof() && conn->Idle()) return false;

  const Connection::Interest want = conn->Wanted();
  const uint32_t mask = (want.read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
                        (want.write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  if (mask != state->epoll_mask) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = mask;
    ev.data.fd = conn->fd();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
    state->epoll_mask = mask;
  }
  const bool paused = !want.read && !conn->peer_eof();
  if (paused && !state->paused) {
    counters_.read_pauses.fetch_add(1, std::memory_order_relaxed);
  }
  state->paused = paused;
  return true;
}

void Listener::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second.conn->MarkClosed();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(it);  // ~Connection closes the fd.
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
}

void Listener::CloseAll() {
  for (auto& [fd, state] : connections_) {
    state.conn->MarkClosed();
    counters_.closed.fetch_add(1, std::memory_order_relaxed);
  }
  connections_.clear();
}

ListenerStats Listener::stats() const {
  ListenerStats stats;
  stats.accepted = counters_.accepted.load(std::memory_order_relaxed);
  stats.closed = counters_.closed.load(std::memory_order_relaxed);
  stats.malformed = counters_.malformed.load(std::memory_order_relaxed);
  stats.frames_in = counters_.frames_in.load(std::memory_order_relaxed);
  stats.frames_out = counters_.frames_out.load(std::memory_order_relaxed);
  stats.read_pauses = counters_.read_pauses.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace net
}  // namespace serve
}  // namespace stsm
