#include "serve/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace stsm {
namespace serve {
namespace net {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool FailErrno(std::string* error, const char* what) {
  return Fail(error, std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

NetClient::~NetClient() { Close(); }

bool NetClient::Connect(const std::string& host, uint16_t port,
                        std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return FailErrno(error, "socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Fail(error, "bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return FailErrno(error, "connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool NetClient::SendRequest(const RequestFrame& frame, std::string* error) {
  std::vector<uint8_t> bytes;
  EncodeRequest(frame, &bytes);
  return SendBytes(bytes.data(), bytes.size(), error);
}

bool NetClient::SendBytes(const void* data, size_t size, std::string* error) {
  if (fd_ < 0) return Fail(error, "not connected");
  const uint8_t* at = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, at, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      at += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return FailErrno(error, "send");
  }
  return true;
}

bool NetClient::ReadResponse(ResponseFrame* out, std::string* error) {
  if (fd_ < 0) return Fail(error, "not connected");
  while (true) {
    FrameHeader header;
    std::string decode_error;
    const DecodeResult head =
        DecodeHeader(buffer_.data(), buffer_.size(), &header, &decode_error);
    if (head == DecodeResult::kMalformed) {
      return Fail(error, "malformed frame from server: " + decode_error);
    }
    if (head == DecodeResult::kOk) {
      if (header.type != FrameType::kResponse) {
        return Fail(error, "unexpected frame type from server");
      }
      if (buffer_.size() >= kHeaderBytes + header.payload_bytes) {
        if (!DecodeResponsePayload(buffer_.data() + kHeaderBytes,
                                   header.payload_bytes, out,
                                   &decode_error)) {
          return Fail(error, "malformed response payload: " + decode_error);
        }
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<long>(
                                            kHeaderBytes +
                                            header.payload_bytes));
        return true;
      }
    }
    uint8_t chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.insert(buffer_.end(), chunk, chunk + n);
      continue;
    }
    if (n == 0) return Fail(error, "connection closed by server");
    if (errno == EINTR) continue;
    return FailErrno(error, "recv");
  }
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace net
}  // namespace serve
}  // namespace stsm
