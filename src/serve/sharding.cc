#include "serve/sharding.h"

#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace stsm {
namespace serve {
namespace {

// FNV-1a 64-bit over the model name. Deterministic across processes (the
// bench and its CI checks rely on stable name -> shard assignment).
uint64_t HashName(const std::string& name) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

const char* InternProfName(const std::string& name) {
  static Mutex mutex;
  // Leaked on purpose: prof collectors hold these pointers until process
  // exit, and the set of distinct names is tiny (3 per shard).
  static auto* interned =
      new std::unordered_map<std::string, std::unique_ptr<std::string>>();
  MutexLock lock(mutex);
  auto it = interned->find(name);
  if (it == interned->end()) {
    it = interned->emplace(name, std::make_unique<std::string>(name)).first;
  }
  return it->second->c_str();
}

ShardedRegistry::ShardedRegistry(const ShardedConfig& config)
    : shard_config_(config.server) {
  STSM_CHECK_GE(config.num_shards, 1)
      << "— ShardedConfig.num_shards must be positive";
  shards_.reserve(config.num_shards);
  for (int k = 0; k < config.num_shards; ++k) {
    ServerConfig shard_server = config.server;
    const std::string prefix = "serve.cache.shard" + std::to_string(k);
    shard_server.cache_counters.hit = InternProfName(prefix + ".hit");
    shard_server.cache_counters.miss = InternProfName(prefix + ".miss");
    shard_server.cache_counters.evict = InternProfName(prefix + ".evict");
    shards_.push_back(std::make_unique<Shard>(shard_server));
  }
}

ShardedRegistry::~ShardedRegistry() { Stop(); }

int ShardedRegistry::ShardFor(const std::string& model) const {
  return static_cast<int>(HashName(model) % shards_.size());
}

LoadResult ShardedRegistry::Load(const ModelSpec& spec) {
  return shards_[ShardFor(spec.name)]->registry.Load(spec);
}

LoadResult ShardedRegistry::Swap(const ModelSpec& spec) { return Load(spec); }

bool ShardedRegistry::Unload(const std::string& name) {
  return shards_[ShardFor(name)]->registry.Unload(name);
}

std::vector<std::string> ShardedRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    for (std::string& name : shard->registry.Names()) {
      names.push_back(std::move(name));
    }
  }
  return names;
}

void ShardedRegistry::SubmitAsync(ForecastRequest request,
                                  ForecastServer::ResponseCallback done) {
  Shard& shard = *shards_[ShardFor(request.model)];
  shard.server.SubmitAsync(std::move(request), std::move(done));
}

std::future<ForecastResponse> ShardedRegistry::Submit(
    ForecastRequest request) {
  Shard& shard = *shards_[ShardFor(request.model)];
  return shard.server.Submit(std::move(request));
}

ForecastResponse ShardedRegistry::SubmitAndWait(ForecastRequest request) {
  return Submit(std::move(request)).get();
}

void ShardedRegistry::Stop() {
  for (const auto& shard : shards_) shard->server.Stop();
}

ServerStats ShardedRegistry::shard_stats(int shard) const {
  STSM_CHECK_GE(shard, 0);
  STSM_CHECK_LT(shard, num_shards());
  return shards_[shard]->server.stats();
}

}  // namespace serve
}  // namespace stsm
