// LRU forecast cache: identical queries (same model, observation window,
// start step and region set) are answered without touching the model.
//
// The observation window is folded into the key as a 64-bit FNV-1a hash of
// its float payload rather than stored, keeping entries small; the other key
// components are compared exactly. Thread-safe behind one mutex — the cache
// sits on the request fast path, where a single uncontended lock is cheaper
// than a model forward by several orders of magnitude.

#ifndef STSM_SERVE_CACHE_H_
#define STSM_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "tensor/dtype.h"

namespace stsm {
namespace serve {

// FNV-1a over the raw bytes of the float window.
uint64_t HashWindow(const std::vector<float>& window);

struct CacheKey {
  std::string model;
  uint64_t window_hash = 0;
  int start_step = 0;
  std::vector<int> regions;

  bool operator==(const CacheKey& other) const {
    return window_hash == other.window_hash &&
           start_step == other.start_step && model == other.model &&
           regions == other.regions;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  // Resident forecast payload bytes right now (a gauge, not a counter):
  // sum over entries of element count x element size at the entry dtype.
  // bf16 entries hold half the bytes of fp32 ones; bench_serve_load
  // reports this per cache.
  uint64_t payload_bytes = 0;
};

// Prof counter names recorded by a cache instance. The defaults are the
// process-wide `serve.cache.*` counters; a sharded deployment passes
// per-shard names (`serve.cache.shard<k>.*`, interned by ShardedRegistry)
// so each shard's hit rate is attributable in the profile. Names must have
// static storage duration — the prof collectors cache cells by pointer.
struct CacheProfNames {
  const char* hit = "serve.cache.hit";
  const char* miss = "serve.cache.miss";
  const char* evict = "serve.cache.evict";
};

// Fixed-capacity LRU map from CacheKey to a [horizon x regions] forecast.
//
// entry_dtype selects the resident representation: kF32 stores forecasts
// verbatim; kBf16 rounds them (RNE) on Insert and widens on Lookup, halving
// the cache's payload bytes. The lookup API stays fp32 either way — callers
// never see the narrow form. bf16 entries round the *served* values, which
// is within the same Table 4 tolerance budget as bf16 weights (DESIGN.md
// §13); the default is fp32 so existing deployments are byte-identical.
class ForecastCache {
 public:
  explicit ForecastCache(size_t capacity, CacheProfNames counters = {},
                         DType entry_dtype = DType::kF32);

  // Copies the cached forecast into `out` (widening bf16 entries) and
  // promotes the entry to most-recently-used. Counts a hit or a miss
  // either way.
  bool Lookup(const CacheKey& key, std::vector<float>* out)
      STSM_EXCLUDES(mutex_);

  // Inserts (or refreshes) an entry, evicting the least-recently-used one
  // when at capacity. A capacity of zero disables the cache.
  void Insert(const CacheKey& key, std::vector<float> forecast)
      STSM_EXCLUDES(mutex_);

  size_t size() const STSM_EXCLUDES(mutex_);
  CacheStats stats() const STSM_EXCLUDES(mutex_);

 private:
  // Exactly one of the payload vectors is populated, per entry_dtype_.
  struct Entry {
    CacheKey key;
    std::vector<float> forecast;
    std::vector<uint16_t> forecast_bf16;

    uint64_t payload_bytes() const {
      return forecast.size() * sizeof(float) +
             forecast_bf16.size() * sizeof(uint16_t);
    }
  };

  const size_t capacity_;
  const CacheProfNames counters_;
  const DType entry_dtype_;
  mutable Mutex mutex_;
  // Front = most recently used. `index_` iterators stay valid across the
  // LRU splices (std::list), so promote-then-read is safe under the lock.
  std::list<Entry> entries_ STSM_GUARDED_BY(mutex_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_ STSM_GUARDED_BY(mutex_);
  CacheStats stats_ STSM_GUARDED_BY(mutex_);
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_CACHE_H_
