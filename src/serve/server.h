// ForecastServer: the concurrent request path of stsm::serve.
//
//   Submit() ── validate ── cache lookup ──> bounded queue ──> workers
//                  │             │                               │
//               kError        kOk (hit)          micro-batch drain, one
//              (immediate)   (immediate)         batched no-grad forward
//                                                       │
//                                  deadline missed / unhealthy model:
//                                  historical-average fallback, kDegraded
//
// Backpressure: when the queue is full, Submit answers kRejected at once
// instead of queueing unbounded latency. Each worker pops the oldest
// request plus up to batch_max-1 later requests for the SAME model (their
// windows stack into one [B, T, N, 1] forward; per-request time features
// may differ, so start steps need not match). Requests whose deadline has
// passed by pickup time — or whose model failed to load — are answered by
// the per-node mean of their own observation window, tagged kDegraded.

#ifndef STSM_SERVE_SERVER_H_
#define STSM_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "serve/cache.h"
#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/types.h"

namespace stsm {
namespace serve {

// Validated at ForecastServer construction: num_workers, queue_capacity and
// batch_max must be >= 1 and cache_capacity >= 0, or construction aborts
// with a diagnostic instead of hanging (zero workers) or exhibiting UB.
struct ServerConfig {
  int num_workers = 2;
  int queue_capacity = 64;
  // Upper bound on requests fused into one batched forward.
  int batch_max = 8;
  // LRU entries; 0 disables the forecast cache.
  int cache_capacity = 128;
  // Applied to requests that arrive without a deadline; zero = unlimited.
  std::chrono::milliseconds default_deadline{0};
  // Prof counter names for this server's forecast cache; a sharded
  // front-end injects per-shard names (see cache.h).
  CacheProfNames cache_counters{};
  // Resident representation of cached forecasts. kBf16 halves the cache's
  // payload bytes at the cost of RNE-rounding the cached values; lookups
  // still return fp32 (see ForecastCache). Deployments serving bf16 weights
  // typically set this to match — the rounding is within the same Table 4
  // tolerance budget.
  DType cache_dtype = DType::kF32;
};

// Point-in-time counters (monotonic since construction).
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t ok = 0;          // Model-served responses (excludes cache hits).
  uint64_t cache_hits = 0;
  uint64_t degraded = 0;
  uint64_t rejected = 0;
  uint64_t errors = 0;
  uint64_t batches = 0;     // Batched forwards executed.
  // batch_size_counts[b] = number of batches of size b (index 0 unused).
  std::vector<uint64_t> batch_size_counts;
  CacheStats cache;
};

class ForecastServer {
 public:
  // `registry` must outlive the server.
  ForecastServer(const ModelRegistry* registry, const ServerConfig& config);
  ~ForecastServer();

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  // Invoked exactly once per accepted request, either inline from the
  // submitting thread (validation error, cache hit, queue-full rejection)
  // or from a worker thread. Must not block: the network event loop's
  // completions ride on it.
  using ResponseCallback = std::function<void(ForecastResponse)>;

  // Callback entry point used by the network ingress: `done` fires when the
  // response is ready, on whichever thread produced it.
  void SubmitAsync(ForecastRequest request, ResponseCallback done);

  // Asynchronous entry point. The future is always fulfilled — with
  // kError/kRejected immediately, with a cache hit immediately, or by a
  // worker thread otherwise.
  std::future<ForecastResponse> Submit(ForecastRequest request);

  // Blocking convenience wrapper.
  ForecastResponse SubmitAndWait(ForecastRequest request);

  // Drains the queue, then stops the workers. Idempotent and safe to call
  // from any thread (concurrent calls are serialised; the losers return
  // after the workers have been joined); also run by the destructor.
  // Accepted requests are answered before workers exit.
  void Stop() STSM_EXCLUDES(stop_mutex_);

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  struct Pending {
    ForecastRequest request;
    Clock::time_point enqueue_time;
    ResponseCallback done;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<Pending>* batch);
  // Fulfills one pending request, stamping latency and recording stats.
  void Respond(Pending* pending, ForecastResponse response);
  // Historical-average fallback: per-region mean of the request's own raw
  // window, repeated across the horizon.
  static ForecastResponse Fallback(const ForecastRequest& request,
                                   int num_nodes, int horizon,
                                   const std::string& reason);

  const ModelRegistry* registry_;
  const ServerConfig config_;
  ForecastCache cache_;
  BoundedQueue<Pending> queue_;
  // Shutdown state: workers_ is populated once in the constructor and
  // consumed exactly once by the first Stop(); the mutex makes concurrent
  // Stop() calls (explicit + destructor) join each thread only once.
  Mutex stop_mutex_;
  std::vector<std::thread> workers_ STSM_GUARDED_BY(stop_mutex_);
  bool stopped_ STSM_GUARDED_BY(stop_mutex_) = false;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> batches_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> batch_size_counts_;
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_SERVER_H_
