#include "serve/registry.h"

#include <utility>

#include "common/check.h"
#include "common/prof.h"
#include "common/rng.h"
#include "graph/adjacency.h"
#include "graph/geo.h"
#include "nn/precision.h"
#include "nn/serialize.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "timeseries/pseudo_observations.h"
#include "timeseries/temporal_adjacency.h"

namespace stsm {
namespace serve {

ModelSpec BuildModelSpec(const std::string& name,
                         const SpatioTemporalDataset& dataset,
                         const SpaceSplit& split, const StsmConfig& config,
                         const std::string& checkpoint_path) {
  STSM_PROF_SCOPE("serve.build_spec");
  const int n = dataset.num_nodes();
  const std::vector<int> observed = split.Observed();
  const std::vector<int>& unobserved = split.test;
  STSM_CHECK(!observed.empty());
  STSM_CHECK(!unobserved.empty());

  ModelSpec spec;
  spec.name = name;
  spec.config = config;
  spec.num_nodes = n;
  spec.steps_per_day = dataset.steps_per_day;
  spec.checkpoint_path = checkpoint_path;

  // Normaliser: observed columns of the training period, as in training.
  const TimeSplit time_split = SplitTime(dataset.num_steps(), 0.7);
  spec.normalizer.Fit(dataset.series, observed, time_split.train_steps);

  const std::vector<double> distances = PairwiseDistances(dataset.coords);

  // Spatial adjacency (Eq. 2; unit diagonal, so no extra self-loops).
  // Sparse mode assembles CSR directly — the dense N x N kernel is never
  // materialised, which is the point for city-scale node counts.
  if (config.sparse_adjacency) {
    spec.adj_spatial = Adjacency(NormalizeSymmetric(
        GaussianThresholdAdjacencyCsr(distances, n, config.epsilon_s,
                                      /*sigma_override=*/0.0,
                                      config.binary_spatial_kernel),
        /*add_self_loops=*/false));
  } else {
    spec.adj_spatial = Adjacency(NormalizeSymmetric(
        GaussianThresholdAdjacency(distances, n, config.epsilon_s,
                                   /*sigma_override=*/0.0,
                                   config.binary_spatial_kernel),
        /*add_self_loops=*/false));
  }

  // Temporal adjacency over the full graph: unobserved columns are filled
  // with pseudo-observations first (they have no real history), matching
  // the offline test path.
  SeriesMatrix filled = dataset.series;
  spec.normalizer.TransformInPlace(&filled);
  FillPseudoObservations(&filled, distances, unobserved, observed,
                         config.pseudo_neighbors);
  TemporalAdjacencyOptions dtw_options;
  dtw_options.q_kk = config.q_kk;
  dtw_options.q_ku = config.q_ku;
  dtw_options.steps_per_day = dataset.steps_per_day;
  dtw_options.dtw_band = config.dtw_band;
  const Tensor dtw = NormalizeRow(
      TemporalSimilarityAdjacency(filled, observed, unobserved, dtw_options),
      /*add_self_loops=*/true);
  spec.adj_temporal = config.sparse_adjacency
                          ? Adjacency(SparseCsr::FromDense(dtw))
                          : Adjacency(dtw);

  // Reduced-precision serving stores the adjacency values at the serving
  // dtype too (DESIGN.md §13); the GEMM/SpMM kernels widen per element, so
  // propagation math still accumulates in fp32.
  if (config.serve_dtype != DType::kF32) {
    spec.adj_spatial = spec.adj_spatial.Cast(config.serve_dtype);
    spec.adj_temporal = spec.adj_temporal.Cast(config.serve_dtype);
  }
  return spec;
}

ServedModel::ServedModel(ModelSpec spec) : spec_(std::move(spec)) {}

std::shared_ptr<ServedModel> ServedModel::Load(const ModelSpec& spec) {
  STSM_PROF_SCOPE("serve.model_load");
  auto served = std::shared_ptr<ServedModel>(new ServedModel(spec));
  Rng init_rng(spec.config.seed + 13);  // Same init stream as training.
  auto model = std::make_unique<StModel>(spec.config, &init_rng);
  if (LoadModule(model.get(), spec.checkpoint_path)) {
    model->SetTraining(false);  // Inference mode: dropout becomes identity.
    if (spec.config.serve_dtype != DType::kF32) {
      // Round the restored fp32 weights to the serving dtype and freeze the
      // module; from here on a training step is a checked error.
      CastModuleForServing(model.get(), spec.config.serve_dtype);
    }
    served->weight_bytes_ = ModuleWeightBytes(*model);
    served->model_ = std::move(model);
  }
  return served;
}

Tensor ServedModel::Predict(const Tensor& inputs,
                            const Tensor& time_features) const {
  STSM_CHECK(healthy()) << "Predict on unhealthy model " << spec_.name;
  NoGradGuard no_grad;  // No autograd graph, no grad-buffer allocations.
  // The model's prediction head ends in zero-copy view ops (transpose /
  // unsqueeze), so compact here: the serving layer reads predictions.data()
  // as a flat row-major buffer.
  return Contiguous(
      model_
          ->Forward(inputs, time_features, spec_.adj_spatial,
                    spec_.adj_temporal)
          .predictions);
}

LoadResult ModelRegistry::Load(const ModelSpec& spec) {
  // Checkpoint restore happens outside the lock: a hot-swap must not stall
  // concurrent Find calls behind model construction.
  std::shared_ptr<const ServedModel> served = ServedModel::Load(spec);
  LoadResult result;
  result.healthy = served->healthy();
  std::shared_ptr<const ServedModel> replaced;  // Torn down after unlock.
  {
    MutexLock lock(mutex_);
    std::shared_ptr<const ServedModel>& slot = models_[spec.name];
    if (slot != nullptr) {
      result.previous = slot->healthy() ? EntryHealth::kHealthy
                                        : EntryHealth::kUnhealthy;
    }
    replaced = std::move(slot);
    slot = std::move(served);
  }
  return result;
}

bool ModelRegistry::Unload(const std::string& name) {
  std::shared_ptr<const ServedModel> dropped;  // Torn down after unlock.
  {
    MutexLock lock(mutex_);
    auto it = models_.find(name);
    if (it == models_.end()) return false;
    dropped = std::move(it->second);
    models_.erase(it);
  }
  return true;
}

std::shared_ptr<const ServedModel> ModelRegistry::Find(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, model] : models_) names.push_back(name);
  return names;
}

}  // namespace serve
}  // namespace stsm
