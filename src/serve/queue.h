// Bounded MPMC queue with batched, predicate-guided pops — the spine of the
// serving layer's micro-batching.
//
// Producers TryPush and get an immediate `false` when the queue is full
// (backpressure: the server converts that into a kRejected response instead
// of letting latency grow without bound). Consumers block in PopBatch, which
// takes the oldest item and then opportunistically extracts later queued
// items that are batch-compatible with it (same model, in the server's
// case), preserving FIFO order among the items it leaves behind.
//
// Header-only template: the element type is the server's move-only pending
// request (it carries a std::promise). All queue state is guarded by one
// mutex; the thread-safety annotations make that machine-checked under
// clang.

#ifndef STSM_SERVE_QUEUE_H_
#define STSM_SERVE_QUEUE_H_

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace stsm {
namespace serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking push. Returns false when the queue is full or closed.
  bool TryPush(T item) STSM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.NotifyOne();
    return true;
  }

  // Blocks until an item is available or the queue is closed. Pops the
  // oldest item into `out`, then scans the remaining items in FIFO order
  // and also pops those for which compatible(out->front(), item) holds,
  // stopping at `max_batch` items total. Returns false only when the queue
  // is closed AND empty — a closed queue keeps draining, so no accepted
  // item is ever stranded.
  template <typename Compatible>
  bool PopBatch(std::vector<T>* out, size_t max_batch, Compatible compatible)
      STSM_EXCLUDES(mutex_) {
    out->clear();
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) ready_.Wait(mutex_);
    if (items_.empty()) return false;
    out->push_back(std::move(items_.front()));
    items_.pop_front();
    for (auto it = items_.begin();
         it != items_.end() && out->size() < max_batch;) {
      if (compatible(out->front(), *it)) {
        out->push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    return true;
  }

  // Wakes all blocked consumers; further pushes fail. Already-queued items
  // remain poppable.
  void Close() STSM_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  size_t size() const STSM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar ready_;
  std::deque<T> items_ STSM_GUARDED_BY(mutex_);
  bool closed_ STSM_GUARDED_BY(mutex_) = false;
};

}  // namespace serve
}  // namespace stsm

#endif  // STSM_SERVE_QUEUE_H_
