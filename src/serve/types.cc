#include "serve/types.h"

namespace stsm {
namespace serve {

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:       return "ok";
    case Status::kDegraded: return "degraded";
    case Status::kRejected: return "rejected";
    case Status::kError:    return "error";
  }
  return "unknown";
}

}  // namespace serve
}  // namespace stsm
