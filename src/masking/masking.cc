#include "masking/masking.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <set>

#include "common/check.h"
#include "graph/adjacency.h"

namespace stsm {
namespace {

// Masks sub-graphs chosen by `pick_root` until the target number of masked
// locations is reached. The final sub-graph is truncated (in shuffled node
// order) so both masking strategies land on exactly N_o * delta_m masked
// locations — keeping the training task's difficulty matched to the
// unobserved ratio regardless of sub-graph sizes.
std::vector<int> MaskToTarget(const MaskingContext& context,
                              const std::function<int(Rng*)>& pick_root,
                              Rng* rng) {
  const size_t observed = context.observed.size();
  // Never mask everything: keep at least a quarter of the observed set.
  const size_t target = std::min(
      std::max<size_t>(
          1, static_cast<size_t>(context.config.mask_ratio *
                                 static_cast<double>(observed))),
      observed - std::max<size_t>(2, observed / 4));

  std::set<int> masked;
  int attempts = 0;
  const int max_attempts = static_cast<int>(observed) * 40;
  while (masked.size() < target && attempts++ < max_attempts) {
    const int root = pick_root(rng);
    if (root < 0) break;
    std::vector<int> subgraph = context.subgraphs[root];
    // Shuffle so truncation keeps a random part of the sub-graph.
    for (int i = static_cast<int>(subgraph.size()) - 1; i > 0; --i) {
      std::swap(subgraph[i], subgraph[rng->UniformInt(i + 1)]);
    }
    for (int node : subgraph) {
      if (masked.size() >= target) break;
      masked.insert(node);
    }
  }
  return std::vector<int>(masked.begin(), masked.end());
}

}  // namespace

MaskingContext BuildMaskingContext(const Adjacency& a_sg,
                                   const std::vector<GeoPoint>& coords,
                                   const std::vector<NodeMetadata>& metadata,
                                   const std::vector<int>& observed,
                                   const std::vector<int>& unobserved,
                                   const MaskingConfig& config) {
  return BuildMaskingContext(a_sg, coords, metadata, observed,
                             std::vector<std::vector<int>>{unobserved},
                             config);
}

MaskingContext BuildMaskingContext(
    const Adjacency& a_sg, const std::vector<GeoPoint>& coords,
    const std::vector<NodeMetadata>& metadata,
    const std::vector<int>& observed,
    const std::vector<std::vector<int>>& regions,
    const MaskingConfig& config) {
  STSM_CHECK(!observed.empty());
  STSM_CHECK(!regions.empty());
  for (const auto& region : regions) STSM_CHECK(!region.empty());
  STSM_CHECK_EQ(coords.size(), metadata.size());
  STSM_CHECK(a_sg.defined());
  STSM_CHECK_EQ(a_sg.rows(), static_cast<int64_t>(coords.size()));

  MaskingContext context;
  context.observed = observed;
  context.config = config;

  const std::set<int> observed_set(observed.begin(), observed.end());
  // Only the neighbour structure matters; both representations yield the
  // same lists (the dense overload routes through CSR conversion).
  const auto neighbors = a_sg.is_sparse() ? NeighborLists(a_sg.sparse())
                                          : NeighborLists(a_sg.dense());

  // 1-hop sub-graphs restricted to observed locations.
  context.subgraphs.resize(observed.size());
  double total_size = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const int root = observed[i];
    std::vector<int>& subgraph = context.subgraphs[i];
    subgraph.push_back(root);
    for (int neighbor : neighbors[root]) {
      if (observed_set.count(neighbor)) subgraph.push_back(neighbor);
    }
    std::sort(subgraph.begin(), subgraph.end());
    total_size += static_cast<double>(subgraph.size());
  }
  context.average_subgraph_size =
      total_size / static_cast<double>(observed.size());

  // Standardise each embedding dimension across nodes before comparing:
  // raw POI counts / road attributes are all positive and on very different
  // scales, which would drive every cosine similarity towards 1 and destroy
  // the selectivity signal.
  std::vector<std::vector<float>> standardized(metadata.size());
  {
    std::vector<double> mean(kMetadataEmbeddingDim, 0.0);
    std::vector<double> var(kMetadataEmbeddingDim, 0.0);
    std::vector<std::vector<float>> raw(metadata.size());
    for (size_t n = 0; n < metadata.size(); ++n) {
      raw[n] = metadata[n].Embedding();
      for (int d = 0; d < kMetadataEmbeddingDim; ++d) mean[d] += raw[n][d];
    }
    for (double& m : mean) m /= static_cast<double>(metadata.size());
    for (size_t n = 0; n < metadata.size(); ++n) {
      for (int d = 0; d < kMetadataEmbeddingDim; ++d) {
        const double dev = raw[n][d] - mean[d];
        var[d] += dev * dev;
      }
    }
    for (double& v : var) {
      v = std::sqrt(v / static_cast<double>(metadata.size()));
      if (v < 1e-9) v = 1.0;  // Constant feature carries no signal.
    }
    for (size_t n = 0; n < metadata.size(); ++n) {
      standardized[n].resize(kMetadataEmbeddingDim);
      for (int d = 0; d < kMetadataEmbeddingDim; ++d) {
        standardized[n][d] = static_cast<float>((raw[n][d] - mean[d]) / var[d]);
      }
    }
  }
  auto mean_of = [&](const std::vector<int>& indices) {
    std::vector<float> result(kMetadataEmbeddingDim, 0.0f);
    for (int i : indices) {
      for (int d = 0; d < kMetadataEmbeddingDim; ++d) {
        result[d] += standardized[i][d];
      }
    }
    for (float& v : result) v /= static_cast<float>(indices.size());
    return result;
  };

  // Embedding and centroid of every unobserved region.
  std::vector<std::vector<float>> region_embeddings;
  std::vector<GeoPoint> region_centroids;
  for (const auto& region : regions) {
    region_embeddings.push_back(mean_of(region));
    region_centroids.push_back(Centroid(coords, region));
  }

  // Per-candidate similarity and proximity: each candidate scores against
  // its best-matching / nearest region.
  context.similarity.resize(observed.size());
  context.proximity.resize(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    const std::vector<float> subgraph_embedding =
        mean_of(context.subgraphs[i]);
    double best_similarity = -1.0;
    double best_proximity = 0.0;
    for (size_t r = 0; r < regions.size(); ++r) {
      // Cosine in [-1, 1]; shift to [0, 1] so Eq. 15 stays a probability.
      const double cosine =
          CosineSimilarity(subgraph_embedding, region_embeddings[r]);
      best_similarity = std::max(best_similarity, 0.5 * (cosine + 1.0));
      const double distance =
          Distance(coords[observed[i]], region_centroids[r]);
      best_proximity =
          std::max(best_proximity, 1.0 / std::max(distance, 1e-6));
    }
    context.similarity[i] = best_similarity;
    context.proximity[i] = best_proximity;
  }

  // Eq. 15: p_i = (s_i * dms / mean(s) + sp_i * dms / mean(sp)) / 2, with
  // the top-K filter zeroing non-candidates.
  const double delta_ms =
      config.mask_ratio / std::max(1.0, context.average_subgraph_size);
  const double mean_similarity =
      std::accumulate(context.similarity.begin(), context.similarity.end(),
                      0.0) /
      static_cast<double>(observed.size());
  const double mean_proximity =
      std::accumulate(context.proximity.begin(), context.proximity.end(),
                      0.0) /
      static_cast<double>(observed.size());

  // Rank by combined normalised score to apply the top-K filter.
  std::vector<double> score(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    score[i] = context.similarity[i] / std::max(mean_similarity, 1e-12) +
               context.proximity[i] / std::max(mean_proximity, 1e-12);
  }
  std::vector<size_t> order(observed.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return score[a] > score[b]; });
  std::vector<bool> in_top_k(observed.size(), false);
  const size_t k =
      std::min<size_t>(static_cast<size_t>(std::max(1, config.top_k)),
                       observed.size());
  for (size_t q = 0; q < k; ++q) in_top_k[order[q]] = true;

  context.probability.assign(observed.size(), 0.0);
  for (size_t i = 0; i < observed.size(); ++i) {
    if (!in_top_k[i]) continue;
    const double p =
        0.5 * (context.similarity[i] * delta_ms /
                   std::max(mean_similarity, 1e-12) +
               context.proximity[i] * delta_ms /
                   std::max(mean_proximity, 1e-12));
    context.probability[i] = std::clamp(p, 0.0, 1.0);
  }
  return context;
}

std::vector<int> DrawSelectiveMask(const MaskingContext& context, Rng* rng) {
  STSM_CHECK(rng != nullptr);
  // Draw roots from the Eq. 15 distribution: a Bernoulli acceptance over
  // uniformly proposed candidates reproduces "mask sub-graph i with
  // probability proportional to p_i" while MaskToTarget enforces the
  // delta_m masking ratio.
  const double max_probability = *std::max_element(
      context.probability.begin(), context.probability.end());
  STSM_CHECK_GT(max_probability, 0.0);
  auto pick_root = [&context, max_probability](Rng* r) -> int {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      const int candidate =
          r->UniformInt(static_cast<int>(context.observed.size()));
      const double acceptance =
          context.probability[candidate] / max_probability;
      if (acceptance > 0.0 && r->Bernoulli(acceptance)) return candidate;
    }
    return -1;
  };
  return MaskToTarget(context, pick_root, rng);
}

std::vector<int> DrawRandomMask(const MaskingContext& context, Rng* rng) {
  STSM_CHECK(rng != nullptr);
  auto pick_root = [&context](Rng* r) -> int {
    return r->UniformInt(static_cast<int>(context.observed.size()));
  };
  return MaskToTarget(context, pick_root, rng);
}

double MeanMaskSimilarity(const MaskingContext& context,
                          const std::vector<int>& masked) {
  STSM_CHECK(!masked.empty());
  // Index similarity by global node id.
  const std::set<int> masked_set(masked.begin(), masked.end());
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < context.observed.size(); ++i) {
    if (masked_set.count(context.observed[i])) {
      total += context.similarity[i];
      ++count;
    }
  }
  STSM_CHECK_GT(count, 0);
  return total / count;
}

}  // namespace stsm
