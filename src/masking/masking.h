// Sub-graph masking strategies.
//
// STSM trains by masking sub-regions of the observed graph and predicting
// their values, then transfers that capability to the truly unobserved
// region. The base model masks random 1-hop sub-graphs (Section 3.3); the
// full model masks selectively, preferring sub-graphs whose region/road
// features and spatial position resemble the unobserved region
// (Section 4.1, Eq. 15).

#ifndef STSM_MASKING_MASKING_H_
#define STSM_MASKING_MASKING_H_

#include <vector>

#include "common/rng.h"
#include "data/metadata.h"
#include "graph/geo.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace stsm {

struct MaskingConfig {
  double mask_ratio = 0.5;  // delta_m: fraction of observed nodes to mask.
  int top_k = 35;           // K: only the top-K similar sub-graphs may mask.
};

// Everything precomputed once per experiment for masking draws.
struct MaskingContext {
  // Global node ids of the observed locations (the candidates).
  std::vector<int> observed;
  // For each observed location: its 1-hop sub-graph (global ids, restricted
  // to observed locations, including the root).
  std::vector<std::vector<int>> subgraphs;
  // Per observed location: cosine similarity between its sub-graph embedding
  // and the unobserved-region embedding (s_i^sg).
  std::vector<double> similarity;
  // Per observed location: spatial proximity 1/dist to the unobserved
  // region's centroid (sp_i^sg).
  std::vector<double> proximity;
  // Per observed location: masking probability p_i of Eq. 15 (0 outside the
  // top-K).
  std::vector<double> probability;
  // Average sub-graph size delta_s.
  double average_subgraph_size = 1.0;
  MaskingConfig config;
};

// Builds the context. `a_sg` is the sub-graph adjacency built from Eq. 2
// with threshold epsilon_sg over ALL nodes (dense tensor or CSR — only its
// neighbour structure is read); sub-graphs are intersected with the observed
// set. `unobserved` defines the region of interest.
MaskingContext BuildMaskingContext(const Adjacency& a_sg,
                                   const std::vector<GeoPoint>& coords,
                                   const std::vector<NodeMetadata>& metadata,
                                   const std::vector<int>& observed,
                                   const std::vector<int>& unobserved,
                                   const MaskingConfig& config);

// Multi-region variant (the paper's future-work extension): each candidate
// scores against its most similar / nearest unobserved region, so masking
// prefers sub-graphs resembling ANY of the regions of interest.
// `regions` must be non-empty and each region non-empty.
MaskingContext BuildMaskingContext(
    const Adjacency& a_sg, const std::vector<GeoPoint>& coords,
    const std::vector<NodeMetadata>& metadata,
    const std::vector<int>& observed,
    const std::vector<std::vector<int>>& regions,
    const MaskingConfig& config);

// Selective masking draw (Section 4.1): Bernoulli draws with the Eq. 15
// probabilities; sub-graphs of the selected roots are masked. Guarantees at
// least one masked location and never masks every observed location.
// Returns sorted global node ids.
std::vector<int> DrawSelectiveMask(const MaskingContext& context, Rng* rng);

// Random masking draw (Section 3.3): repeatedly pick a random observed root
// and mask its sub-graph until mask_ratio of the observed set is masked.
std::vector<int> DrawRandomMask(const MaskingContext& context, Rng* rng);

// Mean similarity (s_i^sg) over the masked locations — the quantity the
// paper compares in Table 8 ("similarity gain" of selective over random).
double MeanMaskSimilarity(const MaskingContext& context,
                          const std::vector<int>& masked);

}  // namespace stsm

#endif  // STSM_MASKING_MASKING_H_
