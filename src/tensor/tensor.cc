#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/prof.h"

namespace stsm {

namespace {

thread_local bool g_grad_mode_enabled = true;

}  // namespace

bool GradModeEnabled() { return g_grad_mode_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode_enabled) {
  g_grad_mode_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_mode_enabled = previous_; }

void TensorImpl::EnsureGrad() {
  if (grad.empty()) grad.assign(data.size(), 0.0f);
}

// ---- Factories --------------------------------------------------------------

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(shape.numel(), value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  STSM_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(Shape({}), value, requires_grad);
}

Tensor Tensor::Uniform(const Shape& shape, float lo, float hi, Rng* rng,
                       bool requires_grad) {
  STSM_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (auto& v : values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::Normal(const Shape& shape, float mean, float stddev, Rng* rng,
                      bool requires_grad) {
  STSM_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (auto& v : values) v = static_cast<float>(rng->Normal(mean, stddev));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros(Shape({n, n}));
  float* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i * n + i] = 1.0f;
  return t;
}

// ---- Introspection ----------------------------------------------------------

const Shape& Tensor::shape() const {
  STSM_CHECK(defined());
  return impl_->shape;
}

float* Tensor::data() {
  STSM_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  STSM_CHECK(defined());
  return impl_->data.data();
}

float Tensor::item() const {
  STSM_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

namespace {

int64_t FlattenIndex(const Shape& shape, std::initializer_list<int64_t> index) {
  STSM_CHECK_EQ(static_cast<int>(index.size()), shape.ndim());
  const std::vector<int64_t> strides = shape.Strides();
  int64_t flat = 0;
  int d = 0;
  for (int64_t i : index) {
    STSM_CHECK_GE(i, 0);
    STSM_CHECK_LT(i, shape[d]);
    flat += i * strides[d];
    ++d;
  }
  return flat;
}

}  // namespace

float Tensor::at(std::initializer_list<int64_t> index) const {
  return data()[FlattenIndex(shape(), index)];
}

void Tensor::set(std::initializer_list<int64_t> index, float value) {
  data()[FlattenIndex(shape(), index)] = value;
}

// ---- Autograd ---------------------------------------------------------------

bool Tensor::requires_grad() const {
  STSM_CHECK(defined());
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  STSM_CHECK(defined());
  STSM_CHECK(impl_->parents.empty())
      << "set_requires_grad is only valid on leaf tensors";
  impl_->requires_grad = value;
  return *this;
}

float* Tensor::grad_data() {
  STSM_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad.data();
}

const float* Tensor::grad_data() const {
  STSM_CHECK(defined());
  const_cast<TensorImpl*>(impl_.get())->EnsureGrad();
  return impl_->grad.data();
}

Tensor Tensor::GradTensor() const {
  STSM_CHECK(defined());
  std::vector<float> grad_copy = impl_->grad;
  if (grad_copy.empty()) grad_copy.assign(impl_->data.size(), 0.0f);
  return FromVector(impl_->shape, std::move(grad_copy));
}

void Tensor::ZeroGrad() {
  STSM_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  STSM_PROF_SCOPE("autograd.backward");
  STSM_CHECK(defined());
  STSM_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";

  // Topological order over the tape (parents before children in `order`).
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      TensorImpl* parent = node->parents[next_parent].get();
      ++next_parent;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;

  // `order` has the root last; walk children-to-parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
}

Tensor Tensor::Detach() const {
  STSM_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // Copy: keeps detached values stable.
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << shape().ToString() << " [";
  const int64_t preview = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < preview; ++i) {
    if (i > 0) out << ", ";
    out << impl_->data[i];
  }
  if (numel() > preview) out << ", ...";
  out << "]";
  return out.str();
}

namespace internal {

bool ShouldRecord(const std::vector<std::shared_ptr<TensorImpl>>& inputs) {
  if (!GradModeEnabled()) return false;
  for (const auto& input : inputs) {
    if (input && input->requires_grad) return true;
  }
  return false;
}

std::shared_ptr<TensorImpl> MakeResult(
    const Shape& shape,
    const std::vector<std::shared_ptr<TensorImpl>>& inputs) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(shape.numel(), 0.0f);
  if (ShouldRecord(inputs)) {
    impl->requires_grad = true;
    impl->parents = inputs;
  }
  return impl;
}

}  // namespace internal

}  // namespace stsm
