#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/prof.h"

namespace stsm {

// ---- Factories --------------------------------------------------------------

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->strides = shape.Strides();
  impl->storage = Storage::New(shape.numel(), /*zero=*/true);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  if (value == 0.0f) return Zeros(shape, requires_grad);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->strides = shape.Strides();
  impl->storage = Storage::New(shape.numel(), /*zero=*/false);
  std::fill(impl->storage->data(), impl->storage->data() + shape.numel(),
            value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  STSM_CHECK_EQ(static_cast<int64_t>(values.size()), shape.numel());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->strides = shape.Strides();
  impl->storage = Storage::Adopt(std::move(values));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full(Shape({}), value, requires_grad);
}

Tensor Tensor::Uniform(const Shape& shape, float lo, float hi, Rng* rng,
                       bool requires_grad) {
  STSM_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (auto& v : values) v = static_cast<float>(rng->Uniform(lo, hi));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::Normal(const Shape& shape, float mean, float stddev, Rng* rng,
                      bool requires_grad) {
  STSM_CHECK(rng != nullptr);
  std::vector<float> values(shape.numel());
  for (auto& v : values) v = static_cast<float>(rng->Normal(mean, stddev));
  return FromVector(shape, std::move(values), requires_grad);
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros(Shape({n, n}));
  float* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i * n + i] = 1.0f;
  return t;
}

// ---- Introspection ----------------------------------------------------------

const Shape& Tensor::shape() const {
  STSM_CHECK(defined());
  return impl_->shape;
}

DType Tensor::dtype() const {
  STSM_CHECK(defined());
  return impl_->dtype();
}

float* Tensor::data() {
  STSM_CHECK(defined());
  return impl_->data();
}

const float* Tensor::data() const {
  STSM_CHECK(defined());
  return impl_->data();
}

bool Tensor::is_contiguous() const {
  STSM_CHECK(defined());
  return impl_->is_contiguous();
}

const std::vector<int64_t>& Tensor::strides() const {
  STSM_CHECK(defined());
  return impl_->strides;
}

float Tensor::item() const {
  STSM_CHECK_EQ(numel(), 1);
  return impl_->data()[0];
}

namespace {

// Physical element offset (relative to data()) of a bounds-checked
// multi-index under the impl's own strides.
int64_t StridedIndex(const TensorImpl& impl,
                     std::initializer_list<int64_t> index) {
  STSM_CHECK_EQ(static_cast<int>(index.size()), impl.shape.ndim());
  int64_t physical = 0;
  int d = 0;
  for (int64_t i : index) {
    STSM_CHECK_GE(i, 0);
    STSM_CHECK_LT(i, impl.shape[d]);
    physical += i * impl.strides[d];
    ++d;
  }
  return physical;
}

}  // namespace

float Tensor::at(std::initializer_list<int64_t> index) const {
  return data()[StridedIndex(*impl_, index)];
}

void Tensor::set(std::initializer_list<int64_t> index, float value) {
  data()[StridedIndex(*impl_, index)] = value;
}

// ---- Autograd ---------------------------------------------------------------

bool Tensor::requires_grad() const {
  STSM_CHECK(defined());
  return impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool value) {
  STSM_CHECK(defined());
  STSM_CHECK(impl_->is_leaf())
      << "set_requires_grad is only valid on leaf tensors";
  STSM_CHECK(!value || impl_->dtype() == DType::kF32)
      << "training is fp32-only: a bf16 tensor cannot require gradients";
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::has_grad() const {
  STSM_CHECK(defined());
  return impl_->has_grad();
}

float* Tensor::grad_data() {
  STSM_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad();
}

const float* Tensor::grad_data() const {
  STSM_CHECK(defined());
  // A const read must not allocate: before any gradient exists the caller
  // gets nullptr (see has_grad() / GradTensor()). Go through a const
  // reference so the null-safe const overload of TensorImpl::grad() is
  // picked (shared_ptr does not propagate constness to the pointee).
  const TensorImpl& impl = *impl_;
  return impl.grad();
}

Tensor Tensor::GradTensor() const {
  STSM_CHECK(defined());
  const int64_t n = numel();
  std::vector<float> grad_copy(static_cast<size_t>(n), 0.0f);
  if (impl_->has_grad()) {
    const float* g = impl_->grad();
    if (impl_->is_contiguous()) {
      std::copy(g, g + n, grad_copy.begin());
    } else {
      for (int64_t i = 0; i < n; ++i) grad_copy[i] = g[impl_->PhysicalIndex(i)];
    }
  }
  return FromVector(impl_->shape, std::move(grad_copy));
}

Tensor Tensor::GradView() {
  STSM_CHECK(defined());
  impl_->EnsureGrad();
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->strides = impl_->strides;
  impl->storage = impl_->storage->grad_storage();
  impl->offset = impl_->offset;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

void Tensor::ZeroGrad() {
  STSM_CHECK(defined());
  if (!impl_->has_grad()) return;
  // Only this tensor's window: views must not clobber siblings' gradients.
  float* g = impl_->grad();
  if (impl_->is_contiguous()) {
    std::fill(g, g + numel(), 0.0f);
  } else {
    const int64_t n = numel();
    for (int64_t i = 0; i < n; ++i) g[impl_->PhysicalIndex(i)] = 0.0f;
  }
}

void Tensor::Backward() {
  STSM_PROF_SCOPE("autograd.backward");
  STSM_CHECK(defined());
  STSM_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";

  // Topological order over the node graph (inputs before outputs in
  // `order`). The vector holds strong references: they are what keeps each
  // impl alive exactly until the walk has passed it.
  std::vector<std::shared_ptr<TensorImpl>> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<std::shared_ptr<TensorImpl>, size_t>> stack;
  stack.emplace_back(impl_, 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, next_input] = stack.back();
    const autograd::Node* fn = node->grad_fn.get();
    if (fn != nullptr) {
      STSM_CHECK(!fn->released())
          << "Backward() through an already-backward-ed graph: node"
          << fn->name()
          << "has released its saved activations. Each graph supports a "
             "single Backward() call.";
    }
    const size_t num_inputs = fn ? fn->inputs().size() : 0;
    if (next_input < num_inputs) {
      const std::shared_ptr<TensorImpl>& input = fn->inputs()[next_input];
      ++next_input;
      if (visited.insert(input.get()).second) stack.emplace_back(input, 0);
    } else {
      order.push_back(std::move(node));
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad()[0] += 1.0f;

  // `order` has the root last; walk outputs-to-inputs. After a node has
  // routed its gradient it releases its saved activations, and dropping our
  // reference frees the impl (and recycles its buffers) unless the caller
  // still holds a handle — peak memory tracks the walk frontier.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    std::shared_ptr<TensorImpl>& node = *it;
    if (node->grad_fn != nullptr) {
      node->grad_fn->Run(node.get());
      STSM_PROF_COUNT("autograd.nodes_run", 1);
    }
    node.reset();
  }
}

Tensor Tensor::Detach() const {
  STSM_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->strides = impl_->strides;
  impl->storage = impl_->storage;  // Zero-copy alias of the same buffer.
  impl->offset = impl_->offset;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::Clone() const {
  STSM_CHECK(defined());
  const int64_t n = numel();
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->strides = impl_->shape.Strides();  // A clone is always compact.
  impl->storage = Storage::New(n, impl_->dtype(), /*zero=*/false);
  if (impl_->dtype() == DType::kBf16) {
    // bf16 clone copies bit patterns; no widening round trip.
    uint16_t* dst = impl->storage->bf16_data();
    const uint16_t* src = impl_->bf16_data();
    if (impl_->is_contiguous()) {
      std::memcpy(dst, src, sizeof(uint16_t) * static_cast<size_t>(n));
    } else {
      for (int64_t i = 0; i < n; ++i) dst[i] = src[impl_->PhysicalIndex(i)];
    }
  } else if (impl_->is_contiguous()) {
    std::memcpy(impl->storage->data(), impl_->data(),
                sizeof(float) * static_cast<size_t>(n));
  } else {
    // Gather the logical contents of a strided view into row-major order.
    float* dst = impl->storage->data();
    const float* src = impl_->data();
    for (int64_t i = 0; i < n; ++i) dst[i] = src[impl_->PhysicalIndex(i)];
  }
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

bool Tensor::is_view() const {
  STSM_CHECK(defined());
  return impl_->offset != 0 || impl_->storage->size() != numel() ||
         !impl_->is_contiguous();
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << shape().ToString();
  if (impl_->dtype() != DType::kF32) out << " " << DTypeName(impl_->dtype());
  out << " [";
  const int64_t preview = std::min<int64_t>(numel(), 8);
  const bool contig = impl_->is_contiguous();
  const bool bf16 = impl_->dtype() == DType::kBf16;
  const float* d = bf16 ? nullptr : impl_->data();
  const uint16_t* h = bf16 ? impl_->bf16_data() : nullptr;
  for (int64_t i = 0; i < preview; ++i) {
    if (i > 0) out << ", ";
    const int64_t p = contig ? i : impl_->PhysicalIndex(i);
    out << (bf16 ? F32FromBf16(h[p]) : d[p]);
  }
  if (numel() > preview) out << ", ...";
  out << "]";
  return out.str();
}

namespace internal {

bool ShouldRecord(const std::vector<std::shared_ptr<TensorImpl>>& inputs) {
  if (!GradModeEnabled()) return false;
  for (const auto& input : inputs) {
    if (input && input->requires_grad) return true;
  }
  return false;
}

std::shared_ptr<TensorImpl> MakeResult(
    const Shape& shape, const std::vector<std::shared_ptr<TensorImpl>>& inputs,
    bool zero) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->strides = shape.Strides();
  impl->storage = Storage::New(shape.numel(), zero);
  if (ShouldRecord(inputs)) {
    // Training is fp32-only: recording an op over a bf16 operand would bake
    // rounded weights into the graph. Serving runs under NoGradGuard, which
    // is what legitimises bf16 operands in the first place.
    for (const auto& input : inputs) {
      STSM_CHECK(input == nullptr || input->dtype() == DType::kF32)
          << "autograd node creation on a bf16 tensor; wrap the forward in "
             "NoGradGuard (serving) or keep the operand fp32 (training)";
    }
    impl->requires_grad = true;
  }
  return impl;
}

std::shared_ptr<TensorImpl> MakeView(const std::shared_ptr<TensorImpl>& base,
                                     const Shape& shape,
                                     std::vector<int64_t> strides,
                                     int64_t offset) {
  STSM_CHECK(base != nullptr);
  STSM_CHECK_GE(offset, 0);
  STSM_CHECK_EQ(static_cast<int>(strides.size()), shape.ndim());
  // The furthest element the view can reach must stay inside the storage.
  int64_t max_reach = offset;
  for (int d = 0; d < shape.ndim(); ++d) {
    if (shape[d] > 0) max_reach += (shape[d] - 1) * strides[d];
  }
  STSM_CHECK_LT(max_reach, base->storage->size());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->strides = std::move(strides);
  impl->storage = base->storage;
  impl->offset = offset;
  if (ShouldRecord({base})) {
    STSM_CHECK(base->dtype() == DType::kF32)
        << "autograd node creation on a bf16 tensor (view)";
    impl->requires_grad = true;
    impl->grad_fn = std::make_shared<autograd::ViewNode>(base);
  }
  return impl;
}

}  // namespace internal

}  // namespace stsm
