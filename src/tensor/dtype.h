// Element types for tensor Storage.
//
// The tensor core computes in fp32 everywhere — kBf16 is a *storage* format
// for the no-grad serving path: weights, adjacency values and cached
// forecasts are held as bfloat16 (the upper 16 bits of an IEEE-754 binary32)
// and widened back to fp32 at the point of use (GEMM packing, SpMM value
// loads, cache lookups). Training never sees bf16: gradient buffers are
// fp32-only (Storage::EnsureGrad checks), autograd node creation on a bf16
// tensor is a checked error (internal::MakeResult / MakeView), and the
// `bf16-serve-only` rule in tools/stsm_lint.py confines bf16 construction to
// the serving/no-grad layers. See DESIGN.md §13 for the taxonomy and how a
// future int8 path slots into the same axis.

#ifndef STSM_TENSOR_DTYPE_H_
#define STSM_TENSOR_DTYPE_H_

#include <cstdint>
#include <cstring>

namespace stsm {

enum class DType : uint8_t {
  kF32 = 0,   // IEEE-754 binary32; the compute and training type.
  kBf16 = 1,  // bfloat16 storage; widened to fp32 for all arithmetic.
};

inline constexpr size_t ElementSize(DType dtype) {
  return dtype == DType::kBf16 ? 2 : 4;
}

inline constexpr const char* DTypeName(DType dtype) {
  return dtype == DType::kBf16 ? "bf16" : "f32";
}

// fp32 -> bf16 with round-to-nearest-even on the truncated 16 mantissa bits.
// NaNs keep their sign and payload top bits but force the quiet bit, so a
// signalling NaN whose payload lives entirely in the dropped bits cannot
// collapse to ±Inf. ±Inf, ±0.0 and denormals round like any other value
// (denormal fp32 inputs are below the smallest bf16 denormal step only in
// their dropped bits, so RNE applies unchanged).
inline uint16_t Bf16FromF32(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {  // NaN (any payload).
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest, ties to even: add 0x7fff plus the lowest kept bit.
  const uint32_t rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding_bias) >> 16);
}

// bf16 -> fp32 widening is exact: the bf16 pattern *is* the upper half of
// the corresponding fp32 pattern.
inline float F32FromBf16(uint16_t value) {
  const uint32_t bits = static_cast<uint32_t>(value) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace stsm

#endif  // STSM_TENSOR_DTYPE_H_
