// Packed, register-tiled single-precision GEMM microkernel.
//
// PackedGemm computes C (+)= A @ B for one matrix pair, where every operand
// is addressed through explicit (row, column) element strides. Arbitrary
// strides let the caller feed transposed or otherwise strided views without
// materializing them: MatMul(Transpose(X), W) passes X's swapped strides and
// the packing loops absorb the layout change. The kernel is single-threaded
// by design — callers (tensor/ops.cc MatMul forward and both backwards)
// parallelize over batches and row blocks via ParallelFor and invoke one
// PackedGemm per disjoint output block.
//
// Internals: classic three-level blocking. The k dimension is split into
// KC-sized blocks; within a block, B is packed into NR-wide column panels
// and A into MR-tall row panels (both zero-padded at the edges), and an
// MR x NR register tile accumulates the product. Per output element the
// flop order over k is identical to a plain ordered dot product whenever
// k <= KC, and is independent of the caller's thread count either way, so
// results are deterministic run-to-run.

#ifndef STSM_TENSOR_GEMM_H_
#define STSM_TENSOR_GEMM_H_

#include <cstdint>

#include "tensor/dtype.h"

namespace stsm {

// Register-tile and cache-block parameters, exported so benchmarks and tests
// can reason about edge cases (m % kGemmMr, n % kGemmNr, k > kGemmKc).
// kGemmMr/kGemmNr describe the scalar reference tile; when a SIMD kernel
// table is active (see tensor/simd.h) PackedGemm packs with the table's
// wider geometry instead, bounded by kGemmMaxMr/kGemmMaxNr.
inline constexpr int64_t kGemmMr = 4;   // rows per register tile (scalar)
inline constexpr int64_t kGemmNr = 8;   // columns per register tile (scalar)
inline constexpr int64_t kGemmMaxMr = 8;   // upper bound over all kernels
inline constexpr int64_t kGemmMaxNr = 16;  // upper bound over all kernels
inline constexpr int64_t kGemmKc = 256; // k-block (packed panel depth)

// Suggested number of C rows per parallel task when callers split a single
// GEMM across the thread pool.
inline constexpr int64_t kGemmRowBlock = 64;

// C[i, j] (+)= sum_k A[i, k] * B[k, j] for i < m, j < n.
//
// Element addresses: A[i, k] = a[i * rs_a + k * cs_a], and likewise for B
// and C. When `accumulate` is false C is overwritten (and zeroed if k == 0);
// when true the product is added to the existing C values.
//
// The output block must not alias either input.
void PackedGemm(int64_t m, int64_t n, int64_t k,            //
                const float* a, int64_t rs_a, int64_t cs_a,  //
                const float* b, int64_t rs_b, int64_t cs_b,  //
                float* c, int64_t rs_c, int64_t cs_c,        //
                bool accumulate);

// Dtype-aware entry: the same contract as PackedGemm, but A and B carry a
// runtime element type (fp32 or bf16 bit patterns). bf16 operands are
// widened to fp32 *inside the packing loops* — the panels handed to the
// register microkernel are always fp32, so the 6x16 AVX2 kernel and the
// scalar reference tile are reused unchanged and accumulation is fp32
// end-to-end. With both dtypes kF32 this is exactly PackedGemm (identical
// template instantiation), so the fp32 path stays bit-for-bit. C is always
// fp32: reduced precision is a storage format, not a compute format.
void PackedGemmEx(int64_t m, int64_t n, int64_t k,                      //
                  const void* a, DType a_dtype, int64_t rs_a, int64_t cs_a,
                  const void* b, DType b_dtype, int64_t rs_b, int64_t cs_b,
                  float* c, int64_t rs_c, int64_t cs_c,                 //
                  bool accumulate);

// Reference implementation (triple loop, same stride convention). Used by
// tests and benchmarks as the correctness / speed baseline.
void NaiveGemm(int64_t m, int64_t n, int64_t k,             //
               const float* a, int64_t rs_a, int64_t cs_a,   //
               const float* b, int64_t rs_b, int64_t cs_b,   //
               float* c, int64_t rs_c, int64_t cs_c,         //
               bool accumulate);

}  // namespace stsm

#endif  // STSM_TENSOR_GEMM_H_
