#include "tensor/storage.h"

#include <atomic>
#include <utility>

#include "tensor/pool.h"

namespace stsm {

namespace {

std::atomic<uint64_t> g_grad_allocations{0};

}  // namespace

uint64_t Storage::GradAllocations() {
  return g_grad_allocations.load(std::memory_order_relaxed);
}

Storage::Storage(Private, std::vector<float> data, DType dtype, int64_t size,
                 bool adopted)
    : data_(std::move(data)), dtype_(dtype), size_(size) {
  // Empty buffers never reach Release, so don't count them as live.
  if (adopted && data_.capacity() > 0) BufferPool::Instance().RecordAdopt();
}

std::shared_ptr<Storage> Storage::New(int64_t size, bool zero) {
  return New(size, DType::kF32, zero);
}

std::shared_ptr<Storage> Storage::New(int64_t size, DType dtype, bool zero) {
  const int64_t bytes = size * static_cast<int64_t>(ElementSize(dtype));
  return std::make_shared<Storage>(
      Private{}, BufferPool::Instance().AcquireBytes(bytes, zero), dtype,
      size, /*adopted=*/false);
}

std::shared_ptr<Storage> Storage::Adopt(std::vector<float> values) {
  const int64_t size = static_cast<int64_t>(values.size());
  return std::make_shared<Storage>(Private{}, std::move(values), DType::kF32,
                                   size, /*adopted=*/true);
}

Storage::~Storage() {
  BufferPool::Instance().Release(std::move(data_));
  // grad_ (if any) is its own Storage and releases itself.
}

void Storage::EnsureGrad() {
  if (grad_ == nullptr && !data_.empty()) {
    STSM_CHECK(dtype_ == DType::kF32)
        << "gradients are fp32-only; a bf16 tensor cannot EnsureGrad";
    grad_ = Storage::New(size(), /*zero=*/true);
    g_grad_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void Storage::FreeGrad() { grad_.reset(); }

}  // namespace stsm
