// BufferPool: a thread-safe, size-bucketed recycler for the raw buffers
// behind tensor Storage.
//
// Training loops allocate and drop the same handful of buffer sizes every
// step (op outputs, gradient buffers, saved activations released during the
// backward walk). The pool keeps freed buffers in power-of-two *byte* size
// buckets and hands them back on the next request of a compatible size, so
// steady state training performs almost no malloc/free traffic. Bucketing on
// bytes (not element counts) lets the same free lists serve every Storage
// dtype: an fp32 request for n elements and a bf16 request for 2n elements
// land in the same class. Buffers are carried as std::vector<float> (the
// historical type, and what Storage hands back on destruction); a bf16
// Storage simply reinterprets the byte range — see tensor/storage.h.
//
// Thread-safety contract: every public member function may be called from
// any thread concurrently; the pool serialises free-list access with a
// single internal mutex (acquisition is O(1): one bucket pop). Statistics
// are plain counters updated under the same mutex, so a Stats() snapshot is
// internally consistent. Buffers themselves are NOT synchronised — a buffer
// returned by Acquire is owned exclusively by the caller until Release.
//
// Sanitizer builds (ASan/MSan) disable recycling at compile time so that
// use-after-free and leak detection keep seeing real malloc/free events;
// statistics still work (every acquire is a miss). STSM_POOL=0 in the
// environment disables recycling at runtime.

#ifndef STSM_TENSOR_POOL_H_
#define STSM_TENSOR_POOL_H_

#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace stsm {

// Point-in-time view of the pool counters. All counts are cumulative since
// process start (or the last ResetStats), except cached_* and live_buffers
// which are gauges.
struct BufferPoolStats {
  uint64_t acquires = 0;       // Acquire() calls.
  uint64_t hits = 0;           // Acquires served from a free list.
  uint64_t misses = 0;         // Acquires that had to allocate.
  uint64_t adopts = 0;         // Buffers that entered via Adopt (FromVector).
  uint64_t releases = 0;       // Buffers returned (cached or freed).
  uint64_t bytes_requested = 0;  // Sum of requested byte sizes across acquires.
  uint64_t bytes_reused = 0;     // Requested bytes served by hits.
  uint64_t cached_buffers = 0;   // Gauge: buffers sitting in free lists.
  uint64_t cached_bytes = 0;     // Gauge: capacity bytes in free lists.
  // Gauge: buffers handed out (acquired or adopted) and not yet released.
  // Zero when every Storage has been destroyed — the leak check.
  uint64_t live_buffers = 0;
};

class BufferPool {
 public:
  // Process-wide pool used by Storage. Never destroyed (leaked on exit) so
  // that static-duration tensors can release safely in any order.
  static BufferPool& Instance();

  BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a buffer covering at least `bytes` bytes (size() ==
  // ceil(bytes / 4) floats). When `zero` is set the content is all zeros;
  // otherwise it is unspecified (fully-overwriting ops skip the zero-fill).
  // bytes == 0 returns an empty vector without touching the pool.
  std::vector<float> AcquireBytes(int64_t bytes, bool zero)
      STSM_EXCLUDES(mutex_);

  // Element-count convenience for fp32 callers: exactly
  // AcquireBytes(n * sizeof(float), zero), so an fp32 request hits the same
  // byte bucket it always did.
  std::vector<float> Acquire(int64_t n, bool zero) STSM_EXCLUDES(mutex_) {
    return AcquireBytes(n * static_cast<int64_t>(sizeof(float)), zero);
  }

  // Returns a buffer to the pool. Recycles it into a free list when
  // recycling is on and the cache cap is not exceeded; frees it otherwise.
  void Release(std::vector<float>&& buffer) STSM_EXCLUDES(mutex_);

  // Records a buffer that was allocated outside the pool but will be
  // Released through it later (Storage adopting a caller's vector). Keeps
  // the live_buffers gauge balanced.
  void RecordAdopt() STSM_EXCLUDES(mutex_);

  BufferPoolStats Stats() const STSM_EXCLUDES(mutex_);

  // Drops all cached buffers (free lists only; live buffers are untouched).
  void Clear() STSM_EXCLUDES(mutex_);

  // Zeroes the cumulative counters; gauges are recomputed, not reset.
  void ResetStats() STSM_EXCLUDES(mutex_);

  // True when freed buffers are kept for reuse (false under sanitizers or
  // STSM_POOL=0; Acquire/Release bookkeeping still runs).
  bool recycling_enabled() const STSM_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return recycling_enabled_;
  }
  void set_recycling_enabled(bool enabled) STSM_EXCLUDES(mutex_);

  // Exports the counters through stsm::prof as monotonic counters. Prefer
  // the RecordPoolProfCounters() free function outside src/tensor/ — client
  // code must not include this header (enforced by tools/stsm_lint.py).
  // ("pool.acquire", "pool.hit", "pool.miss", "pool.adopt", "pool.release",
  // "pool.bytes_requested", "pool.bytes_reused"). Each call records only the
  // delta since the previous call, so repeated exports (e.g. once per epoch
  // plus once before a snapshot) sum to the true totals. Net leaked buffers
  // at export time = pool.acquire + pool.adopt - pool.release.
  void RecordProfCounters() STSM_EXCLUDES(mutex_);

 private:
  // One free list per power-of-two byte-capacity class. Bucket b holds
  // buffers with byte capacity in [2^b, 2^(b+1)); AcquireBytes(s) looks in
  // the first bucket whose every member is guaranteed to fit s, i.e.
  // ceil(log2(s)), and at most kMaxWasteClasses above it — a small request
  // must not hog a much larger cached buffer that a later large request
  // would then miss.
  static constexpr int kNumBuckets = 42;
  static constexpr int kMaxWasteClasses = 2;

  mutable Mutex mutex_;
  std::vector<std::vector<float>> buckets_[kNumBuckets] STSM_GUARDED_BY(
      mutex_);
  BufferPoolStats stats_ STSM_GUARDED_BY(mutex_);
  uint64_t max_cached_bytes_ STSM_GUARDED_BY(mutex_);
  bool recycling_enabled_ STSM_GUARDED_BY(mutex_);

  // Deltas already exported to stsm::prof.
  BufferPoolStats exported_ STSM_GUARDED_BY(mutex_);
};

}  // namespace stsm

#endif  // STSM_TENSOR_POOL_H_
