#include "tensor/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stsm {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon, double tolerance) {
  for (auto& input : inputs) {
    STSM_CHECK(input.requires_grad())
        << "all grad-check inputs must require gradients";
    input.ZeroGrad();
  }

  // Analytic gradients.
  Tensor loss = fn(inputs);
  STSM_CHECK_EQ(loss.numel(), 1);
  loss.Backward();

  GradCheckResult result;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& input = inputs[t];
    const int64_t n = input.numel();
    for (int64_t i = 0; i < n; ++i) {
      // Perturb logical element i at its physical location, so strided views
      // (transposes, slices) grad-check exactly like contiguous tensors.
      const int64_t p = input.impl()->PhysicalIndex(i);
      const float original = input.data()[p];

      input.data()[p] = original + static_cast<float>(epsilon);
      double plus;
      {
        NoGradGuard no_grad;
        plus = fn(inputs).item();
      }
      input.data()[p] = original - static_cast<float>(epsilon);
      double minus;
      {
        NoGradGuard no_grad;
        minus = fn(inputs).item();
      }
      input.data()[p] = original;

      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double analytic = input.grad_data()[p];
      const double abs_err = std::fabs(numeric - analytic);
      const double denom =
          std::max(1.0, std::max(std::fabs(numeric), std::fabs(analytic)));
      const double rel_err = abs_err / denom;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
        result.worst_input = static_cast<int>(t);
        result.worst_element = i;
      }
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      if (std::min(abs_err, rel_err) > tolerance) result.ok = false;
    }
  }
  return result;
}

}  // namespace stsm
