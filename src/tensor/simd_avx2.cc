// AVX2/FMA kernel table. This is the only translation unit compiled with
// -mavx2 -mfma (plus -ffp-contract=off so scalar tail loops round exactly
// like the scalar-dispatch code in ops.cc); nothing here executes unless
// simd::Active() handed out the table, which requires CPUID support, so the
// binary stays runnable on plain SSE2 hardware.
//
// Exactness rules (see simd.h): elementwise kernels use only operations the
// hardware rounds identically to their scalar counterparts (add/sub/mul/div/
// sqrt/compare-blend), never FMA, so they are bitwise-exact. The GEMM
// microkernel and softmax/sum deliberately trade bitwise equality for speed
// (FMA tiles, lane-split accumulation, polynomial exp) and are ULP-bounded.

#include "tensor/simd.h"

#if defined(STSM_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace stsm {
namespace simd {
namespace {

constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;

// 6x16 register tile: 12 __m256 accumulators + 2 B vectors + 1 broadcast
// fit the 16 ymm registers. Panels are laid out exactly like the scalar
// kernel's (k-major, zero-padded), just with the wider geometry.
void GemmMicro6x16(int64_t kb, const float* a_panel, const float* b_panel,
                   float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int64_t kk = 0; kk < kb; ++kk) {
    const float* av = a_panel + kk * kMr;
    // Whole-column skip, same contract as the scalar kernel: adjacency-style
    // operands are mostly zeros and one predictable branch per k step keeps
    // that win (the first compare fails immediately on dense data).
    if (av[0] == 0.0f && av[1] == 0.0f && av[2] == 0.0f && av[3] == 0.0f &&
        av[4] == 0.0f && av[5] == 0.0f) {
      continue;
    }
    const float* bv = b_panel + kk * kNr;
    const __m256 b0 = _mm256_loadu_ps(bv);
    const __m256 b1 = _mm256_loadu_ps(bv + 8);
    __m256 a = _mm256_broadcast_ss(av + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(av + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(av + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(av + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(av + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(av + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
  }
  _mm256_storeu_ps(acc + 0 * kNr, c00);
  _mm256_storeu_ps(acc + 0 * kNr + 8, c01);
  _mm256_storeu_ps(acc + 1 * kNr, c10);
  _mm256_storeu_ps(acc + 1 * kNr + 8, c11);
  _mm256_storeu_ps(acc + 2 * kNr, c20);
  _mm256_storeu_ps(acc + 2 * kNr + 8, c21);
  _mm256_storeu_ps(acc + 3 * kNr, c30);
  _mm256_storeu_ps(acc + 3 * kNr + 8, c31);
  _mm256_storeu_ps(acc + 4 * kNr, c40);
  _mm256_storeu_ps(acc + 4 * kNr + 8, c41);
  _mm256_storeu_ps(acc + 5 * kNr, c50);
  _mm256_storeu_ps(acc + 5 * kNr + 8, c51);
}

// ---- Elementwise ------------------------------------------------------------

// Vector body + scalar tail. The scalar tail expressions must match the
// scalar-dispatch lambdas in ops.cc operation for operation (this TU is
// compiled with -ffp-contract=off so gcc cannot fuse them differently).
template <typename VOp, typename SOp>
inline void MapBinary(const float* a, const float* b, float* y, int64_t n,
                      VOp vop, SOp sop) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, vop(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = sop(a[i], b[i]);
}

template <typename VOp, typename SOp>
inline void MapUnary(const float* x, float* y, int64_t n, VOp vop, SOp sop) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, vop(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = sop(x[i]);
}

void AddK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n, [](__m256 u, __m256 v) { return _mm256_add_ps(u, v); },
      [](float u, float v) { return u + v; });
}

void SubK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n, [](__m256 u, __m256 v) { return _mm256_sub_ps(u, v); },
      [](float u, float v) { return u - v; });
}

void MulK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n, [](__m256 u, __m256 v) { return _mm256_mul_ps(u, v); },
      [](float u, float v) { return u * v; });
}

void DivK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n, [](__m256 u, __m256 v) { return _mm256_div_ps(u, v); },
      [](float u, float v) { return u / v; });
}

// maxps/minps pick the second operand on NaN and on ±0 ties, which does NOT
// match the scalar `x >= y ? x : y`; an explicit ordered compare + blend
// reproduces the scalar choice bit for bit (NaN operands fall through to y,
// Maximum(-0.0, +0.0) keeps -0.0).
void MaximumK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n,
      [](__m256 u, __m256 v) {
        return _mm256_blendv_ps(v, u, _mm256_cmp_ps(u, v, _CMP_GE_OQ));
      },
      [](float u, float v) { return u >= v ? u : v; });
}

void MinimumK(const float* a, const float* b, float* y, int64_t n) {
  MapBinary(
      a, b, y, n,
      [](__m256 u, __m256 v) {
        return _mm256_blendv_ps(v, u, _mm256_cmp_ps(u, v, _CMP_LE_OQ));
      },
      [](float u, float v) { return u <= v ? u : v; });
}

void AddScalarK(const float* x, float* y, int64_t n, float p) {
  const __m256 pv = _mm256_set1_ps(p);
  MapUnary(
      x, y, n, [pv](__m256 v) { return _mm256_add_ps(v, pv); },
      [p](float v) { return v + p; });
}

void SubScalarK(const float* x, float* y, int64_t n, float p) {
  const __m256 pv = _mm256_set1_ps(p);
  MapUnary(
      x, y, n, [pv](__m256 v) { return _mm256_sub_ps(v, pv); },
      [p](float v) { return v - p; });
}

void MulScalarK(const float* x, float* y, int64_t n, float p) {
  const __m256 pv = _mm256_set1_ps(p);
  MapUnary(
      x, y, n, [pv](__m256 v) { return _mm256_mul_ps(v, pv); },
      [p](float v) { return v * p; });
}

void DivScalarK(const float* x, float* y, int64_t n, float p) {
  const __m256 pv = _mm256_set1_ps(p);
  MapUnary(
      x, y, n, [pv](__m256 v) { return _mm256_div_ps(v, pv); },
      [p](float v) { return v / p; });
}

void NegK(const float* x, float* y, int64_t n, float /*p*/) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  MapUnary(
      x, y, n, [sign](__m256 v) { return _mm256_xor_ps(v, sign); },
      [](float v) { return -v; });
}

void ReluK(const float* x, float* y, int64_t n, float /*p*/) {
  const __m256 zero = _mm256_setzero_ps();
  MapUnary(
      x, y, n,
      [zero](__m256 v) {
        // v > 0 ? v : 0 — NaN and -0.0 both take the +0.0 arm, like scalar.
        return _mm256_blendv_ps(zero, v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
      },
      [](float v) { return v > 0.0f ? v : 0.0f; });
}

void LeakyReluK(const float* x, float* y, int64_t n, float p) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 alpha = _mm256_set1_ps(p);
  MapUnary(
      x, y, n,
      [zero, alpha](__m256 v) {
        return _mm256_blendv_ps(_mm256_mul_ps(alpha, v), v,
                                _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
      },
      [p](float v) { return v > 0.0f ? v : p * v; });
}

void SquareK(const float* x, float* y, int64_t n, float /*p*/) {
  MapUnary(
      x, y, n, [](__m256 v) { return _mm256_mul_ps(v, v); },
      [](float v) { return v * v; });
}

void AbsK(const float* x, float* y, int64_t n, float /*p*/) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  MapUnary(
      x, y, n, [mask](__m256 v) { return _mm256_and_ps(v, mask); },
      [](float v) { return std::fabs(v); });
}

void SqrtK(const float* x, float* y, int64_t n, float /*p*/) {
  MapUnary(
      x, y, n, [](__m256 v) { return _mm256_sqrt_ps(v); },
      [](float v) { return std::sqrt(v); });
}

// ---- In-place ---------------------------------------------------------------

void AxpyK(float* x, const float* y, float alpha, int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // mul + add, NOT fmadd: the scalar path rounds the product first.
    const __m256 t = _mm256_mul_ps(av, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_loadu_ps(x + i), t));
  }
  for (; i < n; ++i) x[i] += alpha * y[i];
}

void ScalK(float* x, float v, int64_t n) {
  const __m256 sv = _mm256_set1_ps(v);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= v;
}

void ReluInPlaceK(float* x, int64_t n) { ReluK(x, x, n, 0.0f); }

// ---- Reductions -------------------------------------------------------------

// Lane-split sum with double accumulators: each 8-float block is widened to
// two 4-double partial sums, merged lane-by-lane in a fixed order, then the
// tail is added sequentially. Deterministic, but not the scalar order.
double SumK(const float* x, int64_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, _mm256_add_pd(acc_lo, acc_hi));
  double total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) total += static_cast<double>(x[i]);
  return total;
}

// Shared max/min row reduction. Each lane tracks the strict-compare extremum
// of its stride-8 slice (earliest index wins within a lane because the
// compare is strict); the horizontal merge then prefers lower indices on
// value ties, which together reproduces the scalar first-occurrence-wins
// scan exactly. Rows containing NaN are declined: NaN ordering is
// position-dependent in the scalar scan and cannot be split across lanes.
template <bool kIsMax>
bool ExtremumRowK(const float* x, int64_t n, float* best, int64_t* argbest) {
  if (n < 8 || n > std::numeric_limits<int32_t>::max()) return false;
  __m256 bestv = _mm256_loadu_ps(x);
  __m256 nan_seen = _mm256_cmp_ps(bestv, bestv, _CMP_UNORD_Q);
  __m256i bestidx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  __m256i curidx = bestidx;
  const __m256i step = _mm256_set1_epi32(8);
  int64_t i = 8;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    curidx = _mm256_add_epi32(curidx, step);
    nan_seen = _mm256_or_ps(nan_seen, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    const __m256 better =
        _mm256_cmp_ps(v, bestv, kIsMax ? _CMP_GT_OQ : _CMP_LT_OQ);
    bestv = _mm256_blendv_ps(bestv, v, better);
    bestidx = _mm256_castps_si256(_mm256_blendv_ps(
        _mm256_castsi256_ps(bestidx), _mm256_castsi256_ps(curidx), better));
  }
  if (_mm256_movemask_ps(nan_seen) != 0) return false;

  float lane_v[8];
  int32_t lane_i[8];
  _mm256_storeu_ps(lane_v, bestv);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane_i), bestidx);
  float b = lane_v[0];
  int64_t bi = lane_i[0];
  for (int lane = 1; lane < 8; ++lane) {
    const bool wins = kIsMax ? (lane_v[lane] > b) : (lane_v[lane] < b);
    if (wins || (lane_v[lane] == b && lane_i[lane] < bi)) {
      b = lane_v[lane];
      bi = lane_i[lane];
    }
  }
  // Tail indices are all larger than any vector index, so the scalar strict
  // compare keeps first-occurrence semantics. NaN in the tail loses every
  // ordered compare, exactly like the scalar scan (a tail element is never
  // at row position 0, the only slot where scalar propagates NaN).
  for (; i < n; ++i) {
    const bool wins = kIsMax ? (x[i] > b) : (x[i] < b);
    if (wins) {
      b = x[i];
      bi = i;
    }
  }
  *best = b;
  *argbest = bi;
  return true;
}

bool MaxRowK(const float* x, int64_t n, float* best, int64_t* argbest) {
  return ExtremumRowK<true>(x, n, best, argbest);
}

bool MinRowK(const float* x, int64_t n, float* best, int64_t* argbest) {
  return ExtremumRowK<false>(x, n, best, argbest);
}

// ---- Softmax ----------------------------------------------------------------

// Polynomial exp (Cephes-style range reduction, degree-5 minimax), accurate
// to a couple of ULP over the clamped range. Inputs below kExpFlushLo flush
// to +0.0 (std::exp would return a denormal there; softmax callers tolerate
// that — the denominator is >= 1 because the max-shifted row contains an
// exact 0). Precondition: finite inputs (softmax_row declines rows that are
// not).
constexpr float kExpFlushLo = -87.3365478515625f;

inline __m256 Exp8(__m256 x0) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(kExpFlushLo);
  __m256 x = _mm256_max_ps(_mm256_min_ps(x0, hi), lo);
  // n = round(x * log2(e)); r = x - n*ln2 in two parts for extra bits.
  __m256 fx = _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f));
  fx = _mm256_round_ps(fx, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  // Scale by 2^n via the exponent field; the clamp keeps n in [-126, 127].
  __m256i imm = _mm256_cvtps_epi32(fx);
  imm = _mm256_add_epi32(imm, _mm256_set1_epi32(0x7f));
  imm = _mm256_slli_epi32(imm, 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(imm));
  // Flush lanes whose ORIGINAL input sat below the clamp to exactly +0.0.
  return _mm256_and_ps(y, _mm256_cmp_ps(x0, lo, _CMP_GE_OQ));
}

bool SoftmaxRowK(const float* x, float* y, int64_t n) {
  if (n < 8) return false;  // Scalar handles short rows (and stays bitwise).
  // Pass 1: row max + finiteness screen. max is order-independent over
  // finite floats, so the lane-split result equals the scalar scan's.
  __m256 maxv = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  __m256 bad = _mm256_setzero_ps();
  const __m256 absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 inf =
      _mm256_set1_ps(std::numeric_limits<float>::infinity());
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    // NaN: unordered self-compare. ±Inf: |v| >= inf (ordered, so NaN falls
    // through to the first test).
    bad = _mm256_or_ps(bad, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    bad = _mm256_or_ps(
        bad, _mm256_cmp_ps(_mm256_and_ps(v, absmask), inf, _CMP_GE_OQ));
    maxv = _mm256_max_ps(maxv, v);
  }
  float m = -std::numeric_limits<float>::infinity();
  {
    float lanes[8];
    _mm256_storeu_ps(lanes, maxv);
    for (float lv : lanes) m = std::max(m, lv);
  }
  for (; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
    m = std::max(m, x[i]);
  }
  if (_mm256_movemask_ps(bad) != 0) return false;

  // Pass 2: e = exp(x - m) into y, accumulating the denominator in
  // lane-split doubles. The final partial block is padded with -inf-like
  // sentinels that exp flushes to 0, so it contributes nothing.
  const __m256 mv = _mm256_set1_ps(m);
  __m256d den_lo = _mm256_setzero_pd();
  __m256d den_hi = _mm256_setzero_pd();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(x + i), mv));
    _mm256_storeu_ps(y + i, e);
    den_lo = _mm256_add_pd(den_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
    den_hi = _mm256_add_pd(den_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
  }
  if (i < n) {
    float padded[8];
    for (int lane = 0; lane < 8; ++lane) {
      padded[lane] = (i + lane < n) ? x[i + lane] : -std::numeric_limits<float>::max();
    }
    float e_out[8];
    const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(padded), mv));
    _mm256_storeu_ps(e_out, e);
    for (int lane = 0; i + lane < n; ++lane) y[i + lane] = e_out[lane];
    den_lo = _mm256_add_pd(den_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
    den_hi = _mm256_add_pd(den_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, _mm256_add_pd(den_lo, den_hi));
  const double denom = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);

  // Pass 3: scale, with the same float(1/denom) factor the scalar path uses.
  const float invf = static_cast<float>(1.0 / denom);
  const __m256 inv = _mm256_set1_ps(invf);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), inv));
  }
  for (; i < n; ++i) y[i] *= invf;
  return true;
}

const KernelTable kAvx2Table = {
    /*gemm_mr=*/kMr,
    /*gemm_nr=*/kNr,
    GemmMicro6x16,
    AddK,
    SubK,
    MulK,
    DivK,
    MaximumK,
    MinimumK,
    AddScalarK,
    SubScalarK,
    MulScalarK,
    DivScalarK,
    NegK,
    ReluK,
    LeakyReluK,
    SquareK,
    AbsK,
    SqrtK,
    AxpyK,
    ScalK,
    ReluInPlaceK,
    SumK,
    MaxRowK,
    MinRowK,
    SoftmaxRowK,
    /*isa=*/"avx2+fma",
};

}  // namespace

namespace internal {
const KernelTable* Avx2Table() { return &kAvx2Table; }
}  // namespace internal

}  // namespace simd
}  // namespace stsm

#else  // !STSM_HAVE_AVX2

namespace stsm {
namespace simd {
namespace internal {
const KernelTable* Avx2Table() { return nullptr; }
}  // namespace internal
}  // namespace simd
}  // namespace stsm

#endif  // STSM_HAVE_AVX2
