// Tensor: a dense float32 n-dimensional array with tape-based reverse-mode
// automatic differentiation.
//
// A `Tensor` is a cheap value-semantic handle onto a shared `TensorImpl`.
// Operations on tensors (declared in tensor/ops.h) record the computation
// graph when gradient mode is enabled and any input requires gradients;
// calling `Backward()` on a scalar result then accumulates gradients into
// every tensor with `requires_grad() == true` that contributed to it.
//
// Example:
//   Tensor w = Tensor::Normal({4, 2}, 0.f, 0.1f, &rng, /*requires_grad=*/true);
//   Tensor x = Tensor::Ones({3, 4});
//   Tensor loss = Mean(Square(MatMul(x, w)));
//   loss.Backward();
//   // w.grad_data() now holds dLoss/dw.

#ifndef STSM_TENSOR_TENSOR_H_
#define STSM_TENSOR_TENSOR_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/shape.h"

namespace stsm {

// Internal storage node shared by Tensor handles. Public members are used by
// the op implementations in tensor/ops.cc; application code should go through
// the Tensor interface.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // Lazily allocated; empty until needed.
  bool requires_grad = false;

  // Autograd tape: the inputs this node was computed from and the function
  // that routes this node's gradient into them. Empty for leaves.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void()> backward_fn;

  // Allocates (zero-filled) gradient storage if not yet present.
  void EnsureGrad();
};

// Value-semantic handle to a TensorImpl. A default-constructed Tensor is
// "undefined" and may not be used in operations.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  // Takes ownership of `values`; its size must equal shape.numel().
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Uniform in [lo, hi).
  static Tensor Uniform(const Shape& shape, float lo, float hi, Rng* rng,
                        bool requires_grad = false);
  static Tensor Normal(const Shape& shape, float mean, float stddev, Rng* rng,
                       bool requires_grad = false);
  // Identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int ndim() const { return shape().ndim(); }
  int64_t numel() const { return shape().numel(); }
  int64_t size(int dim) const { return shape()[dim]; }

  float* data();
  const float* data() const;

  // Value of a single-element tensor.
  float item() const;

  // Element access by multi-index (bounds-checked; intended for tests and
  // glue code, not inner loops).
  float at(std::initializer_list<int64_t> index) const;
  void set(std::initializer_list<int64_t> index, float value);

  // ---- Autograd ------------------------------------------------------------

  bool requires_grad() const;
  // Marks a leaf as requiring gradients. Must not be called on a tensor that
  // already has a recorded history.
  Tensor& set_requires_grad(bool value);

  // Gradient storage (allocated on demand). Only meaningful after Backward().
  float* grad_data();
  const float* grad_data() const;
  // Returns a copy of the gradient as a tensor of the same shape (zeros if no
  // gradient has been accumulated).
  Tensor GradTensor() const;
  void ZeroGrad();

  // Runs reverse-mode differentiation from this tensor, which must be a
  // scalar (numel() == 1). Gradients accumulate (+=) into `grad` of every
  // reachable tensor with requires_grad() set.
  void Backward();

  // Returns a tensor sharing this tensor's storage but detached from the
  // autograd graph (no parents, requires_grad = false).
  Tensor Detach() const;

  // Deep copy of the data (detached leaf).
  Tensor Clone() const;

  // Human-readable summary (shape plus leading values) for debugging.
  std::string ToString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// RAII guard that disables gradient recording in the current thread. Used in
// evaluation loops to avoid building graphs.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when operations should record the autograd tape (thread-local).
bool GradModeEnabled();

namespace internal {

// Creates an op output node: allocates the result, and when recording is
// active and any input requires grad, registers `backward_fn` and parents.
// `backward_fn` is built by the caller via MakeBackward after the output
// exists; see ops.cc for the usage pattern.
std::shared_ptr<TensorImpl> MakeResult(
    const Shape& shape, const std::vector<std::shared_ptr<TensorImpl>>& inputs);

// True if autograd should record for this set of inputs.
bool ShouldRecord(const std::vector<std::shared_ptr<TensorImpl>>& inputs);

}  // namespace internal

}  // namespace stsm

#endif  // STSM_TENSOR_TENSOR_H_
