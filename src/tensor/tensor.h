// Tensor: a dense float32 n-dimensional array with reverse-mode automatic
// differentiation over an explicit graph of autograd nodes.
//
// A `Tensor` is a cheap value-semantic handle onto a shared `TensorImpl`,
// which in turn is {Storage, shape, strides, offset}: the ref-counted
// `Storage` owns the contiguous data buffer (and the gradient buffer, once
// one is needed) while the impl carries the metadata. Because element
// strides are explicit, every pure-layout op — `Reshape`, `Unsqueeze`,
// `Squeeze`, `Detach`, `Transpose`, `Slice` (any dimension), `Narrow`, and
// `Select` — returns a zero-copy view: a new impl aliasing the same Storage
// at an element offset with its own strides. `Contiguous()` compacts a
// strided view into row-major order (a no-op handle copy when the tensor is
// already contiguous); `Clone()` is the deep copy.
//
// Operations on tensors (declared in tensor/ops.h) record the computation
// graph when gradient mode is enabled and any input requires gradients;
// calling `Backward()` on a scalar result walks the node graph and
// accumulates gradients into every tensor with `requires_grad() == true`
// that contributed to it. The walk releases each node's saved activations
// as soon as its gradient has been routed, returning their buffers to the
// BufferPool — so a graph can only be backward-ed once.
//
// Example:
//   Tensor w = Tensor::Normal({4, 2}, 0.f, 0.1f, &rng, /*requires_grad=*/true);
//   Tensor x = Tensor::Ones({3, 4});
//   Tensor h = Reshape(MatMul(x, w), Shape({6}));  // zero-copy view
//   Tensor loss = Mean(Square(h));
//   loss.Backward();
//   // w.grad_data() now holds dLoss/dw; the graph's intermediate buffers
//   // are already back in the pool.

#ifndef STSM_TENSOR_TENSOR_H_
#define STSM_TENSOR_TENSOR_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/shape.h"
#include "tensor/storage.h"

namespace stsm {

// Shared tensor node: metadata over a Storage. Public members are used by
// the op implementations in tensor/ops.cc; application code should go
// through the Tensor interface.
struct TensorImpl {
  Shape shape;
  // Element strides, one per dimension. Row-major (`shape.Strides()`) for
  // freshly created tensors; views carry whatever layout they alias.
  // Strides of size-1 dimensions are never stepped and carry no meaning.
  std::vector<int64_t> strides;
  std::shared_ptr<Storage> storage;
  // Element offset of this tensor's first element inside `storage`. Always 0
  // for non-view tensors.
  int64_t offset = 0;
  bool requires_grad = false;

  // The autograd node that produced this tensor; null for leaves (factory
  // tensors, detached tensors, and anything built with recording off).
  std::shared_ptr<autograd::Node> grad_fn;

  // Element type of the underlying storage. fp32 everywhere except the
  // no-grad serving path (see tensor/dtype.h); a view has its base's dtype.
  DType dtype() const { return storage->dtype(); }

  // fp32 element pointers (checked — see Storage::data()). bf16 tensors are
  // storage-only: kernels widen through raw()/bf16_data() at the point of
  // use instead of walking floats.
  float* data() { return storage->data() + offset; }
  const float* data() const { return storage->data() + offset; }

  // Dtype-generic byte pointer to this tensor's first element.
  void* raw() {
    return static_cast<char*>(storage->raw()) +
           offset * static_cast<int64_t>(ElementSize(dtype()));
  }
  const void* raw() const {
    return static_cast<const char*>(storage->raw()) +
           offset * static_cast<int64_t>(ElementSize(dtype()));
  }

  // bf16 element pointer (checked).
  uint16_t* bf16_data() { return storage->bf16_data() + offset; }
  const uint16_t* bf16_data() const { return storage->bf16_data() + offset; }

  // True when the logical element order coincides with the physical layout:
  // stride[d] == product(shape[d+1:]) for every dimension with size > 1.
  // Every kernel in tensor/ops.cc takes a flat-loop fast path when this
  // holds and a generic strided path otherwise.
  bool is_contiguous() const {
    int64_t expected = 1;
    for (int d = shape.ndim() - 1; d >= 0; --d) {
      if (shape.dims()[d] != 1 && strides[d] != expected) return false;
      expected *= shape.dims()[d];
    }
    return true;
  }

  // Physical element offset (relative to data()) of logical linear index
  // `logical`. Intended for glue code and tests, not inner loops.
  int64_t PhysicalIndex(int64_t logical) const {
    int64_t physical = 0;
    for (int d = shape.ndim() - 1; d >= 0; --d) {
      physical += (logical % shape.dims()[d]) * strides[d];
      logical /= shape.dims()[d];
    }
    return physical;
  }

  // Gradient buffer access. The grad buffer belongs to the Storage and is
  // shared by all views of it; these accessors are pre-offset like data().
  bool has_grad() const { return storage != nullptr && storage->has_grad(); }
  // Allocates (zero-filled) gradient storage if not yet present.
  void EnsureGrad() { storage->EnsureGrad(); }
  float* grad() { return storage->grad() + offset; }
  // Null when no gradient has been allocated.
  const float* grad() const {
    return has_grad() ? storage->grad() + offset : nullptr;
  }

  bool is_leaf() const { return grad_fn == nullptr; }
};

// Value-semantic handle to a TensorImpl. A default-constructed Tensor is
// "undefined" and may not be used in operations.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  // Takes ownership of `values` (no copy); its size must equal shape.numel().
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Uniform in [lo, hi).
  static Tensor Uniform(const Shape& shape, float lo, float hi, Rng* rng,
                        bool requires_grad = false);
  static Tensor Normal(const Shape& shape, float mean, float stddev, Rng* rng,
                       bool requires_grad = false);
  // Identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  // Storage element type. All factories build fp32; bf16 tensors come only
  // from To(DType) on the serving path.
  DType dtype() const;
  int ndim() const { return shape().ndim(); }
  int64_t numel() const { return shape().numel(); }
  int64_t size(int dim) const { return shape()[dim]; }

  // Pointer to the first element. For non-contiguous views the elements are
  // NOT laid out linearly behind this pointer — use at()/Contiguous()/Clone()
  // (or the stride-aware ops) unless is_contiguous() holds.
  float* data();
  const float* data() const;

  // True when the logical element order matches the physical layout; raw
  // linear iteration over data() is only valid when this holds.
  bool is_contiguous() const;
  const std::vector<int64_t>& strides() const;

  // Value of a single-element tensor.
  float item() const;

  // Element access by multi-index (bounds-checked; intended for tests and
  // glue code, not inner loops).
  float at(std::initializer_list<int64_t> index) const;
  void set(std::initializer_list<int64_t> index, float value);

  // ---- Autograd ------------------------------------------------------------

  bool requires_grad() const;
  // Marks a leaf as requiring gradients. Must not be called on a tensor that
  // already has a recorded history.
  Tensor& set_requires_grad(bool value);

  // True once gradient storage exists (i.e. after Backward() or an explicit
  // mutable grad_data() call).
  bool has_grad() const;

  // Mutable gradient access: allocates zero-filled gradient storage on
  // demand and returns it.
  float* grad_data();
  // Const gradient access never mutates: it returns nullptr until gradient
  // storage exists. Check has_grad() (or use GradTensor(), which yields
  // zeros) when the tensor may not have been backward-ed yet.
  const float* grad_data() const;
  // Returns a copy of the gradient as a tensor of the same shape (zeros if
  // no gradient has been accumulated).
  Tensor GradTensor() const;
  // Zero-copy alias of this tensor's gradient window as a Tensor (same
  // shape/strides/offset, over the grad buffer). Allocates the grad buffer
  // if not yet present. Writes through the view mutate the gradient — this
  // is how the optimizer and ClipGradNorm apply the in-place ops to grads.
  Tensor GradView();
  // Zeroes this tensor's gradient range only. For a view, that is the
  // [offset, offset + numel()) window of the shared grad buffer — sibling
  // views' accumulated gradients outside the range are untouched.
  void ZeroGrad();

  // Runs reverse-mode differentiation from this tensor, which must be a
  // scalar (numel() == 1). Gradients accumulate (+=) into `grad` of every
  // reachable tensor with requires_grad() set. Saved activations are
  // released eagerly as the walk passes them, so calling Backward() twice
  // through the same graph is a checked error (build a fresh graph per
  // step, as every training loop here already does).
  void Backward();

  // Returns a tensor that shares this tensor's storage (zero-copy alias)
  // but is detached from the autograd graph: no grad_fn, requires_grad
  // false. In-place writes through either handle are visible to both; use
  // Clone() for an independent copy.
  Tensor Detach() const;

  // Deep copy of the data into fresh storage (detached leaf).
  Tensor Clone() const;

  // True when this tensor aliases a sub-range or reinterpretation of a
  // shared Storage rather than owning it end-to-end.
  bool is_view() const;

  // Human-readable summary (shape plus leading values) for debugging.
  std::string ToString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

// The grad-mode switch and its RAII guard live in tensor/autograd.h
// (autograd::NoGradGuard / autograd::GradModeEnabled); these aliases keep
// the shorter spelling every call site already uses.
using autograd::NoGradGuard;
using autograd::GradModeEnabled;

namespace internal {

// Creates an op output impl backed by fresh pool storage. When `zero` is
// false the buffer content is unspecified and the op must write every
// element. When recording is active and any input requires grad, the result
// is marked requires_grad; the caller then attaches the op's autograd node
// via `result->grad_fn = ...`.
std::shared_ptr<TensorImpl> MakeResult(
    const Shape& shape, const std::vector<std::shared_ptr<TensorImpl>>& inputs,
    bool zero = true);

// Creates a zero-copy view of `base` with the given shape, strides and
// absolute storage offset. Attaches a ViewNode when recording is active and
// the base requires grad.
std::shared_ptr<TensorImpl> MakeView(const std::shared_ptr<TensorImpl>& base,
                                     const Shape& shape,
                                     std::vector<int64_t> strides,
                                     int64_t offset);

// True if autograd should record for this set of inputs.
bool ShouldRecord(const std::vector<std::shared_ptr<TensorImpl>>& inputs);

}  // namespace internal

}  // namespace stsm

#endif  // STSM_TENSOR_TENSOR_H_
