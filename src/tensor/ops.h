// Differentiable tensor operations.
//
// All functions return new tensors. When gradient mode is enabled and any
// input requires gradients, the returned tensor carries the autograd tape
// needed by Tensor::Backward().
//
// Broadcasting follows NumPy semantics for elementwise binary operations and
// for the batch dimensions of MatMul.

#ifndef STSM_TENSOR_OPS_H_
#define STSM_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace stsm {

// ---- Elementwise binary (broadcasting) --------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
// Elementwise max/min; on ties the gradient flows to the first argument.
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

Tensor Add(const Tensor& a, float b);
Tensor Sub(const Tensor& a, float b);
Tensor Sub(float a, const Tensor& b);
Tensor Mul(const Tensor& a, float b);
Tensor Div(const Tensor& a, float b);
Tensor Div(float a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator+(const Tensor& a, float b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, float b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, float b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, float b) { return Div(a, b); }
inline Tensor operator+(float a, const Tensor& b) { return Add(b, a); }
inline Tensor operator*(float a, const Tensor& b) { return Mul(b, a); }
inline Tensor operator-(float a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator/(float a, const Tensor& b) { return Div(a, b); }

// ---- Elementwise unary -------------------------------------------------------

Tensor Neg(const Tensor& x);
inline Tensor operator-(const Tensor& x) { return Neg(x); }
Tensor Relu(const Tensor& x);
// LeakyRelu with slope `alpha` for negative inputs.
Tensor LeakyRelu(const Tensor& x, float alpha = 0.2f);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Exp(const Tensor& x);
// Natural logarithm; inputs are clamped to a small epsilon for stability.
Tensor Log(const Tensor& x);
Tensor Sqrt(const Tensor& x);
Tensor Square(const Tensor& x);
Tensor Abs(const Tensor& x);
// Raises to a constant power.
Tensor Pow(const Tensor& x, float exponent);

// ---- Shape manipulation ------------------------------------------------------
//
// All of these are zero-copy views (no data movement, no allocation) except
// Reshape of a non-contiguous tensor, which compacts first. Views alias the
// input's storage: in-place writes through either handle are visible to
// both, and gradients route through the shared grad buffer.

// Returns a tensor with the same elements and a new shape (same numel).
// Zero-copy when x is contiguous; otherwise compacts (differentiably).
Tensor Reshape(const Tensor& x, const Shape& shape);
// Swaps dimensions `dim0` and `dim1` (zero-copy view; negative dims
// allowed). The result is typically non-contiguous.
Tensor Transpose(const Tensor& x, int dim0, int dim1);
// Window [start, end) along `dim` (zero-copy view, any dimension).
Tensor Slice(const Tensor& x, int dim, int64_t start, int64_t end);
// Window of `length` elements starting at `start` along `dim` (zero-copy
// view); Narrow(x, d, s, l) == Slice(x, d, s, s + l).
Tensor Narrow(const Tensor& x, int dim, int64_t start, int64_t length);
// Removes `dim` by fixing it at `index` (zero-copy view with one fewer
// dimension).
Tensor Select(const Tensor& x, int dim, int64_t index);
// Compacts a strided view into a fresh row-major tensor (differentiable).
// Returns x itself — same handle, no copy — when already contiguous.
Tensor Contiguous(const Tensor& x);
// Concatenates tensors along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& tensors, int dim);
// Gathers indices along `dim`: out has x.shape with dim replaced by
// indices.size(). Gradients scatter-add back.
Tensor IndexSelect(const Tensor& x, int dim, const std::vector<int>& indices);
// Inserts a size-1 dimension at `dim`.
Tensor Unsqueeze(const Tensor& x, int dim);
// Removes a size-1 dimension at `dim`.
Tensor Squeeze(const Tensor& x, int dim);
// Broadcasts x to `shape` (materialising the copy).
Tensor BroadcastTo(const Tensor& x, const Shape& shape);

// ---- Reductions ---------------------------------------------------------------

// Sum of all elements -> scalar.
Tensor Sum(const Tensor& x);
// Sum along `dim`.
Tensor Sum(const Tensor& x, int dim, bool keepdim = false);
Tensor Mean(const Tensor& x);
Tensor Mean(const Tensor& x, int dim, bool keepdim = false);
// Maximum along `dim`; gradient flows to the (first) argmax.
Tensor Max(const Tensor& x, int dim, bool keepdim = false);
Tensor Min(const Tensor& x, int dim, bool keepdim = false);

// ---- Linear algebra -----------------------------------------------------------

// Batched matrix multiply: a [..., m, k] @ b [..., k, n] -> [..., m, n].
// Leading (batch) dimensions broadcast. Operands may be bf16 on the no-grad
// serving path (widened to fp32 inside the GEMM packing; the result is
// always fp32); recording through a bf16 operand is a checked error.
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Dtype conversion ----------------------------------------------------------

// Storage-format conversion between fp32 and bf16 (tensor/dtype.h):
// fp32 -> bf16 rounds to nearest-even, bf16 -> fp32 widens exactly. Returns
// the same handle when the dtype already matches. Not differentiable —
// calling it on a tensor autograd is recording is a checked error; Detach()
// first or convert under NoGradGuard (the serving path).
Tensor To(const Tensor& x, DType dtype);

// Identity for fp32 (same handle, so the training path is untouched);
// otherwise To(x, kF32). Undefined tensors pass through (optional biases).
Tensor WidenToF32(const Tensor& x);

// ---- Neural-network primitives --------------------------------------------------

// Softmax along `dim` (numerically stable).
Tensor Softmax(const Tensor& x, int dim);
Tensor LogSoftmax(const Tensor& x, int dim);

// Causal dilated 1-D convolution over the time axis of a [B, T, N, C_in]
// tensor. `weight` is [C_out, C_in, K]; `bias` is [C_out] (may be undefined
// for no bias). The output is [B, T, N, C_out]; positions before the window
// start read zeros (left zero-padding), so sequence length is preserved —
// this matches the zero-padded dilated TCN of STSM Eq. (5).
Tensor Conv1dTime(const Tensor& x, const Tensor& weight, const Tensor& bias,
                  int dilation);

// Inverted dropout: at training time zeroes entries with probability `p` and
// scales survivors by 1/(1-p); at p <= 0 returns x unchanged.
Tensor Dropout(const Tensor& x, float p, Rng* rng);

// ---- In-place ops -------------------------------------------------------------
//
// Mutate the target's buffer directly without recording autograd state. The
// target must be graph-free (grad_fn == nullptr): parameters, optimizer
// state, detached tensors, or gradient views (Tensor::GradView()). Strided
// views are handled; shapes must match exactly (no broadcasting).

// x += y.
void AddInPlace(Tensor x, const Tensor& y);
// x += alpha * y (axpy; the optimizer's fused scale-and-accumulate).
void AddScaledInPlace(Tensor x, const Tensor& y, float alpha);
// x *= value.
void MulScalarInPlace(Tensor x, float value);
// x = max(x, 0) elementwise.
void ReluInPlace(Tensor x);

}  // namespace stsm

#endif  // STSM_TENSOR_OPS_H_
