#include "tensor/pool.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/env.h"
#include "common/prof.h"
#include "tensor/storage.h"

namespace stsm {

namespace {

// Recycling would hide use-after-free and leaks from the sanitizers, so
// sanitizer builds always go through malloc/free.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_MEMORY__)
constexpr bool kSanitizerBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(memory_sanitizer)
constexpr bool kSanitizerBuild = true;
#else
constexpr bool kSanitizerBuild = false;
#endif
#else
constexpr bool kSanitizerBuild = false;
#endif

// Smallest b with 2^b >= bytes (bytes >= 1).
int BucketForRequest(int64_t bytes) {
  int b = 0;
  while ((int64_t{1} << b) < bytes) ++b;
  return b;
}

// Largest b with 2^b <= byte capacity (capacity >= 1): every buffer in
// bucket b can serve any request with ceil(log2(bytes)) == b.
int BucketForCapacity(size_t capacity_bytes) {
  int b = 0;
  while ((size_t{2} << b) <= capacity_bytes) ++b;
  return b;
}

}  // namespace

BufferPool& BufferPool::Instance() {
  static BufferPool* pool = new BufferPool();  // Intentionally leaked.
  return *pool;
}

BufferPool::BufferPool() {
  max_cached_bytes_ =
      static_cast<uint64_t>(GetEnvOr("STSM_POOL_MAX_MB", 512)) << 20;
  recycling_enabled_ =
      !kSanitizerBuild && GetEnvOr("STSM_POOL", 1) != 0;
}

std::vector<float> BufferPool::AcquireBytes(int64_t bytes, bool zero) {
  STSM_CHECK_GE(bytes, 0);
  if (bytes == 0) return {};
  // The carrier vector is float-typed; round the byte request up to whole
  // floats (a bf16 Storage with an odd element count over-allocates by at
  // most 2 bytes).
  const int64_t n = (bytes + static_cast<int64_t>(sizeof(float)) - 1) /
                    static_cast<int64_t>(sizeof(float));
  std::vector<float> buffer;
  bool hit = false;
  {
    MutexLock lock(mutex_);
    stats_.acquires++;
    stats_.bytes_requested += static_cast<uint64_t>(bytes);
    const int first = BucketForRequest(bytes);
    const int last = std::min(first + kMaxWasteClasses, kNumBuckets - 1);
    for (int b = first; b <= last && !hit; ++b) {
      auto& bucket = buckets_[b];
      if (!bucket.empty()) {
        buffer = std::move(bucket.back());
        bucket.pop_back();
        stats_.cached_buffers--;
        stats_.cached_bytes -= buffer.capacity() * sizeof(float);
        stats_.hits++;
        stats_.bytes_reused += static_cast<uint64_t>(bytes);
        hit = true;
      }
    }
    if (!hit) stats_.misses++;
    stats_.live_buffers++;
  }
  if (hit) {
    if (zero) {
      buffer.assign(static_cast<size_t>(n), 0.0f);
    } else {
      buffer.resize(static_cast<size_t>(n));
    }
  } else {
    // Fresh allocation, rounded up to the bucket's byte size so the buffer
    // recycles cleanly (capacity stays in its class across resize calls).
    // Requests below one float still get a one-float carrier.
    const size_t bucket_floats =
        std::max<size_t>(1, (size_t{1} << BucketForRequest(bytes)) /
                                sizeof(float));
    buffer.reserve(bucket_floats);
    buffer.resize(static_cast<size_t>(n), 0.0f);
  }
  return buffer;
}

void BufferPool::Release(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;
  std::vector<float> to_free;  // Freed outside the lock.
  {
    MutexLock lock(mutex_);
    stats_.releases++;
    stats_.live_buffers--;
    const uint64_t bytes = buffer.capacity() * sizeof(float);
    if (recycling_enabled_ &&
        stats_.cached_bytes + bytes <= max_cached_bytes_) {
      const int b = BucketForCapacity(bytes);
      buckets_[b].push_back(std::move(buffer));
      stats_.cached_buffers++;
      stats_.cached_bytes += bytes;
    } else {
      to_free = std::move(buffer);
    }
  }
}

void BufferPool::RecordAdopt() {
  MutexLock lock(mutex_);
  stats_.adopts++;
  stats_.live_buffers++;
}

BufferPoolStats BufferPool::Stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void BufferPool::Clear() {
  std::vector<std::vector<float>> dropped;
  MutexLock lock(mutex_);
  for (auto& bucket : buckets_) {
    for (auto& buffer : bucket) dropped.push_back(std::move(buffer));
    bucket.clear();
  }
  stats_.cached_buffers = 0;
  stats_.cached_bytes = 0;
}

void BufferPool::ResetStats() {
  MutexLock lock(mutex_);
  const uint64_t cached_buffers = stats_.cached_buffers;
  const uint64_t cached_bytes = stats_.cached_bytes;
  const uint64_t live = stats_.live_buffers;
  stats_ = BufferPoolStats{};
  stats_.cached_buffers = cached_buffers;
  stats_.cached_bytes = cached_bytes;
  stats_.live_buffers = live;
  exported_ = BufferPoolStats{};
}

void BufferPool::set_recycling_enabled(bool enabled) {
  MutexLock lock(mutex_);
  recycling_enabled_ = !kSanitizerBuild && enabled;
}

void BufferPool::RecordProfCounters() {
  BufferPoolStats delta;
  {
    MutexLock lock(mutex_);
    delta.acquires = stats_.acquires - exported_.acquires;
    delta.hits = stats_.hits - exported_.hits;
    delta.misses = stats_.misses - exported_.misses;
    delta.adopts = stats_.adopts - exported_.adopts;
    delta.releases = stats_.releases - exported_.releases;
    delta.bytes_requested =
        stats_.bytes_requested - exported_.bytes_requested;
    delta.bytes_reused = stats_.bytes_reused - exported_.bytes_reused;
    exported_ = stats_;
  }
  STSM_PROF_COUNT("pool.acquire", delta.acquires);
  STSM_PROF_COUNT("pool.hit", delta.hits);
  STSM_PROF_COUNT("pool.miss", delta.misses);
  STSM_PROF_COUNT("pool.adopt", delta.adopts);
  STSM_PROF_COUNT("pool.release", delta.releases);
  STSM_PROF_COUNT("pool.bytes_requested", delta.bytes_requested);
  STSM_PROF_COUNT("pool.bytes_reused", delta.bytes_reused);
}

void RecordPoolProfCounters() { BufferPool::Instance().RecordProfCounters(); }

}  // namespace stsm
