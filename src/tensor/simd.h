// Runtime SIMD dispatch for the tensor substrate.
//
// The scalar kernels in ops.cc / gemm.cc are the reference semantics; this
// header exposes an optional table of vectorized replacements for their
// contiguous fast paths. The table is built in a separate translation unit
// (simd_avx2.cc) compiled with -mavx2 -mfma, selected at runtime via CPUID,
// and can be vetoed with STSM_SIMD=off (env) or -DSTSM_SIMD=OFF (CMake), so
// non-x86 builds and the sanitizer lanes keep working with the scalar code
// unchanged.
//
// Determinism contract (DESIGN.md §10):
//  - Elementwise kernels (add/sub/mul/div/max/min/relu/... and the in-place
//    trio) are BITWISE identical to the scalar reference for every input,
//    including NaN, ±Inf, ±0.0 and denormals: each output element is the
//    same single correctly-rounded operation in either path.
//  - max_row/min_row reproduce the scalar strict-compare / first-index-wins
//    reduction exactly (bitwise values AND argmax indices); rows containing
//    NaN are declined (return false) and the caller must run the scalar code.
//  - sum and softmax_row change the accumulation order (lane-split doubles)
//    and softmax_row uses a polynomial exp, so they are ULP-bounded against
//    the scalar reference, not bitwise. They are still deterministic
//    run-to-run, and layout-independent as long as callers feed every layout
//    through the same kernel (ops.cc gathers strided rows into scratch).
//  - gemm_micro uses FMA and a wider tile, so PackedGemm under SIMD is
//    ULP-bounded against scalar PackedGemm; within one dispatch mode it
//    stays bitwise reproducible and stride/thread-count independent.

#ifndef STSM_TENSOR_SIMD_H_
#define STSM_TENSOR_SIMD_H_

#include <cstdint>

namespace stsm {
namespace simd {

// y[i] = op(a[i], b[i]) over contiguous arrays.
using BinaryKernel = void (*)(const float* a, const float* b, float* y,
                              int64_t n);
// y[i] = op(x[i], p); p is the op parameter (leaky-relu alpha, the scalar
// operand of Add(x, c), ...) and is ignored by parameter-free ops.
using UnaryKernel = void (*)(const float* x, float* y, int64_t n, float p);

struct KernelTable {
  // ---- Packed GEMM microkernel ----------------------------------------
  // Register-tile geometry the microkernel expects; gemm.cc packs its
  // panels with these instead of kGemmMr/kGemmNr when the table is active.
  int64_t gemm_mr;
  int64_t gemm_nr;
  // acc is a gemm_mr x gemm_nr row-major block, overwritten (not
  // accumulated) with sum_k a_panel[k][i] * b_panel[k][j]. Panels are
  // k-major and zero-padded to full tile width, exactly like the scalar
  // MicroKernel's operands.
  void (*gemm_micro)(int64_t kb, const float* a_panel, const float* b_panel,
                     float* acc);

  // ---- Contiguous elementwise (bitwise-exact vs scalar) ---------------
  BinaryKernel add, sub, mul, div, maximum, minimum;
  // Same ops with a scalar right-hand operand in p (x op c).
  UnaryKernel add_scalar, sub_scalar, mul_scalar, div_scalar;
  UnaryKernel neg, relu, leaky_relu, square, abs, sqrt;

  // ---- In-place (bitwise-exact vs scalar) -----------------------------
  void (*axpy)(float* x, const float* y, float alpha, int64_t n);  // x+=a*y
  void (*scal)(float* x, float v, int64_t n);                      // x*=v
  void (*relu_inplace)(float* x, int64_t n);

  // ---- Reductions ------------------------------------------------------
  // Lane-split double accumulation; ULP-bounded vs the scalar ordered sum.
  double (*sum)(const float* x, int64_t n);
  // Strict-compare extremum with first-index tie-breaking, bitwise equal to
  // the scalar reduction. Returns false (outputs untouched) when the kernel
  // declines the row — NaN present or n too small to vectorize — in which
  // case the caller must run the scalar code.
  bool (*max_row)(const float* x, int64_t n, float* best, int64_t* argbest);
  bool (*min_row)(const float* x, int64_t n, float* best, int64_t* argbest);
  // Softmax over one contiguous row into y. Declines (returns false, y
  // unspecified) when the row holds a non-finite value or is too short;
  // the scalar fallback then reproduces the reference special-value
  // semantics exactly.
  bool (*softmax_row)(const float* x, float* y, int64_t n);

  const char* isa;  // e.g. "avx2+fma"
};

// Table compiled into this binary AND supported by the running CPU, else
// nullptr. Ignores the STSM_SIMD env knob and test overrides.
const KernelTable* Supported();

// The active dispatch: Supported() unless vetoed by STSM_SIMD (off/0/scalar/
// false) or a test override. Kernels and callers fetch this once per op
// call; the pointer is atomic so toggling in tests is race-free.
const KernelTable* Active();

// Force dispatch on (when Supported()) or off. Used by the differential
// tests and the scalar-vs-SIMD benchmarks; production code never calls it.
void SetDispatchForTesting(bool enabled);
// Restore the default env+CPUID decision.
void ResetDispatch();

namespace internal {
// Defined in simd_avx2.cc: the AVX2+FMA table, or nullptr when that TU was
// compiled without STSM_HAVE_AVX2 (non-x86 target or unsupported compiler).
const KernelTable* Avx2Table();
}  // namespace internal

}  // namespace simd
}  // namespace stsm

#endif  // STSM_TENSOR_SIMD_H_
