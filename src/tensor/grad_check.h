// Numerical gradient checking, used by the test suite to validate every
// differentiable operation against central finite differences.

#ifndef STSM_TENSOR_GRAD_CHECK_H_
#define STSM_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace stsm {

struct GradCheckResult {
  bool ok = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  // Index (input tensor, flat element) of the worst mismatch.
  int worst_input = -1;
  int64_t worst_element = -1;
};

// Checks the analytic gradient of `fn` (a scalar-valued function of the
// given inputs) against central differences.
//
// The inputs must be leaf tensors with requires_grad set. `epsilon` is the
// finite-difference step; `tolerance` bounds max(abs_err, rel_err).
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, double epsilon = 1e-3,
    double tolerance = 2e-2);

}  // namespace stsm

#endif  // STSM_TENSOR_GRAD_CHECK_H_
