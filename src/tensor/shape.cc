#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace stsm {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) STSM_CHECK_GE(d, 0);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) STSM_CHECK_GE(d, 0);
}

int64_t Shape::operator[](int d) const {
  const int n = ndim();
  if (d < 0) d += n;
  STSM_CHECK_GE(d, 0) << "in shape" << ToString();
  STSM_CHECK_LT(d, n) << "in shape" << ToString();
  return dims_[d];
}

int64_t Shape::numel() const {
  int64_t total = 1;
  for (int64_t d : dims_) total *= d;
  return total;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t running = 1;
  for (int d = ndim() - 1; d >= 0; --d) {
    strides[d] = running;
    running *= dims_[d];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out << ", ";
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

Shape Shape::Broadcast(const Shape& a, const Shape& b) {
  const int ndim = std::max(a.ndim(), b.ndim());
  std::vector<int64_t> out(ndim);
  for (int i = 0; i < ndim; ++i) {
    // Align from the trailing dimension.
    const int ai = a.ndim() - 1 - i;
    const int bi = b.ndim() - 1 - i;
    const int64_t da = ai >= 0 ? a.dims()[ai] : 1;
    const int64_t db = bi >= 0 ? b.dims()[bi] : 1;
    STSM_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast:" << a.ToString() << "vs" << b.ToString();
    out[ndim - 1 - i] = std::max(da, db);
  }
  return Shape(std::move(out));
}

bool Shape::BroadcastsTo(const Shape& a, const Shape& target) {
  if (a.ndim() > target.ndim()) return false;
  for (int i = 0; i < a.ndim(); ++i) {
    const int64_t da = a.dims()[a.ndim() - 1 - i];
    const int64_t dt = target.dims()[target.ndim() - 1 - i];
    if (da != dt && da != 1) return false;
  }
  return true;
}

}  // namespace stsm
