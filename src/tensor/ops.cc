#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/prof.h"
#include "common/thread_pool.h"
#include "tensor/autograd.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"

namespace stsm {
namespace {

// Gather scratch for feeding strided rows to the SIMD reduction/softmax
// kernels: running every layout through the SAME vector kernel keeps the
// bitwise strided==contiguous invariant that the scalar kernels already
// guarantee. thread_local because MatMul-adjacent callers run ops inside
// ParallelFor workers.
std::vector<float>& TlGatherScratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

using ImplPtr = std::shared_ptr<TensorImpl>;
using autograd::Node;

constexpr float kLogEpsilon = 1e-12f;

// ---- Strided-layout machinery ----------------------------------------------
//
// Kernels address inputs through physical element offsets (relative to
// data(), which is already offset into the Storage). For contiguous tensors
// the physical offset IS the logical index and the kernels take flat-loop
// fast paths; for strided views the offsets come from odometer-built tables
// shared between an op's forward and its autograd node.

// Fills `out` with the physical offset of every logical index over the
// dimension range [d_begin, d_end) of (dims, strides), in logical order.
// One odometer walk — no per-element division.
void FillOffsets(const std::vector<int64_t>& dims,
                 const std::vector<int64_t>& strides, int d_begin, int d_end,
                 std::vector<int64_t>* out) {
  int64_t count = 1;
  for (int d = d_begin; d < d_end; ++d) count *= dims[d];
  out->resize(count);
  std::vector<int64_t> coord(d_end - d_begin, 0);
  int64_t off = 0;
  for (int64_t i = 0; i < count; ++i) {
    (*out)[i] = off;
    for (int d = d_end - 1; d >= d_begin; --d) {
      const int c = d - d_begin;
      if (++coord[c] < dims[d]) {
        off += strides[d];
        break;
      }
      coord[c] = 0;
      off -= strides[d] * (dims[d] - 1);
    }
  }
}

// Logical-to-physical index table of a whole impl. Null means identity (the
// impl is contiguous); kernels branch to their flat fast path on null.
using IndexTable = std::shared_ptr<const std::vector<int64_t>>;

IndexTable BuildPhysTable(const TensorImpl& impl) {
  if (impl.is_contiguous()) return nullptr;
  auto table = std::make_shared<std::vector<int64_t>>();
  FillOffsets(impl.shape.dims(), impl.strides, 0, impl.shape.ndim(),
              table.get());
  return table;
}

int64_t PhysAt(const IndexTable& t, int64_t i) { return t ? (*t)[i] : i; }

// Strides of `in` aligned to the dimensions of `out`, with 0 where `in` is
// broadcast (size 1 or missing dimension). Uses the impl's actual strides,
// so strided views broadcast without materialization.
std::vector<int64_t> BroadcastStrides(const TensorImpl& in, const Shape& out) {
  std::vector<int64_t> result(out.ndim(), 0);
  for (int i = 0; i < in.shape.ndim(); ++i) {
    const int out_d = out.ndim() - 1 - i;
    const int in_d = in.shape.ndim() - 1 - i;
    result[out_d] = (in.shape.dims()[in_d] == 1) ? 0 : in.strides[in_d];
  }
  return result;
}

// Precomputed element-index maps for a broadcast binary op: for every output
// element, the source element in each input. Built once with an odometer
// walk and shared between forward and backward.
struct BroadcastIndexTable {
  // Empty when the corresponding input needs no mapping (same shape as out).
  std::vector<int64_t> index_a;
  std::vector<int64_t> index_b;
};

std::vector<int64_t> BuildIndexTable(const TensorImpl& in, const Shape& out) {
  std::vector<int64_t> table;
  FillOffsets(out.dims(), BroadcastStrides(in, out), 0, out.ndim(), &table);
  return table;
}

// True when `in` equals the trailing dimensions of `out` (after dropping
// leading 1s), i.e. its elements repeat with period in.numel() — the common
// bias-add pattern, handled with a modulo instead of an index table.
bool IsSuffixBroadcast(const Shape& in, const Shape& out) {
  int in_d = in.ndim() - 1;
  // Skip trailing agreement.
  for (int out_d = out.ndim() - 1; out_d >= 0 && in_d >= 0; --out_d, --in_d) {
    if (in.dims()[in_d] != out.dims()[out_d]) return false;
  }
  for (; in_d >= 0; --in_d) {
    if (in.dims()[in_d] != 1) return false;
  }
  return true;
}

// Index bookkeeping shared by a broadcast binary op's forward and backward.
// The a_same / a_suffix fast paths index the input linearly, so they also
// require the input to be contiguous; strided views go through the table.
struct BinaryLayout {
  int64_t n = 0, an = 0, bn = 0;
  bool a_same = false, b_same = false;
  bool a_suffix = false, b_suffix = false;
  std::shared_ptr<BroadcastIndexTable> table;

  int64_t a_index(int64_t i) const {
    return a_same ? i : (a_suffix ? i % an : table->index_a[i]);
  }
  int64_t b_index(int64_t i) const {
    return b_same ? i : (b_suffix ? i % bn : table->index_b[i]);
  }
};

// ---- Node subclasses --------------------------------------------------------
//
// One class per op family. Each carries its saved inputs via the Node base
// (strong refs, released after Run) plus whatever precomputed state the
// gradient needs. Apply() accumulates into inputs that require grad.

template <typename DfA, typename DfB>
class BinaryNode : public Node {
 public:
  BinaryNode(const char* bwd_name, ImplPtr a, ImplPtr b, BinaryLayout layout,
             DfA dfa, DfB dfb)
      : Node({std::move(a), std::move(b)}),
        bwd_name_(bwd_name),
        layout_(std::move(layout)),
        dfa_(dfa),
        dfb_(dfb) {}

  const char* name() const override { return bwd_name_; }

 protected:
  void Apply(TensorImpl* output) override {
    STSM_PROF_SCOPE(bwd_name_);
    const BinaryLayout& l = layout_;
    TensorImpl* ai = inputs_[0].get();
    TensorImpl* bi = inputs_[1].get();
    const float* gout = output->grad();
    const float* av = ai->data();
    const float* bv = bi->data();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      float* ga = ai->grad();
      if (l.a_same && l.b_same) {
        for (int64_t i = 0; i < l.n; ++i) {
          ga[i] += gout[i] * dfa_(av[i], bv[i]);
        }
      } else {
        for (int64_t i = 0; i < l.n; ++i) {
          const int64_t ia = l.a_index(i);
          ga[ia] += gout[i] * dfa_(av[ia], bv[l.b_index(i)]);
        }
      }
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      float* gb = bi->grad();
      if (l.a_same && l.b_same) {
        for (int64_t i = 0; i < l.n; ++i) {
          gb[i] += gout[i] * dfb_(av[i], bv[i]);
        }
      } else {
        for (int64_t i = 0; i < l.n; ++i) {
          const int64_t ib = l.b_index(i);
          gb[ib] += gout[i] * dfb_(av[l.a_index(i)], bv[ib]);
        }
      }
    }
  }

  void ReleaseSaved() override { layout_.table.reset(); }

 private:
  const char* bwd_name_;
  BinaryLayout layout_;
  DfA dfa_;
  DfB dfb_;
};

template <typename Dfx>
class UnaryNode : public Node {
 public:
  UnaryNode(const char* bwd_name, ImplPtr x, IndexTable table, Dfx dfx)
      : Node({std::move(x)}),
        bwd_name_(bwd_name),
        table_(std::move(table)),
        dfx_(dfx) {}

  const char* name() const override { return bwd_name_; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE(bwd_name_);
    xi->EnsureGrad();
    const int64_t n = output->shape.numel();
    const float* gout = output->grad();
    const float* xv = xi->data();
    const float* yv = output->data();
    float* gx = xi->grad();
    if (table_ == nullptr) {
      for (int64_t i = 0; i < n; ++i) gx[i] += gout[i] * dfx_(xv[i], yv[i]);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        const int64_t p = (*table_)[i];
        gx[p] += gout[i] * dfx_(xv[p], yv[i]);
      }
    }
  }

  void ReleaseSaved() override { table_.reset(); }

 private:
  const char* bwd_name_;
  IndexTable table_;
  Dfx dfx_;
};

}  // namespace

// ---- Elementwise op scaffolding ---------------------------------------------

namespace {

// Generic broadcasting elementwise binary op.
//
// `fwd(a, b)` computes the result; `dfa(a, b)` and `dfb(a, b)` compute the
// local partial derivatives d out / d a and d out / d b.
//
// Three execution strategies, fastest first: identical shapes (flat loop),
// suffix broadcast on either side (modulo indexing), and a precomputed
// odometer index table for arbitrary broadcasts.
// `fwd_name` / `bwd_name` label the op in the profiler (string literals).
// `vec` selects the op's kernel in simd::KernelTable; when dispatch is
// active and both operands take the flat fast path the vector kernel runs
// instead of the scalar loop (bitwise-identical results by contract).
template <typename Fwd, typename DfA, typename DfB>
Tensor BinaryOp(const char* fwd_name, const char* bwd_name, const Tensor& a,
                const Tensor& b, Fwd fwd, DfA dfa, DfB dfb,
                simd::BinaryKernel simd::KernelTable::*vec = nullptr) {
  STSM_PROF_SCOPE(fwd_name);
  STSM_CHECK(a.defined() && b.defined());
  const Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  ImplPtr result =
      internal::MakeResult(out_shape, {a.impl(), b.impl()}, /*zero=*/false);

  BinaryLayout layout;
  layout.n = out_shape.numel();
  layout.an = a.numel();
  layout.bn = b.numel();
  const bool a_contig = a.impl()->is_contiguous();
  const bool b_contig = b.impl()->is_contiguous();
  layout.a_same = a_contig && a.shape() == out_shape;
  layout.b_same = b_contig && b.shape() == out_shape;
  layout.a_suffix =
      layout.a_same || (a_contig && IsSuffixBroadcast(a.shape(), out_shape));
  layout.b_suffix =
      layout.b_same || (b_contig && IsSuffixBroadcast(b.shape(), out_shape));
  layout.table = std::make_shared<BroadcastIndexTable>();
  if (!layout.a_suffix) {
    layout.table->index_a = BuildIndexTable(*a.impl(), out_shape);
  }
  if (!layout.b_suffix) {
    layout.table->index_b = BuildIndexTable(*b.impl(), out_shape);
  }

  const float* ad = a.data();
  const float* bd = b.data();
  float* out = result->data();
  if (layout.a_same && layout.b_same) {
    const simd::KernelTable* vk = vec != nullptr ? simd::Active() : nullptr;
    if (vk != nullptr) {
      (vk->*vec)(ad, bd, out, layout.n);
    } else {
      for (int64_t i = 0; i < layout.n; ++i) out[i] = fwd(ad[i], bd[i]);
    }
  } else {
    for (int64_t i = 0; i < layout.n; ++i) {
      out[i] = fwd(ad[layout.a_index(i)], bd[layout.b_index(i)]);
    }
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<BinaryNode<DfA, DfB>>(
        bwd_name, a.impl(), b.impl(), std::move(layout), dfa, dfb);
  }
  return Tensor(std::move(result));
}

// Generic elementwise unary op. `dfx(x, y)` is d out / d x given the input
// value and the already-computed output value. `vec` selects the op's SIMD
// kernel (run on the contiguous fast path only — bitwise-identical by
// contract) and `p` is the scalar parameter forwarded to it (leaky-relu
// alpha, the constant of Add(x, c), ...).
template <typename Fwd, typename Dfx>
Tensor UnaryOp(const char* fwd_name, const char* bwd_name, const Tensor& x,
               Fwd fwd, Dfx dfx,
               simd::UnaryKernel simd::KernelTable::*vec = nullptr,
               float p = 0.0f) {
  STSM_PROF_SCOPE(fwd_name);
  STSM_CHECK(x.defined());
  ImplPtr result =
      internal::MakeResult(x.shape(), {x.impl()}, /*zero=*/false);
  const int64_t n = x.numel();
  const float* xd = x.data();
  float* out = result->data();
  IndexTable table = BuildPhysTable(*x.impl());
  if (table == nullptr) {
    const simd::KernelTable* vk = vec != nullptr ? simd::Active() : nullptr;
    if (vk != nullptr) {
      (vk->*vec)(xd, out, n, p);
    } else {
      for (int64_t i = 0; i < n; ++i) out[i] = fwd(xd[i]);
    }
  } else {
    for (int64_t i = 0; i < n; ++i) out[i] = fwd(xd[(*table)[i]]);
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<UnaryNode<Dfx>>(
        bwd_name, x.impl(), std::move(table), dfx);
  }
  return Tensor(std::move(result));
}

}  // namespace

// ---- Elementwise binary -------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "add.fwd", "add.bwd", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      &simd::KernelTable::add);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "sub.fwd", "sub.bwd", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      &simd::KernelTable::sub);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "mul.fwd", "mul.bwd", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; },
      &simd::KernelTable::mul);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "div.fwd", "div.bwd", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); },
      &simd::KernelTable::div);
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "maximum.fwd", "maximum.bwd", a, b,
      [](float x, float y) { return x >= y ? x : y; },
      [](float x, float y) { return x >= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x >= y ? 0.0f : 1.0f; },
      &simd::KernelTable::maximum);
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "minimum.fwd", "minimum.bwd", a, b,
      [](float x, float y) { return x <= y ? x : y; },
      [](float x, float y) { return x <= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x <= y ? 0.0f : 1.0f; },
      &simd::KernelTable::minimum);
}

// Scalar right-hand operands run as unary ops so the contiguous fast path
// can use the *_scalar SIMD kernels (a broadcast from Tensor::Scalar would
// take the index-table path instead). Same values and gradients either way.
Tensor Add(const Tensor& a, float b) {
  return UnaryOp(
      "add_scalar.fwd", "add_scalar.bwd", a,
      [b](float v) { return v + b; }, [](float, float) { return 1.0f; },
      &simd::KernelTable::add_scalar, b);
}
Tensor Sub(const Tensor& a, float b) {
  return UnaryOp(
      "sub_scalar.fwd", "sub_scalar.bwd", a,
      [b](float v) { return v - b; }, [](float, float) { return 1.0f; },
      &simd::KernelTable::sub_scalar, b);
}
Tensor Sub(float a, const Tensor& b) { return Sub(Tensor::Scalar(a), b); }
Tensor Mul(const Tensor& a, float b) {
  return UnaryOp(
      "mul_scalar.fwd", "mul_scalar.bwd", a,
      [b](float v) { return v * b; }, [b](float, float) { return b; },
      &simd::KernelTable::mul_scalar, b);
}
Tensor Div(const Tensor& a, float b) {
  return UnaryOp(
      "div_scalar.fwd", "div_scalar.bwd", a,
      [b](float v) { return v / b; }, [b](float, float) { return 1.0f / b; },
      &simd::KernelTable::div_scalar, b);
}
Tensor Div(float a, const Tensor& b) { return Div(Tensor::Scalar(a), b); }

// ---- Elementwise unary ---------------------------------------------------------

Tensor Neg(const Tensor& x) {
  return UnaryOp(
      "neg.fwd", "neg.bwd", x, [](float v) { return -v; },
      [](float, float) { return -1.0f; }, &simd::KernelTable::neg);
}

Tensor Relu(const Tensor& x) {
  return UnaryOp(
      "relu.fwd", "relu.bwd", x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; },
      &simd::KernelTable::relu);
}

Tensor LeakyRelu(const Tensor& x, float alpha) {
  return UnaryOp(
      "leaky_relu.fwd", "leaky_relu.bwd", x,
      [alpha](float v) { return v > 0.0f ? v : alpha * v; },
      [alpha](float v, float) { return v > 0.0f ? 1.0f : alpha; },
      &simd::KernelTable::leaky_relu, alpha);
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryOp(
      "sigmoid.fwd", "sigmoid.bwd", x,
      [](float v) {
        // Numerically stable logistic.
        return v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                         : std::exp(v) / (1.0f + std::exp(v));
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryOp(
      "tanh.fwd", "tanh.bwd", x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& x) {
  return UnaryOp(
      "exp.fwd", "exp.bwd", x, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  return UnaryOp(
      "log.fwd", "log.bwd", x,
      [](float v) { return std::log(std::max(v, kLogEpsilon)); },
      [](float v, float) { return 1.0f / std::max(v, kLogEpsilon); });
}

Tensor Sqrt(const Tensor& x) {
  return UnaryOp(
      "sqrt.fwd", "sqrt.bwd", x, [](float v) { return std::sqrt(v); },
      [](float, float y) { return y > 0.0f ? 0.5f / y : 0.0f; },
      &simd::KernelTable::sqrt);
}

Tensor Square(const Tensor& x) {
  return UnaryOp(
      "square.fwd", "square.bwd", x, [](float v) { return v * v; },
      [](float v, float) { return 2.0f * v; }, &simd::KernelTable::square);
}

Tensor Abs(const Tensor& x) {
  return UnaryOp(
      "abs.fwd", "abs.bwd", x, [](float v) { return std::fabs(v); },
      [](float v, float) { return v >= 0.0f ? 1.0f : -1.0f; },
      &simd::KernelTable::abs);
}

Tensor Pow(const Tensor& x, float exponent) {
  return UnaryOp(
      "pow.fwd", "pow.bwd", x,
      [exponent](float v) { return std::pow(v, exponent); },
      [exponent](float v, float) {
        return exponent * std::pow(v, exponent - 1.0f);
      });
}

// ---- Shape manipulation ----------------------------------------------------------

namespace {

// Gradient for Contiguous(): scatter-adds the compacted gradient back to the
// strided positions of the input (through the shared fwd/bwd index table).
class ContiguousNode : public Node {
 public:
  ContiguousNode(ImplPtr x, IndexTable table)
      : Node({std::move(x)}), table_(std::move(table)) {}

  const char* name() const override { return "contiguous"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE("contiguous.bwd");
    xi->EnsureGrad();
    const int64_t n = output->shape.numel();
    const float* gout = output->grad();
    float* gx = xi->grad();
    for (int64_t i = 0; i < n; ++i) gx[(*table_)[i]] += gout[i];
  }

  void ReleaseSaved() override { table_.reset(); }

 private:
  IndexTable table_;
};

}  // namespace

Tensor Contiguous(const Tensor& x) {
  STSM_CHECK(x.defined());
  // Already compact: same handle, no allocation, no graph node.
  if (x.impl()->is_contiguous()) return x;
  STSM_PROF_SCOPE("contiguous.fwd");
  IndexTable table = BuildPhysTable(*x.impl());
  ImplPtr result = internal::MakeResult(x.shape(), {x.impl()}, /*zero=*/false);
  const int64_t n = x.numel();
  const float* xd = x.data();
  float* out = result->data();
  for (int64_t i = 0; i < n; ++i) out[i] = xd[(*table)[i]];

  if (result->requires_grad) {
    result->grad_fn =
        std::make_shared<ContiguousNode>(x.impl(), std::move(table));
  }
  return Tensor(std::move(result));
}

Tensor Reshape(const Tensor& x, const Shape& shape) {
  STSM_CHECK(x.defined());
  STSM_CHECK_EQ(x.numel(), shape.numel())
      << "reshape" << x.shape().ToString() << "->" << shape.ToString();
  // Same elements, new metadata: a zero-copy view whenever the source is
  // row-major; a strided view must compact first (differentiably). The
  // counter tracks how often callers pay that copy (see table5 profile).
  if (!x.impl()->is_contiguous()) STSM_PROF_COUNT("contiguous.via_reshape", 1);
  const Tensor src = x.impl()->is_contiguous() ? x : Contiguous(x);
  return Tensor(internal::MakeView(src.impl(), shape, shape.Strides(),
                                   src.impl()->offset));
}

Tensor Transpose(const Tensor& x, int dim0, int dim1) {
  STSM_PROF_SCOPE("transpose.fwd");
  STSM_CHECK(x.defined());
  const int ndim = x.ndim();
  if (dim0 < 0) dim0 += ndim;
  if (dim1 < 0) dim1 += ndim;
  STSM_CHECK(dim0 >= 0 && dim0 < ndim && dim1 >= 0 && dim1 < ndim);
  // Pure metadata: swap the two dimensions' sizes and strides. No element
  // moves; gradients land through the shared grad buffer.
  std::vector<int64_t> out_dims = x.shape().dims();
  std::vector<int64_t> out_strides = x.impl()->strides;
  std::swap(out_dims[dim0], out_dims[dim1]);
  std::swap(out_strides[dim0], out_strides[dim1]);
  return Tensor(internal::MakeView(x.impl(), Shape(out_dims),
                                   std::move(out_strides),
                                   x.impl()->offset));
}

Tensor Slice(const Tensor& x, int dim, int64_t start, int64_t end) {
  STSM_PROF_SCOPE("slice.fwd");
  STSM_CHECK(x.defined());
  const int ndim = x.ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);
  STSM_CHECK(start >= 0 && start <= end && end <= x.shape()[dim])
      << "slice [" << start << "," << end << ") of" << x.shape().ToString();

  // A slice along ANY dimension is a zero-copy view: bump the offset to the
  // window start and shrink the dimension, keeping the strides.
  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims[dim] = end - start;
  return Tensor(internal::MakeView(
      x.impl(), Shape(out_dims), x.impl()->strides,
      x.impl()->offset + start * x.impl()->strides[dim]));
}

Tensor Narrow(const Tensor& x, int dim, int64_t start, int64_t length) {
  return Slice(x, dim, start, start + length);
}

Tensor Select(const Tensor& x, int dim, int64_t index) {
  STSM_CHECK(x.defined());
  const int ndim = x.ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);
  STSM_CHECK(index >= 0 && index < x.shape()[dim])
      << "select index" << index << "of" << x.shape().ToString();
  std::vector<int64_t> out_dims = x.shape().dims();
  std::vector<int64_t> out_strides = x.impl()->strides;
  const int64_t offset = x.impl()->offset + index * out_strides[dim];
  out_dims.erase(out_dims.begin() + dim);
  out_strides.erase(out_strides.begin() + dim);
  return Tensor(internal::MakeView(x.impl(), Shape(out_dims),
                                   std::move(out_strides), offset));
}

namespace {

class ConcatNode : public Node {
 public:
  ConcatNode(std::vector<ImplPtr> inputs, int64_t outer, int64_t inner,
             int64_t concat_size, std::vector<int64_t> offsets,
             std::vector<int64_t> dim_sizes)
      : Node(std::move(inputs)),
        outer_(outer),
        inner_(inner),
        concat_size_(concat_size),
        offsets_(std::move(offsets)),
        dim_sizes_(std::move(dim_sizes)) {}

  const char* name() const override { return "concat"; }

 protected:
  void Apply(TensorImpl* output) override {
    const float* gout = output->grad();
    for (size_t t = 0; t < inputs_.size(); ++t) {
      TensorImpl* input = inputs_[t].get();
      if (!input->requires_grad) continue;
      input->EnsureGrad();
      float* gx = input->grad();
      for (int64_t o = 0; o < outer_; ++o) {
        const float* src = gout + (o * concat_size_ + offsets_[t]) * inner_;
        float* dst = gx + o * dim_sizes_[t] * inner_;
        for (int64_t i = 0; i < dim_sizes_[t] * inner_; ++i) dst[i] += src[i];
      }
    }
  }

  void ReleaseSaved() override {
    offsets_.clear();
    offsets_.shrink_to_fit();
    dim_sizes_.clear();
    dim_sizes_.shrink_to_fit();
  }

 private:
  int64_t outer_, inner_, concat_size_;
  std::vector<int64_t> offsets_;
  std::vector<int64_t> dim_sizes_;
};

}  // namespace

Tensor Concat(const std::vector<Tensor>& tensors, int dim) {
  STSM_PROF_SCOPE("concat.fwd");
  STSM_CHECK(!tensors.empty());
  const int ndim = tensors[0].ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);

  int64_t concat_size = 0;
  for (const Tensor& t : tensors) {
    STSM_CHECK_EQ(t.ndim(), ndim);
    for (int d = 0; d < ndim; ++d) {
      if (d != dim) STSM_CHECK_EQ(t.shape()[d], tensors[0].shape()[d]);
    }
    concat_size += t.shape()[dim];
  }
  std::vector<int64_t> out_dims = tensors[0].shape().dims();
  out_dims[dim] = concat_size;
  const Shape out_shape(out_dims);

  // The block-copy kernel below needs linear layouts; compact any strided
  // views first (differentiable, and a no-op for contiguous inputs).
  std::vector<Tensor> parts;
  parts.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    if (!t.impl()->is_contiguous()) STSM_PROF_COUNT("contiguous.via_concat", 1);
    parts.push_back(Contiguous(t));
  }

  std::vector<ImplPtr> inputs;
  inputs.reserve(parts.size());
  for (const Tensor& t : parts) inputs.push_back(t.impl());
  ImplPtr result = internal::MakeResult(out_shape, inputs, /*zero=*/false);

  int64_t outer = 1, inner = 1;
  for (int d = 0; d < dim; ++d) outer *= out_shape[d];
  for (int d = dim + 1; d < ndim; ++d) inner *= out_shape[d];

  float* out = result->data();
  int64_t offset = 0;  // Offset along the concat dimension.
  std::vector<int64_t> offsets(parts.size());
  std::vector<int64_t> dim_sizes(parts.size());
  for (size_t t = 0; t < parts.size(); ++t) {
    offsets[t] = offset;
    const int64_t this_dim = parts[t].shape()[dim];
    dim_sizes[t] = this_dim;
    const float* src = parts[t].data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(out + (o * concat_size + offset) * inner,
                  src + o * this_dim * inner,
                  sizeof(float) * this_dim * inner);
    }
    offset += this_dim;
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<ConcatNode>(
        std::move(inputs), outer, inner, concat_size, std::move(offsets),
        std::move(dim_sizes));
  }
  return Tensor(std::move(result));
}

namespace {

class IndexSelectNode : public Node {
 public:
  IndexSelectNode(ImplPtr x, int64_t outer, int64_t inner, int64_t dim_size,
                  std::vector<int> indices)
      : Node({std::move(x)}),
        outer_(outer),
        inner_(inner),
        dim_size_(dim_size),
        indices_(std::move(indices)) {}

  const char* name() const override { return "index_select"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t k = static_cast<int64_t>(indices_.size());
    const float* gout = output->grad();
    float* gx = xi->grad();
    for (int64_t o = 0; o < outer_; ++o) {
      for (int64_t j = 0; j < k; ++j) {
        const float* src = gout + (o * k + j) * inner_;
        float* dst = gx + (o * dim_size_ + indices_[j]) * inner_;
        for (int64_t i = 0; i < inner_; ++i) dst[i] += src[i];
      }
    }
  }

  void ReleaseSaved() override {
    indices_.clear();
    indices_.shrink_to_fit();
  }

 private:
  int64_t outer_, inner_, dim_size_;
  std::vector<int> indices_;
};

}  // namespace

Tensor IndexSelect(const Tensor& xin, int dim, const std::vector<int>& indices) {
  STSM_PROF_SCOPE("index_select.fwd");
  STSM_CHECK(xin.defined());
  // The memcpy gather below assumes a linear layout.
  if (!xin.impl()->is_contiguous()) {
    STSM_PROF_COUNT("contiguous.via_index_select", 1);
  }
  const Tensor x = Contiguous(xin);
  const int ndim = x.ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);
  const int64_t dim_size = x.shape()[dim];
  for (int idx : indices) {
    STSM_CHECK(idx >= 0 && idx < dim_size)
        << "index" << idx << "out of range for dim of size" << dim_size;
  }

  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims[dim] = static_cast<int64_t>(indices.size());
  const Shape out_shape(out_dims);
  ImplPtr result = internal::MakeResult(out_shape, {x.impl()}, /*zero=*/false);

  int64_t outer = 1, inner = 1;
  for (int d = 0; d < dim; ++d) outer *= x.shape()[d];
  for (int d = dim + 1; d < ndim; ++d) inner *= x.shape()[d];
  const int64_t k = static_cast<int64_t>(indices.size());

  const float* xd = x.data();
  float* out = result->data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < k; ++j) {
      std::memcpy(out + (o * k + j) * inner,
                  xd + (o * dim_size + indices[j]) * inner,
                  sizeof(float) * inner);
    }
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<IndexSelectNode>(
        x.impl(), outer, inner, dim_size, indices);
  }
  return Tensor(std::move(result));
}

Tensor Unsqueeze(const Tensor& x, int dim) {
  const int ndim = x.ndim();
  if (dim < 0) dim += ndim + 1;
  STSM_CHECK(dim >= 0 && dim <= ndim);
  // Direct stride manipulation (not Reshape): works on strided views without
  // compaction. The size-1 dimension is never stepped, so its stride only
  // has to keep a contiguous layout canonical.
  std::vector<int64_t> dims = x.shape().dims();
  std::vector<int64_t> strides = x.impl()->strides;
  const int64_t new_stride = (dim < ndim) ? dims[dim] * strides[dim] : 1;
  dims.insert(dims.begin() + dim, 1);
  strides.insert(strides.begin() + dim, new_stride);
  return Tensor(internal::MakeView(x.impl(), Shape(dims), std::move(strides),
                                   x.impl()->offset));
}

Tensor Squeeze(const Tensor& x, int dim) {
  const int ndim = x.ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);
  STSM_CHECK_EQ(x.shape()[dim], 1);
  std::vector<int64_t> dims = x.shape().dims();
  std::vector<int64_t> strides = x.impl()->strides;
  dims.erase(dims.begin() + dim);
  strides.erase(strides.begin() + dim);
  return Tensor(internal::MakeView(x.impl(), Shape(dims), std::move(strides),
                                   x.impl()->offset));
}

Tensor BroadcastTo(const Tensor& x, const Shape& shape) {
  STSM_CHECK(Shape::BroadcastsTo(x.shape(), shape))
      << x.shape().ToString() << "does not broadcast to" << shape.ToString();
  // Multiplying by ones materialises the broadcast with correct gradients.
  return Mul(x, Tensor::Ones(shape));
}

// ---- Reductions -------------------------------------------------------------------

namespace {

class SumNode : public Node {
 public:
  SumNode(ImplPtr x, IndexTable table)
      : Node({std::move(x)}), table_(std::move(table)) {}
  const char* name() const override { return "sum"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE("sum.bwd");
    xi->EnsureGrad();
    const int64_t n = xi->shape.numel();
    const float g = output->grad()[0];
    float* gx = xi->grad();
    if (table_ == nullptr) {
      for (int64_t i = 0; i < n; ++i) gx[i] += g;
    } else {
      for (int64_t i = 0; i < n; ++i) gx[(*table_)[i]] += g;
    }
  }

  void ReleaseSaved() override { table_.reset(); }

 private:
  IndexTable table_;
};

}  // namespace

Tensor Sum(const Tensor& x) {
  STSM_PROF_SCOPE("sum.fwd");
  STSM_CHECK(x.defined());
  ImplPtr result = internal::MakeResult(Shape({}), {x.impl()}, /*zero=*/false);
  const float* xd = x.data();
  const int64_t n = x.numel();
  IndexTable table = BuildPhysTable(*x.impl());
  const simd::KernelTable* vk = simd::Active();
  double acc = 0.0;
  if (vk != nullptr) {
    // Every layout goes through the same lane-split kernel: a strided view
    // is gathered first so its accumulation order — and therefore its
    // result — stays bitwise equal to the contiguous case.
    const float* src = xd;
    if (table != nullptr) {
      std::vector<float>& scratch = TlGatherScratch();
      scratch.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) scratch[i] = xd[(*table)[i]];
      src = scratch.data();
    }
    acc = vk->sum(src, n);
  } else if (table == nullptr) {
    for (int64_t i = 0; i < n; ++i) acc += xd[i];
  } else {
    for (int64_t i = 0; i < n; ++i) acc += xd[(*table)[i]];
  }
  result->data()[0] = static_cast<float>(acc);

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<SumNode>(x.impl(), std::move(table));
  }
  return Tensor(std::move(result));
}

namespace {

// Shared reduce-along-dim scaffolding: splits x into [outer, dim, inner].
struct DimSplit {
  int dim;
  int64_t outer = 1;
  int64_t reduce = 1;
  int64_t inner = 1;
};

DimSplit SplitAtDim(const Shape& shape, int dim) {
  const int ndim = shape.ndim();
  if (dim < 0) dim += ndim;
  STSM_CHECK(dim >= 0 && dim < ndim);
  DimSplit split;
  split.dim = dim;
  for (int d = 0; d < dim; ++d) split.outer *= shape[d];
  split.reduce = shape[dim];
  for (int d = dim + 1; d < ndim; ++d) split.inner *= shape[d];
  return split;
}

Shape ReducedShape(const Shape& shape, int dim, bool keepdim) {
  const int ndim = shape.ndim();
  if (dim < 0) dim += ndim;
  std::vector<int64_t> dims = shape.dims();
  if (keepdim) {
    dims[dim] = 1;
  } else {
    dims.erase(dims.begin() + dim);
  }
  return Shape(dims);
}

// Physical addressing for a [outer, reduce, inner] split of a (possibly
// strided) impl: element (o, r, i) lives at
//   outer_off[o] + r * reduce_stride + inner_off[i]
// relative to data(). For a contiguous impl this reproduces the flat
// (o * reduce + r) * inner + i arithmetic exactly (same values, same
// iteration order), so one code path serves both layouts. Shared between an
// op's forward and its node.
struct DimMap {
  std::vector<int64_t> outer_off;
  std::vector<int64_t> inner_off;
  int64_t reduce_stride = 0;
};

std::shared_ptr<const DimMap> BuildDimMap(const TensorImpl& impl,
                                          const DimSplit& s) {
  auto map = std::make_shared<DimMap>();
  const std::vector<int64_t>& dims = impl.shape.dims();
  FillOffsets(dims, impl.strides, 0, s.dim, &map->outer_off);
  FillOffsets(dims, impl.strides, s.dim + 1, impl.shape.ndim(),
              &map->inner_off);
  map->reduce_stride = impl.strides[s.dim];
  return map;
}

class SumDimNode : public Node {
 public:
  SumDimNode(ImplPtr x, DimSplit split, std::shared_ptr<const DimMap> map)
      : Node({std::move(x)}), s_(split), map_(std::move(map)) {}
  const char* name() const override { return "sum_dim"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE("sum_dim.bwd");
    xi->EnsureGrad();
    const DimMap& m = *map_;
    const float* gout = output->grad();
    float* gx = xi->grad();
    for (int64_t o = 0; o < s_.outer; ++o) {
      for (int64_t r = 0; r < s_.reduce; ++r) {
        for (int64_t i = 0; i < s_.inner; ++i) {
          gx[m.outer_off[o] + r * m.reduce_stride + m.inner_off[i]] +=
              gout[o * s_.inner + i];
        }
      }
    }
  }

  void ReleaseSaved() override { map_.reset(); }

 private:
  DimSplit s_;
  std::shared_ptr<const DimMap> map_;
};

}  // namespace

Tensor Sum(const Tensor& x, int dim, bool keepdim) {
  STSM_PROF_SCOPE("sum_dim.fwd");
  STSM_CHECK(x.defined());
  const DimSplit s = SplitAtDim(x.shape(), dim);
  const Shape out_shape = ReducedShape(x.shape(), dim, keepdim);
  ImplPtr result = internal::MakeResult(out_shape, {x.impl()}, /*zero=*/false);

  auto map = BuildDimMap(*x.impl(), s);
  const DimMap& m = *map;
  const float* xd = x.data();
  float* out = result->data();
  const simd::KernelTable* vk = simd::Active();
  if (vk != nullptr) {
    // Same kernel for every layout (unit-stride rows reduce in place,
    // anything else is gathered) so strided==contiguous stays bitwise.
    std::vector<float>& scratch = TlGatherScratch();
    for (int64_t o = 0; o < s.outer; ++o) {
      for (int64_t i = 0; i < s.inner; ++i) {
        const int64_t base = m.outer_off[o] + m.inner_off[i];
        const float* row = xd + base;
        if (m.reduce_stride != 1) {
          scratch.resize(static_cast<size_t>(s.reduce));
          for (int64_t r = 0; r < s.reduce; ++r) {
            scratch[r] = xd[base + r * m.reduce_stride];
          }
          row = scratch.data();
        }
        out[o * s.inner + i] = static_cast<float>(vk->sum(row, s.reduce));
      }
    }
  } else {
    for (int64_t o = 0; o < s.outer; ++o) {
      for (int64_t i = 0; i < s.inner; ++i) {
        const int64_t base = m.outer_off[o] + m.inner_off[i];
        double acc = 0.0;
        for (int64_t r = 0; r < s.reduce; ++r) {
          acc += xd[base + r * m.reduce_stride];
        }
        out[o * s.inner + i] = static_cast<float>(acc);
      }
    }
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<SumDimNode>(x.impl(), s, std::move(map));
  }
  return Tensor(std::move(result));
}

Tensor Mean(const Tensor& x) {
  return Div(Sum(x), static_cast<float>(x.numel()));
}

Tensor Mean(const Tensor& x, int dim, bool keepdim) {
  const DimSplit s = SplitAtDim(x.shape(), dim);
  return Div(Sum(x, dim, keepdim), static_cast<float>(s.reduce));
}

namespace {

class ExtremumNode : public Node {
 public:
  ExtremumNode(ImplPtr x, DimSplit split, std::shared_ptr<const DimMap> map,
               std::vector<int64_t> arg_indices)
      : Node({std::move(x)}),
        s_(split),
        map_(std::move(map)),
        arg_indices_(std::move(arg_indices)) {}

  const char* name() const override { return "extremum_dim"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const DimMap& m = *map_;
    const float* gout = output->grad();
    float* gx = xi->grad();
    for (int64_t o = 0; o < s_.outer; ++o) {
      for (int64_t i = 0; i < s_.inner; ++i) {
        const int64_t r = arg_indices_[o * s_.inner + i];
        gx[m.outer_off[o] + r * m.reduce_stride + m.inner_off[i]] +=
            gout[o * s_.inner + i];
      }
    }
  }

  void ReleaseSaved() override {
    map_.reset();
    arg_indices_.clear();
    arg_indices_.shrink_to_fit();
  }

 private:
  DimSplit s_;
  std::shared_ptr<const DimMap> map_;
  std::vector<int64_t> arg_indices_;
};

// Shared implementation of Max/Min along a dimension.
Tensor ExtremumAlongDim(const Tensor& x, int dim, bool keepdim, bool is_max) {
  STSM_PROF_SCOPE("extremum_dim.fwd");
  STSM_CHECK(x.defined());
  const DimSplit s = SplitAtDim(x.shape(), dim);
  STSM_CHECK_GT(s.reduce, 0);
  const Shape out_shape = ReducedShape(x.shape(), dim, keepdim);
  ImplPtr result = internal::MakeResult(out_shape, {x.impl()}, /*zero=*/false);

  auto map = BuildDimMap(*x.impl(), s);
  const DimMap& m = *map;
  const float* xd = x.data();
  float* out = result->data();
  std::vector<int64_t> arg_indices(static_cast<size_t>(s.outer * s.inner));
  const simd::KernelTable* vk = simd::Active();
  std::vector<float>& scratch = TlGatherScratch();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t i = 0; i < s.inner; ++i) {
      const int64_t base = m.outer_off[o] + m.inner_off[i];
      if (vk != nullptr) {
        // The vector reduction is bitwise-exact (values AND argmax) but
        // declines NaN rows and short rows; those fall through to the
        // scalar scan, which is the semantic reference either way.
        const float* row = xd + base;
        if (m.reduce_stride != 1) {
          scratch.resize(static_cast<size_t>(s.reduce));
          for (int64_t r = 0; r < s.reduce; ++r) {
            scratch[r] = xd[base + r * m.reduce_stride];
          }
          row = scratch.data();
        }
        float best = 0.0f;
        int64_t best_r = 0;
        const bool done = is_max ? vk->max_row(row, s.reduce, &best, &best_r)
                                 : vk->min_row(row, s.reduce, &best, &best_r);
        if (done) {
          out[o * s.inner + i] = best;
          arg_indices[o * s.inner + i] = best_r;
          continue;
        }
      }
      int64_t best_r = 0;
      float best = xd[base];
      for (int64_t r = 1; r < s.reduce; ++r) {
        const float v = xd[base + r * m.reduce_stride];
        if (is_max ? (v > best) : (v < best)) {
          best = v;
          best_r = r;
        }
      }
      out[o * s.inner + i] = best;
      arg_indices[o * s.inner + i] = best_r;
    }
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<ExtremumNode>(
        x.impl(), s, std::move(map), std::move(arg_indices));
  }
  return Tensor(std::move(result));
}

}  // namespace

Tensor Max(const Tensor& x, int dim, bool keepdim) {
  return ExtremumAlongDim(x, dim, keepdim, /*is_max=*/true);
}

Tensor Min(const Tensor& x, int dim, bool keepdim) {
  return ExtremumAlongDim(x, dim, keepdim, /*is_max=*/false);
}

// ---- MatMul -----------------------------------------------------------------------

namespace {

// Batch and stride bookkeeping for broadcasting matmul. Matrix strides come
// from the impls' actual layouts, so transposed or sliced operand views feed
// the packed GEMM directly — MatMul(Transpose(X, -1, -2), W) never
// materializes the transpose; the packing loops absorb it.
struct MatMulPlan {
  int64_t m, k, n;
  int64_t rs_a, cs_a;      // Row/column element strides of a's matrices.
  int64_t rs_b, cs_b;
  Shape batch_shape;       // Broadcast batch dims of the output.
  int64_t batch_count;
  // True when the operand's batches are broadcast-shared across output
  // batches (its gradient then races across batches unless the backward
  // serializes the batch loop).
  bool a_shared = false, b_shared = false;
  // For each output batch index: element offset (relative to data()) of the
  // operand's matrix.
  std::vector<int64_t> a_batch_offset;
  std::vector<int64_t> b_batch_offset;
};

Shape BatchShapeOf(const Shape& s) {
  std::vector<int64_t> dims = s.dims();
  dims.resize(dims.size() - 2);
  return Shape(dims);
}

// Element offset of operand t's matrix for every output batch index, built
// from t's actual batch-dimension strides (0 where t broadcasts).
std::vector<int64_t> BatchOffsets(const TensorImpl& t,
                                  const Shape& batch_shape) {
  const int nb = batch_shape.ndim();
  std::vector<int64_t> strides(nb, 0);
  const int nbt = t.shape.ndim() - 2;
  for (int i = 0; i < nbt; ++i) {
    const int out_d = nb - 1 - i;
    const int in_d = nbt - 1 - i;
    strides[out_d] = (t.shape.dims()[in_d] == 1) ? 0 : t.strides[in_d];
  }
  std::vector<int64_t> offsets;
  FillOffsets(batch_shape.dims(), strides, 0, nb, &offsets);
  return offsets;
}

MatMulPlan PlanMatMul(const TensorImpl& a, const TensorImpl& b) {
  STSM_CHECK_GE(a.shape.ndim(), 2) << "MatMul lhs must be >= 2-D";
  STSM_CHECK_GE(b.shape.ndim(), 2) << "MatMul rhs must be >= 2-D";
  MatMulPlan plan;
  plan.m = a.shape[-2];
  plan.k = a.shape[-1];
  STSM_CHECK_EQ(b.shape[-2], plan.k)
      << "MatMul inner-dim mismatch:" << a.shape.ToString() << "@"
      << b.shape.ToString();
  plan.n = b.shape[-1];
  plan.rs_a = a.strides[a.shape.ndim() - 2];
  plan.cs_a = a.strides[a.shape.ndim() - 1];
  plan.rs_b = b.strides[b.shape.ndim() - 2];
  plan.cs_b = b.strides[b.shape.ndim() - 1];

  const Shape batch_a = BatchShapeOf(a.shape);
  const Shape batch_b = BatchShapeOf(b.shape);
  plan.batch_shape = Shape::Broadcast(batch_a, batch_b);
  plan.batch_count = plan.batch_shape.numel();
  plan.a_batch_offset = BatchOffsets(a, plan.batch_shape);
  plan.b_batch_offset = BatchOffsets(b, plan.batch_shape);
  plan.a_shared = batch_a.numel() != plan.batch_count;
  plan.b_shared = batch_b.numel() != plan.batch_count;
  return plan;
}

class MatMulNode : public Node {
 public:
  MatMulNode(ImplPtr a, ImplPtr b, std::shared_ptr<MatMulPlan> plan)
      : Node({std::move(a), std::move(b)}), plan_(std::move(plan)) {}

  const char* name() const override { return "matmul"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* ai = inputs_[0].get();
    TensorImpl* bi = inputs_[1].get();
    const MatMulPlan& plan = *plan_;
    const int64_t m = plan.m, k = plan.k, n = plan.n;
    const int64_t batches = plan.batch_count;
    const float* gout = output->grad();
    const float* av = ai->data();
    const float* bv = bi->data();

    if (ai->requires_grad) {
      STSM_PROF_SCOPE("matmul.bwd_a");
      ai->EnsureGrad();
      float* ga = ai->grad();
      // dA = dC @ B^T, accumulated at A's strides (the grad buffer mirrors
      // the data layout, so a transposed-view operand scatters correctly).
      const int64_t blocks = (m + kGemmRowBlock - 1) / kGemmRowBlock;
      auto block = [&](int64_t batch, int64_t blk) {
        const int64_t i0 = blk * kGemmRowBlock;
        const int64_t rows = std::min(kGemmRowBlock, m - i0);
        PackedGemm(rows, k, n,                                     //
                   gout + (batch * m + i0) * n, n, 1,              //
                   bv + plan.b_batch_offset[batch], plan.cs_b,
                   plan.rs_b,                                      // B^T
                   ga + plan.a_batch_offset[batch] + i0 * plan.rs_a,
                   plan.rs_a, plan.cs_a,
                   /*accumulate=*/true);
      };
      if (plan.a_shared) {
        // A's batches are broadcast-shared: a thread owns a row block of
        // EVERY batch (serial inner loop) so accumulation never races.
        ParallelFor(0, blocks, [&](int64_t begin, int64_t end) {
          for (int64_t blk = begin; blk < end; ++blk) {
            for (int64_t batch = 0; batch < batches; ++batch) {
              block(batch, blk);
            }
          }
        });
      } else {
        ParallelFor(0, batches * blocks, [&](int64_t begin, int64_t end) {
          for (int64_t t = begin; t < end; ++t) block(t / blocks, t % blocks);
        });
      }
    }
    if (bi->requires_grad) {
      STSM_PROF_SCOPE("matmul.bwd_b");
      bi->EnsureGrad();
      float* gb = bi->grad();
      // dB = A^T @ dC, accumulated at B's strides. Row blocks run over k
      // (the rows of dB).
      const int64_t blocks = (k + kGemmRowBlock - 1) / kGemmRowBlock;
      auto block = [&](int64_t batch, int64_t blk) {
        const int64_t k0 = blk * kGemmRowBlock;
        const int64_t rows = std::min(kGemmRowBlock, k - k0);
        PackedGemm(rows, n, m,                                     //
                   av + plan.a_batch_offset[batch] + k0 * plan.cs_a,
                   plan.cs_a, plan.rs_a,                           // A^T
                   gout + batch * m * n, n, 1,                     //
                   gb + plan.b_batch_offset[batch] + k0 * plan.rs_b,
                   plan.rs_b, plan.cs_b,
                   /*accumulate=*/true);
      };
      if (plan.b_shared) {
        ParallelFor(0, blocks, [&](int64_t begin, int64_t end) {
          for (int64_t blk = begin; blk < end; ++blk) {
            for (int64_t batch = 0; batch < batches; ++batch) {
              block(batch, blk);
            }
          }
        });
      } else {
        ParallelFor(0, batches * blocks, [&](int64_t begin, int64_t end) {
          for (int64_t t = begin; t < end; ++t) block(t / blocks, t % blocks);
        });
      }
    }
  }

  void ReleaseSaved() override { plan_.reset(); }

 private:
  std::shared_ptr<MatMulPlan> plan_;
};

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  STSM_PROF_SCOPE("matmul.fwd");
  STSM_CHECK(a.defined() && b.defined());
  auto plan = std::make_shared<MatMulPlan>(PlanMatMul(*a.impl(), *b.impl()));

  std::vector<int64_t> out_dims = plan->batch_shape.dims();
  out_dims.push_back(plan->m);
  out_dims.push_back(plan->n);
  const Shape out_shape(out_dims);
  // PackedGemm overwrites its C block, so the output needs no zero-fill.
  ImplPtr result =
      internal::MakeResult(out_shape, {a.impl(), b.impl()}, /*zero=*/false);

  // Operands address through dtype-generic byte pointers: fp32 everywhere
  // except the no-grad serving path, where bf16 weights/adjacencies feed the
  // widen-in-the-pack GEMM (PackedGemmEx). The output is always fp32.
  const DType adt = a.dtype();
  const DType bdt = b.dtype();
  const char* ad = static_cast<const char*>(a.impl()->raw());
  const char* bd = static_cast<const char*>(b.impl()->raw());
  const int64_t aes = static_cast<int64_t>(ElementSize(adt));
  const int64_t bes = static_cast<int64_t>(ElementSize(bdt));
  float* out = result->data();
  const int64_t m = plan->m, k = plan->k, n = plan->n;

  // Forward: parallel over (batch, row-block) pairs; each task owns a
  // disjoint block of C rows and runs one packed GEMM over it.
  const int64_t blocks = (m + kGemmRowBlock - 1) / kGemmRowBlock;
  ParallelFor(0, plan->batch_count * blocks, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      const int64_t batch = t / blocks;
      const int64_t i0 = (t % blocks) * kGemmRowBlock;
      const int64_t rows = std::min(kGemmRowBlock, m - i0);
      PackedGemmEx(
          rows, n, k,  //
          ad + (plan->a_batch_offset[batch] + i0 * plan->rs_a) * aes, adt,
          plan->rs_a, plan->cs_a,  //
          bd + plan->b_batch_offset[batch] * bes, bdt, plan->rs_b, plan->cs_b,
          out + (batch * m + i0) * n, n, 1,
          /*accumulate=*/false);
    }
  });

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<MatMulNode>(a.impl(), b.impl(),
                                                   std::move(plan));
  }
  return Tensor(std::move(result));
}

// ---- Dtype conversion ---------------------------------------------------------------

Tensor To(const Tensor& x, DType dtype) {
  STSM_CHECK(x.defined());
  if (x.dtype() == dtype) return x;  // Same handle; nothing to convert.
  STSM_PROF_SCOPE("dtype.to");
  // To() is a storage conversion, not math: it never records, and rounding a
  // tensor that autograd would otherwise track must be explicit. Detach()
  // first (or run under NoGradGuard, as the serving path does).
  STSM_CHECK(!internal::ShouldRecord({x.impl()}))
      << "To(" << DTypeName(dtype)
      << ") is not differentiable; Detach() the tensor or convert under "
         "NoGradGuard";
  const int64_t n = x.numel();
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = x.shape();
  impl->strides = x.shape().Strides();  // Conversion output is compact.
  impl->storage = Storage::New(n, dtype, /*zero=*/false);
  const TensorImpl& src = *x.impl();
  if (dtype == DType::kBf16) {
    // fp32 -> bf16, round-to-nearest-even (tensor/dtype.h).
    uint16_t* dst = impl->storage->bf16_data();
    const float* s = src.data();
    if (src.is_contiguous()) {
      for (int64_t i = 0; i < n; ++i) dst[i] = Bf16FromF32(s[i]);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = Bf16FromF32(s[src.PhysicalIndex(i)]);
      }
    }
  } else {
    // bf16 -> fp32 widening (exact).
    float* dst = impl->storage->data();
    const uint16_t* s = src.bf16_data();
    if (src.is_contiguous()) {
      for (int64_t i = 0; i < n; ++i) dst[i] = F32FromBf16(s[i]);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = F32FromBf16(s[src.PhysicalIndex(i)]);
      }
    }
  }
  return Tensor(std::move(impl));
}

Tensor WidenToF32(const Tensor& x) {
  if (!x.defined() || x.dtype() == DType::kF32) return x;
  return To(x, DType::kF32);
}

// ---- NN primitives ------------------------------------------------------------------

namespace {

class SoftmaxNode : public Node {
 public:
  SoftmaxNode(ImplPtr x, DimSplit split, std::shared_ptr<const DimMap> map)
      : Node({std::move(x)}), s_(split), map_(std::move(map)) {}
  const char* name() const override { return "softmax"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE("softmax.bwd");
    xi->EnsureGrad();
    const DimMap& m = *map_;
    // The output is always freshly allocated and contiguous; only the input
    // gradient needs the strided map.
    const float* y = output->data();
    const float* gout = output->grad();
    float* gx = xi->grad();
    for (int64_t o = 0; o < s_.outer; ++o) {
      for (int64_t i = 0; i < s_.inner; ++i) {
        const int64_t gbase = m.outer_off[o] + m.inner_off[i];
        double dot = 0.0;
        for (int64_t r = 0; r < s_.reduce; ++r) {
          const int64_t idx = (o * s_.reduce + r) * s_.inner + i;
          dot += static_cast<double>(gout[idx]) * y[idx];
        }
        for (int64_t r = 0; r < s_.reduce; ++r) {
          const int64_t idx = (o * s_.reduce + r) * s_.inner + i;
          gx[gbase + r * m.reduce_stride] +=
              (gout[idx] - static_cast<float>(dot)) * y[idx];
        }
      }
    }
  }

  void ReleaseSaved() override { map_.reset(); }

 private:
  DimSplit s_;
  std::shared_ptr<const DimMap> map_;
};

}  // namespace

Tensor Softmax(const Tensor& x, int dim) {
  STSM_PROF_SCOPE("softmax.fwd");
  STSM_CHECK(x.defined());
  const DimSplit s = SplitAtDim(x.shape(), dim);
  ImplPtr result = internal::MakeResult(x.shape(), {x.impl()}, /*zero=*/false);

  auto map = BuildDimMap(*x.impl(), s);
  const DimMap& m = *map;
  const float* xd = x.data();
  float* out = result->data();
  const simd::KernelTable* vk = simd::Active();
  std::vector<float>& scratch = TlGatherScratch();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t i = 0; i < s.inner; ++i) {
      const int64_t xbase = m.outer_off[o] + m.inner_off[i];
      if (vk != nullptr) {
        // One kernel for every layout: unit-stride rows (last-dim softmax on
        // a contiguous tensor) run in place, everything else gathers and
        // scatters through scratch — so strided==contiguous stays bitwise.
        // The kernel declines non-finite and short rows; those fall through
        // to the scalar reference below.
        bool done = false;
        if (m.reduce_stride == 1 && s.inner == 1) {
          done = vk->softmax_row(xd + xbase, out + o * s.reduce, s.reduce);
        } else {
          scratch.resize(static_cast<size_t>(2 * s.reduce));
          float* row_in = scratch.data();
          float* row_out = scratch.data() + s.reduce;
          for (int64_t r = 0; r < s.reduce; ++r) {
            row_in[r] = xd[xbase + r * m.reduce_stride];
          }
          done = vk->softmax_row(row_in, row_out, s.reduce);
          if (done) {
            for (int64_t r = 0; r < s.reduce; ++r) {
              out[(o * s.reduce + r) * s.inner + i] = row_out[r];
            }
          }
        }
        if (done) continue;
      }
      float max_v = -std::numeric_limits<float>::infinity();
      for (int64_t r = 0; r < s.reduce; ++r) {
        max_v = std::max(max_v, xd[xbase + r * m.reduce_stride]);
      }
      double denom = 0.0;
      for (int64_t r = 0; r < s.reduce; ++r) {
        const float e = std::exp(xd[xbase + r * m.reduce_stride] - max_v);
        out[(o * s.reduce + r) * s.inner + i] = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t r = 0; r < s.reduce; ++r) {
        out[(o * s.reduce + r) * s.inner + i] *= inv;
      }
    }
  }

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<SoftmaxNode>(x.impl(), s, std::move(map));
  }
  return Tensor(std::move(result));
}

Tensor LogSoftmax(const Tensor& x, int dim) { return Log(Softmax(x, dim)); }

namespace {

class Conv1dNode : public Node {
 public:
  Conv1dNode(ImplPtr x, ImplPtr w, ImplPtr bias, int64_t batch, int64_t time,
             int64_t nodes, int64_t c_in, int64_t c_out, int64_t kernel,
             int dilation)
      : Node(bias ? std::vector<ImplPtr>{std::move(x), std::move(w),
                                         std::move(bias)}
                  : std::vector<ImplPtr>{std::move(x), std::move(w)}),
        batch_(batch),
        time_(time),
        nodes_(nodes),
        c_in_(c_in),
        c_out_(c_out),
        kernel_(kernel),
        dilation_(dilation) {}

  const char* name() const override { return "conv1d"; }

 protected:
  void Apply(TensorImpl* output) override {
    STSM_PROF_SCOPE("conv1d.bwd");
    TensorImpl* xi = inputs_[0].get();
    TensorImpl* wi = inputs_[1].get();
    TensorImpl* biasi = inputs_.size() > 2 ? inputs_[2].get() : nullptr;
    const int64_t batch = batch_, time = time_, nodes = nodes_, c_in = c_in_,
                  c_out = c_out_, kernel = kernel_;
    const int dilation = dilation_;
    const float* gout = output->grad();
    const float* xv = xi->data();
    const float* wv = wi->data();

    if (biasi != nullptr && biasi->requires_grad) {
      biasi->EnsureGrad();
      float* gb = biasi->grad();
      for (int64_t idx = 0; idx < batch * time * nodes; ++idx) {
        const float* g_row = gout + idx * c_out;
        for (int64_t co = 0; co < c_out; ++co) gb[co] += g_row[co];
      }
    }
    if (wi->requires_grad) {
      wi->EnsureGrad();
      float* gw = wi->grad();
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t t = 0; t < time; ++t) {
          const float* g_bt = gout + (b * time + t) * nodes * c_out;
          for (int64_t kk = 0; kk < kernel; ++kk) {
            const int64_t t_in = t - (kernel - 1 - kk) * dilation;
            if (t_in < 0) continue;
            const float* x_bt = xv + (b * time + t_in) * nodes * c_in;
            for (int64_t n = 0; n < nodes; ++n) {
              const float* x_row = x_bt + n * c_in;
              const float* g_row = g_bt + n * c_out;
              for (int64_t co = 0; co < c_out; ++co) {
                const float g = g_row[co];
                if (g == 0.0f) continue;
                float* gw_row = gw + (co * c_in) * kernel;
                for (int64_t ci = 0; ci < c_in; ++ci) {
                  gw_row[ci * kernel + kk] += g * x_row[ci];
                }
              }
            }
          }
        }
      }
    }
    if (xi->requires_grad) {
      xi->EnsureGrad();
      float* gx = xi->grad();
      // Parallel over batch: each thread owns a disjoint x[b] block.
      ParallelFor(0, batch, [&](int64_t begin, int64_t end) {
        for (int64_t b = begin; b < end; ++b) {
          for (int64_t t = 0; t < time; ++t) {
            const float* g_bt = gout + (b * time + t) * nodes * c_out;
            for (int64_t kk = 0; kk < kernel; ++kk) {
              const int64_t t_in = t - (kernel - 1 - kk) * dilation;
              if (t_in < 0) continue;
              float* gx_bt = gx + (b * time + t_in) * nodes * c_in;
              for (int64_t n = 0; n < nodes; ++n) {
                const float* g_row = g_bt + n * c_out;
                float* gx_row = gx_bt + n * c_in;
                for (int64_t co = 0; co < c_out; ++co) {
                  const float g = g_row[co];
                  if (g == 0.0f) continue;
                  const float* w_row = wv + (co * c_in) * kernel;
                  for (int64_t ci = 0; ci < c_in; ++ci) {
                    gx_row[ci] += g * w_row[ci * kernel + kk];
                  }
                }
              }
            }
          }
        }
      });
    }
  }

 private:
  int64_t batch_, time_, nodes_, c_in_, c_out_, kernel_;
  int dilation_;
};

}  // namespace

Tensor Conv1dTime(const Tensor& xin, const Tensor& win, const Tensor& bin,
                  int dilation) {
  STSM_PROF_SCOPE("conv1d.fwd");
  STSM_CHECK(xin.defined() && win.defined());
  // The window kernel below addresses all three operands linearly.
  if (!xin.impl()->is_contiguous()) STSM_PROF_COUNT("contiguous.via_conv", 1);
  const Tensor x = Contiguous(xin);
  const Tensor weight = Contiguous(win);
  const Tensor bias = bin.defined() ? Contiguous(bin) : bin;
  STSM_CHECK_EQ(x.ndim(), 4) << "Conv1dTime expects [B, T, N, C_in]";
  STSM_CHECK_EQ(weight.ndim(), 3) << "weight must be [C_out, C_in, K]";
  STSM_CHECK_GE(dilation, 1);
  const int64_t batch = x.shape()[0];
  const int64_t time = x.shape()[1];
  const int64_t nodes = x.shape()[2];
  const int64_t c_in = x.shape()[3];
  const int64_t c_out = weight.shape()[0];
  STSM_CHECK_EQ(weight.shape()[1], c_in);
  const int64_t kernel = weight.shape()[2];
  if (bias.defined()) {
    STSM_CHECK_EQ(bias.numel(), c_out);
  }

  const Shape out_shape({batch, time, nodes, c_out});
  std::vector<ImplPtr> inputs = {x.impl(), weight.impl()};
  if (bias.defined()) inputs.push_back(bias.impl());
  // The kernel accumulates window contributions, so it must start zeroed.
  ImplPtr result = internal::MakeResult(out_shape, inputs);

  const float* xd = x.data();
  const float* wd = weight.data();
  const float* biasd = bias.defined() ? bias.data() : nullptr;
  float* out = result->data();

  // out[b,t,n,co] = bias[co]
  //   + sum_{kk,ci} w[co,ci,kk] * x[b, t - (K-1-kk)*dilation, n, ci]
  ParallelFor(0, batch * time, [&](int64_t begin, int64_t end) {
    for (int64_t bt = begin; bt < end; ++bt) {
      const int64_t b = bt / time;
      const int64_t t = bt % time;
      float* out_bt = out + bt * nodes * c_out;
      if (biasd != nullptr) {
        for (int64_t n = 0; n < nodes; ++n) {
          for (int64_t co = 0; co < c_out; ++co) {
            out_bt[n * c_out + co] = biasd[co];
          }
        }
      }
      for (int64_t kk = 0; kk < kernel; ++kk) {
        const int64_t t_in = t - (kernel - 1 - kk) * dilation;
        if (t_in < 0) continue;  // Left zero-padding (causal).
        const float* x_bt = xd + (b * time + t_in) * nodes * c_in;
        for (int64_t n = 0; n < nodes; ++n) {
          const float* x_row = x_bt + n * c_in;
          float* out_row = out_bt + n * c_out;
          for (int64_t co = 0; co < c_out; ++co) {
            const float* w_row = wd + (co * c_in) * kernel;
            float acc = 0.0f;
            for (int64_t ci = 0; ci < c_in; ++ci) {
              acc += w_row[ci * kernel + kk] * x_row[ci];
            }
            out_row[co] += acc;
          }
        }
      }
    }
  });

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<Conv1dNode>(
        x.impl(), weight.impl(), bias.defined() ? bias.impl() : nullptr,
        batch, time, nodes, c_in, c_out, kernel, dilation);
  }
  return Tensor(std::move(result));
}

Tensor Dropout(const Tensor& x, float p, Rng* rng) {
  STSM_CHECK(x.defined());
  if (p <= 0.0f) return x;
  STSM_CHECK_LT(p, 1.0f);
  STSM_CHECK(rng != nullptr);
  const int64_t n = x.numel();
  std::vector<float> mask(n);
  const float scale = 1.0f / (1.0f - p);
  for (int64_t i = 0; i < n; ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : scale;
  }
  return Mul(x, Tensor::FromVector(x.shape(), std::move(mask)));
}

// ---- In-place ops -----------------------------------------------------------
//
// These mutate the target's buffer directly and never record autograd state,
// so the target must be graph-free (no grad_fn). That covers the intended
// call sites: optimizer parameter/velocity updates and gradient scaling
// through Tensor::GradView(), both of which operate on leaves.

namespace {

void CheckInPlaceTarget(const Tensor& x, const char* op) {
  STSM_CHECK(x.defined());
  STSM_CHECK(x.impl()->grad_fn == nullptr)
      << op << "requires a graph-free tensor; this one has a grad_fn";
}

}  // namespace

void AddScaledInPlace(Tensor x, const Tensor& y, float alpha) {
  STSM_PROF_SCOPE("add_scaled_inplace");
  CheckInPlaceTarget(x, "AddScaledInPlace");
  STSM_CHECK(y.defined());
  STSM_CHECK(x.shape() == y.shape())
      << "AddScaledInPlace shape mismatch:" << x.shape().ToString() << "vs"
      << y.shape().ToString();
  const int64_t n = x.numel();
  float* xd = x.data();
  const float* yd = y.data();
  if (x.impl()->is_contiguous() && y.impl()->is_contiguous()) {
    const simd::KernelTable* vk = simd::Active();
    if (vk != nullptr) {
      vk->axpy(xd, yd, alpha, n);
    } else {
      for (int64_t i = 0; i < n; ++i) xd[i] += alpha * yd[i];
    }
    return;
  }
  const IndexTable tx = BuildPhysTable(*x.impl());
  const IndexTable ty = BuildPhysTable(*y.impl());
  for (int64_t i = 0; i < n; ++i) {
    xd[PhysAt(tx, i)] += alpha * yd[PhysAt(ty, i)];
  }
}

void AddInPlace(Tensor x, const Tensor& y) {
  AddScaledInPlace(std::move(x), y, 1.0f);
}

void MulScalarInPlace(Tensor x, float value) {
  STSM_PROF_SCOPE("mul_scalar_inplace");
  CheckInPlaceTarget(x, "MulScalarInPlace");
  const int64_t n = x.numel();
  float* xd = x.data();
  if (x.impl()->is_contiguous()) {
    const simd::KernelTable* vk = simd::Active();
    if (vk != nullptr) {
      vk->scal(xd, value, n);
    } else {
      for (int64_t i = 0; i < n; ++i) xd[i] *= value;
    }
    return;
  }
  const IndexTable tx = BuildPhysTable(*x.impl());
  for (int64_t i = 0; i < n; ++i) xd[(*tx)[i]] *= value;
}

void ReluInPlace(Tensor x) {
  STSM_PROF_SCOPE("relu_inplace");
  CheckInPlaceTarget(x, "ReluInPlace");
  const int64_t n = x.numel();
  float* xd = x.data();
  if (x.impl()->is_contiguous()) {
    const simd::KernelTable* vk = simd::Active();
    if (vk != nullptr) {
      vk->relu_inplace(xd, n);
    } else {
      for (int64_t i = 0; i < n; ++i) xd[i] = xd[i] > 0.0f ? xd[i] : 0.0f;
    }
    return;
  }
  const IndexTable tx = BuildPhysTable(*x.impl());
  for (int64_t i = 0; i < n; ++i) {
    float& v = xd[(*tx)[i]];
    v = v > 0.0f ? v : 0.0f;
  }
}

}  // namespace stsm
