// Explicit reverse-mode autograd graph.
//
// Every differentiable op attaches a `Node` to its output TensorImpl. A
// Node owns strong references to the op's input impls (which is what keeps
// saved activations alive between forward and backward) plus whatever
// op-specific state its gradient needs (index tables, argmax indices, a
// matmul plan, ...).
//
// `Tensor::Backward()` walks the node graph in reverse topological order
// and calls `Node::Run(output)` exactly once per node. Eager-release rule:
// immediately after a node's gradient routing has run, the node drops its
// saved inputs and op state (`ReleaseSaved`), and the walk drops its own
// reference to the node's output. Activations therefore die as the
// backward frontier passes them — peak memory is frontier-resident, not
// whole-graph-resident — and their buffers return to the BufferPool for the
// next step. A released node refuses to run again: calling Backward() a
// second time through the same graph is a checked error.

#ifndef STSM_TENSOR_AUTOGRAD_H_
#define STSM_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace stsm {

struct TensorImpl;

namespace autograd {

// ---- Gradient mode -----------------------------------------------------------
//
// Thread-local switch consulted by every op in tensor/ops.cc (through
// internal::ShouldRecord): with recording off, ops build no Node, mark no
// output requires_grad, and therefore never trigger grad-buffer allocation.
// Inference paths (stsm::serve workers, evaluation loops) hold a
// NoGradGuard for the duration of the forward.

// True when operations should record the autograd graph (thread-local,
// defaults to true).
bool GradModeEnabled();

// RAII guard that disables gradient recording in the current thread and
// restores the previous mode on destruction. Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// Process-wide count of autograd nodes constructed since start. Used by
// tests and the serve bench to assert that a guarded forward built zero
// graph nodes; monotone, relaxed ordering.
uint64_t NodesCreated();

class Node {
 public:
  explicit Node(std::vector<std::shared_ptr<TensorImpl>> inputs)
      : inputs_(std::move(inputs)) {
    CountNodeCreated();
  }
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Profiler / error-message label, e.g. "mul" or "matmul".
  virtual const char* name() const = 0;

  // Routes `output`'s accumulated gradient into the inputs, then releases
  // all saved state. Checked error if this node has already run.
  void Run(TensorImpl* output);

  bool released() const { return released_; }

  // Graph edges for the topological walk. Empty after release.
  const std::vector<std::shared_ptr<TensorImpl>>& inputs() const {
    return inputs_;
  }

 protected:
  // Op-specific gradient routing. `output->grad()` holds the incoming
  // gradient; implementations accumulate (+=) into each input that
  // requires_grad (after EnsureGrad).
  virtual void Apply(TensorImpl* output) = 0;

  // Drops op-specific saved state (index tables, plans, saved values).
  // The base class clears `inputs_` afterwards.
  virtual void ReleaseSaved() {}

  std::vector<std::shared_ptr<TensorImpl>> inputs_;

 private:
  static void CountNodeCreated();

  bool released_ = false;
};

// Gradient router for zero-copy views (Reshape / Transpose / Slice /
// Narrow / Select / Squeeze / Unsqueeze). The view shares its base's
// Storage — including the grad buffer — so gradient contributions written
// through the view's strides at its offset are already accumulated in the
// base. Apply is a no-op; the node exists only to keep the base reachable
// in the topological walk.
class ViewNode : public Node {
 public:
  explicit ViewNode(std::shared_ptr<TensorImpl> base);
  const char* name() const override { return "view"; }

 protected:
  void Apply(TensorImpl* output) override;
};

}  // namespace autograd
}  // namespace stsm

#endif  // STSM_TENSOR_AUTOGRAD_H_
