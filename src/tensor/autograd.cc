#include "tensor/autograd.h"

#include "common/check.h"
#include "tensor/tensor.h"

namespace stsm {
namespace autograd {

void Node::Run(TensorImpl* output) {
  STSM_CHECK(!released_)
      << "autograd node" << name()
      << "already ran: its saved activations were released. Backward() may "
         "only be called once per graph.";
  Apply(output);
  released_ = true;
  ReleaseSaved();
  inputs_.clear();
  inputs_.shrink_to_fit();
}

ViewNode::ViewNode(std::shared_ptr<TensorImpl> base) : Node({std::move(base)}) {}

// The view aliases the base's storage and grad buffer, so consumer writes
// into the view's gradient region have already accumulated into the base.
void ViewNode::Apply(TensorImpl*) {}

}  // namespace autograd
}  // namespace stsm
