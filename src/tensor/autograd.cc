#include "tensor/autograd.h"

#include <atomic>

#include "common/check.h"
#include "tensor/tensor.h"

namespace stsm {
namespace autograd {

namespace {

thread_local bool g_grad_mode_enabled = true;

// Relaxed is enough: tests/benches read the counter only after quiescing the
// threads whose node construction they are counting.
std::atomic<uint64_t> g_nodes_created{0};

}  // namespace

bool GradModeEnabled() { return g_grad_mode_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode_enabled) {
  g_grad_mode_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_mode_enabled = previous_; }

uint64_t NodesCreated() {
  return g_nodes_created.load(std::memory_order_relaxed);
}

void Node::CountNodeCreated() {
  g_nodes_created.fetch_add(1, std::memory_order_relaxed);
}

void Node::Run(TensorImpl* output) {
  STSM_CHECK(!released_)
      << "autograd node" << name()
      << "already ran: its saved activations were released. Backward() may "
         "only be called once per graph.";
  Apply(output);
  released_ = true;
  ReleaseSaved();
  inputs_.clear();
  inputs_.shrink_to_fit();
}

ViewNode::ViewNode(std::shared_ptr<TensorImpl> base) : Node({std::move(base)}) {}

// The view aliases the base's storage and grad buffer, so consumer writes
// into the view's gradient region have already accumulated into the base.
void ViewNode::Apply(TensorImpl*) {}

}  // namespace autograd
}  // namespace stsm
