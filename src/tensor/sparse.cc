#include "tensor/sparse.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "common/prof.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace stsm {

namespace internal {

// The shared CSR node. The three live arrays sit on pooled Storage buffers;
// int32 indices are stored in the 4-byte float cells and accessed through
// I32() below (the cells are only ever read and written as int32, never
// mixed with float access to the same buffer). The transpose plan — the CSR
// arrays of Aᵀ, i.e. a CSC view of A — is built at most once, lazily, on
// the first backward pass through this matrix; no-grad serving never pays
// for it.
struct CsrImpl {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  std::shared_ptr<Storage> row_ptr;  // rows + 1 int32 cells.
  std::shared_ptr<Storage> col_idx;  // nnz int32 cells.
  std::shared_ptr<Storage> values;   // nnz floats.

  std::once_flag transpose_once;
  std::shared_ptr<Storage> t_row_ptr;  // cols + 1 int32 cells.
  std::shared_ptr<Storage> t_col_idx;  // nnz int32 cells (source rows).
  std::shared_ptr<Storage> t_values;   // nnz floats.

  CsrImpl() { STSM_PROF_COUNT("sparse.csr_create", 1); }
  ~CsrImpl() { STSM_PROF_COUNT("sparse.csr_destroy", 1); }
  CsrImpl(const CsrImpl&) = delete;
  CsrImpl& operator=(const CsrImpl&) = delete;
};

}  // namespace internal

namespace {

using internal::CsrImpl;
using ImplPtr = std::shared_ptr<TensorImpl>;
using autograd::Node;

constexpr int64_t kSpmmRowBlock = 64;

int32_t* I32(Storage* s) { return reinterpret_cast<int32_t*>(s->data()); }
const int32_t* I32(const Storage& s) {
  return reinterpret_cast<const int32_t*>(s.data());
}

// Copies the validated arrays onto pooled storage. Callers guarantee the
// CSR invariants already hold.
std::shared_ptr<CsrImpl> NewCsrImpl(int64_t rows, int64_t cols,
                                    const int32_t* row_ptr,
                                    const int32_t* col_idx,
                                    const float* values, int64_t nnz) {
  STSM_CHECK_GE(rows, 0);
  STSM_CHECK_GE(cols, 0);
  STSM_CHECK_LE(rows, std::numeric_limits<int32_t>::max() - 1);
  STSM_CHECK_LE(cols, std::numeric_limits<int32_t>::max() - 1);
  STSM_CHECK_LE(nnz, std::numeric_limits<int32_t>::max());
  auto impl = std::make_shared<CsrImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->nnz = nnz;
  impl->row_ptr = Storage::New(rows + 1, /*zero=*/false);
  impl->col_idx = Storage::New(nnz, /*zero=*/false);
  impl->values = Storage::New(nnz, /*zero=*/false);
  std::copy(row_ptr, row_ptr + rows + 1, I32(impl->row_ptr.get()));
  std::copy(col_idx, col_idx + nnz, I32(impl->col_idx.get()));
  std::copy(values, values + nnz, impl->values->data());
  return impl;
}

// Builds the transpose plan on first use (thread-safe; SparseCsr handles
// are shared by the serving workers). Counting sort over the column index:
// the resulting Aᵀ rows list their source rows in ascending order, which
// fixes the backward accumulation order deterministically.
void EnsureTransposePlan(CsrImpl* a) {
  std::call_once(a->transpose_once, [a] {
    STSM_PROF_COUNT("sparse.transpose_plans", 1);
    a->t_row_ptr = Storage::New(a->cols + 1, /*zero=*/false);
    a->t_col_idx = Storage::New(a->nnz, /*zero=*/false);
    a->t_values = Storage::New(a->nnz, /*zero=*/false);
    const int32_t* rp = I32(*a->row_ptr);
    const int32_t* ci = I32(*a->col_idx);
    const float* av = a->values->data();
    int32_t* trp = I32(a->t_row_ptr.get());
    int32_t* tci = I32(a->t_col_idx.get());
    float* tav = a->t_values->data();

    std::vector<int32_t> count(a->cols + 1, 0);
    for (int64_t p = 0; p < a->nnz; ++p) ++count[ci[p] + 1];
    trp[0] = 0;
    for (int64_t j = 0; j < a->cols; ++j) trp[j + 1] = trp[j] + count[j + 1];
    std::vector<int32_t> cursor(trp, trp + a->cols);
    for (int64_t i = 0; i < a->rows; ++i) {
      for (int32_t p = rp[i]; p < rp[i + 1]; ++p) {
        const int32_t pos = cursor[ci[p]]++;
        tci[pos] = static_cast<int32_t>(i);
        tav[pos] = av[p];
      }
    }
  });
}

// ---- Kernels and their dense-reference oracles ------------------------------
//
// Each Kernel/Oracle pair performs the identical per-element accumulation:
// ascending source index, zero terms skipped. That makes CSR-vs-dense
// differential tests bitwise, not tolerance-bounded (the oracle reads a
// dense matrix but is NOT the packed GEMM — flop order differs there).

// Widening value loads: fp32 values pass through, bf16 bit patterns widen
// exactly. The accumulation is fp32 for either storage type.
inline float WidenValue(float v) { return v; }
inline float WidenValue(uint16_t v) { return F32FromBf16(v); }

// Y[i, :] = sum_p values[p] * X[col_idx[p], :] for rows in [row_begin,
// row_end); Y rows are fully overwritten (empty rows become zeros). VT is
// the storage type of the values array (float, or uint16_t bf16 patterns on
// the serving path); the fp32 instantiation is the historical kernel.
template <typename VT>
void SpmmRowsKernel(const int32_t* row_ptr, const int32_t* col_idx,
                    const VT* values, const float* x, float* y,
                    int64_t row_begin, int64_t row_end, int64_t c) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yrow = y + i * c;
    std::fill(yrow, yrow + c, 0.0f);
    for (int32_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const float aval = WidenValue(values[p]);
      const float* xrow = x + static_cast<int64_t>(col_idx[p]) * c;
      for (int64_t cc = 0; cc < c; ++cc) yrow[cc] += aval * xrow[cc];
    }
  }
}

// Oracle twin of SpmmRowsKernel over a dense row-major a [rows, m].
void SpmmRowsOracle(const float* a, int64_t m, const float* x, float* y,
                    int64_t row_begin, int64_t row_end, int64_t c) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    float* yrow = y + i * c;
    std::fill(yrow, yrow + c, 0.0f);
    for (int64_t k = 0; k < m; ++k) {
      const float aval = a[i * m + k];
      if (aval == 0.0f) continue;
      const float* xrow = x + k * c;
      for (int64_t cc = 0; cc < c; ++cc) yrow[cc] += aval * xrow[cc];
    }
  }
}

// dX[j, :] += sum_p t_values[p] * dG[t_col_idx[p], :] for transpose rows in
// [row_begin, row_end). Accumulates (+=) into the gradient buffer.
void SpmmBackwardKernel(const int32_t* t_row_ptr, const int32_t* t_col_idx,
                        const float* t_values, const float* gout, float* gx,
                        int64_t row_begin, int64_t row_end, int64_t c) {
  for (int64_t j = row_begin; j < row_end; ++j) {
    float* gxrow = gx + j * c;
    for (int32_t p = t_row_ptr[j]; p < t_row_ptr[j + 1]; ++p) {
      const float aval = t_values[p];
      const float* grow = gout + static_cast<int64_t>(t_col_idx[p]) * c;
      for (int64_t cc = 0; cc < c; ++cc) gxrow[cc] += aval * grow[cc];
    }
  }
}

// Oracle twin of SpmmBackwardKernel over a dense row-major a [n, m].
void SpmmBackwardOracle(const float* a, int64_t n, int64_t m,
                        const float* gout, float* gx, int64_t row_begin,
                        int64_t row_end, int64_t c) {
  for (int64_t j = row_begin; j < row_end; ++j) {
    float* gxrow = gx + j * c;
    for (int64_t i = 0; i < n; ++i) {
      const float aval = a[i * m + j];
      if (aval == 0.0f) continue;
      const float* grow = gout + i * c;
      for (int64_t cc = 0; cc < c; ++cc) gxrow[cc] += aval * grow[cc];
    }
  }
}

// ---- Autograd nodes ---------------------------------------------------------

class SpmmNode : public Node {
 public:
  SpmmNode(ImplPtr x, std::shared_ptr<CsrImpl> a)
      : Node({std::move(x)}), a_(std::move(a)) {}

  const char* name() const override { return "spmm"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    STSM_PROF_SCOPE("sparse.spmm.bwd");
    xi->EnsureGrad();
    CsrImpl* a = a_.get();
    EnsureTransposePlan(a);
    const int32_t* trp = I32(*a->t_row_ptr);
    const int32_t* tci = I32(*a->t_col_idx);
    const float* tav = a->t_values->data();
    const float* gout = output->grad();
    float* gx = xi->grad();
    const int64_t n = a->rows;
    const int64_t m = a->cols;
    const int64_t c = output->shape[-1];
    const int64_t batches = output->shape.numel() / (n * c);
    // Each task owns a disjoint block of dX rows within one batch and the
    // batches write disjoint windows of the (contiguous) grad buffer, so the
    // whole (batch, block) grid accumulates race-free.
    const int64_t blocks = (m + kSpmmRowBlock - 1) / kSpmmRowBlock;
    ParallelFor(0, batches * blocks, [&](int64_t begin, int64_t end) {
      for (int64_t t = begin; t < end; ++t) {
        const int64_t batch = t / blocks;
        const int64_t j0 = (t % blocks) * kSpmmRowBlock;
        const int64_t j1 = std::min(m, j0 + kSpmmRowBlock);
        SpmmBackwardKernel(trp, tci, tav, gout + batch * n * c,
                           gx + batch * m * c, j0, j1, c);
      }
    });
  }

  void ReleaseSaved() override { a_.reset(); }

 private:
  std::shared_ptr<CsrImpl> a_;
};

class SpmmOracleNode : public Node {
 public:
  SpmmOracleNode(ImplPtr x, ImplPtr a) : Node({std::move(x)}), a_(std::move(a)) {}

  const char* name() const override { return "spmm_oracle"; }

 protected:
  void Apply(TensorImpl* output) override {
    TensorImpl* xi = inputs_[0].get();
    if (!xi->requires_grad) return;
    xi->EnsureGrad();
    const int64_t n = a_->shape[0];
    const int64_t m = a_->shape[1];
    const int64_t c = output->shape[-1];
    const int64_t batches = output->shape.numel() / (n * c);
    for (int64_t batch = 0; batch < batches; ++batch) {
      SpmmBackwardOracle(a_->data(), n, m, output->grad() + batch * n * c,
                         xi->grad() + batch * m * c, 0, m, c);
    }
  }

  void ReleaseSaved() override { a_.reset(); }

 private:
  ImplPtr a_;
};

}  // namespace

// ---- SparseCsr --------------------------------------------------------------

SparseCsr::SparseCsr(std::shared_ptr<internal::CsrImpl> impl)
    : impl_(std::move(impl)) {}

int64_t SparseCsr::rows() const {
  STSM_CHECK(defined());
  return impl_->rows;
}

int64_t SparseCsr::cols() const {
  STSM_CHECK(defined());
  return impl_->cols;
}

int64_t SparseCsr::nnz() const {
  STSM_CHECK(defined());
  return impl_->nnz;
}

const int32_t* SparseCsr::row_ptr() const {
  STSM_CHECK(defined());
  return I32(*impl_->row_ptr);
}

const int32_t* SparseCsr::col_idx() const {
  STSM_CHECK(defined());
  return I32(*impl_->col_idx);
}

const float* SparseCsr::values() const {
  STSM_CHECK(defined());
  return impl_->values->data();
}

DType SparseCsr::values_dtype() const {
  STSM_CHECK(defined());
  return impl_->values->dtype();
}

const uint16_t* SparseCsr::values_bf16() const {
  STSM_CHECK(defined());
  return impl_->values->bf16_data();
}

SparseCsr SparseCsr::CastValues(DType dtype) const {
  STSM_CHECK(defined());
  if (values_dtype() == dtype) return *this;
  auto impl = std::make_shared<CsrImpl>();
  impl->rows = impl_->rows;
  impl->cols = impl_->cols;
  impl->nnz = impl_->nnz;
  // Indices are shared (immutable after construction); only the values
  // array is re-stored. The transpose plan is not carried over — it is a
  // training-path (backward) artifact and bf16 values never record.
  impl->row_ptr = impl_->row_ptr;
  impl->col_idx = impl_->col_idx;
  impl->values = Storage::New(impl_->nnz, dtype, /*zero=*/false);
  if (dtype == DType::kBf16) {
    const float* src = impl_->values->data();
    uint16_t* dst = impl->values->bf16_data();
    for (int64_t p = 0; p < impl_->nnz; ++p) dst[p] = Bf16FromF32(src[p]);
  } else {
    const uint16_t* src = impl_->values->bf16_data();
    float* dst = impl->values->data();
    for (int64_t p = 0; p < impl_->nnz; ++p) dst[p] = F32FromBf16(src[p]);
  }
  return SparseCsr(std::move(impl));
}

SparseCsr SparseCsr::FromParts(int64_t rows, int64_t cols,
                               const std::vector<int32_t>& row_ptr,
                               const std::vector<int32_t>& col_idx,
                               const std::vector<float>& values) {
  STSM_CHECK_GE(rows, 0);
  STSM_CHECK_GE(cols, 0);
  STSM_CHECK_EQ(static_cast<int64_t>(row_ptr.size()), rows + 1);
  STSM_CHECK_EQ(row_ptr[0], 0);
  const int64_t nnz = row_ptr[rows];
  STSM_CHECK_EQ(static_cast<int64_t>(col_idx.size()), nnz);
  STSM_CHECK_EQ(static_cast<int64_t>(values.size()), nnz);
  for (int64_t i = 0; i < rows; ++i) {
    STSM_CHECK_LE(row_ptr[i], row_ptr[i + 1])
        << "row_ptr must be monotone at row " << i;
    for (int32_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      STSM_CHECK_GE(col_idx[p], 0);
      STSM_CHECK_LT(col_idx[p], cols);
      if (p > row_ptr[i]) {
        STSM_CHECK_LT(col_idx[p - 1], col_idx[p])
            << "columns must be strictly ascending within row " << i;
      }
    }
  }
  return SparseCsr(NewCsrImpl(rows, cols, row_ptr.data(), col_idx.data(),
                              values.data(), nnz));
}

SparseCsr SparseCsr::FromDense(const Tensor& dense) {
  STSM_CHECK(dense.defined());
  STSM_CHECK_EQ(dense.ndim(), 2);
  STSM_PROF_COUNT("sparse.from_dense", 1);
  const int64_t rows = dense.shape()[0];
  const int64_t cols = dense.shape()[1];
  const int64_t rs = dense.strides()[0];
  const int64_t cs = dense.strides()[1];
  const float* d = dense.data();

  std::vector<int32_t> row_ptr(rows + 1, 0);
  ParallelFor(0, rows, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      int32_t count = 0;
      for (int64_t j = 0; j < cols; ++j) {
        if (d[i * rs + j * cs] != 0.0f) ++count;
      }
      row_ptr[i + 1] = count;
    }
  });
  for (int64_t i = 0; i < rows; ++i) row_ptr[i + 1] += row_ptr[i];
  const int64_t nnz = row_ptr[rows];

  std::vector<int32_t> col_idx(nnz);
  std::vector<float> values(nnz);
  ParallelFor(0, rows, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      int32_t p = row_ptr[i];
      for (int64_t j = 0; j < cols; ++j) {
        const float v = d[i * rs + j * cs];
        if (v == 0.0f) continue;
        col_idx[p] = static_cast<int32_t>(j);
        values[p] = v;
        ++p;
      }
    }
  });
  return SparseCsr(NewCsrImpl(rows, cols, row_ptr.data(), col_idx.data(),
                              values.data(), nnz));
}

Tensor SparseCsr::ToDense() const {
  STSM_CHECK(defined());
  STSM_PROF_COUNT("sparse.to_dense", 1);
  Tensor dense = Tensor::Zeros(Shape({impl_->rows, impl_->cols}));
  float* d = dense.data();
  const int32_t* rp = row_ptr();
  const int32_t* ci = col_idx();
  const float* av = values();
  for (int64_t i = 0; i < impl_->rows; ++i) {
    float* drow = d + i * impl_->cols;
    for (int32_t p = rp[i]; p < rp[i + 1]; ++p) drow[ci[p]] = av[p];
  }
  return dense;
}

// ---- SpMM -------------------------------------------------------------------

Tensor Spmm(const SparseCsr& a, const Tensor& x) {
  STSM_PROF_SCOPE("sparse.spmm.fwd");
  STSM_CHECK(a.defined()) << "Spmm: undefined sparse matrix";
  STSM_CHECK(x.defined()) << "Spmm: undefined input";
  STSM_CHECK_GE(x.ndim(), 2);
  STSM_CHECK_GT(a.rows(), 0);
  STSM_CHECK_GT(a.cols(), 0);
  STSM_CHECK_EQ(x.shape()[-2], a.cols())
      << "Spmm inner-dim mismatch: [" << a.rows() << ", " << a.cols() << "] @ "
      << x.shape().ToString();
  const int64_t c = x.shape()[-1];
  STSM_CHECK_GT(c, 0);

  // The contiguous fast path IS the only kernel: a strided x is compacted
  // first (differentiably), after which every batch is a flat [cols, c]
  // block. The adjacency is tiny next to the activations, so this mirrors
  // what MatMul's packing loops achieve without per-element stride math.
  const Tensor xc = Contiguous(x);

  const int64_t n = a.rows();
  const int64_t m = a.cols();
  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims[out_dims.size() - 2] = n;
  const Shape out_shape{std::move(out_dims)};
  ImplPtr result =
      internal::MakeResult(out_shape, {xc.impl()}, /*zero=*/false);

  // bf16 values are a serving-only storage format: the backward plan widens
  // nothing, so recording through reduced-precision weights is refused.
  STSM_CHECK(!result->requires_grad || a.values_dtype() == DType::kF32)
      << "Spmm over bf16 values is forward-only; run under NoGradGuard";

  const int32_t* rp = a.row_ptr();
  const int32_t* ci = a.col_idx();
  const float* xd = xc.data();
  float* out = result->data();
  const int64_t batches = x.numel() / (m * c);
  const int64_t blocks = (n + kSpmmRowBlock - 1) / kSpmmRowBlock;
  auto run_rows = [&](const auto* av) {
    ParallelFor(0, batches * blocks, [&](int64_t begin, int64_t end) {
      for (int64_t t = begin; t < end; ++t) {
        const int64_t batch = t / blocks;
        const int64_t i0 = (t % blocks) * kSpmmRowBlock;
        const int64_t i1 = std::min(n, i0 + kSpmmRowBlock);
        SpmmRowsKernel(rp, ci, av, xd + batch * m * c, out + batch * n * c,
                       i0, i1, c);
      }
    });
  };
  if (a.values_dtype() == DType::kBf16) {
    run_rows(a.values_bf16());
  } else {
    run_rows(a.values());
  }
  STSM_PROF_COUNT("sparse.spmm_rows", static_cast<uint64_t>(batches * n));
  STSM_PROF_COUNT("sparse.spmm_flops",
                  static_cast<uint64_t>(2 * batches * a.nnz() * c));

  if (result->requires_grad) {
    result->grad_fn = std::make_shared<SpmmNode>(xc.impl(), a.impl());
  }
  return Tensor(std::move(result));
}

Tensor SpmmOracle(const Tensor& dense_a, const Tensor& x) {
  STSM_CHECK(dense_a.defined() && x.defined());
  STSM_CHECK_EQ(dense_a.ndim(), 2);
  STSM_CHECK(!dense_a.requires_grad())
      << "SpmmOracle mirrors Spmm: the matrix is a constant";
  STSM_CHECK_GE(x.ndim(), 2);
  const int64_t n = dense_a.shape()[0];
  const int64_t m = dense_a.shape()[1];
  STSM_CHECK_GT(n, 0);
  STSM_CHECK_GT(m, 0);
  STSM_CHECK_EQ(x.shape()[-2], m);
  const int64_t c = x.shape()[-1];
  STSM_CHECK_GT(c, 0);

  const Tensor ac = Contiguous(dense_a.Detach());
  const Tensor xc = Contiguous(x);
  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims[out_dims.size() - 2] = n;
  ImplPtr result = internal::MakeResult(Shape{std::move(out_dims)},
                                        {xc.impl()}, /*zero=*/false);
  const int64_t batches = x.numel() / (m * c);
  for (int64_t batch = 0; batch < batches; ++batch) {
    SpmmRowsOracle(ac.data(), m, xc.data() + batch * m * c,
                   result->data() + batch * n * c, 0, n, c);
  }
  if (result->requires_grad) {
    result->grad_fn = std::make_shared<SpmmOracleNode>(xc.impl(), ac.impl());
  }
  return Tensor(std::move(result));
}

// ---- Adjacency --------------------------------------------------------------

Adjacency::Adjacency(Tensor dense) : dense_(std::move(dense)) {
  STSM_CHECK(dense_.defined());
  STSM_CHECK_EQ(dense_.ndim(), 2);
}

Adjacency::Adjacency(SparseCsr sparse) : sparse_(std::move(sparse)) {
  STSM_CHECK(sparse_.defined());
}

const Tensor& Adjacency::dense() const {
  STSM_CHECK(dense_.defined()) << "Adjacency holds the sparse variant";
  return dense_;
}

const SparseCsr& Adjacency::sparse() const {
  STSM_CHECK(sparse_.defined()) << "Adjacency holds the dense variant";
  return sparse_;
}

int64_t Adjacency::rows() const {
  return is_sparse() ? sparse_.rows() : dense().shape()[0];
}

int64_t Adjacency::cols() const {
  return is_sparse() ? sparse_.cols() : dense().shape()[1];
}

Tensor Adjacency::Apply(const Tensor& x) const {
  STSM_CHECK(defined());
  return is_sparse() ? Spmm(sparse_, x) : MatMul(dense_, x);
}

Tensor Adjacency::ToDenseTensor() const {
  STSM_CHECK(defined());
  return is_sparse() ? sparse_.ToDense() : dense_;
}

DType Adjacency::values_dtype() const {
  STSM_CHECK(defined());
  return is_sparse() ? sparse_.values_dtype() : dense_.dtype();
}

Adjacency Adjacency::Cast(DType dtype) const {
  STSM_CHECK(defined());
  if (is_sparse()) return Adjacency(sparse_.CastValues(dtype));
  // Detach: the adjacency is a constant; Cast must work regardless of grad
  // mode, and To() refuses recorded tensors.
  return Adjacency(To(dense_.Detach(), dtype));
}

}  // namespace stsm
