// Sparse substrate: CSR matrices and SpMM on the pooled tensor core.
//
// `SparseCsr` is an immutable rows x cols sparse matrix in compressed sparse
// row layout — row_ptr (rows + 1), col_idx (nnz) and values (nnz) — whose
// three arrays live on pooled `Storage` buffers, so sparse memory is
// accounted by the same BufferPool counters as dense tensors. Values are
// fp32, indices int32; within each row the column indices are strictly
// ascending, which fixes the floating-point accumulation order of every
// kernel that walks a row.
//
// `Spmm(A, X)` is the sparse counterpart of `MatMul(A, X)` for a constant
// 2-D A: forward Y = A·X over the trailing [cols, C] matrices of X (leading
// batch dimensions loop), backward dX = Aᵀ·dG through a transpose plan (a
// CSC view of A, built lazily once and cached on the shared impl). A itself
// never receives a gradient — STSM's adjacencies are precomputed constants.
//
// Kernel discipline mirrors the PR 7 scalar/SIMD split: every SpMM kernel
// (`*Kernel`) has a dense-reference oracle twin (`*Oracle`) in sparse.cc
// with the identical skip-zero accumulation order, so differential tests can
// require bitwise-equal results (tools/stsm_lint.py enforces the pairing).
//
// `Adjacency` is the variant the graph consumers (GCN layers, the ST model,
// masking, serving) take: either a dense Tensor or a SparseCsr, with
// `Apply(x)` routing to MatMul or Spmm. Both constructors are implicit on
// purpose — every pre-existing call site that passes a dense adjacency
// Tensor keeps compiling, and the dense route stays bitwise what it was.

#ifndef STSM_TENSOR_SPARSE_H_
#define STSM_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace stsm {

namespace internal {
struct CsrImpl;
}  // namespace internal

class SparseCsr {
 public:
  // Undefined handle; may not be used in operations.
  SparseCsr() = default;
  explicit SparseCsr(std::shared_ptr<internal::CsrImpl> impl);

  // Builds from explicit CSR arrays (copied onto pooled storage). Validates
  // the invariants: row_ptr is monotone with row_ptr[0] == 0 and
  // row_ptr[rows] == nnz, every column index is in [0, cols), and columns
  // are strictly ascending within each row.
  static SparseCsr FromParts(int64_t rows, int64_t cols,
                             const std::vector<int32_t>& row_ptr,
                             const std::vector<int32_t>& col_idx,
                             const std::vector<float>& values);

  // Compresses a 2-D tensor (strided views welcome), keeping every entry
  // with a non-zero bit pattern other than ±0.0f. Round-trips bitwise:
  // FromDense(d).ToDense() == d whenever d holds no -0.0f entries.
  static SparseCsr FromDense(const Tensor& dense);

  // Materialises the dense [rows, cols] tensor (zeros where no entry).
  Tensor ToDense() const;

  bool defined() const { return impl_ != nullptr; }
  int64_t rows() const;
  int64_t cols() const;
  int64_t nnz() const;

  // Raw CSR arrays. Valid while this handle (or a copy) is alive.
  const int32_t* row_ptr() const;
  const int32_t* col_idx() const;
  // fp32 values accessor (checked when the values are stored as bf16).
  const float* values() const;

  // Element type of the values array. Indices are always int32; kBf16
  // values exist only on the no-grad serving path (see CastValues).
  DType values_dtype() const;
  // bf16 values accessor (checked; widen via F32FromBf16).
  const uint16_t* values_bf16() const;

  // Returns a matrix sharing this one's row_ptr/col_idx storage with the
  // values converted to `dtype` (RNE narrowing / exact widening; same handle
  // when the dtype already matches). Serving-path only: Spmm over bf16
  // values is forward-only — recording through it is a checked error.
  SparseCsr CastValues(DType dtype) const;

  const std::shared_ptr<internal::CsrImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::CsrImpl> impl_;
};

// Sparse-dense matrix product: a [N, M] times x [..., M, C] -> [..., N, C].
// Leading dimensions of x are batch dimensions (a is shared across them).
// Differentiable with respect to x only; a is constant. Rows of a with no
// entries yield zero output rows. Per output element the accumulation runs
// in ascending column order, so the result is bitwise equal to SpmmOracle
// on the equivalent dense matrix.
Tensor Spmm(const SparseCsr& a, const Tensor& x);

// Dense-reference oracle for Spmm: same contract and the same skip-zero
// ascending-k accumulation order, reading a dense 2-D `dense_a` instead of
// CSR arrays. Differentiable with respect to x (its backward is the oracle
// twin of the SpMM backward kernel). Exists for differential testing; not a
// fast path.
Tensor SpmmOracle(const Tensor& dense_a, const Tensor& x);

// A graph adjacency that is either a dense Tensor or a SparseCsr. The
// implicit constructors keep dense Tensor call sites source-compatible.
class Adjacency {
 public:
  Adjacency() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for dense sites.
  Adjacency(Tensor dense);
  // NOLINTNEXTLINE(google-explicit-constructor)
  Adjacency(SparseCsr sparse);

  bool defined() const { return dense_.defined() || sparse_.defined(); }
  bool is_sparse() const { return sparse_.defined(); }

  // Checked accessors: the matching variant must be held.
  const Tensor& dense() const;
  const SparseCsr& sparse() const;

  int64_t rows() const;
  int64_t cols() const;

  // Propagation A·X over the trailing [cols, C] matrices of x; batch
  // dimensions broadcast. Routes to MatMul (dense, bitwise-unchanged
  // behaviour) or Spmm (sparse).
  Tensor Apply(const Tensor& x) const;

  // The adjacency as a dense tensor (materialises when sparse).
  Tensor ToDenseTensor() const;

  // Storage dtype of the adjacency weights (dense tensor or CSR values).
  DType values_dtype() const;

  // The adjacency with its weights converted to `dtype` (dense: To();
  // sparse: SparseCsr::CastValues). Serving-path only, like CastValues.
  Adjacency Cast(DType dtype) const;

 private:
  Tensor dense_;
  SparseCsr sparse_;
};

}  // namespace stsm

#endif  // STSM_TENSOR_SPARSE_H_
