// Shape: the dimension vector of a dense row-major tensor, plus the
// broadcasting rules shared by all elementwise operations.

#ifndef STSM_TENSOR_SHAPE_H_
#define STSM_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace stsm {

// An immutable-ish list of dimension sizes. All tensors in this library are
// dense and row-major, so strides are derived, never stored.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int ndim() const { return static_cast<int>(dims_.size()); }

  // Dimension size; `d` may be negative (Python-style, -1 is the last dim).
  int64_t operator[](int d) const;

  // Total number of elements (1 for a rank-0 scalar).
  int64_t numel() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  // Row-major strides, in elements.
  std::vector<int64_t> Strides() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string ToString() const;

  // Computes the NumPy-style broadcast of two shapes. Aborts if the shapes
  // are not broadcast-compatible.
  static Shape Broadcast(const Shape& a, const Shape& b);

  // True when `a` can be broadcast to exactly `target`.
  static bool BroadcastsTo(const Shape& a, const Shape& target);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace stsm

#endif  // STSM_TENSOR_SHAPE_H_
