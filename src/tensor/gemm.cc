#include "tensor/gemm.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "tensor/simd.h"

namespace stsm {

namespace {

// Pack buffers are thread_local so concurrent PackedGemm calls from the
// thread pool never share them; they grow to the high-water mark once per
// thread and are reused across calls.
thread_local std::vector<float> tl_a_pack;
thread_local std::vector<float> tl_b_pack;

// MR x NR register tile: acc[i][j] accumulates over one packed k-block.
// `a_panel` is k-major (kb x MR), `b_panel` is k-major (kb x NR); both are
// zero-padded to full tile width, so the tile loop has no edge branches.
void MicroKernel(int64_t kb, const float* a_panel, const float* b_panel,
                 float* acc) {
  static_assert(kGemmMr == 4, "zero-column skip below is written for MR == 4");
  for (int64_t kk = 0; kk < kb; ++kk) {
    const float* av = a_panel + kk * kGemmMr;
    // Adjacency-style operands are mostly zeros; a whole-column skip keeps
    // the sparse win of the old per-element kernel at dense-case branch cost
    // of one predictable test per k step.
    if (av[0] == 0.0f && av[1] == 0.0f && av[2] == 0.0f && av[3] == 0.0f) {
      continue;
    }
    const float* bv = b_panel + kk * kGemmNr;
    for (int64_t i = 0; i < kGemmMr; ++i) {
      const float a_val = av[i];
      float* row = acc + i * kGemmNr;
      for (int64_t j = 0; j < kGemmNr; ++j) row[j] += a_val * bv[j];
    }
  }
}

// Widening element loads for the packing loops: fp32 panels are copied
// verbatim, bf16 bit patterns are widened exactly (<< 16). Everything past
// the pack — microkernel, accumulator, C stores — is fp32 either way.
inline float WidenLoad(float v) { return v; }
inline float WidenLoad(uint16_t v) { return F32FromBf16(v); }

// The blocked GEMM body, templated on the storage element type of each
// operand. PackedGemmImpl<float, float> is the historical fp32 kernel
// (identical arithmetic and flop order); the bf16 instantiations differ only
// in the pack-time loads.
template <typename AT, typename BT>
void PackedGemmImpl(int64_t m, int64_t n, int64_t k,        //
                    const AT* a, int64_t rs_a, int64_t cs_a,  //
                    const BT* b, int64_t rs_b, int64_t cs_b,  //
                    float* c, int64_t rs_c, int64_t cs_c,     //
                    bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) c[i * rs_c + j * cs_c] = 0.0f;
      }
    }
    return;
  }

  // Fetch the dispatch once per call: every pack/store below uses the same
  // tile geometry, and flipping dispatch mid-call (tests) cannot tear us.
  const simd::KernelTable* vk = simd::Active();
  const int64_t mr = vk != nullptr ? vk->gemm_mr : kGemmMr;
  const int64_t nr = vk != nullptr ? vk->gemm_nr : kGemmNr;
  assert(mr <= kGemmMaxMr && nr <= kGemmMaxNr);

  const int64_t n_panels = (n + nr - 1) / nr;
  tl_a_pack.resize(static_cast<size_t>(mr * kGemmKc));
  tl_b_pack.resize(static_cast<size_t>(n_panels * nr * kGemmKc));

  for (int64_t kc = 0; kc < k; kc += kGemmKc) {
    const int64_t kb = std::min(kGemmKc, k - kc);
    // On the first k-block a non-accumulating call overwrites C; every later
    // block adds on top.
    const bool overwrite = (kc == 0) && !accumulate;

    // Pack B into NR-wide, k-major panels (zero-padded past column n).
    float* b_pack = tl_b_pack.data();
    for (int64_t jp = 0; jp < n_panels; ++jp) {
      const int64_t j0 = jp * nr;
      const int64_t jw = std::min(nr, n - j0);
      float* panel = b_pack + jp * kb * nr;
      for (int64_t kk = 0; kk < kb; ++kk) {
        const BT* src = b + (kc + kk) * rs_b + j0 * cs_b;
        float* dst = panel + kk * nr;
        for (int64_t j = 0; j < jw; ++j) dst[j] = WidenLoad(src[j * cs_b]);
        for (int64_t j = jw; j < nr; ++j) dst[j] = 0.0f;
      }
    }

    for (int64_t i0 = 0; i0 < m; i0 += mr) {
      const int64_t iw = std::min(mr, m - i0);
      // Pack the A row panel k-major (zero-padded past row m).
      float* a_pack = tl_a_pack.data();
      for (int64_t kk = 0; kk < kb; ++kk) {
        const AT* src = a + i0 * rs_a + (kc + kk) * cs_a;
        float* dst = a_pack + kk * mr;
        for (int64_t i = 0; i < iw; ++i) dst[i] = WidenLoad(src[i * rs_a]);
        for (int64_t i = iw; i < mr; ++i) dst[i] = 0.0f;
      }

      for (int64_t jp = 0; jp < n_panels; ++jp) {
        const int64_t j0 = jp * nr;
        const int64_t jw = std::min(nr, n - j0);
        alignas(32) float acc[kGemmMaxMr * kGemmMaxNr] = {};
        if (vk != nullptr) {
          vk->gemm_micro(kb, a_pack, b_pack + jp * kb * nr, acc);
        } else {
          MicroKernel(kb, a_pack, b_pack + jp * kb * nr, acc);
        }
        for (int64_t i = 0; i < iw; ++i) {
          float* dst = c + (i0 + i) * rs_c + j0 * cs_c;
          const float* src = acc + i * nr;
          if (overwrite) {
            for (int64_t j = 0; j < jw; ++j) dst[j * cs_c] = src[j];
          } else {
            for (int64_t j = 0; j < jw; ++j) dst[j * cs_c] += src[j];
          }
        }
      }
    }
  }
}

}  // namespace

void PackedGemm(int64_t m, int64_t n, int64_t k,            //
                const float* a, int64_t rs_a, int64_t cs_a,  //
                const float* b, int64_t rs_b, int64_t cs_b,  //
                float* c, int64_t rs_c, int64_t cs_c,        //
                bool accumulate) {
  PackedGemmImpl<float, float>(m, n, k, a, rs_a, cs_a, b, rs_b, cs_b,  //
                               c, rs_c, cs_c, accumulate);
}

void PackedGemmEx(int64_t m, int64_t n, int64_t k,                      //
                  const void* a, DType a_dtype, int64_t rs_a, int64_t cs_a,
                  const void* b, DType b_dtype, int64_t rs_b, int64_t cs_b,
                  float* c, int64_t rs_c, int64_t cs_c,                 //
                  bool accumulate) {
  const bool a16 = a_dtype == DType::kBf16;
  const bool b16 = b_dtype == DType::kBf16;
  if (!a16 && !b16) {
    PackedGemmImpl<float, float>(
        m, n, k, static_cast<const float*>(a), rs_a, cs_a,
        static_cast<const float*>(b), rs_b, cs_b, c, rs_c, cs_c, accumulate);
  } else if (a16 && !b16) {
    PackedGemmImpl<uint16_t, float>(
        m, n, k, static_cast<const uint16_t*>(a), rs_a, cs_a,
        static_cast<const float*>(b), rs_b, cs_b, c, rs_c, cs_c, accumulate);
  } else if (!a16 && b16) {
    PackedGemmImpl<float, uint16_t>(
        m, n, k, static_cast<const float*>(a), rs_a, cs_a,
        static_cast<const uint16_t*>(b), rs_b, cs_b, c, rs_c, cs_c,
        accumulate);
  } else {
    PackedGemmImpl<uint16_t, uint16_t>(
        m, n, k, static_cast<const uint16_t*>(a), rs_a, cs_a,
        static_cast<const uint16_t*>(b), rs_b, cs_b, c, rs_c, cs_c,
        accumulate);
  }
}

void NaiveGemm(int64_t m, int64_t n, int64_t k,             //
               const float* a, int64_t rs_a, int64_t cs_a,   //
               const float* b, int64_t rs_b, int64_t cs_b,   //
               float* c, int64_t rs_c, int64_t cs_c,         //
               bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * rs_a + kk * cs_a] * b[kk * rs_b + j * cs_b];
      }
      float* dst = c + i * rs_c + j * cs_c;
      if (accumulate) {
        *dst += acc;
      } else {
        *dst = acc;
      }
    }
  }
}

}  // namespace stsm
