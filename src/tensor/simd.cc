// Runtime kernel dispatch: CPUID detection + STSM_SIMD env veto + test
// override. See simd.h for the determinism contract.

#include "tensor/simd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>
#include <string>

#include "common/env.h"

namespace stsm {
namespace simd {
namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* DetectSupported() {
  const KernelTable* table = internal::Avx2Table();
  if (table == nullptr) return nullptr;  // Built without AVX2 support.
  return CpuHasAvx2Fma() ? table : nullptr;
}

bool EnvVetoed() {
  std::string v = GetEnvOr("STSM_SIMD", std::string("on"));
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "off" || v == "0" || v == "scalar" || v == "false";
}

const KernelTable* DefaultActive() {
  return EnvVetoed() ? nullptr : DetectSupported();
}

// Cached on first use; g_active is what every op call reads. Atomic so the
// differential tests can flip dispatch while ParallelFor workers exist
// without a data race (workers only run inside an op call, which loads the
// pointer exactly once up front).
std::once_flag g_init_once;
const KernelTable* g_supported = nullptr;
std::atomic<const KernelTable*> g_active{nullptr};

void InitOnce() {
  std::call_once(g_init_once, [] {
    g_supported = DetectSupported();
    g_active.store(DefaultActive(), std::memory_order_release);
  });
}

}  // namespace

const KernelTable* Supported() {
  InitOnce();
  return g_supported;
}

const KernelTable* Active() {
  InitOnce();
  return g_active.load(std::memory_order_acquire);
}

void SetDispatchForTesting(bool enabled) {
  InitOnce();
  g_active.store(enabled ? g_supported : nullptr, std::memory_order_release);
}

void ResetDispatch() {
  InitOnce();
  g_active.store(DefaultActive(), std::memory_order_release);
}

}  // namespace simd
}  // namespace stsm
