// Storage: the ref-counted buffer block behind one or more TensorImpls.
//
// A Storage owns a contiguous float data buffer and, once gradients are
// needed, a parallel grad buffer of the same length. Zero-copy views
// (Reshape / Squeeze / Unsqueeze / Detach / contiguous Slice) are separate
// TensorImpls pointing at the same Storage with their own shape and element
// offset; because the grad buffer lives here too, gradient accumulation
// into a view lands directly in the base tensor's gradient at the view's
// offset — no scatter pass is needed.
//
// Buffers come from (and return to) the process-wide BufferPool, so dropping
// a Storage during the backward walk recycles its memory for the next op.

#ifndef STSM_TENSOR_STORAGE_H_
#define STSM_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace stsm {

// Exports the BufferPool counters into stsm::prof (delta since the last
// call; see BufferPool::RecordProfCounters). This is the public face of the
// pool for code outside src/tensor/ — training loops call it once per epoch
// without including the pool header.
void RecordPoolProfCounters();

class Storage {
 public:
  // Pool-backed buffer of `size` elements (zero-filled unless `zero` is
  // false, in which case the content is unspecified and the caller must
  // overwrite every element).
  static std::shared_ptr<Storage> New(int64_t size, bool zero = true);

  // Adopts an existing vector without copying (Tensor::FromVector).
  static std::shared_ptr<Storage> Adopt(std::vector<float> values);

  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Gradient buffer management. The grad buffer covers the whole storage
  // (all views share it) and is zero-initialised on first allocation. It is
  // itself a Storage so that a parameter's gradient can be wrapped in a
  // Tensor (Tensor::GradView) and fed to the in-place ops.
  bool has_grad() const { return grad_ != nullptr; }
  void EnsureGrad();

  // Process-wide count of grad-buffer allocations (EnsureGrad calls that
  // actually acquired a buffer). Lets tests assert that a NoGradGuard-ed
  // forward allocated zero gradient storage.
  static uint64_t GradAllocations();
  float* grad() { return grad_->data(); }
  const float* grad() const { return grad_->data(); }
  // The grad buffer as a Storage (null until EnsureGrad).
  const std::shared_ptr<Storage>& grad_storage() const { return grad_; }
  // Returns the grad buffer to the pool (ZeroGrad keeps it; this drops it).
  void FreeGrad();

 private:
  struct Private {};  // make_shared-able but only via the factories.

 public:
  Storage(Private, std::vector<float> data, bool adopted);

 private:
  std::vector<float> data_;
  std::shared_ptr<Storage> grad_;
};

}  // namespace stsm

#endif  // STSM_TENSOR_STORAGE_H_
