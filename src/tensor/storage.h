// Storage: the ref-counted buffer block behind one or more TensorImpls.
//
// A Storage owns a contiguous data buffer of `size()` elements of a single
// element type (`dtype()`, fp32 by default) and, once gradients are needed,
// a parallel fp32 grad buffer of the same element count. Zero-copy views
// (Reshape / Squeeze / Unsqueeze / Detach / contiguous Slice) are separate
// TensorImpls pointing at the same Storage with their own shape and element
// offset; because the grad buffer lives here too, gradient accumulation
// into a view lands directly in the base tensor's gradient at the view's
// offset — no scatter pass is needed.
//
// Dtype contract: data() is the fp32 accessor and is checked — code that
// blindly walks floats cannot silently reinterpret bf16 bits. bf16 storage
// (the no-grad serving path; see tensor/dtype.h) goes through bf16_data(),
// and dtype-generic code uses raw() + byte_size(). Gradients are fp32-only:
// EnsureGrad on a bf16 Storage is a checked error.
//
// Buffers come from (and return to) the process-wide BufferPool, which
// buckets on bytes, so dropping a Storage during the backward walk recycles
// its memory for the next op regardless of either tensor's dtype.

#ifndef STSM_TENSOR_STORAGE_H_
#define STSM_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "tensor/dtype.h"

namespace stsm {

// Exports the BufferPool counters into stsm::prof (delta since the last
// call; see BufferPool::RecordProfCounters). This is the public face of the
// pool for code outside src/tensor/ — training loops call it once per epoch
// without including the pool header.
void RecordPoolProfCounters();

class Storage {
 public:
  // Pool-backed fp32 buffer of `size` elements (zero-filled unless `zero` is
  // false, in which case the content is unspecified and the caller must
  // overwrite every element).
  static std::shared_ptr<Storage> New(int64_t size, bool zero = true);

  // Pool-backed buffer of `size` elements of `dtype`. Zero bits are the
  // zero value for both supported dtypes.
  static std::shared_ptr<Storage> New(int64_t size, DType dtype,
                                      bool zero = true);

  // Adopts an existing vector without copying (Tensor::FromVector). fp32.
  static std::shared_ptr<Storage> Adopt(std::vector<float> values);

  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  // Element count (not bytes).
  int64_t size() const { return size_; }
  DType dtype() const { return dtype_; }
  int64_t byte_size() const {
    return size_ * static_cast<int64_t>(ElementSize(dtype_));
  }

  // fp32 element accessor. Checked: calling it on a bf16 Storage is a bug
  // (the caller would walk bf16 bit pairs as floats).
  float* data() {
    STSM_CHECK(dtype_ == DType::kF32) << "fp32 data() on a bf16 Storage";
    return data_.data();
  }
  const float* data() const {
    STSM_CHECK(dtype_ == DType::kF32) << "fp32 data() on a bf16 Storage";
    return data_.data();
  }

  // bf16 element accessor (bit patterns; widen via F32FromBf16).
  uint16_t* bf16_data() {
    STSM_CHECK(dtype_ == DType::kBf16) << "bf16_data() on an fp32 Storage";
    return reinterpret_cast<uint16_t*>(data_.data());
  }
  const uint16_t* bf16_data() const {
    STSM_CHECK(dtype_ == DType::kBf16) << "bf16_data() on an fp32 Storage";
    return reinterpret_cast<const uint16_t*>(data_.data());
  }

  // Dtype-generic byte access for conversion kernels and serialization.
  void* raw() { return data_.data(); }
  const void* raw() const { return data_.data(); }

  // Gradient buffer management. The grad buffer covers the whole storage
  // (all views share it), is always fp32, and is zero-initialised on first
  // allocation. It is itself a Storage so that a parameter's gradient can be
  // wrapped in a Tensor (Tensor::GradView) and fed to the in-place ops.
  bool has_grad() const { return grad_ != nullptr; }
  void EnsureGrad();

  // Process-wide count of grad-buffer allocations (EnsureGrad calls that
  // actually acquired a buffer). Lets tests assert that a NoGradGuard-ed
  // forward allocated zero gradient storage.
  static uint64_t GradAllocations();
  float* grad() { return grad_->data(); }
  const float* grad() const { return grad_->data(); }
  // The grad buffer as a Storage (null until EnsureGrad).
  const std::shared_ptr<Storage>& grad_storage() const { return grad_; }
  // Returns the grad buffer to the pool (ZeroGrad keeps it; this drops it).
  void FreeGrad();

 private:
  struct Private {};  // make_shared-able but only via the factories.

 public:
  Storage(Private, std::vector<float> data, DType dtype, int64_t size,
          bool adopted);

 private:
  std::vector<float> data_;  // Byte carrier; see BufferPool.
  DType dtype_ = DType::kF32;
  int64_t size_ = 0;  // Element count under dtype_.
  std::shared_ptr<Storage> grad_;
};

}  // namespace stsm

#endif  // STSM_TENSOR_STORAGE_H_
