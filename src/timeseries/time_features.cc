#include "timeseries/time_features.h"

#include <cmath>

#include "common/check.h"

namespace stsm {

std::vector<int> TimeOfDayIds(int start, int window, int steps_per_day) {
  STSM_CHECK_GE(start, 0);
  STSM_CHECK_GT(window, 0);
  STSM_CHECK_GT(steps_per_day, 0);
  std::vector<int> ids(window);
  for (int t = 0; t < window; ++t) {
    ids[t] = (start + t) % steps_per_day;
  }
  return ids;
}

Tensor TimeOfDayFeatures(const std::vector<int>& ids, int steps_per_day) {
  STSM_CHECK_GT(steps_per_day, 0);
  const int window = static_cast<int>(ids.size());
  Tensor features = Tensor::Zeros(Shape({window, 3}));
  float* data = features.data();
  for (int t = 0; t < window; ++t) {
    STSM_CHECK(ids[t] >= 0 && ids[t] < steps_per_day);
    const double phase =
        2.0 * M_PI * static_cast<double>(ids[t]) / steps_per_day;
    data[t * 3 + 0] = static_cast<float>(ids[t]) / steps_per_day;
    data[t * 3 + 1] = static_cast<float>(std::sin(phase));
    data[t * 3 + 2] = static_cast<float>(std::cos(phase));
  }
  return features;
}

}  // namespace stsm
