// Dynamic time warping (Berndt & Clifford 1994), used to build STSM's
// temporal-similarity adjacency matrix (Section 3.4.1, following STFGNN).

#ifndef STSM_TIMESERIES_DTW_H_
#define STSM_TIMESERIES_DTW_H_

#include <vector>

namespace stsm {

// DTW distance between two sequences with absolute-difference local cost.
// `band` is the Sakoe-Chiba band half-width: cells with |i - j| > band are
// skipped. band <= 0 means unconstrained DTW. Sequences may differ in length
// (the band is applied around the diagonal scaled to the length ratio).
double DtwDistance(const std::vector<float>& a, const std::vector<float>& b,
                   int band = 0);

// Compresses a long series into its average daily profile of length
// `steps_per_day` (mean over days per time-of-day slot). DTW on daily
// profiles is the standard way to make series similarity tractable.
std::vector<float> DailyProfile(const std::vector<float>& series,
                                int steps_per_day);

}  // namespace stsm

#endif  // STSM_TIMESERIES_DTW_H_
