// Temporal-similarity adjacency matrix (STSM Section 3.4.1).
//
// DTW distances between daily profiles define similarity. Edges are placed
// between the q_kk most similar pairs of observed locations (symmetric) and
// from the q_ku most similar observed locations into each target (masked or
// unobserved) location — directed, so targets never pollute observed nodes'
// embeddings during message passing.

#ifndef STSM_TIMESERIES_TEMPORAL_ADJACENCY_H_
#define STSM_TIMESERIES_TEMPORAL_ADJACENCY_H_

#include <vector>

#include "tensor/tensor.h"
#include "timeseries/series.h"

namespace stsm {

struct TemporalAdjacencyOptions {
  // Top similar observed neighbours per observed node (q_kk in the paper).
  int q_kk = 1;
  // Top similar observed neighbours per target node (q_ku in the paper).
  int q_ku = 1;
  // Time slots per day, for daily-profile compression before DTW.
  int steps_per_day = 288;
  // Sakoe-Chiba band half-width for DTW on the daily profiles (0 = full).
  int dtw_band = 12;
};

// Builds the N x N binary temporal adjacency. `series` must contain real
// observations in the observed columns and pseudo-observations in the target
// columns (the caller fills them beforehand; see FillPseudoObservations).
// A[i][j] = 1 means node i aggregates from node j in a GCN step.
Tensor TemporalSimilarityAdjacency(const SeriesMatrix& series,
                                   const std::vector<int>& observed,
                                   const std::vector<int>& targets,
                                   const TemporalAdjacencyOptions& options);

// DTW distances between every pair of node daily profiles; row-major
// N x N with 0 on the diagonal. Exposed for tests and diagnostics.
std::vector<double> ProfileDtwDistances(const SeriesMatrix& series,
                                        int steps_per_day, int dtw_band);

}  // namespace stsm

#endif  // STSM_TIMESERIES_TEMPORAL_ADJACENCY_H_
