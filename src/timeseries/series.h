// SeriesMatrix: the [time, node] observation matrix shared by data
// generation, pseudo-observation filling, and windowing.

#ifndef STSM_TIMESERIES_SERIES_H_
#define STSM_TIMESERIES_SERIES_H_

#include <vector>

#include "common/check.h"

namespace stsm {

// Dense row-major [num_steps x num_nodes] matrix of scalar observations
// (C = 1 in the paper's notation; traffic speed or PM2.5).
struct SeriesMatrix {
  int num_steps = 0;
  int num_nodes = 0;
  std::vector<float> values;  // values[t * num_nodes + n]

  SeriesMatrix() = default;
  SeriesMatrix(int steps, int nodes)
      : num_steps(steps),
        num_nodes(nodes),
        values(static_cast<size_t>(steps) * nodes, 0.0f) {}

  float at(int t, int n) const {
    STSM_CHECK(t >= 0 && t < num_steps && n >= 0 && n < num_nodes);
    return values[static_cast<size_t>(t) * num_nodes + n];
  }
  void set(int t, int n, float v) {
    STSM_CHECK(t >= 0 && t < num_steps && n >= 0 && n < num_nodes);
    values[static_cast<size_t>(t) * num_nodes + n] = v;
  }

  // Copy of a single node's series.
  std::vector<float> NodeSeries(int node) const {
    STSM_CHECK(node >= 0 && node < num_nodes);
    std::vector<float> series(num_steps);
    for (int t = 0; t < num_steps; ++t) {
      series[t] = values[static_cast<size_t>(t) * num_nodes + node];
    }
    return series;
  }

  // Sub-matrix of the given time range [start, end).
  SeriesMatrix TimeSlice(int start, int end) const {
    STSM_CHECK(start >= 0 && start <= end && end <= num_steps);
    SeriesMatrix out(end - start, num_nodes);
    std::copy(values.begin() + static_cast<size_t>(start) * num_nodes,
              values.begin() + static_cast<size_t>(end) * num_nodes,
              out.values.begin());
    return out;
  }
};

}  // namespace stsm

#endif  // STSM_TIMESERIES_SERIES_H_
