// Time-of-day features (STSM Section 3.4.1): each observation interval gets
// an interval id in [0, Td); the model fuses a projected time embedding with
// the projected observations (Eq. 4).

#ifndef STSM_TIMESERIES_TIME_FEATURES_H_
#define STSM_TIMESERIES_TIME_FEATURES_H_

#include <vector>

#include "tensor/tensor.h"

namespace stsm {

// Interval ids for a window of length `window` starting at absolute step
// `start`, given `steps_per_day` slots per day.
std::vector<int> TimeOfDayIds(int start, int window, int steps_per_day);

// Encodes interval ids as a [window, 3] tensor of
// (id / Td, sin(2*pi*id/Td), cos(2*pi*id/Td)) features — a smooth stand-in
// for the scalar interval id that avoids the discontinuity at midnight.
Tensor TimeOfDayFeatures(const std::vector<int>& ids, int steps_per_day);

}  // namespace stsm

#endif  // STSM_TIMESERIES_TIME_FEATURES_H_
