#include "timeseries/temporal_adjacency.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "timeseries/dtw.h"

namespace stsm {

std::vector<double> ProfileDtwDistances(const SeriesMatrix& series,
                                        int steps_per_day, int dtw_band) {
  const int n = series.num_nodes;
  std::vector<std::vector<float>> profiles(n);
  for (int i = 0; i < n; ++i) {
    profiles[i] = DailyProfile(series.NodeSeries(i), steps_per_day);
  }
  std::vector<double> distances(static_cast<size_t>(n) * n, 0.0);
  // Upper triangle in parallel; DTW is symmetric in its arguments.
  ParallelFor(0, n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      for (int j = static_cast<int>(i) + 1; j < n; ++j) {
        const double d = DtwDistance(profiles[i], profiles[j], dtw_band);
        distances[i * n + j] = d;
        distances[static_cast<size_t>(j) * n + i] = d;
      }
    }
  });
  return distances;
}

Tensor TemporalSimilarityAdjacency(const SeriesMatrix& series,
                                   const std::vector<int>& observed,
                                   const std::vector<int>& targets,
                                   const TemporalAdjacencyOptions& options) {
  const int n = series.num_nodes;
  STSM_CHECK(!observed.empty());
  const std::vector<double> dtw =
      ProfileDtwDistances(series, options.steps_per_day, options.dtw_band);

  Tensor adjacency = Tensor::Zeros(Shape({n, n}));
  float* a = adjacency.data();

  // Most similar = smallest DTW distance.
  auto top_similar = [&](int node, int count) {
    std::vector<std::pair<double, int>> candidates;
    candidates.reserve(observed.size());
    for (int obs : observed) {
      if (obs == node) continue;
      candidates.emplace_back(dtw[static_cast<size_t>(node) * n + obs], obs);
    }
    const int k = std::min<int>(count, static_cast<int>(candidates.size()));
    std::partial_sort(candidates.begin(), candidates.begin() + k,
                      candidates.end());
    std::vector<int> result(k);
    for (int q = 0; q < k; ++q) result[q] = candidates[q].second;
    return result;
  };

  // Observed-observed links (symmetric: both may aggregate from the other).
  for (int obs : observed) {
    for (int peer : top_similar(obs, options.q_kk)) {
      a[static_cast<int64_t>(obs) * n + peer] = 1.0f;
      a[static_cast<int64_t>(peer) * n + obs] = 1.0f;
    }
  }
  // Observed -> target links only (target row aggregates from observed).
  for (int target : targets) {
    for (int source : top_similar(target, options.q_ku)) {
      a[static_cast<int64_t>(target) * n + source] = 1.0f;
    }
  }
  return adjacency;
}

}  // namespace stsm
