#include "timeseries/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace stsm {

double DtwDistance(const std::vector<float>& a, const std::vector<float>& b,
                   int band) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  STSM_CHECK_GT(n, 0);
  STSM_CHECK_GT(m, 0);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Two-row dynamic program; row index i runs over `a`.
  std::vector<double> previous(m + 1, kInf);
  std::vector<double> current(m + 1, kInf);
  previous[0] = 0.0;

  const double slope = static_cast<double>(m) / n;
  for (int i = 1; i <= n; ++i) {
    std::fill(current.begin(), current.end(), kInf);
    int j_lo = 1, j_hi = m;
    if (band > 0) {
      const int center = static_cast<int>(std::lround(i * slope));
      j_lo = std::max(1, center - band);
      j_hi = std::min(m, center + band);
    }
    for (int j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(static_cast<double>(a[i - 1]) - b[j - 1]);
      const double best = std::min({previous[j], previous[j - 1], current[j - 1]});
      if (best < kInf) current[j] = cost + best;
    }
    std::swap(previous, current);
  }
  return previous[m];
}

std::vector<float> DailyProfile(const std::vector<float>& series,
                                int steps_per_day) {
  STSM_CHECK_GT(steps_per_day, 0);
  STSM_CHECK_GE(static_cast<int>(series.size()), steps_per_day);
  std::vector<double> sums(steps_per_day, 0.0);
  std::vector<int> counts(steps_per_day, 0);
  for (size_t t = 0; t < series.size(); ++t) {
    const int slot = static_cast<int>(t % steps_per_day);
    sums[slot] += series[t];
    ++counts[slot];
  }
  std::vector<float> profile(steps_per_day);
  for (int s = 0; s < steps_per_day; ++s) {
    profile[s] = static_cast<float>(sums[s] / std::max(1, counts[s]));
  }
  return profile;
}

}  // namespace stsm
