// Pseudo-observation generation for unobserved/masked locations
// (STSM Eq. 3): inverse-distance-weighted interpolation from the observed
// locations, evaluated independently per time step.

#ifndef STSM_TIMESERIES_PSEUDO_OBSERVATIONS_H_
#define STSM_TIMESERIES_PSEUDO_OBSERVATIONS_H_

#include <vector>

#include "timeseries/series.h"

namespace stsm {

// Inverse-distance weights from each target node to every source node
// (Eq. 3): alpha_{i,j} = dist(i,j)^{-1} / sum_l dist(i,l)^{-1}.
// `distances` is the row-major full N x N distance matrix. Returns a
// [targets.size() x sources.size()] row-major weight matrix. A target that
// coincides with a source (distance 0) takes that source's value exactly.
//
// `max_neighbors` restricts the weighting to each target's nearest sources
// (0 = all sources). Eq. 3 motivates the weights as introducing information
// from a location's *neighbours*; with 1/d weights over a large region the
// far field otherwise dominates and the pseudo-observation collapses
// towards the global mean.
std::vector<double> InverseDistanceWeights(
    const std::vector<double>& distances, int num_nodes,
    const std::vector<int>& targets, const std::vector<int>& sources,
    int max_neighbors = 0);

// Fills the columns of `series` at `targets` with pseudo-observations
// computed from the `sources` columns using inverse-distance weights.
// Existing values in the target columns are overwritten.
void FillPseudoObservations(SeriesMatrix* series,
                            const std::vector<double>& distances,
                            const std::vector<int>& targets,
                            const std::vector<int>& sources,
                            int max_neighbors = 0);

}  // namespace stsm

#endif  // STSM_TIMESERIES_PSEUDO_OBSERVATIONS_H_
