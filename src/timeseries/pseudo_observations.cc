#include "timeseries/pseudo_observations.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace stsm {

std::vector<double> InverseDistanceWeights(
    const std::vector<double>& distances, int num_nodes,
    const std::vector<int>& targets, const std::vector<int>& sources,
    int max_neighbors) {
  STSM_CHECK_EQ(static_cast<int64_t>(distances.size()),
                static_cast<int64_t>(num_nodes) * num_nodes);
  STSM_CHECK(!sources.empty());
  const size_t num_targets = targets.size();
  const size_t num_sources = sources.size();
  std::vector<double> weights(num_targets * num_sources, 0.0);

  for (size_t ti = 0; ti < num_targets; ++ti) {
    const int target = targets[ti];
    STSM_CHECK(target >= 0 && target < num_nodes);
    double* row = weights.data() + ti * num_sources;

    // A coincident source (zero distance) dominates: copy it exactly.
    int coincident = -1;
    for (size_t si = 0; si < num_sources; ++si) {
      const double d =
          distances[static_cast<size_t>(target) * num_nodes + sources[si]];
      if (d <= 0.0) {
        coincident = static_cast<int>(si);
        break;
      }
    }
    if (coincident >= 0) {
      row[coincident] = 1.0;
      continue;
    }

    // Optionally restrict to the nearest sources.
    std::vector<size_t> used(num_sources);
    for (size_t si = 0; si < num_sources; ++si) used[si] = si;
    if (max_neighbors > 0 &&
        static_cast<size_t>(max_neighbors) < num_sources) {
      std::partial_sort(
          used.begin(), used.begin() + max_neighbors, used.end(),
          [&](size_t a, size_t b) {
            return distances[static_cast<size_t>(target) * num_nodes +
                             sources[a]] <
                   distances[static_cast<size_t>(target) * num_nodes +
                             sources[b]];
          });
      used.resize(max_neighbors);
    }

    double total = 0.0;
    for (size_t si : used) {
      const double d =
          distances[static_cast<size_t>(target) * num_nodes + sources[si]];
      row[si] = 1.0 / d;
      total += row[si];
    }
    for (size_t si : used) row[si] /= total;
  }
  return weights;
}

void FillPseudoObservations(SeriesMatrix* series,
                            const std::vector<double>& distances,
                            const std::vector<int>& targets,
                            const std::vector<int>& sources,
                            int max_neighbors) {
  STSM_CHECK(series != nullptr);
  if (targets.empty()) return;
  const int num_nodes = series->num_nodes;
  const std::vector<double> weights = InverseDistanceWeights(
      distances, num_nodes, targets, sources, max_neighbors);
  const size_t num_sources = sources.size();

  ParallelFor(0, series->num_steps, [&](int64_t begin, int64_t end) {
    for (int64_t t = begin; t < end; ++t) {
      float* row = series->values.data() + t * num_nodes;
      for (size_t ti = 0; ti < targets.size(); ++ti) {
        const double* w = weights.data() + ti * num_sources;
        double value = 0.0;
        for (size_t si = 0; si < num_sources; ++si) {
          value += w[si] * row[sources[si]];
        }
        row[targets[ti]] = static_cast<float>(value);
      }
    }
  });
}

}  // namespace stsm
