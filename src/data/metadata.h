// Node metadata standing in for the OpenStreetMap region / road-network
// features used by STSM's selective masking module (Section 4.1, Table 1).

#ifndef STSM_DATA_METADATA_H_
#define STSM_DATA_METADATA_H_

#include <array>
#include <string>
#include <vector>

namespace stsm {

// Number of POI categories (Table 1 of the paper defines 26).
inline constexpr int kNumPoiCategories = 26;

// Human-readable POI category names matching Table 1's numbering.
extern const std::array<const char*, kNumPoiCategories> kPoiCategoryNames;

// Per-location region + road features.
//
// Region part (Section 4.1 item 1): POI category counts within radius r_poi
// and a prosperity scalar (building floors / park area proxy).
// Road part (item 2): highway_level, maxspeed, is_oneway, lanes.
struct NodeMetadata {
  std::array<float, kNumPoiCategories> poi_counts{};  // l_i^poi
  float scale = 0.0f;                                 // l_i^scale
  float highway_level = 0.0f;                         // 0 = minor ... 5 = motorway
  float maxspeed = 0.0f;                              // km/h
  float is_oneway = 0.0f;                             // 0 or 1
  float lanes = 1.0f;

  // Flattens into the paper's l_i = [l^poi || l^scale || l^road]
  // embedding of dimension Gamma + 5.
  std::vector<float> Embedding() const;
};

// Dimension of NodeMetadata::Embedding().
inline constexpr int kMetadataEmbeddingDim = kNumPoiCategories + 5;

// Mean embedding over a set of locations (the sub-graph / region embedding
// l_SG of Section 4.1). `indices` must be non-empty.
std::vector<float> MeanEmbedding(const std::vector<NodeMetadata>& metadata,
                                 const std::vector<int>& indices);

// Cosine similarity between two embeddings of equal dimension.
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace stsm

#endif  // STSM_DATA_METADATA_H_
