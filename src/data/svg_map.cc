#include "data/svg_map.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/check.h"

namespace stsm {
namespace {

struct Frame {
  double min_x, min_y, scale;
  int size_px;
  double Px(double x) const { return 20.0 + (x - min_x) * scale; }
  // SVG y grows downward; flip so north stays up.
  double Py(double y) const {
    return size_px - 20.0 - (y - min_y) * scale;
  }
};

Frame FitFrame(const std::vector<GeoPoint>& coords, int size_px) {
  STSM_CHECK(!coords.empty());
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (const GeoPoint& p : coords) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span = std::max({max_x - min_x, max_y - min_y, 1e-9});
  return Frame{min_x, min_y, (size_px - 40.0) / span, size_px};
}

void OpenSvg(std::ostringstream& out, const SvgMapOptions& options) {
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.size_px << "\" height=\"" << options.size_px
      << "\" viewBox=\"0 0 " << options.size_px << " " << options.size_px
      << "\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    out << "<text x=\"" << options.size_px / 2
        << "\" y=\"14\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"12\">"
        << options.title << "</text>\n";
  }
}

void EmitDots(std::ostringstream& out, const std::vector<GeoPoint>& coords,
              const std::vector<int>& indices, const Frame& frame,
              double radius, const char* color) {
  for (int i : indices) {
    out << "<circle cx=\"" << frame.Px(coords[i].x) << "\" cy=\""
        << frame.Py(coords[i].y) << "\" r=\"" << radius << "\" fill=\""
        << color << "\"/>\n";
  }
}

}  // namespace

std::string RenderSensorMapSvg(const std::vector<GeoPoint>& coords,
                               const SvgMapOptions& options) {
  const Frame frame = FitFrame(coords, options.size_px);
  std::ostringstream out;
  OpenSvg(out, options);
  std::vector<int> all(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) all[i] = static_cast<int>(i);
  EmitDots(out, coords, all, frame, options.dot_radius, "#3366cc");
  out << "</svg>\n";
  return out.str();
}

std::string RenderSplitMapSvg(const std::vector<GeoPoint>& coords,
                              const SpaceSplit& split,
                              const SvgMapOptions& options) {
  const Frame frame = FitFrame(coords, options.size_px);
  std::ostringstream out;
  OpenSvg(out, options);
  // Paper colours: train red, validation pink, unobserved/test blue.
  EmitDots(out, coords, split.train, frame, options.dot_radius, "#cc2222");
  EmitDots(out, coords, split.validation, frame, options.dot_radius,
           "#ee88aa");
  EmitDots(out, coords, split.test, frame, options.dot_radius, "#2255cc");
  // Legend.
  const int size = options.size_px;
  const char* labels[3] = {"train (observed)", "validation (observed)",
                           "test (unobserved)"};
  const char* colors[3] = {"#cc2222", "#ee88aa", "#2255cc"};
  for (int row = 0; row < 3; ++row) {
    const int y = size - 48 + row * 15;
    out << "<circle cx=\"14\" cy=\"" << y << "\" r=\"4\" fill=\""
        << colors[row] << "\"/>\n";
    out << "<text x=\"24\" y=\"" << y + 4
        << "\" font-family=\"sans-serif\" font-size=\"11\">" << labels[row]
        << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

bool WriteSvg(const std::string& svg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << svg;
  return static_cast<bool>(out);
}

}  // namespace stsm
