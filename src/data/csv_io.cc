#include "data/csv_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace stsm {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  // A trailing comma yields an implicit empty cell.
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

bool ParseFloat(const std::string& text, float* value) {
  char* end = nullptr;
  *value = std::strtof(text.c_str(), &end);
  return end != text.c_str();
}

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != text.c_str();
}

}  // namespace

bool SaveDatasetCsv(const SpatioTemporalDataset& dataset,
                    const std::string& directory) {
  {
    std::ofstream meta(directory + "/meta.csv");
    if (!meta) return false;
    meta << dataset.name << "," << dataset.steps_per_day << "\n";
    if (!meta) return false;
  }
  {
    std::ofstream sensors(directory + "/sensors.csv");
    if (!sensors) return false;
    sensors << "x_km,y_km,scale,highway_level,maxspeed,is_oneway,lanes";
    for (int c = 0; c < kNumPoiCategories; ++c) sensors << ",poi_" << c;
    sensors << "\n";
    for (int i = 0; i < dataset.num_nodes(); ++i) {
      const NodeMetadata& meta = dataset.metadata[i];
      sensors << dataset.coords[i].x << "," << dataset.coords[i].y << ","
              << meta.scale << "," << meta.highway_level << ","
              << meta.maxspeed << "," << meta.is_oneway << "," << meta.lanes;
      for (int c = 0; c < kNumPoiCategories; ++c) {
        sensors << "," << meta.poi_counts[c];
      }
      sensors << "\n";
    }
    if (!sensors) return false;
  }
  {
    std::ofstream series(directory + "/series.csv");
    if (!series) return false;
    for (int i = 0; i < dataset.num_nodes(); ++i) {
      series << (i > 0 ? "," : "") << "sensor_" << i;
    }
    series << "\n";
    for (int t = 0; t < dataset.num_steps(); ++t) {
      for (int i = 0; i < dataset.num_nodes(); ++i) {
        series << (i > 0 ? "," : "") << dataset.series.at(t, i);
      }
      series << "\n";
    }
    if (!series) return false;
  }
  return true;
}

std::optional<SpatioTemporalDataset> LoadDatasetCsv(
    const std::string& directory) {
  SpatioTemporalDataset dataset;

  // meta.csv
  {
    std::ifstream meta(directory + "/meta.csv");
    if (!meta) return std::nullopt;
    std::string line;
    if (!std::getline(meta, line)) return std::nullopt;
    const auto cells = SplitCsvLine(line);
    if (cells.size() != 2) return std::nullopt;
    dataset.name = cells[0];
    dataset.steps_per_day = std::atoi(cells[1].c_str());
    if (dataset.steps_per_day <= 0) return std::nullopt;
  }

  // sensors.csv
  {
    std::ifstream sensors(directory + "/sensors.csv");
    if (!sensors) return std::nullopt;
    std::string line;
    if (!std::getline(sensors, line)) return std::nullopt;  // Header.
    const size_t expected_cells = 7 + kNumPoiCategories;
    while (std::getline(sensors, line)) {
      if (line.empty()) continue;
      const auto cells = SplitCsvLine(line);
      if (cells.size() != expected_cells) return std::nullopt;
      GeoPoint point;
      NodeMetadata meta;
      float value = 0.0f;
      if (!ParseDouble(cells[0], &point.x)) return std::nullopt;
      if (!ParseDouble(cells[1], &point.y)) return std::nullopt;
      if (!ParseFloat(cells[2], &meta.scale)) return std::nullopt;
      if (!ParseFloat(cells[3], &meta.highway_level)) return std::nullopt;
      if (!ParseFloat(cells[4], &meta.maxspeed)) return std::nullopt;
      if (!ParseFloat(cells[5], &meta.is_oneway)) return std::nullopt;
      if (!ParseFloat(cells[6], &meta.lanes)) return std::nullopt;
      for (int c = 0; c < kNumPoiCategories; ++c) {
        if (!ParseFloat(cells[7 + c], &value)) return std::nullopt;
        meta.poi_counts[c] = value;
      }
      dataset.coords.push_back(point);
      dataset.metadata.push_back(meta);
    }
    if (dataset.coords.empty()) return std::nullopt;
  }

  // series.csv
  {
    std::ifstream series(directory + "/series.csv");
    if (!series) return std::nullopt;
    std::string line;
    if (!std::getline(series, line)) return std::nullopt;  // Header.
    std::vector<std::vector<float>> rows;
    while (std::getline(series, line)) {
      if (line.empty()) continue;
      const auto cells = SplitCsvLine(line);
      if (cells.size() != dataset.coords.size()) return std::nullopt;
      std::vector<float> row(cells.size());
      for (size_t c = 0; c < cells.size(); ++c) {
        if (!ParseFloat(cells[c], &row[c])) return std::nullopt;
      }
      rows.push_back(std::move(row));
    }
    if (rows.empty()) return std::nullopt;
    dataset.series = SeriesMatrix(static_cast<int>(rows.size()),
                                  static_cast<int>(dataset.coords.size()));
    for (size_t t = 0; t < rows.size(); ++t) {
      for (size_t n = 0; n < rows[t].size(); ++n) {
        dataset.series.set(static_cast<int>(t), static_cast<int>(n),
                           rows[t][n]);
      }
    }
  }
  return dataset;
}

}  // namespace stsm
