// Evaluation metrics (Section 5.1.3): RMSE, MAE, MAPE, and R-squared.

#ifndef STSM_DATA_METRICS_H_
#define STSM_DATA_METRICS_H_

#include <cstdint>
#include <vector>

namespace stsm {

struct Metrics {
  double rmse = 0.0;
  double mae = 0.0;
  double mape = 0.0;
  double r2 = 0.0;
  int64_t count = 0;
};

// Computes all four metrics over paired prediction/target vectors.
// MAPE skips targets with |y| < `mape_threshold` (division blow-up guard,
// standard practice for traffic data). R2 = 1 - SS_res / SS_tot, i.e. how
// much better the model is than predicting the mean observation.
Metrics ComputeMetrics(const std::vector<float>& predictions,
                       const std::vector<float>& targets,
                       double mape_threshold = 1.0);

// Streaming accumulator so benchmark sweeps can merge windows without
// storing all predictions.
class MetricsAccumulator {
 public:
  void Add(float prediction, float target);
  void AddAll(const std::vector<float>& predictions,
              const std::vector<float>& targets);
  Metrics Compute(double mape_threshold = 1.0) const;
  int64_t count() const { return static_cast<int64_t>(targets_.size()); }

 private:
  std::vector<float> predictions_;
  std::vector<float> targets_;
};

}  // namespace stsm

#endif  // STSM_DATA_METRICS_H_
