#include "data/splits.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace stsm {
namespace {

// Orders node indices by a per-node key and cuts the order into three
// contiguous groups of the given fractions.
SpaceSplit SplitByKey(const std::vector<double>& keys, double train_fraction,
                      double validation_fraction) {
  const int n = static_cast<int>(keys.size());
  STSM_CHECK_GE(n, 3);
  STSM_CHECK_GT(train_fraction, 0.0);
  STSM_CHECK_GE(validation_fraction, 0.0);
  STSM_CHECK_LT(train_fraction + validation_fraction, 1.0);

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return keys[a] < keys[b]; });

  const int train_count =
      std::max(1, static_cast<int>(n * train_fraction + 0.5));
  const int val_count =
      std::max(1, static_cast<int>(n * validation_fraction + 0.5));
  STSM_CHECK_LT(train_count + val_count, n);

  SpaceSplit split;
  split.train.assign(order.begin(), order.begin() + train_count);
  split.validation.assign(order.begin() + train_count,
                          order.begin() + train_count + val_count);
  split.test.assign(order.begin() + train_count + val_count, order.end());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.validation.begin(), split.validation.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

std::vector<double> AxisKeys(const std::vector<GeoPoint>& coords,
                             SplitAxis axis, bool reverse) {
  std::vector<double> keys(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    const double v = axis == SplitAxis::kHorizontal ? coords[i].y
                                                    : coords[i].x;
    keys[i] = reverse ? -v : v;
  }
  return keys;
}

}  // namespace

std::vector<int> SpaceSplit::Observed() const {
  std::vector<int> observed = train;
  observed.insert(observed.end(), validation.begin(), validation.end());
  std::sort(observed.begin(), observed.end());
  return observed;
}

std::vector<std::vector<int>> SpaceSplit::TestRegions() const {
  if (!test_regions.empty()) return test_regions;
  return {test};
}

SpaceSplit SplitSpace(const std::vector<GeoPoint>& coords, SplitAxis axis,
                      double train_fraction, double validation_fraction,
                      bool reverse) {
  return SplitByKey(AxisKeys(coords, axis, reverse), train_fraction,
                    validation_fraction);
}

SpaceSplit SplitSpaceRing(const std::vector<GeoPoint>& coords,
                          double train_fraction,
                          double validation_fraction) {
  const GeoPoint center = Centroid(coords);
  std::vector<double> keys(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    keys[i] = Distance(coords[i], center);
  }
  return SplitByKey(keys, train_fraction, validation_fraction);
}

SpaceSplit SplitSpaceWithRatio(const std::vector<GeoPoint>& coords,
                               SplitAxis axis, double unobserved_ratio,
                               bool reverse) {
  STSM_CHECK_GT(unobserved_ratio, 0.0);
  STSM_CHECK_LT(unobserved_ratio, 1.0);
  const double observed = 1.0 - unobserved_ratio;
  // Observed part keeps the paper's 4:1 train:validation proportion.
  return SplitByKey(AxisKeys(coords, axis, reverse), observed * 0.8,
                    observed * 0.2);
}

SpaceSplit SplitSpaceMultiRegion(const std::vector<GeoPoint>& coords,
                                 SplitAxis axis, int num_regions,
                                 double unobserved_ratio) {
  STSM_CHECK_GE(num_regions, 1);
  STSM_CHECK(unobserved_ratio > 0.0 && unobserved_ratio < 1.0);
  const int n = static_cast<int>(coords.size());
  STSM_CHECK_GE(n, 8 * num_regions);

  // Order nodes along the axis, then walk alternating
  // observed/unobserved bands sized by the ratio.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  const std::vector<double> keys = AxisKeys(coords, axis, /*reverse=*/false);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return keys[a] < keys[b]; });

  const double band_pair = static_cast<double>(n) / num_regions;
  const double observed_band = band_pair * (1.0 - unobserved_ratio);

  SpaceSplit split;
  split.test_regions.resize(num_regions);
  for (int i = 0; i < n; ++i) {
    const double pos = static_cast<double>(i);
    const int pair_index =
        std::min(num_regions - 1, static_cast<int>(pos / band_pair));
    const double offset = pos - pair_index * band_pair;
    const int node = order[i];
    if (offset < observed_band) {
      // Within the observed band: first 4/5 train, last 1/5 validation.
      if (offset < observed_band * 0.8) {
        split.train.push_back(node);
      } else {
        split.validation.push_back(node);
      }
    } else {
      split.test.push_back(node);
      split.test_regions[pair_index].push_back(node);
    }
  }
  STSM_CHECK(!split.train.empty());
  STSM_CHECK(!split.validation.empty());
  STSM_CHECK(!split.test.empty());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.validation.begin(), split.validation.end());
  std::sort(split.test.begin(), split.test.end());
  for (auto& region : split.test_regions) {
    std::sort(region.begin(), region.end());
    STSM_CHECK(!region.empty());
  }
  return split;
}

std::vector<SpaceSplit> FourSplits(const std::vector<GeoPoint>& coords,
                                   double train_fraction,
                                   double validation_fraction) {
  std::vector<SpaceSplit> splits;
  for (const SplitAxis axis : {SplitAxis::kHorizontal, SplitAxis::kVertical}) {
    for (const bool reverse : {false, true}) {
      splits.push_back(SplitSpace(coords, axis, train_fraction,
                                  validation_fraction, reverse));
    }
  }
  return splits;
}

TimeSplit SplitTime(int num_steps, double train_fraction) {
  STSM_CHECK_GT(num_steps, 0);
  STSM_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  TimeSplit split;
  split.total_steps = num_steps;
  split.train_steps = std::max(1, static_cast<int>(num_steps * train_fraction));
  STSM_CHECK_LT(split.train_steps, num_steps);
  return split;
}

}  // namespace stsm
