// Synthetic spatio-temporal data generation.
//
// These simulators replace the paper's proprietary/unavailable datasets
// (PEMS-Bay, PEMS-07, PEMS-08, Melbourne AIMES, AirQ Beijing+Tianjin; see
// DESIGN.md §1). They produce exactly the statistical structure the models
// exploit:
//   * spatial correlation that decays with distance (shared activity field
//     and travelling congestion / pollution episodes),
//   * daily periodicity (rush hours, diurnal pollution cycles),
//   * node heterogeneity tied to region function (CBD vs residential ...),
//   * node metadata (POIs, road attributes) correlated with the dynamics,
//     which is what selective masking needs to work.

#ifndef STSM_DATA_SIMULATOR_H_
#define STSM_DATA_SIMULATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace stsm {

enum class RegionKind {
  kHighway,     // Freeway corridors (PEMS-like), 5-minute speeds.
  kUrban,       // Dense street grid (Melbourne-like), 15-minute speeds.
  kAirQuality,  // Two-city PM2.5 (AirQ-like), hourly concentrations.
};

struct SimulatorConfig {
  std::string name = "sim";
  RegionKind kind = RegionKind::kHighway;
  int num_sensors = 120;
  int num_days = 8;
  int steps_per_day = 288;       // 288 = 5 min, 96 = 15 min, 24 = hourly.
  double area_km = 40.0;         // Side length of the square region.
  int num_corridors = 4;         // Highway corridors (kHighway only).
  int num_activity_centers = 6;  // Functional centres (CBD, industry, ...).
  double events_per_day = 3.0;   // Congestion incidents / pollution episodes.
  uint64_t seed = 17;
};

// Generates a full dataset (locations, observation series, metadata).
SpatioTemporalDataset SimulateDataset(const SimulatorConfig& config);

}  // namespace stsm

#endif  // STSM_DATA_SIMULATOR_H_
