// SVG rendering of sensor maps — reproduces the paper's sensor-distribution
// figures (Fig. 5), the split visualisations (Fig. 6, red/pink/blue for
// train/validation/test), and the ring split (Fig. 11) as standalone .svg
// files.

#ifndef STSM_DATA_SVG_MAP_H_
#define STSM_DATA_SVG_MAP_H_

#include <string>
#include <vector>

#include "data/splits.h"
#include "graph/geo.h"

namespace stsm {

struct SvgMapOptions {
  int size_px = 480;        // Canvas is square.
  double dot_radius = 4.0;  // Sensor marker radius in px.
  std::string title;        // Optional caption rendered at the top.
};

// Renders the sensor layout with every sensor in one colour (Fig. 5 style).
std::string RenderSensorMapSvg(const std::vector<GeoPoint>& coords,
                               const SvgMapOptions& options = {});

// Renders a split: train = red, validation = pink, test = blue — the
// colour scheme of the paper's Fig. 6 and Fig. 11.
std::string RenderSplitMapSvg(const std::vector<GeoPoint>& coords,
                              const SpaceSplit& split,
                              const SvgMapOptions& options = {});

// Writes `svg` to `path`. Returns false on I/O failure.
bool WriteSvg(const std::string& svg, const std::string& path);

}  // namespace stsm

#endif  // STSM_DATA_SVG_MAP_H_
