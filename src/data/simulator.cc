#include "data/simulator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "graph/geo.h"

namespace stsm {
namespace {

// Functional archetypes for activity centres. Each drives both the POI mix
// around a location and how strongly that location reacts to rush hours —
// the correlation that makes region features informative for forecasting.
enum class Archetype { kCbd, kCommercial, kResidential, kIndustrial, kLeisure };
constexpr int kNumArchetypes = 5;

struct ActivityCenter {
  GeoPoint position;
  Archetype archetype;
  double radius_km;    // Influence radius.
  double intensity;    // Peak influence in [0.5, 1.5].
};

// Expected POI counts per category (indexed by kPoiCategoryNames order) for
// one unit of archetype intensity.
std::array<float, kNumPoiCategories> PoiProfile(Archetype archetype) {
  std::array<float, kNumPoiCategories> profile{};
  auto set = [&](std::initializer_list<std::pair<int, float>> entries) {
    for (const auto& [category, value] : entries) profile[category] = value;
  };
  switch (archetype) {
    case Archetype::kCbd:
      // Offices, finance, food, transport, culture, hotels.
      set({{1, 12.0f}, {23, 4.0f}, {11, 10.0f}, {13, 6.0f}, {4, 3.0f},
           {3, 3.0f}, {7, 1.0f}, {9, 2.0f}, {21, 2.0f}, {12, 5.0f}});
      break;
    case Archetype::kCommercial:
      set({{2, 8.0f}, {11, 6.0f}, {12, 4.0f}, {18, 1.5f}, {22, 2.0f},
           {1, 4.0f}, {13, 3.0f}});
      break;
    case Archetype::kResidential:
      set({{16, 10.0f}, {0, 4.0f}, {8, 3.0f}, {5, 2.0f}, {10, 1.5f},
           {20, 2.0f}, {2, 2.0f}});
      break;
    case Archetype::kIndustrial:
      set({{15, 8.0f}, {14, 6.0f}, {17, 2.0f}, {22, 2.0f}, {25, 1.0f},
           {12, 2.0f}});
      break;
    case Archetype::kLeisure:
      set({{8, 6.0f}, {20, 3.0f}, {19, 1.0f}, {4, 2.5f}, {24, 1.0f},
           {11, 3.0f}, {9, 1.5f}});
      break;
  }
  return profile;
}

// How strongly each archetype reacts to commuter rush hours.
double RushSensitivity(Archetype archetype) {
  switch (archetype) {
    case Archetype::kCbd:         return 1.00;
    case Archetype::kCommercial:  return 0.80;
    case Archetype::kResidential: return 0.55;
    case Archetype::kIndustrial:  return 0.65;
    case Archetype::kLeisure:     return 0.35;
  }
  return 0.5;
}

// Building-scale (floors) proxy per archetype.
double ScaleLevel(Archetype archetype) {
  switch (archetype) {
    case Archetype::kCbd:         return 40.0;
    case Archetype::kCommercial:  return 15.0;
    case Archetype::kResidential: return 8.0;
    case Archetype::kIndustrial:  return 4.0;
    case Archetype::kLeisure:     return 2.0;
  }
  return 5.0;
}

std::vector<ActivityCenter> MakeActivityCenters(const SimulatorConfig& config,
                                                Rng* rng) {
  std::vector<ActivityCenter> centers;
  centers.reserve(config.num_activity_centers);
  for (int c = 0; c < config.num_activity_centers; ++c) {
    ActivityCenter center;
    center.position = {rng->Uniform(0.0, config.area_km),
                       rng->Uniform(0.0, config.area_km)};
    // First centre is always the CBD so every region has one.
    center.archetype = (c == 0)
                           ? Archetype::kCbd
                           : static_cast<Archetype>(rng->UniformInt(
                                 kNumArchetypes));
    center.radius_km = config.area_km * rng->Uniform(0.10, 0.25);
    center.intensity = rng->Uniform(0.5, 1.5);
    centers.push_back(center);
  }
  return centers;
}

// Sensor placement --------------------------------------------------------

std::vector<GeoPoint> PlaceHighwaySensors(const SimulatorConfig& config,
                                          Rng* rng) {
  // Corridors are straight lines crossing the region; sensors sit along
  // them with small jitter, like loop detectors along freeways.
  std::vector<GeoPoint> points;
  points.reserve(config.num_sensors);
  const double a = config.area_km;
  struct Corridor {
    GeoPoint from, to;
  };
  std::vector<Corridor> corridors;
  for (int c = 0; c < std::max(1, config.num_corridors); ++c) {
    // Pick two points on different edges of the square.
    auto edge_point = [&](int edge) -> GeoPoint {
      const double u = rng->Uniform(0.0, a);
      switch (edge % 4) {
        case 0: return {u, 0.0};
        case 1: return {a, u};
        case 2: return {u, a};
        default: return {0.0, u};
      }
    };
    const int e1 = rng->UniformInt(4);
    int e2 = rng->UniformInt(4);
    if (e2 == e1) e2 = (e2 + 2) % 4;
    corridors.push_back({edge_point(e1), edge_point(e2)});
  }
  for (int s = 0; s < config.num_sensors; ++s) {
    const Corridor& corridor = corridors[s % corridors.size()];
    const double u = rng->Uniform(0.02, 0.98);
    GeoPoint p{corridor.from.x + u * (corridor.to.x - corridor.from.x),
               corridor.from.y + u * (corridor.to.y - corridor.from.y)};
    p.x += rng->Normal(0.0, 0.15);
    p.y += rng->Normal(0.0, 0.15);
    p.x = std::clamp(p.x, 0.0, a);
    p.y = std::clamp(p.y, 0.0, a);
    points.push_back(p);
  }
  return points;
}

std::vector<GeoPoint> PlaceUrbanSensors(const SimulatorConfig& config,
                                        Rng* rng) {
  // Jittered grid over a compact city core.
  std::vector<GeoPoint> points;
  points.reserve(config.num_sensors);
  const int side = static_cast<int>(std::ceil(std::sqrt(config.num_sensors)));
  const double cell = config.area_km / side;
  for (int s = 0; s < config.num_sensors; ++s) {
    const int gx = s % side;
    const int gy = s / side;
    GeoPoint p{(gx + 0.5) * cell + rng->Normal(0.0, cell * 0.2),
               (gy + 0.5) * cell + rng->Normal(0.0, cell * 0.2)};
    p.x = std::clamp(p.x, 0.0, config.area_km);
    p.y = std::clamp(p.y, 0.0, config.area_km);
    points.push_back(p);
  }
  return points;
}

std::vector<GeoPoint> PlaceAirQualitySensors(const SimulatorConfig& config,
                                             Rng* rng) {
  // Two city clusters (Beijing + Tianjin style) along the region diagonal.
  std::vector<GeoPoint> points;
  points.reserve(config.num_sensors);
  const double a = config.area_km;
  const GeoPoint city1{a * 0.28, a * 0.70};
  const GeoPoint city2{a * 0.72, a * 0.30};
  for (int s = 0; s < config.num_sensors; ++s) {
    const bool first = s < (config.num_sensors * 3) / 5;  // Bigger city 1.
    const GeoPoint& center = first ? city1 : city2;
    GeoPoint p{center.x + rng->Normal(0.0, a * 0.09),
               center.y + rng->Normal(0.0, a * 0.09)};
    p.x = std::clamp(p.x, 0.0, a);
    p.y = std::clamp(p.y, 0.0, a);
    points.push_back(p);
  }
  return points;
}

// Metadata ----------------------------------------------------------------

// Influence of centre `c` at point `p` (Gaussian falloff).
double CenterInfluence(const ActivityCenter& center, const GeoPoint& p) {
  const double d = Distance(center.position, p);
  return center.intensity *
         std::exp(-(d * d) / (2.0 * center.radius_km * center.radius_km));
}

NodeMetadata MakeMetadata(const SimulatorConfig& config, const GeoPoint& p,
                          const std::vector<ActivityCenter>& centers,
                          Rng* rng) {
  NodeMetadata meta;
  double scale_accum = 0.0;
  for (const ActivityCenter& center : centers) {
    const double influence = CenterInfluence(center, p);
    if (influence < 1e-3) continue;
    const auto profile = PoiProfile(center.archetype);
    for (int cat = 0; cat < kNumPoiCategories; ++cat) {
      meta.poi_counts[cat] += static_cast<float>(profile[cat] * influence);
    }
    scale_accum += ScaleLevel(center.archetype) * influence;
  }
  // Count noise: POIs are discovered within a radius; jitter and floor.
  for (int cat = 0; cat < kNumPoiCategories; ++cat) {
    const double noisy =
        meta.poi_counts[cat] * rng->Uniform(0.7, 1.3) + rng->Uniform(0.0, 0.4);
    meta.poi_counts[cat] = static_cast<float>(std::floor(noisy));
  }
  meta.scale = static_cast<float>(scale_accum * rng->Uniform(0.8, 1.2));

  switch (config.kind) {
    case RegionKind::kHighway:
      meta.highway_level = static_cast<float>(4 + rng->UniformInt(2));
      meta.maxspeed = static_cast<float>(100 + 10 * rng->UniformInt(2));
      meta.is_oneway = 1.0f;  // Directional freeway detectors.
      meta.lanes = static_cast<float>(3 + rng->UniformInt(3));
      break;
    case RegionKind::kUrban:
      meta.highway_level = static_cast<float>(1 + rng->UniformInt(3));
      meta.maxspeed = static_cast<float>(40 + 10 * rng->UniformInt(3));
      meta.is_oneway = rng->Bernoulli(0.3) ? 1.0f : 0.0f;
      meta.lanes = static_cast<float>(1 + rng->UniformInt(3));
      break;
    case RegionKind::kAirQuality:
      // Monitoring stations sit near arterial roads of mixed class.
      meta.highway_level = static_cast<float>(2 + rng->UniformInt(3));
      meta.maxspeed = static_cast<float>(50 + 10 * rng->UniformInt(4));
      meta.is_oneway = rng->Bernoulli(0.2) ? 1.0f : 0.0f;
      meta.lanes = static_cast<float>(2 + rng->UniformInt(3));
      break;
  }
  return meta;
}

// Dynamics ----------------------------------------------------------------

// A transient spatio-temporal episode (congestion incident / smog plume).
struct Episode {
  GeoPoint epicenter;
  int start_step;
  int duration_steps;
  double magnitude;   // Peak fractional impact.
  double radius_km;   // Spatial reach.
};

std::vector<Episode> MakeEpisodes(const SimulatorConfig& config,
                                  const std::vector<GeoPoint>& points,
                                  int num_steps, Rng* rng) {
  std::vector<Episode> episodes;
  const int count = static_cast<int>(config.events_per_day * config.num_days);
  const bool air = config.kind == RegionKind::kAirQuality;
  for (int e = 0; e < count; ++e) {
    Episode ep;
    ep.epicenter = points[rng->UniformInt(static_cast<int>(points.size()))];
    ep.start_step = rng->UniformInt(num_steps);
    // Incidents last 0.5-3 h; pollution episodes last 8-36 h.
    const double hours = air ? rng->Uniform(8.0, 36.0) : rng->Uniform(0.5, 3.0);
    ep.duration_steps = std::max(
        2, static_cast<int>(hours * config.steps_per_day / 24.0));
    ep.magnitude = air ? rng->Uniform(0.4, 1.4) : rng->Uniform(0.15, 0.45);
    ep.radius_km = air ? config.area_km * rng->Uniform(0.2, 0.5)
                       : config.area_km * rng->Uniform(0.04, 0.12);
    episodes.push_back(ep);
  }
  return episodes;
}

// Smooth 0->1->0 time profile of an episode.
double EpisodeTimeProfile(const Episode& ep, int step) {
  if (step < ep.start_step || step >= ep.start_step + ep.duration_steps) {
    return 0.0;
  }
  const double u = static_cast<double>(step - ep.start_step) /
                   static_cast<double>(ep.duration_steps);
  return std::sin(u * M_PI);  // Ramp up then down.
}

// Commuter rush profile for hour-of-day h in [0, 24), scaled on weekends.
double RushProfile(double hour, bool weekend) {
  const double morning = std::exp(-std::pow((hour - 8.0) / 1.5, 2.0));
  const double evening = std::exp(-std::pow((hour - 17.5) / 1.9, 2.0));
  const double midday = 0.25 * std::exp(-std::pow((hour - 13.0) / 2.5, 2.0));
  const double profile = 0.85 * morning + 1.0 * evening + midday;
  return weekend ? 0.35 * profile : profile;
}

void SimulateTraffic(const SimulatorConfig& config,
                     const std::vector<GeoPoint>& points,
                     const std::vector<ActivityCenter>& centers,
                     const std::vector<NodeMetadata>& metadata,
                     SeriesMatrix* series, Rng* rng) {
  const int n = static_cast<int>(points.size());
  const int num_steps = series->num_steps;
  const bool urban = config.kind == RegionKind::kUrban;

  // Per-node free-flow speed and congestion sensitivity.
  std::vector<double> free_flow(n);
  std::vector<double> sensitivity(n);
  for (int i = 0; i < n; ++i) {
    free_flow[i] = metadata[i].maxspeed * rng->Uniform(0.92, 1.05);
    double s = 0.15;  // Every road reacts at least a little.
    for (const ActivityCenter& center : centers) {
      s += RushSensitivity(center.archetype) * CenterInfluence(center, points[i]);
    }
    sensitivity[i] = std::min(1.0, s * (urban ? 0.85 : 0.65));
  }

  const std::vector<Episode> episodes =
      MakeEpisodes(config, points, num_steps, rng);

  // AR(1) noise state per node.
  std::vector<double> ar(n, 0.0);
  for (int t = 0; t < num_steps; ++t) {
    const int day = t / config.steps_per_day;
    const bool weekend = (day % 7) >= 5;
    const double hour =
        24.0 * static_cast<double>(t % config.steps_per_day) /
        config.steps_per_day;
    const double rush = RushProfile(hour, weekend);
    for (int i = 0; i < n; ++i) {
      double congestion = rush * sensitivity[i];
      for (const Episode& ep : episodes) {
        const double tp = EpisodeTimeProfile(ep, t);
        if (tp <= 0.0) continue;
        const double d = Distance(ep.epicenter, points[i]);
        congestion += ep.magnitude * tp *
                      std::exp(-(d * d) / (2.0 * ep.radius_km * ep.radius_km));
      }
      congestion = std::clamp(congestion, 0.0, 0.88);
      ar[i] = 0.82 * ar[i] + rng->Normal(0.0, 1.0);
      const double noise = 1.0 + 0.02 * ar[i] + rng->Normal(0.0, 0.01);
      const double speed =
          std::max(3.0, free_flow[i] * (1.0 - congestion) * noise);
      series->set(t, i, static_cast<float>(speed));
    }
  }
}

void SimulateAirQuality(const SimulatorConfig& config,
                        const std::vector<GeoPoint>& points,
                        const std::vector<ActivityCenter>& centers,
                        SeriesMatrix* series, Rng* rng) {
  const int n = static_cast<int>(points.size());
  const int num_steps = series->num_steps;
  const double a = config.area_km;

  // City membership drives the synoptic phase lag (pollution waves arrive
  // at the downwind city a few hours later).
  const GeoPoint city1{a * 0.28, a * 0.70};
  std::vector<double> lag_hours(n);
  std::vector<double> urban_factor(n);
  for (int i = 0; i < n; ++i) {
    // Regional transport lags between adjacent cities are a few hours
    // (Beijing-Tianjin scale), not half a synoptic cycle.
    lag_hours[i] = Distance(points[i], city1) / a * 3.5;
    double u = 0.75;
    for (const ActivityCenter& center : centers) {
      u += 0.35 * CenterInfluence(center, points[i]);
    }
    urban_factor[i] = std::min(1.6, u);
  }

  const std::vector<Episode> episodes =
      MakeEpisodes(config, points, num_steps, rng);

  // Station siting effects: monitoring stations sit in courtyards, near
  // roads, on rooftops... producing spatially UNcorrelated level biases.
  // This is what makes PM2.5 kriging hard (and why the paper's baselines
  // all score negative R2 on AirQ): a station's nearest neighbours are not
  // unbiased estimators of its level.
  std::vector<double> siting(n);
  for (int i = 0; i < n; ++i) siting[i] = rng->Uniform(0.72, 1.34);

  std::vector<double> ar(n, 0.0);
  const double synoptic_period_hours = rng->Uniform(90.0, 140.0);
  for (int t = 0; t < num_steps; ++t) {
    const double hour_abs =
        24.0 * static_cast<double>(t) / config.steps_per_day;
    const double hour = std::fmod(hour_abs, 24.0);
    // Diurnal cycle: morning traffic peak + stagnant night accumulation.
    const double diurnal = 12.0 * std::exp(-std::pow((hour - 8.5) / 2.2, 2)) +
                           9.0 * std::exp(-std::pow((hour - 21.0) / 2.8, 2));
    for (int i = 0; i < n; ++i) {
      // Regional synoptic wave with per-node lag.
      const double wave =
          55.0 + 45.0 * std::sin(2.0 * M_PI * (hour_abs - lag_hours[i]) /
                                 synoptic_period_hours);
      double pm = (wave + diurnal) * urban_factor[i];
      for (const Episode& ep : episodes) {
        const double tp = EpisodeTimeProfile(ep, t);
        if (tp <= 0.0) continue;
        const double d = Distance(ep.epicenter, points[i]);
        pm += 120.0 * ep.magnitude * tp *
              std::exp(-(d * d) / (2.0 * ep.radius_km * ep.radius_km));
      }
      ar[i] = 0.9 * ar[i] + rng->Normal(0.0, 1.0);
      pm *= siting[i] * (1.0 + 0.05 * ar[i]);
      series->set(t, i, static_cast<float>(std::max(2.0, pm)));
    }
  }
}

}  // namespace

SpatioTemporalDataset SimulateDataset(const SimulatorConfig& config) {
  STSM_CHECK_GE(config.num_sensors, 4);
  STSM_CHECK_GE(config.num_days, 2);
  STSM_CHECK_GT(config.steps_per_day, 0);
  Rng rng(config.seed);

  SpatioTemporalDataset dataset;
  dataset.name = config.name;
  dataset.steps_per_day = config.steps_per_day;

  switch (config.kind) {
    case RegionKind::kHighway:
      dataset.coords = PlaceHighwaySensors(config, &rng);
      break;
    case RegionKind::kUrban:
      dataset.coords = PlaceUrbanSensors(config, &rng);
      break;
    case RegionKind::kAirQuality:
      dataset.coords = PlaceAirQualitySensors(config, &rng);
      break;
  }

  const std::vector<ActivityCenter> centers = MakeActivityCenters(config, &rng);
  dataset.metadata.reserve(config.num_sensors);
  for (const GeoPoint& p : dataset.coords) {
    dataset.metadata.push_back(MakeMetadata(config, p, centers, &rng));
  }

  const int num_steps = config.num_days * config.steps_per_day;
  dataset.series = SeriesMatrix(num_steps, config.num_sensors);
  if (config.kind == RegionKind::kAirQuality) {
    SimulateAirQuality(config, dataset.coords, centers, &dataset.series, &rng);
  } else {
    SimulateTraffic(config, dataset.coords, centers, dataset.metadata,
                    &dataset.series, &rng);
  }
  return dataset;
}

}  // namespace stsm
