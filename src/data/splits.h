// Space-based dataset splits (Section 5.1.1, Fig. 6 and Fig. 11).
//
// Locations are divided into train (observed), validation (observed) and
// test (unobserved) sets by geography — horizontally, vertically, or in
// concentric rings — so that the unobserved region is contiguous, which is
// the problem setting of the paper.

#ifndef STSM_DATA_SPLITS_H_
#define STSM_DATA_SPLITS_H_

#include <vector>

#include "graph/geo.h"

namespace stsm {

struct SpaceSplit {
  std::vector<int> train;       // Observed, used for optimisation.
  std::vector<int> validation;  // Observed, used for model selection.
  std::vector<int> test;        // Unobserved region(s) of interest.

  // Non-empty only for multi-region splits (SplitSpaceMultiRegion): the
  // disjoint unobserved regions whose union is `test`. Selective masking
  // then measures proximity to the nearest region rather than to the union
  // centroid.
  std::vector<std::vector<int>> test_regions;

  // All observed locations (train + validation), sorted.
  std::vector<int> Observed() const;

  // The unobserved regions: test_regions if present, else {test}.
  std::vector<std::vector<int>> TestRegions() const;
};

enum class SplitAxis { kHorizontal, kVertical };

// Splits by coordinate along the axis into contiguous bands with the given
// fractions (default 4:1:5 as in the paper). `reverse` flips which side is
// unobserved, giving the paper's "two alternative settings per split".
SpaceSplit SplitSpace(const std::vector<GeoPoint>& coords, SplitAxis axis,
                      double train_fraction = 0.4,
                      double validation_fraction = 0.1, bool reverse = false);

// Ring split (Section 5.2.4, Fig. 11): the centre region is observed for
// training, a middle ring for validation, and the outer ring is unobserved.
SpaceSplit SplitSpaceRing(const std::vector<GeoPoint>& coords,
                          double train_fraction = 0.4,
                          double validation_fraction = 0.1);

// Variant for the unobserved-ratio experiment (Fig. 8): `unobserved_ratio`
// of locations form the test band; the remainder is split 4:1 into
// train / validation.
SpaceSplit SplitSpaceWithRatio(const std::vector<GeoPoint>& coords,
                               SplitAxis axis, double unobserved_ratio,
                               bool reverse = false);

// Multiple unobserved regions — the extension the paper lists as future
// work (Section 6). Splits the axis into num_regions alternating
// observed/unobserved band pairs: each observed band is split 4:1 into
// train/validation, and the odd bands form `num_regions` disjoint
// unobserved regions (test = their union, test_regions keeps them apart).
SpaceSplit SplitSpaceMultiRegion(const std::vector<GeoPoint>& coords,
                                 SplitAxis axis, int num_regions,
                                 double unobserved_ratio = 0.5);

// The four paper splits (horizontal/vertical x normal/reversed), averaged
// over in most experiments.
std::vector<SpaceSplit> FourSplits(const std::vector<GeoPoint>& coords,
                                   double train_fraction = 0.4,
                                   double validation_fraction = 0.1);

// Temporal split: first `train_fraction` of the steps for training, the
// rest for testing (Section 5.1.1 uses 70% / 30%).
struct TimeSplit {
  int train_steps = 0;  // Steps [0, train_steps) are the training period.
  int total_steps = 0;
};
TimeSplit SplitTime(int num_steps, double train_fraction = 0.7);

}  // namespace stsm

#endif  // STSM_DATA_SPLITS_H_
