// Z-score normalisation fitted on the observed training data.

#ifndef STSM_DATA_NORMALIZER_H_
#define STSM_DATA_NORMALIZER_H_

#include <vector>

#include "timeseries/series.h"

namespace stsm {

// Standard score transform y = (x - mean) / std. Fit over the observed
// columns of the training period only (the unobserved region's statistics
// are unavailable by definition).
class Normalizer {
 public:
  Normalizer() = default;

  // Fits mean/std over `columns` of the first `num_steps` steps of `series`.
  void Fit(const SeriesMatrix& series, const std::vector<int>& columns,
           int num_steps);

  float Transform(float value) const { return (value - mean_) / std_; }
  float Inverse(float value) const { return value * std_ + mean_; }

  // Applies Transform to every element in place.
  void TransformInPlace(SeriesMatrix* series) const;

  float mean() const { return mean_; }
  float std() const { return std_; }

 private:
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

}  // namespace stsm

#endif  // STSM_DATA_NORMALIZER_H_
