// CSV import/export for datasets, so the library can run on real sensor
// data (e.g. the original PEMS exports) instead of the built-in simulators.
//
// On-disk layout (all files share a directory):
//   <dir>/meta.csv     - one line: name,steps_per_day
//   <dir>/sensors.csv  - header + one row per sensor:
//                        x_km,y_km,scale,highway_level,maxspeed,is_oneway,
//                        lanes,poi_0..poi_25
//   <dir>/series.csv   - header + one row per time step, one column per
//                        sensor, raw observation values.

#ifndef STSM_DATA_CSV_IO_H_
#define STSM_DATA_CSV_IO_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace stsm {

// Writes the dataset into `directory` (which must exist). Returns false on
// I/O failure.
bool SaveDatasetCsv(const SpatioTemporalDataset& dataset,
                    const std::string& directory);

// Reads a dataset back. Returns nullopt on missing/malformed files
// (dimension mismatches between sensors.csv and series.csv included).
std::optional<SpatioTemporalDataset> LoadDatasetCsv(
    const std::string& directory);

}  // namespace stsm

#endif  // STSM_DATA_CSV_IO_H_
