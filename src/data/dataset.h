// The spatio-temporal dataset container shared by simulators, the model,
// and the benchmark harness.

#ifndef STSM_DATA_DATASET_H_
#define STSM_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/metadata.h"
#include "graph/geo.h"
#include "timeseries/series.h"

namespace stsm {

// A region with N sensor locations observed over time (the paper's region
// graph G plus its feature matrix L and observation history X).
struct SpatioTemporalDataset {
  std::string name;
  int steps_per_day = 288;
  std::vector<GeoPoint> coords;        // Sensor locations (planar km).
  SeriesMatrix series;                 // [num_steps x num_nodes].
  std::vector<NodeMetadata> metadata;  // Region + road features per node.

  int num_nodes() const { return static_cast<int>(coords.size()); }
  int num_steps() const { return series.num_steps; }
  int num_days() const { return series.num_steps / steps_per_day; }
};

}  // namespace stsm

#endif  // STSM_DATA_DATASET_H_
