#include "data/registry.h"

#include <algorithm>

#include "common/check.h"

namespace stsm {

std::vector<std::string> RegisteredDatasets() {
  return {"bay-sim", "pems07-sim", "pems08-sim", "melbourne-sim", "airq-sim"};
}

bool IsRegisteredDataset(const std::string& name) {
  const auto names = RegisteredDatasets();
  return std::find(names.begin(), names.end(), name) != names.end();
}

SimulatorConfig DatasetConfig(const std::string& name, DataScale scale) {
  const bool full = scale == DataScale::kFull;
  SimulatorConfig config;
  config.name = name;
  if (name == "bay-sim") {
    config.kind = RegionKind::kHighway;
    config.num_sensors = full ? 325 : 84;
    config.num_days = full ? 14 : 6;
    config.steps_per_day = 288;
    config.area_km = 45.0;
    config.num_corridors = 5;
    config.seed = 101;
  } else if (name == "pems07-sim") {
    config.kind = RegionKind::kHighway;
    config.num_sensors = full ? 400 : 96;
    config.num_days = full ? 14 : 6;
    config.steps_per_day = 288;
    config.area_km = 55.0;
    config.num_corridors = 6;
    config.seed = 102;
  } else if (name == "pems08-sim") {
    config.kind = RegionKind::kHighway;
    config.num_sensors = full ? 400 : 96;
    config.num_days = full ? 14 : 6;
    config.steps_per_day = 288;
    config.area_km = 50.0;
    config.num_corridors = 5;
    config.seed = 103;
  } else if (name == "melbourne-sim") {
    config.kind = RegionKind::kUrban;
    config.num_sensors = full ? 182 : 64;
    config.num_days = full ? 20 : 10;
    config.steps_per_day = 96;
    config.area_km = 6.0;
    config.num_activity_centers = 5;
    config.seed = 104;
  } else if (name == "airq-sim") {
    config.kind = RegionKind::kAirQuality;
    config.num_sensors = 63;  // Small already; same at both scales.
    config.num_days = full ? 120 : 60;
    config.steps_per_day = 24;
    config.area_km = 140.0;
    config.num_activity_centers = 6;
    config.events_per_day = 0.4;  // Multi-day pollution episodes.
    config.seed = 105;
  } else {
    STSM_CHECK(false) << "unknown dataset" << name;
  }
  return config;
}

SpatioTemporalDataset MakeDataset(const std::string& name, DataScale scale) {
  return SimulateDataset(DatasetConfig(name, scale));
}

SpatioTemporalDataset MakeMergedFreewayRegion(int total_sensors,
                                              uint64_t seed) {
  SimulatorConfig config;
  config.name = "pems-merged-sim";
  config.kind = RegionKind::kHighway;
  config.num_sensors = total_sensors;
  config.num_days = 6;
  config.steps_per_day = 288;
  config.area_km = 90.0;  // Two adjacent districts merged.
  config.num_corridors = 8;
  config.num_activity_centers = 9;
  config.seed = seed;
  return SimulateDataset(config);
}

SpatioTemporalDataset MakePems08WithDensity(int num_sensors, uint64_t seed) {
  SimulatorConfig config;
  config.name = "pems08-density-sim";
  config.kind = RegionKind::kHighway;
  config.num_sensors = num_sensors;
  config.num_days = 6;
  config.steps_per_day = 288;
  config.area_km = 50.0;  // Fixed area: sensor count sets the density.
  config.num_corridors = 5;
  config.seed = seed;
  return SimulateDataset(config);
}

SpatioTemporalDataset SelectSensors(const SpatioTemporalDataset& dataset,
                                    const std::vector<int>& indices) {
  STSM_CHECK(!indices.empty());
  SpatioTemporalDataset out;
  out.name = dataset.name + "-subset";
  out.steps_per_day = dataset.steps_per_day;
  out.coords.reserve(indices.size());
  out.metadata.reserve(indices.size());
  for (int i : indices) {
    STSM_CHECK(i >= 0 && i < dataset.num_nodes());
    out.coords.push_back(dataset.coords[i]);
    out.metadata.push_back(dataset.metadata[i]);
  }
  out.series = SeriesMatrix(dataset.num_steps(), static_cast<int>(indices.size()));
  for (int t = 0; t < dataset.num_steps(); ++t) {
    for (size_t c = 0; c < indices.size(); ++c) {
      out.series.set(t, static_cast<int>(c), dataset.series.at(t, indices[c]));
    }
  }
  return out;
}

}  // namespace stsm
