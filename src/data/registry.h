// Dataset registry: named simulated stand-ins for the paper's five datasets
// (Table 2) plus the merged/density variants used by Tables 6 and 7.

#ifndef STSM_DATA_REGISTRY_H_
#define STSM_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/simulator.h"

namespace stsm {

// Scale of the simulated datasets. Fast keeps benchmark wall-clock small;
// Full approaches the paper's sensor counts. Selected via the
// STSM_BENCH_SCALE environment variable in the bench binaries.
enum class DataScale { kFast, kFull };

// Registered dataset names mirroring Table 2:
//   "bay-sim", "pems07-sim", "pems08-sim", "melbourne-sim", "airq-sim".
std::vector<std::string> RegisteredDatasets();

// True if `name` is one of RegisteredDatasets().
bool IsRegisteredDataset(const std::string& name);

// Simulator configuration for a registered dataset at the given scale.
SimulatorConfig DatasetConfig(const std::string& name, DataScale scale);

// Builds a registered dataset.
SpatioTemporalDataset MakeDataset(const std::string& name, DataScale scale);

// Table 6: one large merged freeway region; callers subset the sensors into
// vertical partitions. `total_sensors` defaults to the paper's 800 at full
// scale.
SpatioTemporalDataset MakeMergedFreewayRegion(int total_sensors,
                                              uint64_t seed = 67);

// Table 7: the pems08-sim region at a chosen sensor density (fixed area).
SpatioTemporalDataset MakePems08WithDensity(int num_sensors,
                                            uint64_t seed = 88);

// Restricts a dataset to a subset of its sensors (keeps series/metadata
// columns aligned). Indices must be unique and in range.
SpatioTemporalDataset SelectSensors(const SpatioTemporalDataset& dataset,
                                    const std::vector<int>& indices);

}  // namespace stsm

#endif  // STSM_DATA_REGISTRY_H_
