#include "data/metadata.h"

#include <cmath>

#include "common/check.h"

namespace stsm {

const std::array<const char*, kNumPoiCategories> kPoiCategoryNames = {
    "education",      "commercial",   "retail",        "hotel",
    "culture",        "health",       "bridges",       "cinema",
    "park",           "nightlife",    "worship",       "food",
    "parking",        "transport",    "warehouse",     "industrial",
    "residential",    "construction", "marketplace",   "camping",
    "sports",         "civic",        "car_services",  "finance",
    "boating",        "farm",
};

std::vector<float> NodeMetadata::Embedding() const {
  std::vector<float> embedding;
  embedding.reserve(kMetadataEmbeddingDim);
  embedding.insert(embedding.end(), poi_counts.begin(), poi_counts.end());
  embedding.push_back(scale);
  embedding.push_back(highway_level);
  embedding.push_back(maxspeed);
  embedding.push_back(is_oneway);
  embedding.push_back(lanes);
  return embedding;
}

std::vector<float> MeanEmbedding(const std::vector<NodeMetadata>& metadata,
                                 const std::vector<int>& indices) {
  STSM_CHECK(!indices.empty());
  std::vector<float> mean(kMetadataEmbeddingDim, 0.0f);
  for (int i : indices) {
    STSM_CHECK(i >= 0 && i < static_cast<int>(metadata.size()));
    const std::vector<float> embedding = metadata[i].Embedding();
    for (int d = 0; d < kMetadataEmbeddingDim; ++d) mean[d] += embedding[d];
  }
  for (float& v : mean) v /= static_cast<float>(indices.size());
  return mean;
}

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  STSM_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace stsm
