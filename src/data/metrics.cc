#include "data/metrics.h"

#include <cmath>

#include "common/check.h"

namespace stsm {

Metrics ComputeMetrics(const std::vector<float>& predictions,
                       const std::vector<float>& targets,
                       double mape_threshold) {
  STSM_CHECK_EQ(predictions.size(), targets.size());
  STSM_CHECK(!targets.empty());
  const size_t n = targets.size();

  double sum_sq = 0.0, sum_abs = 0.0, sum_ape = 0.0, target_sum = 0.0;
  int64_t ape_count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double err = static_cast<double>(predictions[i]) - targets[i];
    sum_sq += err * err;
    sum_abs += std::fabs(err);
    target_sum += targets[i];
    if (std::fabs(targets[i]) >= mape_threshold) {
      sum_ape += std::fabs(err) / std::fabs(targets[i]);
      ++ape_count;
    }
  }
  const double target_mean = target_sum / static_cast<double>(n);
  double ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dev = targets[i] - target_mean;
    ss_tot += dev * dev;
  }

  Metrics metrics;
  metrics.count = static_cast<int64_t>(n);
  metrics.rmse = std::sqrt(sum_sq / static_cast<double>(n));
  metrics.mae = sum_abs / static_cast<double>(n);
  metrics.mape = ape_count > 0 ? sum_ape / static_cast<double>(ape_count) : 0.0;
  metrics.r2 = ss_tot > 0.0 ? 1.0 - sum_sq / ss_tot : 0.0;
  return metrics;
}

void MetricsAccumulator::Add(float prediction, float target) {
  predictions_.push_back(prediction);
  targets_.push_back(target);
}

void MetricsAccumulator::AddAll(const std::vector<float>& predictions,
                                const std::vector<float>& targets) {
  STSM_CHECK_EQ(predictions.size(), targets.size());
  predictions_.insert(predictions_.end(), predictions.begin(),
                      predictions.end());
  targets_.insert(targets_.end(), targets.begin(), targets.end());
}

Metrics MetricsAccumulator::Compute(double mape_threshold) const {
  return ComputeMetrics(predictions_, targets_, mape_threshold);
}

}  // namespace stsm
