#include "data/normalizer.h"

#include <cmath>

#include "common/check.h"

namespace stsm {

void Normalizer::Fit(const SeriesMatrix& series, const std::vector<int>& columns,
                     int num_steps) {
  STSM_CHECK(!columns.empty());
  STSM_CHECK(num_steps > 0 && num_steps <= series.num_steps);
  double sum = 0.0;
  int64_t count = 0;
  for (int t = 0; t < num_steps; ++t) {
    for (int c : columns) {
      sum += series.at(t, c);
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  double var = 0.0;
  for (int t = 0; t < num_steps; ++t) {
    for (int c : columns) {
      const double dev = series.at(t, c) - mean;
      var += dev * dev;
    }
  }
  var /= static_cast<double>(count);
  mean_ = static_cast<float>(mean);
  std_ = static_cast<float>(std::sqrt(var));
  if (std_ < 1e-6f) std_ = 1.0f;  // Constant data: avoid division by zero.
}

void Normalizer::TransformInPlace(SeriesMatrix* series) const {
  STSM_CHECK(series != nullptr);
  for (float& v : series->values) v = Transform(v);
}

}  // namespace stsm
