#include "data/windows.h"

#include <algorithm>

#include "common/check.h"
#include "timeseries/time_features.h"

namespace stsm {

std::vector<int> ValidWindowStarts(int range_begin, int range_end,
                                   const WindowSpec& spec, int stride) {
  STSM_CHECK_GE(range_begin, 0);
  STSM_CHECK_GE(stride, 1);
  std::vector<int> starts;
  const int last_start = range_end - spec.input_length - spec.horizon;
  for (int t = range_begin; t <= last_start; t += stride) starts.push_back(t);
  return starts;
}

WindowBatch MakeWindowBatch(const SeriesMatrix& series,
                            const std::vector<int>& starts,
                            const WindowSpec& spec, int steps_per_day) {
  STSM_CHECK(!starts.empty());
  const int batch = static_cast<int>(starts.size());
  const int nodes = series.num_nodes;
  const int t_in = spec.input_length;
  const int t_out = spec.horizon;

  WindowBatch result;
  result.starts = starts;
  result.inputs = Tensor::Zeros(Shape({batch, t_in, nodes, 1}));
  result.targets = Tensor::Zeros(Shape({batch, t_out, nodes, 1}));
  result.input_time = Tensor::Zeros(Shape({batch, t_in, 3}));

  float* in = result.inputs.data();
  float* out = result.targets.data();
  float* time_feat = result.input_time.data();
  for (int b = 0; b < batch; ++b) {
    const int start = starts[b];
    STSM_CHECK_GE(start, 0);
    STSM_CHECK_LE(start + t_in + t_out, series.num_steps);
    for (int t = 0; t < t_in; ++t) {
      const float* row =
          series.values.data() + static_cast<size_t>(start + t) * nodes;
      std::copy(row, row + nodes, in + ((b * t_in + t) * nodes));
    }
    for (int t = 0; t < t_out; ++t) {
      const float* row = series.values.data() +
                         static_cast<size_t>(start + t_in + t) * nodes;
      std::copy(row, row + nodes, out + ((b * t_out + t) * nodes));
    }
    const Tensor tod = TimeOfDayFeatures(
        TimeOfDayIds(start, t_in, steps_per_day), steps_per_day);
    std::copy(tod.data(), tod.data() + t_in * 3,
              time_feat + b * t_in * 3);
  }
  return result;
}

std::vector<int> SampleWindowStarts(int range_begin, int range_end,
                                    const WindowSpec& spec, int count,
                                    Rng* rng) {
  STSM_CHECK(rng != nullptr);
  const std::vector<int> valid = ValidWindowStarts(range_begin, range_end, spec);
  STSM_CHECK(!valid.empty()) << "no valid windows in range [" << range_begin
                             << "," << range_end << ")";
  if (count >= static_cast<int>(valid.size())) return valid;
  std::vector<int> picks =
      rng->SampleWithoutReplacement(static_cast<int>(valid.size()), count);
  std::vector<int> starts(count);
  for (int i = 0; i < count; ++i) starts[i] = valid[picks[i]];
  std::sort(starts.begin(), starts.end());
  return starts;
}

}  // namespace stsm
