// Sliding-window batch construction: turns a SeriesMatrix into the
// [B, T, N, C] input and [B, T', N, C] target tensors the models consume.

#ifndef STSM_DATA_WINDOWS_H_
#define STSM_DATA_WINDOWS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "timeseries/series.h"

namespace stsm {

struct WindowSpec {
  int input_length = 12;  // T in the paper.
  int horizon = 12;       // T' in the paper.
};

// Start indices t such that input [t, t+T) and target [t+T, t+T+T') both lie
// inside [range_begin, range_end). `stride` sub-samples the starts.
std::vector<int> ValidWindowStarts(int range_begin, int range_end,
                                   const WindowSpec& spec, int stride = 1);

// A batch of windows drawn from the series.
struct WindowBatch {
  Tensor inputs;       // [B, T, N, 1]
  Tensor targets;      // [B, T', N, 1]
  Tensor input_time;   // [B, T, 3] time-of-day features of the input steps.
  std::vector<int> starts;
};

// Materialises the windows starting at `starts`. All nodes are included;
// callers select observed/unobserved columns downstream via IndexSelect.
WindowBatch MakeWindowBatch(const SeriesMatrix& series,
                            const std::vector<int>& starts,
                            const WindowSpec& spec, int steps_per_day);

// Samples `count` window starts uniformly (without replacement when
// possible) from the valid range.
std::vector<int> SampleWindowStarts(int range_begin, int range_end,
                                    const WindowSpec& spec, int count,
                                    Rng* rng);

}  // namespace stsm

#endif  // STSM_DATA_WINDOWS_H_
