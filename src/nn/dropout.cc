#include "nn/dropout.h"

#include "tensor/ops.h"

namespace stsm {

DropoutLayer::DropoutLayer(float p, uint64_t seed) : p_(p), rng_(seed) {}

Tensor DropoutLayer::Forward(const Tensor& x) const {
  if (!is_training() || p_ <= 0.0f) return x;
  return Dropout(x, p_, &rng_);
}

}  // namespace stsm
