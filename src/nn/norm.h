// Layer normalisation over the last (feature) dimension.

#ifndef STSM_NN_NORM_H_
#define STSM_NN_NORM_H_

#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// y = (x - mean) / sqrt(var + eps) * gamma + beta, with statistics computed
// over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float epsilon = 1e-5f);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

 private:
  int64_t features_;
  float epsilon_;
  Tensor gamma_;  // [features]
  Tensor beta_;   // [features]
};

}  // namespace stsm

#endif  // STSM_NN_NORM_H_
