#include "nn/attention.h"

#include <cmath>

#include "common/check.h"
#include "common/prof.h"
#include "tensor/ops.h"

namespace stsm {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t model_dim,
                                               int num_heads, Rng* rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      query_(model_dim, model_dim, rng),
      key_(model_dim, model_dim, rng),
      value_(model_dim, model_dim, rng),
      output_(model_dim, model_dim, rng) {
  STSM_CHECK_EQ(head_dim_ * num_heads, model_dim)
      << "model_dim must be divisible by num_heads";
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  STSM_PROF_SCOPE("attention.fwd");
  STSM_CHECK_EQ(x.ndim(), 3) << "attention expects [B, T, C]";
  STSM_CHECK_EQ(x.shape()[-1], model_dim_);
  const int64_t batch = x.shape()[0];
  const int64_t time = x.shape()[1];

  auto split_heads = [&](const Tensor& t) {
    // [B, T, C] -> [B, H, T, Dh].
    return Transpose(
        Reshape(t, Shape({batch, time, num_heads_, head_dim_})), 1, 2);
  };
  const Tensor q = split_heads(query_.Forward(x));
  const Tensor k = split_heads(key_.Forward(x));
  const Tensor v = split_heads(value_.Forward(x));

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  const Tensor scores =
      Mul(MatMul(q, Transpose(k, -1, -2)), scale);     // [B, H, T, T]
  const Tensor weights = Softmax(scores, -1);
  const Tensor context = MatMul(weights, v);           // [B, H, T, Dh]
  const Tensor merged = Reshape(Transpose(context, 1, 2),
                                Shape({batch, time, model_dim_}));
  return output_.Forward(merged);
}

std::vector<Tensor> MultiHeadSelfAttention::Parameters() const {
  return ConcatParameters({query_.Parameters(), key_.Parameters(),
                           value_.Parameters(), output_.Parameters()});
}

std::vector<Module*> MultiHeadSelfAttention::Children() {
  return CollectChildren({&query_, &key_, &value_, &output_});
}

TransformerEncoderBlock::TransformerEncoderBlock(int64_t model_dim,
                                                 int num_heads,
                                                 int64_t ffn_dim, Rng* rng,
                                                 float dropout)
    : attention_(model_dim, num_heads, rng),
      norm1_(model_dim),
      norm2_(model_dim),
      ffn1_(model_dim, ffn_dim, rng),
      ffn2_(ffn_dim, model_dim, rng),
      // Fixed seed: drawing from `rng` here would shift the init stream of
      // every module constructed after this block and change existing
      // deterministic results.
      dropout_(dropout, /*seed=*/0x9e3779b97f4a7c15ULL ^
                            static_cast<uint64_t>(model_dim)) {}

Tensor TransformerEncoderBlock::Forward(const Tensor& x) const {
  STSM_PROF_SCOPE("transformer.fwd");
  const Tensor attended =
      Add(x, dropout_.Forward(attention_.Forward(norm1_.Forward(x))));
  const Tensor ffn_out =
      ffn2_.Forward(Relu(ffn1_.Forward(norm2_.Forward(attended))));
  return Add(attended, dropout_.Forward(ffn_out));
}

std::vector<Tensor> TransformerEncoderBlock::Parameters() const {
  return ConcatParameters({attention_.Parameters(), norm1_.Parameters(),
                           norm2_.Parameters(), ffn1_.Parameters(),
                           ffn2_.Parameters()});
}

std::vector<Module*> TransformerEncoderBlock::Children() {
  return CollectChildren(
      {&attention_, &norm1_, &norm2_, &ffn1_, &ffn2_, &dropout_});
}

}  // namespace stsm
