#include "nn/linear.h"

#include <cmath>

#include "common/check.h"
#include "common/prof.h"
#include "tensor/ops.h"

namespace stsm {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  STSM_CHECK_GT(in_features, 0);
  STSM_CHECK_GT(out_features, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::Uniform(Shape({in_features, out_features}), -bound, bound,
                            rng, /*requires_grad=*/true);
  if (use_bias) {
    bias_ = Tensor::Zeros(Shape({out_features}), /*requires_grad=*/true);
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  STSM_PROF_SCOPE("linear.fwd");
  STSM_CHECK_EQ(x.shape()[-1], in_features_);
  if (!x.is_contiguous() && x.ndim() >= 2) {
    // Strided input (a transpose/slice view): batched matmul reads it
    // through its strides directly — the GEMM packing absorbs the layout —
    // so skip the flatten, which would force a Contiguous copy. Per output
    // element the flop order matches the flattened path exactly.
    // A bf16 weight (serving) feeds the mixed-dtype GEMM directly; the bias
    // is widened at the point of use (identity handle for fp32).
    Tensor y = MatMul(x, weight_);
    if (bias_.defined()) y = Add(y, WidenToF32(bias_));
    return y;
  }
  // Contiguous input: flatten all leading dims into the matmul row
  // dimension (zero-copy) so the whole batch runs as one large GEMM.
  const Shape original = x.shape();
  std::vector<int64_t> flat_dims = {x.numel() / in_features_, in_features_};
  Tensor y = MatMul(Reshape(x, Shape(flat_dims)), weight_);
  if (bias_.defined()) y = Add(y, WidenToF32(bias_));
  std::vector<int64_t> out_dims = original.dims();
  out_dims.back() = out_features_;
  return Reshape(y, Shape(out_dims));
}

std::vector<Tensor> Linear::Parameters() const {
  if (bias_.defined()) return {weight_, bias_};
  return {weight_};
}

}  // namespace stsm
