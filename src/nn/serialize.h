// Parameter serialization: save and restore the weights of any Module.
//
// The format is a simple little-endian binary container:
//   magic "STSMTNSR", version u32, tensor count u32, then per tensor:
//   ndim u32, dims i64[ndim], dtype tag u32, data bytes[numel * elem_size].
// Version 1 files (no dtype tag, fp32 payloads) still load; writers emit
// version 2. A dtype tag the reader does not recognise is a hard load
// failure — never an fp32 reinterpretation of unknown bytes.
// Parameters are stored positionally, matching Module::Parameters() order,
// which is stable for every module in this library.

#ifndef STSM_NN_SERIALIZE_H_
#define STSM_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// Writes the tensors to `path`. Returns false on I/O failure.
bool SaveTensors(const std::vector<Tensor>& tensors, const std::string& path);

// Reads tensors from `path`. Returns an empty vector on failure (missing
// file, bad magic, truncated data, or trailing bytes beyond the declared
// tensor payload — the file must be exactly the container, nothing more).
std::vector<Tensor> LoadTensors(const std::string& path);

// Saves a module's parameters.
bool SaveModule(const Module& module, const std::string& path);

// Restores a module's parameters in place. Returns false (leaving the
// module untouched) if the file does not match the module's parameter
// shapes.
bool LoadModule(Module* module, const std::string& path);

}  // namespace stsm

#endif  // STSM_NN_SERIALIZE_H_
