// Graph convolution layers (STSM Eq. 6-7).

#ifndef STSM_NN_GCN_H_
#define STSM_NN_GCN_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace stsm {

// One graph convolution: GCN(A, Z) = Â Z W (Eq. 6), where the normalised
// adjacency Â is supplied at call time so the same weights can be used with
// different graphs (training vs testing graphs in STSM).
class GcnLayer : public Module {
 public:
  GcnLayer(int64_t in_features, int64_t out_features, Rng* rng);

  // adj: [N, N] (constant, pre-normalised), dense or CSR — node mixing
  // routes to MatMul or SpMM accordingly; x: [..., N, in] -> [..., N, out].
  Tensor Forward(const Adjacency& adj, const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

// Gated GCN layer (Eq. 7): GCNL(A, Z) = GCN(A, Z) * sigmoid(GCN'(A, Z)) with
// two parallel graph convolutions acting as value and gate.
class GcnlLayer : public Module {
 public:
  GcnlLayer(int64_t in_features, int64_t out_features, Rng* rng);

  Tensor Forward(const Adjacency& adj, const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

 private:
  GcnLayer value_;
  GcnLayer gate_;
};

}  // namespace stsm

#endif  // STSM_NN_GCN_H_
