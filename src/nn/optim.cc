#include "nn/optim.h"

#include <cmath>

#include "common/check.h"
#include "common/prof.h"
#include "tensor/ops.h"

namespace stsm {

namespace {

// Read-only gradient view: nullptr (rather than a freshly allocated zero
// buffer) when no gradient has been accumulated into the parameter.
const float* GradOrNull(const Tensor& p) {
  return p.has_grad() ? p.grad_data() : nullptr;
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (const Tensor& p : parameters_) {
    STSM_CHECK(p.defined());
    STSM_CHECK(p.requires_grad()) << "optimised tensors must require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

int64_t Optimizer::num_parameters() const {
  int64_t total = 0;
  for (const Tensor& p : parameters_) total += p.numel();
  return total;
}

Sgd::Sgd(std::vector<Tensor> parameters, float learning_rate, float momentum)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      momentum_(momentum) {
  velocity_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    velocity_.push_back(Tensor::Zeros(p.shape()));
  }
}

void Sgd::Step() {
  STSM_PROF_SCOPE("optim.sgd.step");
  // vel = momentum * vel + grad; p -= lr * vel — expressed through the
  // in-place tensor ops, with the gradient wrapped as a zero-copy GradView.
  // Bitwise identical to the old fused loop (same per-element operations in
  // the same order).
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    Tensor& vel = velocity_[i];
    MulScalarInPlace(vel, momentum_);
    if (p.has_grad()) AddInPlace(vel, p.GradView());
    AddScaledInPlace(p, vel, -learning_rate_);
  }
}

Adam::Adam(std::vector<Tensor> parameters, float learning_rate, float beta1,
           float beta2, float epsilon)
    : Optimizer(std::move(parameters)),
      learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  first_moment_.resize(parameters_.size());
  second_moment_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    first_moment_[i].assign(parameters_[i].numel(), 0.0f);
    second_moment_[i].assign(parameters_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  STSM_PROF_SCOPE("optim.adam.step");
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor& p = parameters_[i];
    float* data = p.data();
    const float* grad = GradOrNull(p);
    float* m = first_moment_[i].data();
    float* v = second_moment_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      const float g = grad != nullptr ? grad[j] : 0.0f;
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

float ClipGradNorm(std::vector<Tensor>& parameters, float max_norm) {
  STSM_PROF_SCOPE("optim.clip_grad");
  STSM_CHECK_GT(max_norm, 0.0f);
  double sum_sq = 0.0;
  for (Tensor& p : parameters) {
    const float* grad = GradOrNull(p);  // No grad: contributes zero.
    if (grad == nullptr) continue;
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      sum_sq += static_cast<double>(grad[j]) * grad[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sum_sq));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (Tensor& p : parameters) {
      if (!p.has_grad()) continue;
      MulScalarInPlace(p.GradView(), scale);
    }
  }
  return norm;
}

}  // namespace stsm
