// Inverted dropout as a module: active only in training mode, identity in
// eval mode — the train/eval distinction served models rely on.

#ifndef STSM_NN_DROPOUT_H_
#define STSM_NN_DROPOUT_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// Wraps the stsm::Dropout op (tensor/ops.h; named *Layer to stay distinct
// from it): at training time zeroes entries with probability `p` and scales
// survivors by 1/(1-p); in eval mode (or at p <= 0) returns the input
// unchanged, so inference is deterministic and allocation-free.
class DropoutLayer : public Module {
 public:
  // `seed` initialises the module-owned mask stream; two modules with the
  // same seed draw identical masks.
  explicit DropoutLayer(float p, uint64_t seed = 1);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override { return {}; }

  float p() const { return p_; }

 private:
  float p_;
  // Forward draws a fresh mask per call; mutable keeps the signature
  // aligned with every other layer's const Forward.
  mutable Rng rng_;
};

}  // namespace stsm

#endif  // STSM_NN_DROPOUT_H_
