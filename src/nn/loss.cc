#include "nn/loss.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stsm {

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  STSM_CHECK(prediction.shape() == target.shape())
      << prediction.shape().ToString() << "vs" << target.shape().ToString();
  return Mean(Square(Sub(prediction, target)));
}

Tensor MaeLoss(const Tensor& prediction, const Tensor& target) {
  STSM_CHECK(prediction.shape() == target.shape());
  return Mean(Abs(Sub(prediction, target)));
}

Tensor BinaryCrossEntropy(const Tensor& probability, const Tensor& target) {
  STSM_CHECK(probability.shape() == target.shape());
  const Tensor pos = Mul(target, Log(probability));
  const Tensor neg = Mul(Sub(1.0f, target), Log(Sub(1.0f, probability)));
  return Neg(Mean(Add(pos, neg)));
}

Tensor L2NormalizeRows(const Tensor& x, float epsilon) {
  STSM_CHECK_EQ(x.ndim(), 2);
  const Tensor norm =
      Sqrt(Add(Sum(Square(x), 1, /*keepdim=*/true), epsilon));
  return Div(x, norm);
}

Tensor InfoNceLoss(const Tensor& anchor, const Tensor& positive,
                   float temperature) {
  STSM_CHECK_EQ(anchor.ndim(), 2);
  STSM_CHECK(anchor.shape() == positive.shape());
  const int64_t m = anchor.shape()[0];
  STSM_CHECK_GE(m, 2) << "InfoNCE needs at least one negative pair";

  const Tensor a = L2NormalizeRows(anchor);
  const Tensor p = L2NormalizeRows(positive);
  // Cosine similarities between every anchor row and every positive row.
  const Tensor sim =
      Div(MatMul(a, Transpose(p, 0, 1)), temperature);  // [M, M]

  const Tensor eye = Tensor::Eye(m);
  const Tensor off_diagonal = Sub(1.0f, eye);
  // Positive similarity per row (the diagonal).
  const Tensor pos = Sum(Mul(sim, eye), 1);  // [M]
  // Paper Eq. 17: denominator sums only the t' != t pairs.
  const Tensor denom = Sum(Mul(Exp(sim), off_diagonal), 1);  // [M]
  return Neg(Mean(Sub(pos, Log(denom))));
}

}  // namespace stsm
