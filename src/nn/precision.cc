#include "nn/precision.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stsm {

void CastModuleForServing(Module* module, DType dtype) {
  STSM_CHECK(module != nullptr);
  for (Tensor& p : module->Parameters()) {
    STSM_CHECK(p.defined());
    const auto& impl = p.impl();
    // Detach() lifts the tensor out of any autograd history so To() accepts
    // it; To() compacts strided layouts and is a no-copy identity when the
    // dtype already matches.
    const Tensor converted = To(p.Detach(), dtype);
    impl->storage = converted.impl()->storage;
    impl->strides = impl->shape.Strides();
    impl->offset = converted.impl()->offset;
    impl->requires_grad = false;
    impl->grad_fn = nullptr;
  }
}

int64_t ModuleWeightBytes(const Module& module) {
  int64_t bytes = 0;
  for (const Tensor& p : module.Parameters()) {
    if (!p.defined()) continue;
    bytes += p.numel() * static_cast<int64_t>(ElementSize(p.dtype()));
  }
  return bytes;
}

}  // namespace stsm
