// Gated recurrent unit, used by the INCREASE baseline's temporal encoder.

#ifndef STSM_NN_GRU_H_
#define STSM_NN_GRU_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// Single GRU cell.
//   z = sigmoid(x @ Wz + h @ Uz + bz)
//   r = sigmoid(x @ Wr + h @ Ur + br)
//   n = tanh(x @ Wn + (r * h) @ Un + bn)
//   h' = (1 - z) * n + z * h
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, input], h: [B, hidden] -> new hidden [B, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  // Zero-initialised hidden state for batch size `batch`.
  Tensor InitialState(int64_t batch) const;

  std::vector<Tensor> Parameters() const override;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear input_z_, input_r_, input_n_;
  Linear hidden_z_, hidden_r_, hidden_n_;
};

// Runs a GruCell over a [B, T, C] sequence, returning either the final
// hidden state or the full [B, T, H] sequence of hidden states.
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, Rng* rng);

  // Returns the final hidden state [B, hidden].
  Tensor ForwardFinal(const Tensor& sequence) const;
  // Returns all hidden states [B, T, hidden].
  Tensor ForwardSequence(const Tensor& sequence) const;

  std::vector<Tensor> Parameters() const override;
  std::vector<Module*> Children() override { return {&cell_}; }

 private:
  GruCell cell_;
};

}  // namespace stsm

#endif  // STSM_NN_GRU_H_
