#include "nn/gcn.h"

#include <cmath>

#include "common/check.h"
#include "common/prof.h"
#include "tensor/ops.h"

namespace stsm {

GcnLayer::GcnLayer(int64_t in_features, int64_t out_features, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = Tensor::Uniform(Shape({in_features, out_features}), -bound, bound,
                            rng, /*requires_grad=*/true);
  bias_ = Tensor::Zeros(Shape({out_features}), /*requires_grad=*/true);
}

Tensor GcnLayer::Forward(const Adjacency& adj, const Tensor& x) const {
  STSM_PROF_SCOPE("gcn.fwd");
  STSM_CHECK(adj.defined());
  STSM_CHECK_EQ(adj.rows(), adj.cols());
  STSM_CHECK_EQ(x.shape()[-2], adj.rows());
  STSM_CHECK_EQ(x.shape()[-1], in_features_);
  // Â mixes the node dimension (MatMul or SpMM depending on the adjacency
  // representation); W mixes features. Batch dims broadcast. A bf16 weight
  // (serving) feeds the mixed-dtype GEMM; the bias widens at point of use.
  return Add(MatMul(adj.Apply(x), weight_), WidenToF32(bias_));
}

std::vector<Tensor> GcnLayer::Parameters() const { return {weight_, bias_}; }

GcnlLayer::GcnlLayer(int64_t in_features, int64_t out_features, Rng* rng)
    : value_(in_features, out_features, rng),
      gate_(in_features, out_features, rng) {}

Tensor GcnlLayer::Forward(const Adjacency& adj, const Tensor& x) const {
  STSM_PROF_SCOPE("gcnl.fwd");
  return Mul(value_.Forward(adj, x), Sigmoid(gate_.Forward(adj, x)));
}

std::vector<Tensor> GcnlLayer::Parameters() const {
  return ConcatParameters({value_.Parameters(), gate_.Parameters()});
}

}  // namespace stsm
