// Fully connected layer applied to the last dimension of its input.

#ifndef STSM_NN_LINEAR_H_
#define STSM_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// y = x @ W + b where x is [..., in_features] and y is [..., out_features].
// Weights use Glorot-uniform initialisation.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] (undefined when use_bias is false)
};

}  // namespace stsm

#endif  // STSM_NN_LINEAR_H_
