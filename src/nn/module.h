// Base interface for neural-network modules: anything that owns trainable
// parameters. Composite modules concatenate their children's parameters.

#ifndef STSM_NN_MODULE_H_
#define STSM_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace stsm {

class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameters of this module (leaf tensors with
  // requires_grad set). Order is stable across calls.
  virtual std::vector<Tensor> Parameters() const = 0;

  // Direct child modules, used to propagate state flags (SetTraining) down
  // composite modules. Leaves return the default empty list. Unlike
  // Parameters(), the order carries no contract.
  virtual std::vector<Module*> Children() { return {}; }

  // Switches this module and every descendant between training and
  // evaluation mode. Layers whose forward differs between the two (Dropout)
  // consult is_training(); pure-function layers (Linear, LayerNorm — which
  // normalises per sample, so it has no train-time statistics to freeze)
  // ignore it. Modules default to training mode; serving loads flip to eval.
  void SetTraining(bool training) {
    training_ = training;
    for (Module* child : Children()) child->SetTraining(training);
  }
  bool is_training() const { return training_; }

  // Total number of scalar parameters.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Tensor& p : Parameters()) total += p.numel();
    return total;
  }

  // Zeroes the gradient buffers of every parameter.
  void ZeroGrad() {
    for (Tensor p : Parameters()) p.ZeroGrad();
  }

 private:
  bool training_ = true;
};

// Collects non-null child pointers (helper for Children() overrides; accepts
// raw pointers so callers can mix members and unique_ptr children).
inline std::vector<Module*> CollectChildren(
    std::initializer_list<Module*> children) {
  std::vector<Module*> present;
  for (Module* child : children) {
    if (child != nullptr) present.push_back(child);
  }
  return present;
}

// Concatenates parameter lists (helper for composite modules).
inline std::vector<Tensor> ConcatParameters(
    std::initializer_list<std::vector<Tensor>> lists) {
  std::vector<Tensor> all;
  for (const auto& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  return all;
}

}  // namespace stsm

#endif  // STSM_NN_MODULE_H_
