// Base interface for neural-network modules: anything that owns trainable
// parameters. Composite modules concatenate their children's parameters.

#ifndef STSM_NN_MODULE_H_
#define STSM_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace stsm {

class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameters of this module (leaf tensors with
  // requires_grad set). Order is stable across calls.
  virtual std::vector<Tensor> Parameters() const = 0;

  // Total number of scalar parameters.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Tensor& p : Parameters()) total += p.numel();
    return total;
  }

  // Zeroes the gradient buffers of every parameter.
  void ZeroGrad() {
    for (Tensor p : Parameters()) p.ZeroGrad();
  }
};

// Concatenates parameter lists (helper for composite modules).
inline std::vector<Tensor> ConcatParameters(
    std::initializer_list<std::vector<Tensor>> lists) {
  std::vector<Tensor> all;
  for (const auto& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  return all;
}

}  // namespace stsm

#endif  // STSM_NN_MODULE_H_
