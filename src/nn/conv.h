// Dilated causal temporal convolution layer over [B, T, N, C] tensors.

#ifndef STSM_NN_CONV_H_
#define STSM_NN_CONV_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace stsm {

// Wraps Conv1dTime (tensor/ops.h): a causal dilated 1-D convolution along the
// time axis, preserving sequence length via left zero-padding. This is the
// building block of the TCN in STSM Eq. (5).
class TemporalConv : public Module {
 public:
  TemporalConv(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               int dilation, Rng* rng, bool use_bias = true);

  // x: [B, T, N, in_channels] -> [B, T, N, out_channels].
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  int dilation() const { return dilation_; }
  int64_t kernel_size() const { return kernel_size_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int dilation_;
  Tensor weight_;  // [out, in, K]
  Tensor bias_;    // [out]
};

}  // namespace stsm

#endif  // STSM_NN_CONV_H_
