// Multi-head self-attention over the time axis and a transformer encoder
// block, used by the STSM-trans variant (Section 5.2.5).

#ifndef STSM_NN_ATTENTION_H_
#define STSM_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/norm.h"
#include "tensor/tensor.h"

namespace stsm {

// Scaled dot-product multi-head self-attention along dimension -2 of a
// [..., T, C] tensor (every leading dimension is treated as batch).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t model_dim, int num_heads, Rng* rng);

  // x: [..., T, C] -> [..., T, C].
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;
  std::vector<Module*> Children() override;

 private:
  int64_t model_dim_;
  int num_heads_;
  int64_t head_dim_;
  Linear query_, key_, value_, output_;
};

// Pre-norm transformer encoder block: x + MHSA(LN(x)), then x + FFN(LN(x)),
// with (inverted) dropout on both residual branches when `dropout` > 0 and
// the module is in training mode.
class TransformerEncoderBlock : public Module {
 public:
  TransformerEncoderBlock(int64_t model_dim, int num_heads, int64_t ffn_dim,
                          Rng* rng, float dropout = 0.0f);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;
  std::vector<Module*> Children() override;

 private:
  MultiHeadSelfAttention attention_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Linear ffn1_;
  Linear ffn2_;
  DropoutLayer dropout_;
};

}  // namespace stsm

#endif  // STSM_NN_ATTENTION_H_
