// Serving-time precision control (DESIGN.md §13).
//
// Training is fp32 bit-for-bit and never touches these helpers. A serving
// replica that wants half-size resident weights calls CastModuleForServing
// after restoring a checkpoint: every parameter is rounded to the target
// dtype (RNE for bf16) in place and frozen — gradients off, autograd
// history cleared — so a later training step on the cast module is a
// checked error rather than silent mixed-precision drift.

#ifndef STSM_NN_PRECISION_H_
#define STSM_NN_PRECISION_H_

#include <cstdint>

#include "nn/module.h"
#include "tensor/dtype.h"

namespace stsm {

// Converts every parameter of `module` to `dtype` in place and freezes the
// module for inference (requires_grad off, grad_fn cleared, layout
// compacted). Idempotent; casting to kF32 still freezes. The parameter
// Tensor handles the module hands out keep working — conversion swaps the
// storage under the existing impls, so views and owner modules agree.
void CastModuleForServing(Module* module, DType dtype);

// Resident parameter bytes of the module at its current dtypes. This is
// the number bench_serve_load reports per registry entry; for a bf16-cast
// model it is half the fp32 figure (modulo nothing — every parameter
// converts).
int64_t ModuleWeightBytes(const Module& module);

}  // namespace stsm

#endif  // STSM_NN_PRECISION_H_
