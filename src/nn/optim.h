// First-order optimisers operating on parameter tensors.

#ifndef STSM_NN_OPTIM_H_
#define STSM_NN_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace stsm {

// Base class holding the parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored in the
  // parameters' grad buffers.
  virtual void Step() = 0;

  // Clears all parameter gradients (call between steps).
  void ZeroGrad();

  int64_t num_parameters() const;

 protected:
  std::vector<Tensor> parameters_;
};

// Stochastic gradient descent with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float learning_rate,
      float momentum = 0.0f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float momentum_;
  // One velocity tensor per parameter, updated with the in-place tensor ops
  // (MulScalarInPlace / AddInPlace) against the parameter's GradView.
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba, 2015) — the optimiser used to train STSM
// (Section 5.1.3, learning rate 0.01).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float learning_rate,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step() override;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 private:
  float learning_rate_;
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

// Scales gradients in place so their global L2 norm is at most `max_norm`.
// Returns the pre-clipping norm.
float ClipGradNorm(std::vector<Tensor>& parameters, float max_norm);

}  // namespace stsm

#endif  // STSM_NN_OPTIM_H_
