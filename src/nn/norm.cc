#include "nn/norm.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace stsm {

LayerNorm::LayerNorm(int64_t features, float epsilon)
    : features_(features), epsilon_(epsilon) {
  gamma_ = Tensor::Ones(Shape({features}), /*requires_grad=*/true);
  beta_ = Tensor::Zeros(Shape({features}), /*requires_grad=*/true);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  STSM_CHECK_EQ(x.shape()[-1], features_);
  const int last = x.ndim() - 1;
  const Tensor mean = Mean(x, last, /*keepdim=*/true);
  const Tensor centered = Sub(x, mean);
  const Tensor variance = Mean(Square(centered), last, /*keepdim=*/true);
  const Tensor normalised = Div(centered, Sqrt(Add(variance, epsilon_)));
  // Scale/shift widen bf16 serving weights at the point of use (identity
  // handles for fp32 training).
  return Add(Mul(normalised, WidenToF32(gamma_)), WidenToF32(beta_));
}

std::vector<Tensor> LayerNorm::Parameters() const { return {gamma_, beta_}; }

}  // namespace stsm
