#include "nn/conv.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace stsm {

TemporalConv::TemporalConv(int64_t in_channels, int64_t out_channels,
                           int64_t kernel_size, int dilation, Rng* rng,
                           bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      dilation_(dilation) {
  STSM_CHECK_GT(in_channels, 0);
  STSM_CHECK_GT(out_channels, 0);
  STSM_CHECK_GT(kernel_size, 0);
  STSM_CHECK_GE(dilation, 1);
  const float fan_in = static_cast<float>(in_channels * kernel_size);
  const float bound = std::sqrt(1.0f / fan_in);
  weight_ = Tensor::Uniform(Shape({out_channels, in_channels, kernel_size}),
                            -bound, bound, rng, /*requires_grad=*/true);
  if (use_bias) {
    bias_ = Tensor::Zeros(Shape({out_channels}), /*requires_grad=*/true);
  }
}

Tensor TemporalConv::Forward(const Tensor& x) const {
  STSM_CHECK_EQ(x.shape()[-1], in_channels_);
  // Conv1dTime walks raw fp32 — bf16 serving weights widen at the point of
  // use (the kernel tensor is tiny; identity handles for fp32).
  return Conv1dTime(x, WidenToF32(weight_), WidenToF32(bias_), dilation_);
}

std::vector<Tensor> TemporalConv::Parameters() const {
  if (bias_.defined()) return {weight_, bias_};
  return {weight_};
}

}  // namespace stsm
