#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>

#include "common/check.h"
#include "tensor/ops.h"

namespace stsm {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'S', 'M', 'T', 'N', 'S', 'R'};
// v1: per tensor {ndim u32, dims i64[ndim], data f32[numel]} — fp32 only.
// v2: adds a dtype tag u32 between dims and data; the payload is
//     numel * ElementSize(dtype) raw element bytes.
constexpr uint32_t kVersion = 2;

// On-disk dtype tags. Deliberately decoupled from the DType enum values so
// the serialized format can never drift with an enum reorder.
constexpr uint32_t kTagF32 = 0;
constexpr uint32_t kTagBf16 = 1;

uint32_t TagForDType(DType dtype) {
  return dtype == DType::kBf16 ? kTagBf16 : kTagF32;
}

bool DTypeForTag(uint32_t tag, DType* dtype) {
  switch (tag) {
    case kTagF32:
      *dtype = DType::kF32;
      return true;
    case kTagBf16:
      *dtype = DType::kBf16;
      return true;
    default:
      return false;
  }
}

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveTensors(const std::vector<Tensor>& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    STSM_CHECK(t.defined());
    // The on-disk layout is flat row-major; compact strided views first
    // (Clone gathers through the view's strides into a contiguous buffer).
    const Tensor tensor = t.is_contiguous() ? t : t.Clone();
    const auto& dims = tensor.shape().dims();
    WritePod(out, static_cast<uint32_t>(dims.size()));
    for (int64_t d : dims) WritePod(out, d);
    WritePod(out, TagForDType(tensor.dtype()));
    out.write(static_cast<const char*>(tensor.impl()->raw()),
              static_cast<std::streamsize>(
                  tensor.numel() *
                  static_cast<int64_t>(ElementSize(tensor.dtype()))));
  }
  return static_cast<bool>(out);
}

std::vector<Tensor> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return {};
  uint32_t version = 0, count = 0;
  if (!ReadPod(in, &version)) return {};
  if (version != 1 && version != kVersion) return {};
  if (!ReadPod(in, &count)) return {};

  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (uint32_t t = 0; t < count; ++t) {
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim) || ndim > 16) return {};
    std::vector<int64_t> dims(ndim);
    for (uint32_t d = 0; d < ndim; ++d) {
      if (!ReadPod(in, &dims[d]) || dims[d] < 0) return {};
    }
    const Shape shape(dims);
    // v1 predates dtype tags and is fp32 by definition. A tag this reader
    // does not know is a hard error, not an fp32 reinterpretation: guessing
    // the element size would silently load garbage weights.
    DType dtype = DType::kF32;
    if (version >= 2) {
      uint32_t tag = 0;
      if (!ReadPod(in, &tag)) return {};
      if (!DTypeForTag(tag, &dtype)) {
        std::cerr << "LoadTensors(" << path << "): unknown dtype tag " << tag
                  << " for tensor " << t
                  << "; this checkpoint needs a newer reader\n";
        return {};
      }
    }
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = shape;
    impl->strides = shape.Strides();
    impl->storage = Storage::New(shape.numel(), dtype, /*zero=*/false);
    in.read(static_cast<char*>(impl->storage->raw()),
            static_cast<std::streamsize>(
                shape.numel() * static_cast<int64_t>(ElementSize(dtype))));
    if (!in) return {};
    tensors.push_back(Tensor(std::move(impl)));
  }
  // The declared tensor payload must account for the whole file: trailing
  // bytes mean a corrupted or mis-declared checkpoint, and silently
  // accepting one would let a truncated count load "successfully". With
  // dtype tags the payload size is dtype-dependent, so this check also
  // catches an fp32 payload behind a bf16 tag (and vice versa).
  if (in.peek() != std::ifstream::traits_type::eof()) return {};
  return tensors;
}

bool SaveModule(const Module& module, const std::string& path) {
  return SaveTensors(module.Parameters(), path);
}

bool LoadModule(Module* module, const std::string& path) {
  STSM_CHECK(module != nullptr);
  const std::vector<Tensor> loaded = LoadTensors(path);
  std::vector<Tensor> parameters = module->Parameters();
  if (loaded.size() != parameters.size()) return false;
  for (size_t i = 0; i < loaded.size(); ++i) {
    if (loaded[i].shape() != parameters[i].shape()) return false;
  }
  for (size_t i = 0; i < loaded.size(); ++i) {
    // Dtype-mismatched checkpoints convert at the boundary (bf16 weights
    // into an fp32 module widen exactly; fp32 into a bf16-cast serving
    // module rounds RNE), then bytes move verbatim.
    const Tensor& param = parameters[i];
    const Tensor src = loaded[i].dtype() == param.dtype()
                           ? loaded[i]
                           : To(loaded[i], param.dtype());
    std::memcpy(param.impl()->raw(), src.impl()->raw(),
                static_cast<size_t>(param.numel()) * ElementSize(param.dtype()));
  }
  return true;
}

}  // namespace stsm
